"""Multiresolution terrain extraction — the paper's Figure 1.

Figure 1 shows the same terrain at 100,000 and 10,000 triangles.
This example builds the DMTM over a terrain and extracts
approximations at several levels of detail, reporting vertex counts,
approximation error and how well each level preserves the terrain
(surface-area retention) — plus a small ASCII hillshade so the
similarity is visible in a terminal.

Run:  python examples/multires_terrain.py
"""

import numpy as np

from repro import bearhead_like
from repro.multires import DMTM
from repro.terrain import TriangleMesh


def ascii_relief(points: np.ndarray, cols: int = 48, rows: int = 16) -> str:
    """Crude character-cell relief map of a 3D point set."""
    ramp = " .:-=+*#%@"
    xy = points[:, :2]
    z = points[:, 2]
    lo = xy.min(axis=0)
    span = np.maximum(xy.max(axis=0) - lo, 1e-9)
    zi = (z - z.min()) / max(z.max() - z.min(), 1e-9)
    grid = np.full((rows, cols), -1.0)
    for (x, y), h in zip(xy, zi):
        c = min(int((x - lo[0]) / span[0] * (cols - 1)), cols - 1)
        r = min(int((y - lo[1]) / span[1] * (rows - 1)), rows - 1)
        grid[r, c] = max(grid[r, c], h)
    lines = []
    for r in range(rows - 1, -1, -1):
        line = "".join(
            ramp[int(v * (len(ramp) - 1))] if v >= 0 else " "
            for v in grid[r]
        )
        lines.append(line)
    return "\n".join(lines)


def main() -> None:
    mesh = TriangleMesh.from_dem(bearhead_like(size=33))
    print(f"original terrain: {mesh.num_vertices} vertices, "
          f"{mesh.num_faces} triangles")
    dmtm = DMTM(mesh)

    for fraction in (1.0, 0.25, 0.05):
        points = dmtm.ddm.approximate_vertices(fraction)
        step = dmtm.ddm.step_for_fraction(fraction)
        cut = dmtm.ddm.history.cut_at_step(step)
        worst_error = max(
            dmtm.ddm.history.nodes[n].error for n in cut
        )
        # Network edges of this cut (what upper bounds run over).
        num_edges = sum(1 for _ in dmtm.ddm.cut_edges(cut))
        print(f"\n=== LOD {fraction * 100:.0f}%: {len(points)} vertices, "
              f"{num_edges} network edges, "
              f"max QEM error {worst_error:.3g} ===")
        print(ascii_relief(points))

    # Triangulated LOD extraction (needs scipy): how well does each
    # level preserve the terrain's surface area (its "shape budget")?
    try:
        from repro.multires import extract_mesh

        original_area = mesh.surface_area()
        print("\ntriangulated LOD extraction:")
        for fraction in (1.0, 0.25, 0.05):
            approx = extract_mesh(dmtm, fraction)
            retention = approx.surface_area() / original_area
            print(f"  LOD {fraction * 100:3.0f}%: {approx.num_faces:5d} "
                  f"triangles, {retention:6.1%} of the surface area")
    except Exception as exc:  # scipy missing
        print(f"(mesh extraction skipped: {exc})")

    # The punchline of the data structure: a distance estimated on
    # the 25 % model is already a usable upper bound.
    print()
    a, b = 50, mesh.num_vertices - 60
    for fraction in (0.05, 0.25, 1.0, 2.0):
        ub = dmtm.upper_bound(a, b, fraction)
        print(f"ub at {fraction * 100:5.0f}%: {ub.value:9.1f} m")


if __name__ == "__main__":
    main()
