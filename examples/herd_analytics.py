"""Herd analytics — surface range queries and closest pairs.

The paper's conclusion (§6) says the DMTM/MSDN framework supports
"other distance comparison based queries, such as range queries and
closest pair queries".  This example uses both on a conservation
scenario:

* a **surface range query** answers "which monitored dens lie within
  2 km of the new waste-storage site *by walking distance*?" — the
  impact-radius question from the paper's licensing motivation;
* a **closest pair** finds the two dens most at risk of territory
  conflict (nearest by surface distance, not map distance).

Run:  python examples/herd_analytics.py
"""

import numpy as np

from repro import bearhead_like
from repro.core import SurfaceKNNEngine


def main() -> None:
    engine = SurfaceKNNEngine.from_dem(
        bearhead_like(size=33, seed=4), density=8.0, seed=5
    )
    mesh = engine.mesh
    print(f"{len(engine.objects)} monitored dens on "
          f"{mesh.xy_bounds().measure() / 1e6:.1f} km^2 of rugged terrain")

    # --- impact radius of a proposed site --------------------------------
    site = engine.snap(1450.0, 1550.0)
    radius = 900.0
    impact = engine.range_query(site, radius)
    print(f"\ndens within {radius:.0f} m walking distance of the "
          f"proposed site: {len(impact.object_ids)} "
          f"(certain={impact.converged})")
    for obj, (lb, ub) in zip(impact.object_ids, impact.intervals):
        p = engine.objects.position_of(obj)
        euclid = float(np.linalg.norm(mesh.vertices[site] - p))
        print(f"  den {obj:3d}: surface [{lb:5.0f}, {ub:5.0f}] m "
              f"(map {euclid:5.0f} m)")
    # The Euclidean circle would both miss and over-include dens:
    map_only = set(engine.objects.range_2d(mesh.vertices[site][:2], radius))
    surface = set(impact.object_ids)
    print(f"  map-circle would include {len(map_only - surface)} dens the "
          f"terrain actually puts out of range")

    # --- territory conflict: closest pair ---------------------------------
    (a, b), (lb, ub) = engine.closest_pair()
    pa = engine.objects.position_of(a)
    pb = engine.objects.position_of(b)
    euclid = float(np.linalg.norm(pa - pb))
    print(f"\nclosest den pair by surface distance: {a} and {b}")
    print(f"  surface distance in [{lb:.0f}, {ub:.0f}] m "
          f"(map distance {euclid:.0f} m)")


if __name__ == "__main__":
    main()
