"""Rover mission planning — surface paths and accuracy-bounded
distances.

The paper cites rover path planning (Tompkins et al.) among the
applications where movement is constrained to the terrain surface.
A mission planner needs

1. the nearest science targets from the lander *by driving distance*,
2. an actual drivable path to the chosen target, and
3. driving-distance estimates with a guaranteed accuracy ("within
   95 %") — which the multiresolution structures answer directly
   without ever running an exact geodesic.

Run:  python examples/rover_mission.py
"""

import numpy as np

from repro import eagle_peak_like
from repro.core import SurfaceKNNEngine
from repro.geodesic.pathnet import pathnet_shortest_path


def main() -> None:
    dem = eagle_peak_like(size=33, seed=12)
    engine = SurfaceKNNEngine.from_dem(dem, density=5.0, seed=2)
    mesh = engine.mesh

    lander_xy = (1400.0, 1500.0)
    lander = engine.snap(*lander_xy)
    print(f"lander at vertex {lander}, elevation "
          f"{mesh.vertices[lander][2]:.0f} m")

    # 1. The three nearest science targets by driving distance.
    plan = engine.query(lander, k=3, step_length=2)
    print("\nnearest science targets by surface distance:")
    for rank, (obj, (lb, ub)) in enumerate(
        zip(plan.object_ids, plan.intervals), start=1
    ):
        print(f"  {rank}. target {obj:3d}: drive in [{lb:6.0f}, {ub:6.0f}] m")

    # 2. A drivable path to the first target: the pathnet route is a
    #    polyline lying on the surface (vertices + edge midpoints).
    target = plan.object_ids[0]
    target_vertex = engine.objects.vertex_of(target)
    length, keys = pathnet_shortest_path(
        mesh, lander, target_vertex, steiner_per_edge=1
    )
    print(f"\ndrive plan to target {target}: {length:.0f} m, "
          f"{len(keys)} waypoints")
    climbs = []
    prev_z = mesh.vertices[lander][2]
    for key in keys:
        if key[0] == "v":
            z = float(mesh.vertices[key[1]][2])
        else:
            u, w = mesh.edge_vertices[key[1]]
            z = float((mesh.vertices[u][2] + mesh.vertices[w][2]) / 2.0)
        climbs.append(z - prev_z)
        prev_z = z
    total_climb = sum(c for c in climbs if c > 0)
    print(f"total climb along the route: {total_climb:.0f} m")

    # 3. Traversability: the rover cannot climb slopes above 20
    #    degrees. Re-plan the target ranking on obstacle-avoiding
    #    paths (the paper's future-work extension).
    constrained = engine.obstacle_query(lander, k=3, max_slope_deg=20.0)
    print("\nwith a 20-degree slope limit:")
    if not constrained.object_ids:
        print("  no target reachable without exceeding the slope limit")
    for obj, (dist, _ub) in zip(constrained.object_ids, constrained.intervals):
        free = dict(zip(plan.object_ids, plan.intervals)).get(obj)
        note = ""
        if free is not None and dist > free[1] * 1.05:
            note = "  (detour vs unconstrained route)"
        print(f"  target {obj:3d}: {dist:6.0f} m{note}")

    # 4. "What is the surface distance to the far relay station,
    #    within 95 % accuracy?" — walk the resolution ladder until
    #    lb/ub >= 0.95, exactly the paper's progressive refinement.
    relay = engine.snap(2700.0, 300.0)
    target_accuracy = 0.95
    ladder = [(0.25, 0.25), (0.5, 0.5), (1.0, 1.0), (2.0, 1.0)]
    print(f"\ndistance to relay station (target accuracy "
          f"{target_accuracy:.0%}):")
    for dmtm_res, msdn_res in ladder:
        lb, ub = engine.distance_range(lander, relay, dmtm_res, msdn_res)
        accuracy = lb / ub
        print(f"  DMTM {dmtm_res * 100:5.0f}% / SDN {msdn_res * 100:3.0f}%: "
              f"[{lb:7.0f}, {ub:7.0f}] m  (accuracy {accuracy:.3f})")
        if accuracy >= target_accuracy:
            print(f"  -> good enough: report {(lb + ub) / 2:.0f} m "
                  f"+/- {(ub - lb) / 2:.0f} m")
            break
    else:
        print("  -> ladder exhausted; report the final range")


if __name__ == "__main__":
    main()
