"""Quickstart: build a terrain, index objects, run surface k-NN.

Run:  python examples/quickstart.py
"""

from repro import bearhead_like, roughness_report
from repro.core import SurfaceKNNEngine


def main() -> None:
    # 1. A terrain. Real DEMs load via repro.DemGrid.load("file.asc");
    #    here we use the rugged synthetic stand-in for the paper's
    #    Bearhead Mountain dataset.
    dem = bearhead_like(size=33)
    print(f"terrain: {dem.rows}x{dem.cols} samples, "
          f"{dem.area_km2:.1f} km^2, cell {dem.cell_size:.0f} m")

    # 2. The engine pre-builds everything the paper describes: the
    #    DMTM (multiresolution mesh with distance information), the
    #    MSDN (support distance networks) and the paged storage that
    #    counts I/O. Objects are dropped uniformly at 6 per km^2.
    engine = SurfaceKNNEngine.from_dem(dem, density=6.0, seed=42)
    report = roughness_report(engine.mesh, num_pairs=16)
    print(f"objects: {len(engine.objects)}  "
          f"surface/Euclid ratio: {report.surface_euclid_ratio:.2f} "
          f"(+{report.extra_distance_percent:.0f}% over straight line)")

    # 3. A surface k-NN query: "the 5 objects nearest to (1.5, 1.2) km
    #    along the surface" — MR3 with step length 1.
    result = engine.query_xy(1500.0, 1200.0, k=5, step_length=1)
    print(f"\nMR3 found {len(result.object_ids)} neighbours "
          f"(converged={result.converged}):")
    for obj, (lb, ub) in zip(result.object_ids, result.intervals):
        x, y, z = engine.objects.position_of(obj)
        print(f"  object {obj:3d} at ({x:7.0f}, {y:7.0f}, z={z:5.0f})  "
              f"surface distance in [{lb:7.1f}, {ub:7.1f}] m")
    m = result.metrics
    print(f"cost: {m.cpu_seconds * 1000:.0f} ms CPU, "
          f"{m.pages_accessed} pages "
          f"(~{m.io_seconds * 1000:.0f} ms simulated I/O)")

    # 4. Cross-check against the exact geodesic baseline (the thing
    #    MR3 exists to avoid — note the CPU difference).
    truth = engine.query(result.query_vertex, 5, method="exact")
    print(f"\nexact baseline: {truth.object_ids} "
          f"({truth.metrics.cpu_seconds * 1000:.0f} ms CPU)")
    agreement = set(result.object_ids) == set(truth.object_ids)
    print(f"result sets agree: {agreement}")


if __name__ == "__main__":
    main()
