"""Wildlife tracking — the paper's motivating application.

Environment-protection analysts keep groups of animal sightings and,
when new GPS fixes arrive, must assign each fix to its nearest group
*by surface distance* (a ridge between two points makes them far
apart no matter how close they look on a map), and bound the
animals' ground speed between consecutive fixes.

This example:
1. places "known groups" (water holes / den sites) on rugged terrain,
2. classifies a day of new sightings with sk-NN queries,
3. flags sightings whose surface detour is much longer than the map
   distance suggests (likely a different animal group), and
4. estimates minimum ground speed between consecutive fixes of one
   individual using surface distances.

Run:  python examples/wildlife_tracking.py
"""

import numpy as np

from repro import bearhead_like
from repro.core import ObjectSet, SurfaceKNNEngine
from repro.geodesic import kanai_suzuki_distance


def main() -> None:
    dem = bearhead_like(size=33, seed=7)
    mesh_engine = SurfaceKNNEngine.from_dem(dem, density=4.0, seed=0)
    mesh = mesh_engine.mesh

    # Named groups at hand-picked spots (snapped to the surface).
    group_spots = {
        "north-ridge herd": (600.0, 2400.0),
        "creek family": (1500.0, 800.0),
        "east-slope pair": (2500.0, 1700.0),
        "plateau colony": (900.0, 1300.0),
    }
    names = list(group_spots)
    vertices = [mesh.nearest_vertex(p) for p in group_spots.values()]
    engine = SurfaceKNNEngine(
        mesh, objects=ObjectSet(mesh, vertices)
    )

    # A day of incoming sightings.
    rng = np.random.default_rng(3)
    bounds = mesh.xy_bounds()
    sightings = [
        tuple(rng.uniform(np.asarray(bounds.lo) + 200, np.asarray(bounds.hi) - 200))
        for _ in range(6)
    ]

    print("assigning sightings to groups by surface distance (k=1):")
    for i, (x, y) in enumerate(sightings):
        result = engine.query_xy(x, y, k=1, step_length=1)
        group = names[result.object_ids[0]]
        lb, ub = result.intervals[0]
        q = mesh.vertices[result.query_vertex]
        target = engine.objects.position_of(result.object_ids[0])
        euclid = float(np.linalg.norm(q - target))
        detour = ub / euclid if euclid > 0 else 1.0
        flag = "  <-- long detour, review manually" if detour > 1.25 else ""
        print(f"  sighting {i} at ({x:6.0f},{y:6.0f}): {group:16s} "
              f"surface {lb:6.0f}-{ub:6.0f} m vs map {euclid:6.0f} m "
              f"(x{detour:.2f}){flag}")

    # Migration speed: consecutive fixes of one collared animal,
    # 2 hours apart. Surface distance lower-bounds the travelled
    # distance, so distance/time lower-bounds the average speed.
    fix_a = mesh.nearest_vertex((400.0, 500.0))
    fix_b = mesh.nearest_vertex((2300.0, 2300.0))
    surface = kanai_suzuki_distance(mesh, fix_a, fix_b, tolerance=0.03)
    euclid = float(np.linalg.norm(mesh.vertices[fix_a] - mesh.vertices[fix_b]))
    hours = 2.0
    print(f"\ncollared animal moved {surface:.0f} m along the surface "
          f"({euclid:.0f} m on the map) in {hours:.0f} h")
    print(f"minimum average ground speed: {surface / hours / 1000:.2f} km/h")


if __name__ == "__main__":
    main()
