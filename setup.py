"""Legacy shim so ``pip install -e .`` works on environments whose
setuptools predates PEP 660 editable wheels (metadata lives in
pyproject.toml)."""

from setuptools import setup

setup()
