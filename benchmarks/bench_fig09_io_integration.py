"""Fig. 9 — effect of the integrated I/O region.

Benchmarks an sk-NN query with integration on vs off (s = 2, the
figure's configuration) and asserts the shape: integration never
costs pages, and its saving grows with k.
"""

import numpy as np
import pytest

from repro.bench.experiments import fig9
from repro.bench.workload import query_vertices


@pytest.mark.parametrize("integrate", [True, False], ids=["on", "off"])
def test_query_io_integration(benchmark, bh_engine, bench_query, integrate):
    benchmark(
        lambda: bh_engine.query(
            bench_query, 9, step_length=2, integrate_io=integrate
        )
    )


def test_fig9_shape(bh_engine):
    queries = query_vertices(bh_engine.mesh, 1, seed=9)
    pages = {}
    for k in (3, 12):
        for option in (True, False):
            result = bh_engine.query(
                queries[0], k, step_length=2, integrate_io=option
            )
            pages[(k, option)] = result.metrics.pages_accessed
    # Integration never accesses more pages...
    assert pages[(3, True)] <= pages[(3, False)]
    assert pages[(12, True)] <= pages[(12, False)]
    # ...and the relative saving grows with k (the figure's story).
    saving_small = 1 - pages[(3, True)] / max(pages[(3, False)], 1)
    saving_large = 1 - pages[(12, True)] / max(pages[(12, False)], 1)
    assert saving_large >= saving_small - 0.02
