"""Fig. 7 — exact (Chen-Han class) vs approximate (Kanai-Suzuki)
single-pair surface distance.

The paper's claim: the exact algorithm's cost explodes with mesh size
(quadratic window growth) while the selective-refinement
approximation stays flat, making the approximation the only viable
``ub`` oracle.  Timed here at two sizes; the growth-ratio assertion
encodes the figure's shape.
"""

import pytest

from repro.bench.workload import mesh_for, vertex_pairs
from repro.geodesic.exact import ExactGeodesic
from repro.geodesic.kanai_suzuki import kanai_suzuki_distance


def _pair(size):
    mesh = mesh_for("BH", size)
    a, b = vertex_pairs(mesh, 1, seed=3)[0]
    return mesh, a, b


@pytest.mark.parametrize("size", [13, 25])
def test_exact_geodesic(benchmark, size):
    mesh, a, b = _pair(size)
    benchmark(lambda: ExactGeodesic(mesh, a).distance_to(b))


@pytest.mark.parametrize("size", [13, 25])
def test_kanai_suzuki(benchmark, size):
    mesh, a, b = _pair(size)
    benchmark(lambda: kanai_suzuki_distance(mesh, a, b, tolerance=0.03))


def test_fig7_shape():
    """The exact algorithm's *work* (windows created) grows much
    faster than the approximation's (graph size), and the exact run
    is the slower of the two at the larger size.

    Work counters rather than raw timing keep this stable on noisy
    CI machines; the timed comparison lives in the benchmark cases
    above.
    """
    windows = {}
    for size in (13, 29):
        mesh, a, b = _pair(size)
        geo = ExactGeodesic(mesh, a)
        geo.distance_to(b)
        windows[size] = geo.windows_created
    vertex_growth = (29 * 29) / (13 * 13)
    window_growth = windows[29] / max(windows[13], 1)
    # Superlinear window growth — the quadratic blow-up of Fig. 7.
    assert window_growth > vertex_growth

    import time

    mesh, a, b = _pair(29)
    t0 = time.process_time()
    ExactGeodesic(mesh, a).distance_to(b)
    ch = time.process_time() - t0
    t0 = time.process_time()
    kanai_suzuki_distance(mesh, a, b)
    ea = time.process_time() - t0
    assert ch > ea
