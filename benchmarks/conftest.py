"""Shared benchmark fixtures.

The pytest-benchmark files under this directory time the *primitive*
operations behind each figure at CI-friendly sizes, and assert the
figure's qualitative shape.  The full paper-scale sweeps (used for
EXPERIMENTS.md) run via ``python -m repro.bench <figure>``.
"""

from __future__ import annotations

import pytest

from repro.bench.workload import build_engine, mesh_for, query_vertices


@pytest.fixture(scope="session")
def bh_engine():
    return build_engine("BH", size=25, density=6.0)


@pytest.fixture(scope="session")
def ep_engine():
    return build_engine("EP", size=25, density=6.0)


@pytest.fixture(scope="session")
def bench_query(bh_engine):
    return query_vertices(bh_engine.mesh, 1, seed=9)[0]


@pytest.fixture(scope="session")
def small_mesh():
    return mesh_for("BH", 17)
