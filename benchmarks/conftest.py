"""Shared benchmark fixtures.

The pytest-benchmark files under this directory time the *primitive*
operations behind each figure at CI-friendly sizes, and assert the
figure's qualitative shape.  The full paper-scale sweeps (used for
EXPERIMENTS.md) run via ``python -m repro.bench <figure>``.
"""

from __future__ import annotations

import pytest

from repro.bench.workload import query_vertices
from repro.testkit.generators import standard_engine, standard_mesh


@pytest.fixture(scope="session")
def bh_engine():
    return standard_engine("BH", 25, density=6.0, seed=1)


@pytest.fixture(scope="session")
def ep_engine():
    return standard_engine("EP", 25, density=6.0, seed=1)


@pytest.fixture(scope="session")
def bh_landmark_engine(bh_engine):
    """The BH engine with landmark tables attached.

    Requesting ``bh_engine`` first guarantees the base engine is in
    the session cache, so this fixture only adds the landmark index —
    ``standard_engine`` clones the cached engine rather than building
    DMTM/MSDN a second time (pinned by the ``landmark.build``
    regression test in tests/test_landmarks.py).
    """
    return standard_engine("BH", 25, density=6.0, seed=1, landmarks=8)


@pytest.fixture(scope="session")
def bench_query(bh_engine):
    return query_vertices(bh_engine.mesh, 1, seed=9)[0]


@pytest.fixture(scope="session")
def small_mesh():
    return standard_mesh("BH", 17)
