"""Fig. 11 — effect of object density (k fixed).

The paper: costs fall as density grows (a fixed k reaches nearer
neighbours, shrinking every search region).  Benchmarks a query at
low and high density and asserts that shape on pages accessed.
"""

import pytest

from repro.bench.workload import build_engine, query_vertices


@pytest.fixture(scope="module")
def density_engine():
    return build_engine("BH", size=25, density=12.0, seed=1)


@pytest.mark.parametrize("density", [3.0, 12.0])
def test_query_at_density(benchmark, density_engine, density):
    density_engine.set_objects(density=density, seed=1)
    qv = query_vertices(density_engine.mesh, 1, seed=9)[0]
    benchmark(lambda: density_engine.query(qv, 5, step_length=2))


def test_fig11_shape(density_engine):
    qv = query_vertices(density_engine.mesh, 1, seed=9)[0]
    pages = {}
    for density in (2.0, 12.0):
        density_engine.set_objects(density=density, seed=1)
        pages[density] = density_engine.query(
            qv, 5, step_length=2
        ).metrics.pages_accessed
    # Denser objects => nearer neighbours => smaller regions => fewer
    # pages. Allow a generous band for the small test terrain.
    assert pages[12.0] <= pages[2.0] * 1.2
