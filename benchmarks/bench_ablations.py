"""Ablation benches for the design choices DESIGN.md calls out:

* refined search region (descendant-MBR corridor) vs full ellipse;
* dummy-lower-bound corridor test on vs off.

Both are CPU optimisations: results must not change (asserted), only
cost.
"""

import pytest

from repro.bench.workload import query_vertices


@pytest.mark.parametrize("refined", [True, False], ids=["refined", "ellipse"])
def test_refined_search_region(benchmark, bh_engine, bench_query, refined):
    benchmark(
        lambda: bh_engine.query(
            bench_query, 9, step_length=1, use_refined_region=refined
        )
    )


@pytest.mark.parametrize("dummy", [True, False], ids=["dummy-lb", "full-lb"])
def test_dummy_lower_bound(benchmark, bh_engine, bench_query, dummy):
    benchmark(
        lambda: bh_engine.query(
            bench_query, 9, step_length=1, use_dummy_lb=dummy
        )
    )


def test_ablations_preserve_results(bh_engine):
    """The optimisations are pure performance knobs: every switch
    combination returns the same k-NN set."""
    qv = query_vertices(bh_engine.mesh, 2, seed=9)[1]
    reference = None
    for refined in (True, False):
        for dummy in (True, False):
            for integrate in (True, False):
                result = bh_engine.query(
                    qv,
                    6,
                    step_length=2,
                    use_refined_region=refined,
                    use_dummy_lb=dummy,
                    integrate_io=integrate,
                )
                ids = set(result.object_ids)
                if reference is None:
                    reference = ids
                else:
                    assert ids == reference
