"""Related-work baselines: network k-NN (INE / IER) vs surface k-NN.

The paper's §2.1 argues network k-NN techniques do not transfer to
surfaces: they rank by edge-network distance dN, which overestimates
the surface distance dS, so their answer sets can be wrong.  This
bench times both classic algorithms next to MR3 and *quantifies* the
answer-quality argument: how often the dN ranking disagrees with
the true dS ranking on rugged terrain.
"""

import pytest

from repro.bench.workload import query_vertices
from repro.core.baseline import exact_knn
from repro.core.network_baselines import ier_knn, ine_knn


def test_ine(benchmark, bh_engine, bench_query):
    benchmark(
        lambda: ine_knn(bh_engine.mesh, bh_engine.objects, bench_query, 9)
    )


def test_ier(benchmark, bh_engine, bench_query):
    benchmark(
        lambda: ier_knn(bh_engine.mesh, bh_engine.objects, bench_query, 9)
    )


def test_network_answers_can_differ_from_surface(bh_engine):
    """On rugged terrain the network ranking must (a) always
    over-estimate distances and (b) disagree with the surface ranking
    for at least some query — the paper's case for sk-NN."""
    queries = query_vertices(bh_engine.mesh, 4, seed=21)
    k = 5
    disagreements = 0
    for qv in queries:
        network = {o for o, _d in ine_knn(bh_engine.mesh, bh_engine.objects, qv, k)}
        surface_pairs = exact_knn(bh_engine.mesh, bh_engine.objects, qv, k)
        surface = {o for o, _d in surface_pairs}
        dn = dict(ine_knn(bh_engine.mesh, bh_engine.objects, qv, len(bh_engine.objects)))
        for obj, ds in surface_pairs:
            assert dn[obj] >= ds - 1e-9
        disagreements += network != surface
    # Rankings by dN and dS coincide for well-separated objects; the
    # distances themselves must differ measurably.
    qv = queries[0]
    dn_pairs = ine_knn(bh_engine.mesh, bh_engine.objects, qv, k)
    ds_pairs = dict(exact_knn(bh_engine.mesh, bh_engine.objects, qv, len(bh_engine.objects)))
    gaps = [dn / ds_pairs[obj] for obj, dn in dn_pairs if ds_pairs[obj] > 0]
    assert max(gaps) > 1.01  # dN strictly above dS somewhere
