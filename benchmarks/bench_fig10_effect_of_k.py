"""Fig. 10 — effect of k: MR3 (s = 1, 2, 3) vs the EA benchmark on
both datasets; total time, CPU time, pages accessed.

Benchmarks each series at one k and asserts the headline shape: MR3
beats EA on CPU, and s = 1 pays the most pages among the MR3
schedules (the paper's trade-off: extra cheap I/O buys the dominant
CPU reduction).
"""

import pytest

from repro.bench.workload import query_vertices


@pytest.mark.parametrize("step", [1, 2, 3])
def test_mr3_query(benchmark, bh_engine, bench_query, step):
    benchmark(lambda: bh_engine.query(bench_query, 9, step_length=step))


def test_ea_query(benchmark, bh_engine, bench_query):
    benchmark(lambda: bh_engine.query(bench_query, 9, method="ea"))


def _series(engine, qv, k):
    out = {}
    for label, kwargs in (
        ("s=1", dict(step_length=1)),
        ("s=2", dict(step_length=2)),
        ("s=3", dict(step_length=3)),
        ("EA", dict(method="ea")),
    ):
        res = engine.query(qv, k, **kwargs)
        out[label] = res.metrics
    return out


def test_fig10_shape_bh(bh_engine):
    qv = query_vertices(bh_engine.mesh, 1, seed=9)[0]
    m = _series(bh_engine, qv, 12)
    # MR3's best schedule beats the benchmark on CPU.
    best_mr3_cpu = min(m[s].cpu_seconds for s in ("s=1", "s=2", "s=3"))
    assert best_mr3_cpu < m["EA"].cpu_seconds
    # s=1 pays the most pages among MR3 schedules (paper: "it takes
    # most database page accesses").
    assert m["s=1"].pages_accessed >= m["s=3"].pages_accessed


def test_fig10_costs_grow_with_k(bh_engine):
    qv = query_vertices(bh_engine.mesh, 1, seed=9)[0]
    small = bh_engine.query(qv, 3, step_length=2).metrics
    large = bh_engine.query(qv, 15, step_length=2).metrics
    assert large.pages_accessed >= small.pages_accessed


def test_mr3_query_with_landmarks(benchmark, bh_landmark_engine, bench_query):
    benchmark(
        lambda: bh_landmark_engine.query(bench_query, 9, step_length=2)
    )


def test_landmarks_preserve_answers(bh_engine, bh_landmark_engine, bench_query):
    # The landmark engine is a clone of the session-cached base, so
    # this differential costs two queries, not two engine builds.
    off = bh_engine.query(bench_query, 9, step_length=2)
    on = bh_landmark_engine.query(bench_query, 9, step_length=2)
    assert sorted(off.object_ids) == sorted(on.object_ids)
    assert off.degraded == on.degraded
