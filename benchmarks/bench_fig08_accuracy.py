"""Fig. 8 — distance-range accuracy ε = lb/ub vs resolution.

Benchmarks the bound estimators at low and high resolution and
asserts the figure's shape: accuracy grows with both DMTM and SDN
resolution, and the SDN lower bound beats the Euclidean baseline at
full resolution.
"""

import numpy as np
import pytest

from repro.bench.experiments import fig8
from repro.bench.workload import build_engine, vertex_pairs
from repro.multires.dmtm import RESOLUTION_PATHNET


@pytest.fixture(scope="module")
def engine():
    return build_engine("BH", size=25, density=6.0, with_storage=False)


@pytest.fixture(scope="module")
def pair(engine):
    return vertex_pairs(engine.mesh, 1, seed=5)[0]


@pytest.mark.parametrize("res", [0.05, 0.5, RESOLUTION_PATHNET])
def test_upper_bound_estimation(benchmark, engine, pair, res):
    a, b = pair
    benchmark(lambda: engine.dmtm.upper_bound(a, b, res))


@pytest.mark.parametrize("res", [0.25, 1.0])
def test_lower_bound_estimation(benchmark, engine, pair, res):
    a, b = pair
    pa, pb = engine.mesh.vertices[a], engine.mesh.vertices[b]
    benchmark(lambda: engine.msdn.lower_bound(pa, pb, res))


def test_fig8_shape():
    out = fig8(quick=True, size=25, num_pairs=3)
    rows = out["rows"]
    # Accuracy rises along the DMTM axis for every SDN column...
    for col in ("euclid_lb", "sdn_25%", "sdn_100%"):
        series = [row[col] for row in rows]
        assert series == sorted(series)
    # ...and along the SDN axis within each row.
    for row in rows:
        assert row["euclid_lb"] <= row["sdn_25%"] + 1e-9
        assert row["sdn_25%"] <= row["sdn_100%"] + 1e-9
    # The full-resolution pair is the most accurate cell.
    assert rows[-1]["sdn_100%"] == max(
        row[c] for row in rows for c in row if c != "dmtm_pct"
    )
