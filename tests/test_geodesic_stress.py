"""Numerical stress tests for the exact geodesic: thin triangles,
extreme aspect ratios, cliffs."""

import numpy as np
import pytest

from repro.geodesic.exact import ExactGeodesic, exact_surface_distance
from repro.geodesic.pathnet import pathnet_distance
from repro.terrain.dem import DemGrid
from repro.terrain.mesh import TriangleMesh


def bracket_ok(mesh, a, b):
    ds = exact_surface_distance(mesh, a, b)
    de = float(np.linalg.norm(mesh.vertices[a] - mesh.vertices[b]))
    dn = pathnet_distance(mesh, a, b, steiner_per_edge=0)
    assert de - 1e-6 <= ds <= dn + 1e-6
    return ds


class TestThinTriangles:
    def test_anisotropic_grid(self):
        """Cells 50x stretched in y: very acute unfold angles."""
        rng = np.random.default_rng(3)
        heights = rng.uniform(0, 30.0, size=(6, 30))
        dem = DemGrid(heights, cell_size=10.0)
        # Stretch y by scaling vertex coordinates after triangulation.
        mesh = TriangleMesh.from_dem(dem)
        v = mesh.vertices.copy()
        v[:, 1] *= 50.0
        mesh = TriangleMesh(v, mesh.faces)
        bracket_ok(mesh, 0, mesh.num_vertices - 1)
        bracket_ok(mesh, 3, mesh.num_vertices - 7)

    def test_needle_fan(self):
        """A fan of needle triangles around a hub."""
        hub = np.array([[0.0, 0.0, 0.0]])
        angles = np.linspace(0.0, np.pi / 16, 12)
        rim = np.column_stack(
            [np.cos(angles) * 100.0, np.sin(angles) * 100.0, np.zeros(12)]
        )
        vertices = np.vstack([hub, rim])
        faces = np.array([[0, i, i + 1] for i in range(1, 12)])
        mesh = TriangleMesh(vertices, faces)
        # Planar fan: geodesic hub->rim = straight distance.
        d = exact_surface_distance(mesh, 0, 6)
        assert d == pytest.approx(100.0, rel=1e-9)
        # Rim to rim along the fan.
        d = exact_surface_distance(mesh, 1, 12)
        want = float(np.linalg.norm(vertices[1] - vertices[12]))
        assert d == pytest.approx(want, rel=1e-9)


class TestCliffs:
    def test_step_cliff(self):
        """A sheer 500 m cliff through the middle of the terrain."""
        heights = np.zeros((9, 9))
        heights[:, 5:] = 500.0
        mesh = TriangleMesh.from_dem(DemGrid(heights, cell_size=90.0))
        a = 4 * 9 + 0  # west side, mid row
        b = 4 * 9 + 8  # east side, mid row
        ds = bracket_ok(mesh, a, b)
        # Must climb the cliff: strictly longer than the flat crossing.
        flat = 8 * 90.0
        assert ds > flat * 1.05

    def test_spike(self):
        """A single huge spike between two points: the geodesic walks
        around it rather than over the top."""
        heights = np.zeros((9, 9))
        heights[4, 4] = 2000.0
        mesh = TriangleMesh.from_dem(DemGrid(heights, cell_size=90.0))
        a = 4 * 9 + 2
        b = 4 * 9 + 6
        ds = bracket_ok(mesh, a, b)
        over_the_top = 2 * np.hypot(2 * 90.0, 2000.0)
        assert ds < over_the_top  # found a route around

    def test_full_distances_finite_on_cliff(self):
        heights = np.zeros((7, 7))
        heights[:, 3] = 800.0
        mesh = TriangleMesh.from_dem(DemGrid(heights, cell_size=90.0))
        dist = ExactGeodesic(mesh, 0).distances()
        assert np.all(np.isfinite(dist))
