"""Property-based tests of the headline invariant:

    lb_r(a, b)  <=  dS(a, b)  <=  ub_r(a, b)      for every resolution r

with the exact geodesic as ground truth, on hypothesis-chosen vertex
pairs of a fixed rugged terrain.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geodesic.exact import ExactGeodesic
from repro.msdn.msdn import MSDN
from repro.multires.dmtm import DMTM, RESOLUTION_PATHNET
from repro.terrain.mesh import TriangleMesh
from repro.terrain.synthetic import fractal_dem

# Module-level singletons: hypothesis re-runs the test body many
# times; structures must be built once.
_MESH = TriangleMesh.from_dem(
    fractal_dem(size=13, relief=500.0, roughness=0.7, seed=21)
)
_DMTM = DMTM(_MESH)
_MSDN = MSDN(_MESH)
_GEODESICS: dict[int, ExactGeodesic] = {}


def _exact(a: int, b: int) -> float:
    geo = _GEODESICS.get(a)
    if geo is None:
        geo = ExactGeodesic(_MESH, a)
        _GEODESICS[a] = geo
    return geo.distance_to(b)


vertices = st.integers(min_value=0, max_value=_MESH.num_vertices - 1)


class TestBoundInvariant:
    @given(vertices, vertices, st.sampled_from([0.05, 0.25, 0.5, 1.0, RESOLUTION_PATHNET]))
    @settings(max_examples=60, deadline=None)
    def test_upper_bound_above_exact(self, a, b, res):
        if a == b:
            return
        ds = _exact(a, b)
        result = _DMTM.upper_bound(a, b, res)
        assert result is not None
        assert result.value >= ds - 1e-6

    @given(vertices, vertices, st.sampled_from([0.25, 0.5, 1.0]))
    @settings(max_examples=60, deadline=None)
    def test_lower_bound_below_exact(self, a, b, res):
        if a == b:
            return
        ds = _exact(a, b)
        pa, pb = _MESH.vertices[a], _MESH.vertices[b]
        lb = _MSDN.lower_bound(pa, pb, res).value
        assert lb <= ds + 1e-6
        assert lb >= float(np.linalg.norm(pa - pb)) - 1e-6

    @given(vertices, vertices)
    @settings(max_examples=40, deadline=None)
    def test_exact_symmetric(self, a, b):
        if a == b:
            return
        assert _exact(a, b) == pytest.approx(_exact(b, a), rel=1e-6)

    @given(vertices, vertices, vertices)
    @settings(max_examples=30, deadline=None)
    def test_exact_triangle_inequality(self, a, b, c):
        if len({a, b, c}) < 3:
            return
        assert _exact(a, c) <= _exact(a, b) + _exact(b, c) + 1e-6
