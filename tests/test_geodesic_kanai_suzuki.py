"""Unit tests for the Kanai-Suzuki approximate geodesic."""

import numpy as np
import pytest

from repro.errors import GeodesicError
from repro.geodesic.exact import exact_surface_distance
from repro.geodesic.kanai_suzuki import kanai_suzuki_distance
from repro.geodesic.pathnet import pathnet_distance


class TestKanaiSuzuki:
    def test_zero_for_same_vertex(self, rough_mesh):
        assert kanai_suzuki_distance(rough_mesh, 5, 5) == 0.0

    def test_upper_bound_of_exact(self, rough_mesh):
        rng = np.random.default_rng(8)
        for _ in range(4):
            a, b = rng.integers(0, rough_mesh.num_vertices, size=2)
            if a == b:
                continue
            a, b = int(a), int(b)
            ks = kanai_suzuki_distance(rough_mesh, a, b)
            ds = exact_surface_distance(rough_mesh, a, b)
            assert ks >= ds - 1e-9

    def test_close_to_exact(self, rough_mesh):
        a, b = 4, rough_mesh.num_vertices - 6
        ks = kanai_suzuki_distance(rough_mesh, a, b, tolerance=0.01, max_steiner=8)
        ds = exact_surface_distance(rough_mesh, a, b)
        assert ks <= ds * 1.06  # selective refinement within a few %

    def test_better_than_edge_network(self, rough_mesh):
        a, b = 7, rough_mesh.num_vertices - 9
        ks = kanai_suzuki_distance(rough_mesh, a, b)
        dn = pathnet_distance(rough_mesh, a, b, steiner_per_edge=0)
        assert ks <= dn + 1e-9

    def test_flat_matches_euclid(self, flat_mesh):
        a, b = 0, flat_mesh.num_vertices - 1
        euclid = float(np.linalg.norm(flat_mesh.vertices[a] - flat_mesh.vertices[b]))
        ks = kanai_suzuki_distance(flat_mesh, a, b, tolerance=0.005, max_steiner=16)
        assert ks == pytest.approx(euclid, rel=0.02)

    def test_bad_tolerance(self, flat_mesh):
        with pytest.raises(GeodesicError):
            kanai_suzuki_distance(flat_mesh, 0, 1, tolerance=0.0)

    def test_tighter_tolerance_never_worse(self, rough_mesh):
        a, b = 11, rough_mesh.num_vertices - 13
        loose = kanai_suzuki_distance(rough_mesh, a, b, tolerance=0.2)
        tight = kanai_suzuki_distance(rough_mesh, a, b, tolerance=0.005, max_steiner=8)
        assert tight <= loose + 1e-9
