"""Property-based tests for the core invariants of the reproduction:
distance bounds, classification soundness, index equivalence.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import Candidate, classify_candidates
from repro.spatial.bplustree import BPlusTree
from repro.spatial.rtree import RTree


@st.composite
def interval_candidates(draw):
    n = draw(st.integers(min_value=1, max_value=25))
    cands = []
    for i in range(n):
        lb = draw(st.floats(min_value=0.0, max_value=100.0, allow_nan=False))
        width = draw(st.floats(min_value=0.0, max_value=50.0, allow_nan=False))
        c = Candidate(object_id=i, vertex=i, position=(0.0, 0.0, 0.0))
        c.interval.refine_lb(lb)
        c.interval.refine_ub(lb + width)
        cands.append(c)
    return cands


class TestClassificationProperties:
    @given(interval_candidates(), st.integers(min_value=1, max_value=10))
    @settings(max_examples=120)
    def test_partition_is_complete(self, cands, k):
        out = classify_candidates(cands, k)
        assert len(out.winners) + len(out.active) + len(out.rejected) == len(cands)

    @given(interval_candidates(), st.integers(min_value=1, max_value=10))
    @settings(max_examples=120)
    def test_rejection_and_winner_rules_sound(self, cands, k):
        """Rejection: at least k candidates cannot be farther than a
        rejected one (their ub <= its lb).  Winner: at most k
        candidates could possibly be nearer (their lb <= its ub)."""
        out = classify_candidates(cands, k)
        if len(cands) <= k:
            assert out.done
            return
        for c in out.rejected:
            cannot_be_farther = sum(
                1 for o in cands if o is not c and o.ub <= c.lb + 1e-12
            )
            assert cannot_be_farther >= k
        if not out.done:
            for c in out.winners:
                could_be_nearer = sum(1 for o in cands if o.lb <= c.ub)
                assert could_be_nearer <= k

    @given(interval_candidates(), st.integers(min_value=1, max_value=10))
    @settings(max_examples=120)
    def test_done_criterion_valid(self, cands, k):
        """When done, the k-th winner ub never exceeds any
        non-winner's lb — the paper's ub(p_k) <= lb(p_{k+1}) rule."""
        out = classify_candidates(cands, k)
        if out.done and out.rejected:
            kth_ub = max(c.ub for c in out.winners)
            assert all(c.lb >= kth_ub - 1e-9 for c in out.rejected)


points_2d = st.lists(
    st.tuples(
        st.floats(min_value=-100, max_value=100, allow_nan=False, width=32),
        st.floats(min_value=-100, max_value=100, allow_nan=False, width=32),
    ),
    min_size=1,
    max_size=60,
)


class TestIndexEquivalence:
    @given(points_2d, st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_rtree_knn_equals_brute(self, pts, k):
        tree = RTree(max_entries=4)
        for i, p in enumerate(pts):
            tree.insert_point(p, i)
        q = (0.0, 0.0)
        got = [i for _d, i in tree.knn(q, k)]
        brute = sorted(
            range(len(pts)),
            key=lambda i: (np.hypot(pts[i][0], pts[i][1]), i),
        )[:k]
        got_d = [float(np.hypot(*pts[i])) for i in got]
        want_d = [float(np.hypot(*pts[i])) for i in brute]
        assert got_d == pytest.approx(want_d)

    @given(
        st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=200),
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=80)
    def test_bplustree_range_equals_sorted_filter(self, keys, lo, hi):
        lo, hi = min(lo, hi), max(lo, hi)
        tree = BPlusTree(order=6)
        for i, key in enumerate(keys):
            tree.insert(key, i)
        got = sorted(v for _k, v in tree.range_scan(lo, hi))
        want = sorted(i for i, key in enumerate(keys) if lo <= key <= hi)
        assert got == want
