"""Unit tests for roughness statistics."""

import pytest

from repro.errors import TerrainError
from repro.terrain.roughness import (
    RoughnessReport,
    roughness_report,
    slope_statistics,
    surface_to_euclid_ratio,
)


class TestSurfaceEuclidRatio:
    def test_flat_is_one(self, flat_mesh):
        # Edge-network paths on a flat grid are at worst the grid
        # detour (~8 % for diagonal travel), never below 1.
        ratio = surface_to_euclid_ratio(flat_mesh, num_pairs=10, seed=0)
        assert 1.0 <= ratio <= 1.15

    def test_rough_exceeds_flat(self, flat_mesh, rough_mesh):
        flat = surface_to_euclid_ratio(flat_mesh, num_pairs=10, seed=0)
        rough = surface_to_euclid_ratio(rough_mesh, num_pairs=10, seed=0)
        assert rough > flat

    def test_bad_pairs(self, flat_mesh):
        with pytest.raises(TerrainError):
            surface_to_euclid_ratio(flat_mesh, num_pairs=0)


class TestSlopes:
    def test_flat_zero(self, flat_mesh):
        mean, peak = slope_statistics(flat_mesh)
        assert mean == pytest.approx(0.0, abs=1e-9)
        assert peak == pytest.approx(0.0, abs=1e-9)

    def test_rough_positive(self, rough_mesh):
        mean, peak = slope_statistics(rough_mesh)
        assert 0 < mean < peak < 90


class TestReport:
    def test_fields(self, rough_mesh):
        report = roughness_report(rough_mesh, num_pairs=8)
        assert isinstance(report, RoughnessReport)
        assert report.relief > 0
        assert report.extra_distance_percent == pytest.approx(
            (report.surface_euclid_ratio - 1.0) * 100.0
        )
