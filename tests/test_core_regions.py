"""Unit tests for I/O region integration."""

import pytest

from repro.core.regions import integrate_io_regions
from repro.errors import QueryError
from repro.geometry.primitives import BoundingBox


def box(lo, hi):
    return BoundingBox(tuple(lo), tuple(hi))


class TestIntegration:
    def test_disjoint_untouched(self):
        regions = [box((0, 0), (1, 1)), box((5, 5), (6, 6))]
        merged, assign = integrate_io_regions(regions)
        assert len(merged) == 2
        assert assign == [0, 1]

    def test_heavy_overlap_merged(self):
        regions = [box((0, 0), (10, 10)), box((0.5, 0.5), (10.5, 10.5))]
        merged, assign = integrate_io_regions(regions, threshold=0.8)
        assert len(merged) == 1
        assert assign == [0, 0]
        assert merged[0].contains_box(regions[0])
        assert merged[0].contains_box(regions[1])

    def test_light_overlap_not_merged(self):
        regions = [box((0, 0), (10, 10)), box((9, 9), (19, 19))]
        merged, _assign = integrate_io_regions(regions, threshold=0.8)
        assert len(merged) == 2

    def test_contained_region_merged(self):
        regions = [box((0, 0), (10, 10)), box((2, 2), (4, 4))]
        merged, assign = integrate_io_regions(regions)
        assert len(merged) == 1
        assert assign == [0, 0]

    def test_cascade_merge(self):
        """Chained overlaps collapse to one region through the
        fixed-point pass."""
        regions = [
            box((0, 0), (10, 10)),
            box((1, 1), (11, 11)),
            box((2, 2), (12, 12)),
        ]
        merged, assign = integrate_io_regions(regions, threshold=0.7)
        assert len(merged) == 1
        assert assign == [0, 0, 0]

    def test_threshold_above_one_disables(self):
        regions = [box((0, 0), (10, 10)), box((0, 0), (10, 10))]
        merged, _assign = integrate_io_regions(regions, threshold=1.5)
        assert len(merged) == 2

    def test_identical_regions_merge(self):
        regions = [box((0, 0), (10, 10))] * 3
        merged, assign = integrate_io_regions(regions)
        assert len(merged) == 1
        assert assign == [0, 0, 0]

    def test_bad_threshold(self):
        with pytest.raises(QueryError):
            integrate_io_regions([], threshold=0.0)

    def test_empty_input(self):
        merged, assign = integrate_io_regions([])
        assert merged == [] and assign == []

    def test_assignment_covers_inputs(self):
        regions = [
            box((i, 0), (i + 5.0, 5.0)) for i in range(0, 20, 2)
        ]
        merged, assign = integrate_io_regions(regions, threshold=0.6)
        assert len(assign) == len(regions)
        for i, gid in enumerate(assign):
            assert merged[gid].contains_box(regions[i])
