"""Unit tests for DEM grids."""

import numpy as np
import pytest

from repro.errors import TerrainError
from repro.terrain.dem import DemGrid


def ramp(rows=4, cols=5, cell=10.0):
    heights = np.add.outer(np.arange(rows), np.zeros(cols)) * 5.0
    return DemGrid(heights, cell)


class TestConstruction:
    def test_rejects_1d(self):
        with pytest.raises(TerrainError):
            DemGrid(np.arange(5.0), 1.0)

    def test_rejects_tiny(self):
        with pytest.raises(TerrainError):
            DemGrid(np.zeros((1, 5)), 1.0)

    def test_rejects_nan(self):
        h = np.zeros((3, 3))
        h[1, 1] = np.nan
        with pytest.raises(TerrainError):
            DemGrid(h, 1.0)

    def test_rejects_bad_cell(self):
        with pytest.raises(TerrainError):
            DemGrid(np.zeros((3, 3)), 0.0)


class TestGeometry:
    def test_extent(self):
        dem = ramp(4, 5, 10.0)
        assert dem.width == pytest.approx(40.0)
        assert dem.height == pytest.approx(30.0)

    def test_area_km2(self):
        dem = DemGrid(np.zeros((11, 11)), 100.0)  # 1 km x 1 km
        assert dem.area_km2 == pytest.approx(1.0)

    def test_sample_xy(self):
        dem = DemGrid(np.zeros((3, 3)), 2.0, origin=(10.0, 20.0))
        assert dem.sample_xy(1, 2) == (14.0, 22.0)


class TestInterpolation:
    def test_exact_at_samples(self):
        dem = ramp()
        assert dem.elevation_at(0.0, 10.0) == pytest.approx(5.0)

    def test_bilinear_midpoint(self):
        dem = DemGrid(np.array([[0.0, 0.0], [10.0, 10.0]]), 1.0)
        assert dem.elevation_at(0.5, 0.5) == pytest.approx(5.0)

    def test_out_of_range_rejected(self):
        dem = ramp()
        with pytest.raises(TerrainError):
            dem.elevation_at(-1.0, 0.0)


class TestResampling:
    def test_downsample(self):
        dem = DemGrid(np.arange(25.0).reshape(5, 5), 10.0)
        small = dem.downsample(2)
        assert small.rows == 3
        assert small.cell_size == 20.0
        assert small.heights[1, 1] == dem.heights[2, 2]

    def test_downsample_bad_step(self):
        with pytest.raises(TerrainError):
            ramp().downsample(0)


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        dem = DemGrid(np.arange(12.0).reshape(3, 4), 30.0, origin=(5.0, 7.0))
        path = tmp_path / "grid.asc"
        dem.save(path)
        back = DemGrid.load(path)
        assert back.rows == dem.rows
        assert back.cols == dem.cols
        assert back.cell_size == dem.cell_size
        assert back.origin == dem.origin
        np.testing.assert_allclose(back.heights, dem.heights)

    def test_missing_header_rejected(self):
        with pytest.raises(TerrainError):
            DemGrid.from_ascii("nrows 2\n1 2\n3 4\n")

    def test_wrong_count_rejected(self):
        text = "ncols 2\nnrows 2\ncellsize 1\n1 2 3\n"
        with pytest.raises(TerrainError):
            DemGrid.from_ascii(text)
