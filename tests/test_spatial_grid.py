"""Unit tests for the uniform grid index (vs brute force)."""

import numpy as np
import pytest

from repro.errors import IndexError_
from repro.geometry.primitives import BoundingBox
from repro.spatial.grid import UniformGrid


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(3)
    return rng.uniform(-50.0, 50.0, size=(300, 2))


@pytest.fixture(scope="module")
def grid(points):
    return UniformGrid(points)


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(IndexError_):
            UniformGrid([])

    def test_payload_mismatch_rejected(self):
        with pytest.raises(IndexError_):
            UniformGrid([(0, 0), (1, 1)], payloads=[1])

    def test_custom_payloads(self):
        g = UniformGrid([(0, 0), (10, 10)], payloads=["a", "b"])
        assert set(g.circle_query((0, 0), 1.0)) == {"a"}


class TestQueries:
    def test_range_matches_brute(self, grid, points):
        region = BoundingBox((-10.0, -20.0), (15.0, 5.0))
        got = sorted(grid.range_query(region))
        want = sorted(i for i, p in enumerate(points) if region.contains_point(p))
        assert got == want

    @pytest.mark.parametrize("radius", [0.5, 7.0, 30.0])
    def test_circle_matches_brute(self, grid, points, radius):
        center = (3.0, -4.0)
        got = sorted(grid.circle_query(center, radius))
        want = sorted(
            i
            for i, p in enumerate(points)
            if np.hypot(p[0] - center[0], p[1] - center[1]) <= radius
        )
        assert got == want

    @pytest.mark.parametrize("k", [1, 5, 17])
    def test_knn_matches_brute(self, grid, points, k):
        q = (-20.0, 30.0)
        got = [i for _d, i in grid.knn(q, k)]
        want = [
            i
            for _d, i in sorted(
                (np.hypot(p[0] - q[0], p[1] - q[1]), i)
                for i, p in enumerate(points)
            )[:k]
        ]
        assert got == want

    def test_knn_far_query(self, grid, points):
        """Query far outside the populated extent still terminates."""
        got = grid.knn((500.0, 500.0), 3)
        assert len(got) == 3

    def test_bad_k(self, grid):
        with pytest.raises(IndexError_):
            grid.knn((0, 0), 0)

    def test_negative_radius(self, grid):
        with pytest.raises(IndexError_):
            grid.circle_query((0, 0), -0.1)
