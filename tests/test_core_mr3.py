"""Step-level tests for the MR3 query processor (paper §4.1)."""

import numpy as np
import pytest

from repro.core.baseline import exact_knn
from repro.core.mr3 import MR3QueryProcessor, QueryMetrics, QueryResult
from repro.core.ranking import RankerOptions
from repro.core.schedule import ResolutionSchedule
from repro.errors import QueryError


@pytest.fixture(scope="module")
def processor(request):
    engine = request.getfixturevalue("small_engine")
    return MR3QueryProcessor(
        engine.mesh,
        engine.dmtm,
        engine.msdn,
        engine.objects,
        ResolutionSchedule.preset(1),
        options=RankerOptions(),
        stats=engine.stats,
    )


class TestStepGuarantees:
    def test_step2_radius_covers_true_kth(self, processor, small_engine):
        """The step-3 radius ub(q, b) must be >= the true k-th surface
        distance — otherwise step 3 could prune a true neighbour."""
        mesh = small_engine.mesh
        k = 4
        qv = mesh.nearest_vertex(mesh.xy_bounds().center)
        c1 = small_engine.objects.knn_2d(mesh.vertices[qv][:2], k)
        cands = processor.ranker.make_candidates(c1, small_engine.objects)
        out = processor.ranker.rank(qv, cands, k, tighten_kth=0.8)
        truth = exact_knn(mesh, small_engine.objects, qv, k)
        assert out.kth_ub >= truth[-1][1] - 1e-6

    def test_result_within_radius(self, processor, small_engine):
        mesh = small_engine.mesh
        qv = mesh.nearest_vertex(mesh.xy_bounds().center)
        res = processor.query(qv, 3)
        q_xy = mesh.vertices[qv][:2]
        for obj in res.object_ids:
            p = small_engine.objects.position_of(obj)
            # Winners' xy distance can never exceed their surface ub,
            # which step 4 certified against the step-2 radius.
            lb, ub = dict(zip(res.object_ids, res.intervals))[obj]
            assert float(np.linalg.norm(p[:2] - q_xy)) <= ub + 1e-6

    def test_metrics_iterations(self, processor, small_engine):
        qv = small_engine.snap(700.0, 900.0)
        res = processor.query(qv, 3)
        assert 1 <= res.metrics.iterations_filter <= 6
        assert 1 <= res.metrics.iterations_ranking <= 6
        assert res.metrics.candidates_examined >= 3

    def test_validation(self, processor, small_engine):
        with pytest.raises(QueryError):
            processor.query(0, 0)
        with pytest.raises(QueryError):
            processor.query(-1, 1)
        with pytest.raises(QueryError):
            processor.query(0, len(small_engine.objects) + 1)


class TestResultTypes:
    def test_query_result_validates(self):
        with pytest.raises(QueryError):
            QueryResult(
                query_vertex=0, k=2, object_ids=[1, 2], intervals=[(0.0, 1.0)]
            )

    def test_metrics_total(self):
        m = QueryMetrics(cpu_seconds=1.0, io_seconds=0.5)
        assert m.total_seconds == pytest.approx(1.5)


class TestEaSchedule:
    def test_ea_runs_two_levels_max(self, small_engine):
        qv = small_engine.snap(800.0, 800.0)
        res = small_engine.query(qv, 3, method="ea")
        assert res.metrics.iterations_ranking <= 2
        assert res.method == "ea"

    def test_ea_agrees_with_mr3(self, small_engine):
        qv = small_engine.snap(800.0, 800.0)
        ea = small_engine.query(qv, 3, method="ea")
        mr3 = small_engine.query(qv, 3, step_length=2)
        assert set(ea.object_ids) == set(mr3.object_ids)
