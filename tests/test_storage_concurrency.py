"""Threaded hammer tests for the storage layer.

The bug class under test: ``PageManager.read`` used to probe the
buffer and bump hit/miss counters without a lock, so two threads
could interleave probe and insert and the accounting invariant

    logical_reads == buffer hits + physical_reads

drifted.  These tests hammer one manager (and one shared
:class:`BufferPool`) from many threads and assert the totals stay
exact.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.errors import StorageError
from repro.storage.pages import BufferPool, PageManager, shared_buffer_pool
from repro.storage.stats import IOStatistics, ThreadLocalIOStatistics

THREADS = 8
READS_PER_THREAD = 400


def _hammer(manager: PageManager, page_ids, reads: int, seed: int):
    """Deterministic per-thread read pattern (no RNG shared state)."""
    n = len(page_ids)
    for i in range(reads):
        manager.read(page_ids[(seed * 7919 + i * 31) % n])


class TestPageManagerHammer:
    def test_hit_miss_accounting_is_atomic(self):
        manager = PageManager(page_size=256, buffer_pages=4)
        page_ids = [
            manager.allocate(bytes([i]) * 32, page_class="dmtm")
            for i in range(16)
        ]
        barrier = threading.Barrier(THREADS)

        def worker(seed: int):
            barrier.wait()
            _hammer(manager, page_ids, READS_PER_THREAD, seed)

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            list(pool.map(worker, range(THREADS)))

        stats = manager.stats
        total = THREADS * READS_PER_THREAD
        assert stats.logical_reads == total
        # Buffer (4) < pages (16): both hits and misses must occur,
        # and every page was cold at least once.
        assert len(page_ids) <= stats.physical_reads < total
        hits = stats.logical_reads - stats.physical_reads
        assert hits > 0
        assert stats.logical_by_class == {"dmtm": total}
        assert sum(stats.physical_by_class.values()) == stats.physical_reads

    def test_reads_return_correct_bytes_under_contention(self):
        manager = PageManager(page_size=256, buffer_pages=2)
        expected = {
            manager.allocate(bytes([i]) * 64): bytes([i]) * 64
            for i in range(8)
        }
        errors: list = []

        def worker(seed: int):
            try:
                ids = list(expected)
                for i in range(200):
                    pid = ids[(seed + i) % len(ids)]
                    if manager.read(pid) != expected[pid]:
                        errors.append(pid)
            except Exception as exc:  # pragma: no cover - fail loudly
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(s,)) for s in range(THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []

    def test_thread_local_router_sums_across_threads(self):
        router = ThreadLocalIOStatistics()
        manager = PageManager(page_size=256, buffer_pages=4, stats=router)
        page_ids = [manager.allocate(b"x" * 16) for i in range(8)]
        barrier = threading.Barrier(4)

        def worker(seed: int):
            barrier.wait()
            _hammer(manager, page_ids, 100, seed)

        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(worker, range(4)))
        assert router.logical_reads == 400
        assert router.aggregate().logical_reads == 400


class TestSharedBufferPool:
    def test_owners_do_not_alias_page_ids(self):
        """Two managers over one pool: same page ids, different bytes,
        concurrent readers — nobody reads the other's data."""
        pool = BufferPool(capacity=32)
        a = PageManager(page_size=128, buffer_pages=8, buffer=pool)
        b = PageManager(page_size=128, buffer_pages=8, buffer=pool)
        ids_a = [a.allocate(b"A" * 32) for _ in range(6)]
        ids_b = [b.allocate(b"B" * 32) for _ in range(6)]
        assert ids_a == ids_b  # same numeric ids on purpose
        mismatches: list = []

        def worker(manager, want):
            for _ in range(150):
                for pid in ids_a:
                    if manager.read(pid) != want:
                        mismatches.append(pid)

        threads = [
            threading.Thread(target=worker, args=(a, b"A" * 32)),
            threading.Thread(target=worker, args=(b, b"B" * 32)),
            threading.Thread(target=worker, args=(a, b"A" * 32)),
            threading.Thread(target=worker, args=(b, b"B" * 32)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert mismatches == []

    def test_capacity_respected_under_threads(self):
        pool = BufferPool(capacity=5)
        manager = PageManager(page_size=128, buffer_pages=8, buffer=pool)
        page_ids = [manager.allocate(b"p" * 16) for _ in range(20)]

        def worker(seed: int):
            _hammer(manager, page_ids, 300, seed)

        with ThreadPoolExecutor(max_workers=6) as pool_exec:
            list(pool_exec.map(worker, range(6)))
        assert len(pool) <= 5

    def test_drop_is_per_owner(self):
        pool = BufferPool(capacity=16)
        a = PageManager(page_size=128, buffer_pages=4, buffer=pool)
        b = PageManager(page_size=128, buffer_pages=4, buffer=pool)
        pa = a.allocate(b"A" * 8)
        pb = b.allocate(b"B" * 8)
        a.read(pa)
        b.read(pb)
        assert len(pool) == 2
        a.drop_buffer()
        assert len(pool) == 1
        # b's page survived a's drop: the next read is still a hit.
        before = b.stats.physical_reads
        b.read(pb)
        assert b.stats.physical_reads == before

    def test_shared_pool_singleton_and_validation(self):
        assert shared_buffer_pool() is shared_buffer_pool()
        with pytest.raises(StorageError):
            BufferPool(capacity=0)

    def test_separate_stats_objects_still_consistent(self):
        """Managers sharing a pool but not stats keep exact counts."""
        pool = BufferPool(capacity=64)
        sa, sb = IOStatistics(), IOStatistics()
        a = PageManager(page_size=128, buffer_pages=4, stats=sa, buffer=pool)
        b = PageManager(page_size=128, buffer_pages=4, stats=sb, buffer=pool)
        ids_a = [a.allocate(b"a" * 8) for _ in range(4)]
        ids_b = [b.allocate(b"b" * 8) for _ in range(4)]

        def worker(manager, ids, seed):
            _hammer(manager, ids, 200, seed)

        threads = [
            threading.Thread(target=worker, args=(a, ids_a, 0)),
            threading.Thread(target=worker, args=(b, ids_b, 1)),
            threading.Thread(target=worker, args=(a, ids_a, 2)),
            threading.Thread(target=worker, args=(b, ids_b, 3)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sa.logical_reads == 400
        assert sb.logical_reads == 400
        # Every page is resident after warmup: misses happened only
        # on first touch per page.
        assert sa.physical_reads >= 4
        assert sb.physical_reads >= 4
