"""Differential suite: MR3 against brute-force exact-geodesic k-NN.

Every (terrain, density, k, query) point in the grid runs both the
MR3 pipeline and :func:`repro.core.baseline.exact_knn` over the same
object set, then checks

* the returned id set matches the exact answer (exactly on flat
  terrain; with the paper's 3 % surface-distance tie tolerance on
  rough terrain, where Kanai-Suzuki polishing is allowed that error);
* every reported interval brackets the true surface distance:
  ``lb - eps <= dS <= ub + eps``;
* reported intervals are ordered and winners come back ascending.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.baseline import exact_knn
from repro.core.engine import SurfaceKNNEngine
from repro.testkit.generators import standard_engine

EPS = 1e-6
TIE_TOLERANCE = 1.03  # the paper's 3 % approximation allowance


@pytest.fixture(scope="module")
def rough_engine() -> SurfaceKNNEngine:
    """A dedicated engine (``fresh=True`` keeps it module-owned: the
    density sweep calls ``set_objects``, which must not leak into the
    shared engine cache)."""
    return standard_engine("rough", 17, density=12.0, seed=7, fresh=True)


@pytest.fixture(scope="module")
def flat_engine() -> SurfaceKNNEngine:
    return standard_engine("flat", 9, density=25.0, seed=11)


def _query_vertices(mesh) -> list[int]:
    """Deterministic spread of query positions: center, corner area,
    mid-edge area."""
    bounds = mesh.xy_bounds()
    cx, cy = bounds.center
    lox, loy = bounds.lo[0], bounds.lo[1]
    hix, hiy = bounds.hi[0], bounds.hi[1]
    picks = [
        (cx, cy),
        (lox + 0.15 * (hix - lox), loy + 0.2 * (hiy - loy)),
        (hix - 0.1 * (hix - lox), cy),
    ]
    return sorted({mesh.nearest_vertex(p) for p in picks})


def _truth(engine, qv) -> list[tuple[int, float]]:
    return exact_knn(engine.mesh, engine.objects, qv, len(engine.objects))


def _check_one(engine, qv, k, step_length, *, exact_sets: bool) -> None:
    truth = _truth(engine, qv)
    truth_dist = dict(truth)
    want = {obj for obj, _d in truth[:k]}
    kth = truth[k - 1][1]

    result = engine.query(qv, k, step_length=step_length)
    got = set(result.object_ids)
    assert len(result.object_ids) == k
    assert len(got) == k, "duplicate neighbours returned"

    if exact_sets or got != want:
        if exact_sets:
            assert got == want, (
                f"qv={qv} k={k} s={step_length}: {sorted(got)} != "
                f"{sorted(want)}"
            )
        else:
            # Rough terrain: extras must be 3 %-ties of the true k-th.
            for obj in got - want:
                assert truth_dist[obj] <= kth * TIE_TOLERANCE + EPS, (
                    f"qv={qv} k={k}: object {obj} at dS="
                    f"{truth_dist[obj]:.3f} is no tie of kth={kth:.3f}"
                )

    # Interval soundness against the exact surface distance.
    prev_ub = -np.inf
    for obj, (lb, ub) in zip(result.object_ids, result.intervals):
        ds = truth_dist[obj]
        assert lb <= ds + EPS + 1e-9 * ds, (obj, lb, ds)
        assert ub >= ds - EPS - 1e-9 * ds, (obj, ub, ds)
        assert lb <= ub + EPS
        assert ub >= prev_ub - EPS, "winners not ascending by ub"
        prev_ub = ub


class TestFlatTerrain:
    """On a flat grid dS == dE, so MR3 must match exactly."""

    @pytest.mark.parametrize("k", [1, 3, 5])
    @pytest.mark.parametrize("step_length", [1, 2])
    def test_matches_exact(self, flat_engine, k, step_length):
        for qv in _query_vertices(flat_engine.mesh):
            _check_one(
                flat_engine, qv, k, step_length, exact_sets=True
            )

    def test_flat_distances_are_euclidean(self, flat_engine):
        mesh = flat_engine.mesh
        qv = _query_vertices(mesh)[0]
        for obj, ds in _truth(flat_engine, qv)[:5]:
            p = flat_engine.objects.position_of(obj)
            de = float(np.linalg.norm(mesh.vertices[qv] - p))
            assert ds == pytest.approx(de, rel=1e-6, abs=1e-6)


class TestRoughTerrain:
    """The full grid on rugged terrain: densities x k x positions."""

    @pytest.mark.parametrize("density,seed", [(8.0, 2), (12.0, 7)])
    @pytest.mark.parametrize("k", [1, 3, 6])
    def test_grid(self, rough_engine, density, seed, k):
        rough_engine.set_objects(density=density, seed=seed)
        try:
            for qv in _query_vertices(rough_engine.mesh):
                _check_one(rough_engine, qv, k, 2, exact_sets=False)
        finally:
            rough_engine.set_objects(density=12.0, seed=7)

    @pytest.mark.parametrize("step_length", [1, 3])
    def test_step_lengths_agree_with_exact(self, rough_engine, step_length):
        qv = _query_vertices(rough_engine.mesh)[0]
        _check_one(rough_engine, qv, 4, step_length, exact_sets=False)

    def test_ea_matches_exact_too(self, rough_engine):
        """The EA benchmark path gives the same guarantees."""
        qv = _query_vertices(rough_engine.mesh)[1]
        truth = _truth(rough_engine, qv)
        truth_dist = dict(truth)
        k = 3
        kth = truth[k - 1][1]
        result = rough_engine.query(qv, k, method="ea")
        want = {obj for obj, _d in truth[:k]}
        for obj in set(result.object_ids) - want:
            assert truth_dist[obj] <= kth * TIE_TOLERANCE + EPS
