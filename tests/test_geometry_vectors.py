"""Unit tests for repro.geometry.vectors."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry.vectors import cross2d, dist, dist2d, norm, normalize


class TestNorm:
    def test_unit_axes(self):
        assert norm([1.0, 0.0, 0.0]) == 1.0
        assert norm([0.0, 2.0]) == 2.0

    def test_pythagorean(self):
        assert norm([3.0, 4.0]) == pytest.approx(5.0)

    def test_batch(self):
        out = norm(np.array([[3.0, 4.0], [0.0, 1.0]]))
        assert out.shape == (2,)
        assert out[0] == pytest.approx(5.0)
        assert out[1] == pytest.approx(1.0)

    def test_zero(self):
        assert norm([0.0, 0.0, 0.0]) == 0.0


class TestDist:
    def test_3d(self):
        assert dist([0, 0, 0], [1, 2, 2]) == pytest.approx(3.0)

    def test_symmetry(self):
        a, b = [1.5, -2.0, 0.3], [0.0, 4.0, 9.0]
        assert dist(a, b) == pytest.approx(dist(b, a))

    def test_identity(self):
        assert dist([7, 8, 9], [7, 8, 9]) == 0.0


class TestDist2d:
    def test_ignores_z(self):
        assert dist2d([0, 0, 100.0], [3, 4, -50.0]) == pytest.approx(5.0)

    def test_2d_inputs(self):
        assert dist2d([0, 0], [1, 0]) == pytest.approx(1.0)

    def test_never_exceeds_3d(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            a, b = rng.normal(size=3), rng.normal(size=3)
            assert dist2d(a, b) <= dist(a, b) + 1e-12


class TestNormalize:
    def test_length_one(self):
        v = normalize([3.0, 4.0])
        assert norm(v) == pytest.approx(1.0)

    def test_direction_preserved(self):
        v = normalize([0.0, 5.0])
        assert v[1] == pytest.approx(1.0)

    def test_zero_raises(self):
        with pytest.raises(GeometryError):
            normalize([0.0, 0.0])


class TestCross2d:
    def test_right_handed(self):
        assert cross2d([1, 0], [0, 1]) == 1.0
        assert cross2d([0, 1], [1, 0]) == -1.0

    def test_parallel_is_zero(self):
        assert cross2d([2, 3], [4, 6]) == pytest.approx(0.0)

    def test_antisymmetry(self):
        assert cross2d([1.2, 3.4], [5.6, 7.8]) == pytest.approx(
            -cross2d([5.6, 7.8], [1.2, 3.4])
        )
