"""Batch fault isolation: failed queries become error records, the
pool never crashes, and the circuit breaker stops admission when the
disk is persistently broken."""

from __future__ import annotations

import pytest

from repro.core.batch import (
    BatchError,
    BatchQuery,
    BatchQueryExecutor,
    CircuitBreaker,
)
from repro.core.budget import QueryBudget
from repro.core.engine import SurfaceKNNEngine
from repro.errors import QueryError
from repro.storage.faults import FaultInjector, RetryPolicy


def faulted_engine(
    mesh, degraded_mode: bool = True, **fault_kwargs
) -> SurfaceKNNEngine:
    return SurfaceKNNEngine(
        mesh, density=10.0, seed=3,
        degraded_mode=degraded_mode,
        fault_injector=FaultInjector(**fault_kwargs),
        retry_policy=RetryPolicy(max_attempts=2),
    )


class TestCircuitBreaker:
    def test_threshold_validated(self):
        with pytest.raises(QueryError):
            CircuitBreaker(threshold=0)

    def test_opens_after_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.allow()
        breaker.record_failure()
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.allow()


class TestBatchIsolation:
    def test_bad_query_isolated_not_fatal(self, small_engine):
        executor = BatchQueryExecutor(small_engine, workers=4)
        report = executor.run([(3, 2), (40, 999), (50, 2)])
        assert report.results[0] is not None
        assert report.results[1] is None
        assert report.results[2] is not None
        (error,) = report.errors
        assert isinstance(error, BatchError)
        assert error.index == 1
        assert error.kind == "QueryError"
        assert not error.skipped
        summary = report.summary()
        assert summary["failed"] == 1 and summary["skipped"] == 0

    def test_query_errors_do_not_trip_the_breaker(self, small_engine):
        executor = BatchQueryExecutor(
            small_engine, workers=1, circuit_threshold=2
        )
        report = executor.run([(1, 999), (2, 999), (3, 999), (4, 2)])
        # Three QueryErrors in a row, but the circuit only watches
        # StorageError — the healthy query still runs.
        assert report.results[3] is not None
        assert report.summary()["skipped"] == 0

    def test_faulted_batch_completes_with_zero_crashes(self, bh_mesh):
        engine = SurfaceKNNEngine(
            bh_mesh, density=10.0, seed=3,
            fault_injector=FaultInjector(
                seed=7, transient_rate=0.03, corrupt_rate=0.02
            ),
            retry_policy=RetryPolicy(max_attempts=8),
        )
        executor = BatchQueryExecutor(engine, workers=8)
        specs = [(v, 3) for v in range(100)]
        report = executor.run(specs)  # must not raise
        stats = engine.pages.fault_stats
        injector = engine.pages.fault_injector
        assert len(report.results) == 100
        # Every failure is an error record, never an exception.
        for slot, result in enumerate(report.results):
            if result is None:
                assert any(e.index == slot for e in report.errors)
        # Counters reconcile with the injector's ground-truth log.
        assert stats.transient_faults_total + stats.corruptions_total == (
            injector.injected_total
        )
        assert stats.retries_total == (
            injector.injected_total - stats.reads_failed_total
        )
        assert injector.injected_total > 0

    def test_breaker_stops_admission_on_dead_disk(self, bh_mesh):
        # degraded_mode=False restores fail-stop queries: storage
        # faults crash the query and feed the breaker (with it on,
        # queries degrade instead and the circuit never opens).
        engine = faulted_engine(
            bh_mesh, degraded_mode=False, seed=1, transient_rate=1.0
        )
        executor = BatchQueryExecutor(
            engine, workers=2, circuit_threshold=3
        )
        report = executor.run([(v, 2) for v in range(12)])
        summary = report.summary()
        assert summary["failed"] >= 3
        assert summary["skipped"] > 0
        assert executor.circuit_breaker.trips >= 1
        skipped = [e for e in report.errors if e.skipped]
        assert all(e.kind == "CircuitOpen" for e in skipped)

    def test_batch_wide_budget_and_per_spec_override(self, small_engine):
        executor = BatchQueryExecutor(
            small_engine, workers=2, budget=QueryBudget(max_pages=1)
        )
        report = executor.run(
            [
                BatchQuery(vertex=40, k=3),
                BatchQuery(vertex=40, k=3, budget=QueryBudget()),
            ]
        )
        default_budget, overridden = report.results
        assert default_budget.degraded
        assert not overridden.degraded
        assert report.summary()["degraded"] == 1

    def test_clean_batch_unchanged_by_isolation_machinery(self, small_engine):
        specs = [(3, 2), (40, 3), (50, 2)]
        sequential = [small_engine.query(v, k) for v, k in specs]
        report = BatchQueryExecutor(small_engine, workers=4).run(specs)
        assert not report.errors
        for got, want in zip(report.results, sequential):
            assert got.object_ids == want.object_ids
            assert got.intervals == want.intervals
            assert got.metrics.logical_reads == want.metrics.logical_reads

    def test_ok_results_filters_failures(self, small_engine):
        report = BatchQueryExecutor(small_engine).run([(3, 2), (4, 999)])
        assert len(report.results) == 2
        assert len(report.ok_results) == 1
