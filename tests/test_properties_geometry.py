"""Property-based tests (hypothesis) for the geometry kernel."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.polyline import Polyline, simplify_with_enclosure
from repro.geometry.primitives import BoundingBox, Segment
from repro.geometry.triangle import unfold_triangle

coords = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, width=32)


@st.composite
def boxes(draw, dim=2):
    lo = [draw(coords) for _ in range(dim)]
    hi = [l + abs(draw(coords)) for l in lo]
    return BoundingBox(tuple(lo), tuple(hi))


@st.composite
def points(draw, dim=2):
    return tuple(draw(coords) for _ in range(dim))


class TestBoxProperties:
    @given(boxes(), boxes())
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains_box(a)
        assert u.contains_box(b)

    @given(boxes(), boxes())
    def test_intersects_iff_zero_distance(self, a, b):
        if a.intersects(b):
            assert a.min_dist_box(b) == 0.0
        else:
            assert a.min_dist_box(b) > 0.0

    @given(boxes(), boxes())
    def test_min_dist_symmetric(self, a, b):
        assert a.min_dist_box(b) == b.min_dist_box(a)

    @given(boxes(), points())
    def test_point_dist_zero_iff_inside(self, box, p):
        d = box.min_dist_point(p)
        assert (d == 0.0) == box.contains_point(p)

    @given(boxes(), boxes(), points())
    def test_union_point_dist_never_larger(self, a, b, p):
        """Growing a box can only reduce its distance to any point —
        the inequality MSDN's enclosure monotonicity relies on."""
        assert a.union(b).min_dist_point(p) <= a.min_dist_point(p) + 1e-6

    @given(boxes(), boxes())
    def test_overlap_fraction_bounds(self, a, b):
        f = a.overlap_fraction(b)
        assert 0.0 <= f <= 1.0 + 1e-9


class TestSegmentProperties:
    @given(points(3), points(3), points(3))
    def test_point_dist_bounded_by_endpoints(self, a, b, p):
        seg = Segment(a, b)
        d = seg.dist_point(p)
        to_a = math.dist(p, a)
        to_b = math.dist(p, b)
        assert d <= min(to_a, to_b) + 1e-6

    @given(points(3), points(3))
    def test_mbr_contains_endpoints(self, a, b):
        m = Segment(a, b).mbr()
        assert m.contains_point(a)
        assert m.contains_point(b)


class TestUnfoldProperties:
    @given(
        st.floats(min_value=0.5, max_value=100.0),
        st.floats(min_value=0.1, max_value=200.0),
        st.floats(min_value=0.1, max_value=200.0),
    )
    def test_distances_preserved(self, edge, d_a, d_b):
        # Enforce the triangle inequality to keep inputs geometric.
        if d_a + d_b <= edge or edge + d_a <= d_b or edge + d_b <= d_a:
            return
        apex = unfold_triangle((0.0, 0.0), (edge, 0.0), d_a, d_b)
        np.testing.assert_allclose(np.linalg.norm(apex), d_a, rtol=1e-7)
        np.testing.assert_allclose(
            np.linalg.norm(apex - np.array([edge, 0.0])), d_b, rtol=1e-7
        )


@st.composite
def polylines(draw):
    n = draw(st.integers(min_value=3, max_value=40))
    pts = [
        (
            float(i),
            draw(st.floats(min_value=-50, max_value=50, allow_nan=False)),
            draw(st.floats(min_value=-50, max_value=50, allow_nan=False)),
        )
        for i in range(n)
    ]
    return Polyline(np.asarray(pts))


class TestSimplifyProperties:
    @given(polylines(), st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=60)
    def test_enclosure_always_holds(self, line, resolution):
        chunks = simplify_with_enclosure(line, resolution)
        for chunk in chunks:
            for seg in range(chunk.first, chunk.last + 1):
                assert chunk.mbr.contains_box(line.segment_mbr(seg))

    @given(polylines(), st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=60)
    def test_partition_complete(self, line, resolution):
        chunks = simplify_with_enclosure(line, resolution)
        covered = [s for c in chunks for s in range(c.first, c.last + 1)]
        assert covered == list(range(line.num_segments))
