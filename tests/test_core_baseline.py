"""Unit tests for the exact k-NN baseline."""

import numpy as np
import pytest

from repro.core.baseline import exact_knn
from repro.core.objects import ObjectSet
from repro.errors import QueryError
from repro.geodesic.exact import ExactGeodesic


@pytest.fixture(scope="module")
def setup(request):
    mesh = request.getfixturevalue("bh_mesh")
    objects = ObjectSet.uniform(mesh, density=12.0, seed=3)
    return mesh, objects


class TestExactKnn:
    def test_matches_full_scan(self, setup):
        mesh, objects = setup
        qv = mesh.nearest_vertex(mesh.xy_bounds().center)
        geo = ExactGeodesic(mesh, qv)
        full = sorted(
            ((geo.distance_to(objects.vertex_of(i)), i) for i in range(len(objects)))
        )
        got = exact_knn(mesh, objects, qv, 5)
        assert [obj for obj, _d in got] == [i for _d, i in full[:5]]
        for (obj, d), (want_d, _i) in zip(got, full[:5]):
            assert d == pytest.approx(want_d)

    def test_ascending(self, setup):
        mesh, objects = setup
        got = exact_knn(mesh, objects, 7, 6)
        dists = [d for _obj, d in got]
        assert dists == sorted(dists)

    def test_k_equals_all(self, setup):
        mesh, objects = setup
        got = exact_knn(mesh, objects, 7, len(objects))
        assert len(got) == len(objects)

    def test_bad_k(self, setup):
        mesh, objects = setup
        with pytest.raises(QueryError):
            exact_knn(mesh, objects, 0, 0)
        with pytest.raises(QueryError):
            exact_knn(mesh, objects, 0, len(objects) + 1)

    def test_early_termination_still_correct(self, setup):
        """The Euclidean early-exit must not change results even for
        k=1 queries at a corner of the terrain."""
        mesh, objects = setup
        got = exact_knn(mesh, objects, 0, 1)
        geo = ExactGeodesic(mesh, 0)
        best = min(
            ((geo.distance_to(objects.vertex_of(i)), i) for i in range(len(objects)))
        )
        assert got[0][0] == best[1]
        assert got[0][1] == pytest.approx(best[0])
