"""Landmark (ALT) lower bounds: selection determinism, admissibility,
batch/scalar agreement, cache persistence, engine integration and the
``landmark_admissible`` oracle's injected-bug self-check.

The admissibility properties all reduce to the triangle inequality of
the *surface* metric — the tables must hold exact ``dS`` rows, never
network distances (which over-estimate ``dS``); see the module
docstring of :mod:`repro.geodesic.landmarks`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batch import BoundCache
from repro.errors import GeodesicError
from repro.geodesic import ExactGeodesic, LandmarkIndex, pathnet_distance
from repro.geodesic.landmarks import mesh_fingerprint
from repro.testkit import (
    MUTATORS,
    ORACLES,
    generate_scenario,
    load_case,
    replay_case,
    run_scenario,
    scenario_fails,
    shrink_scenario,
    standard_engine,
    standard_mesh,
    write_case,
)

CHEAP_SEED = 42  # fractal[9], 15 objects, one query — runs in <1s


@pytest.fixture(scope="module")
def mesh():
    return standard_mesh("BH", 13)


@pytest.fixture(scope="module")
def index(mesh):
    return LandmarkIndex.build(mesh, count=5, seed=2)


class TestSelection:
    def test_farthest_point_selection_is_deterministic(self, mesh):
        a = LandmarkIndex.build(mesh, count=5, seed=2)
        b = LandmarkIndex.build(mesh, count=5, seed=2)
        assert a.landmarks == b.landmarks
        assert np.array_equal(a.tables.surface, b.tables.surface)
        assert np.array_equal(a.tables.graph, b.tables.graph)

    def test_landmarks_are_distinct_vertices(self, index, mesh):
        assert len(set(index.landmarks)) == index.count == 5
        assert all(0 <= v < mesh.num_vertices for v in index.landmarks)

    def test_count_clamped_to_vertex_count(self, mesh):
        idx = LandmarkIndex.build(mesh, count=10**6, seed=0)
        assert idx.count == mesh.num_vertices

    def test_count_below_one_rejected(self, mesh):
        with pytest.raises(GeodesicError, match="count"):
            LandmarkIndex.build(mesh, count=0)

    def test_tables_are_read_only(self, index):
        with pytest.raises(ValueError):
            index.tables.surface[0, 0] = 1.0


class TestBounds:
    def test_self_bound_is_zero(self, index, mesh):
        for v in range(0, mesh.num_vertices, 17):
            assert index.lower_bound(v, v) == 0.0

    def test_bounds_are_symmetric(self, index, mesh):
        rng = np.random.default_rng(4)
        for _ in range(25):
            u, v = rng.integers(0, mesh.num_vertices, size=2)
            assert index.lower_bound(int(u), int(v)) == pytest.approx(
                index.lower_bound(int(v), int(u))
            )

    def test_batch_matches_scalar_elementwise(self, index, mesh):
        rng = np.random.default_rng(5)
        sources = rng.integers(0, mesh.num_vertices, size=30)
        targets = rng.integers(0, mesh.num_vertices, size=30)
        batch = index.lower_bound_batch(sources, targets)
        assert batch.shape == (30,)
        for s, t, got in zip(sources, targets, batch):
            assert got == pytest.approx(index.lower_bound(int(s), int(t)))

    def test_batch_broadcasts_scalar_source(self, index, mesh):
        targets = np.arange(0, mesh.num_vertices, 11)
        batch = index.lower_bound_batch(3, targets)
        assert batch.shape == targets.shape
        for t, got in zip(targets, batch):
            assert got == pytest.approx(index.lower_bound(3, int(t)))

    def test_bounds_admissible_vs_exact_geodesics(self, index, mesh):
        rng = np.random.default_rng(6)
        sources = sorted({int(v) for v in rng.integers(0, mesh.num_vertices, 4)})
        targets = [int(v) for v in rng.integers(0, mesh.num_vertices, 12)]
        for s in sources:
            exact = ExactGeodesic(mesh, s).distances()
            for t in targets:
                ds = exact[t]
                if not np.isfinite(ds):
                    continue
                lb = index.lower_bound(s, t)
                assert lb <= ds + 1e-6 + 1e-9 * ds

    def test_anchored_bounds_nonnegative_and_admissible(self, index, mesh):
        q = 7
        exact = ExactGeodesic(mesh, q).distances()
        targets = np.arange(0, mesh.num_vertices, 13)
        bounds = index.anchored_lower_bounds([(q, 0.0)], targets)
        assert (bounds >= 0.0).all()
        for t, lb in zip(targets, bounds):
            ds = exact[int(t)]
            if np.isfinite(ds):
                assert lb <= ds + 1e-6 + 1e-9 * ds

    def test_kth_upper_bound_overestimates_true_kth(self, index, mesh):
        q = 7
        exact = ExactGeodesic(mesh, q).distances()
        targets = [3, 40, 77, 101, 150]
        k = 3
        seed = index.kth_upper_bound([(q, 0.0)], targets, k)
        true_kth = sorted(exact[t] for t in targets)[k - 1]
        assert seed >= true_kth - 1e-9

    def test_kth_upper_bound_infinite_when_too_few(self, index):
        assert index.kth_upper_bound([(0, 0.0)], [1], k=5) == float("inf")


class TestCachePersistence:
    def test_tables_round_trip_exactly_through_bound_cache(
        self, mesh, obs_context
    ):
        cache = BoundCache()
        a = LandmarkIndex.build(mesh, count=4, seed=1, cache=cache)
        b = LandmarkIndex.build(mesh, count=4, seed=1, cache=cache)
        # The hit serves the *same* tables object — bit-exact rows.
        assert b.tables is a.tables
        assert b.landmarks == a.landmarks
        assert np.array_equal(b.tables.surface, a.tables.surface)
        assert np.array_equal(b.tables.graph, a.tables.graph)
        snap = obs_context.registry.collect()
        assert snap["landmark.build"]["value"] == 1
        assert snap["landmark.cache_hits"]["value"] == 1

    def test_cache_key_distinguishes_count_seed_and_mesh(self, mesh):
        cache = BoundCache()
        LandmarkIndex.build(mesh, count=4, seed=1, cache=cache)
        other_seed = LandmarkIndex.build(mesh, count=4, seed=2, cache=cache)
        other_count = LandmarkIndex.build(mesh, count=3, seed=1, cache=cache)
        assert other_seed.landmarks != () and other_count.count == 3
        other_mesh = standard_mesh("EP", 13)
        assert mesh_fingerprint(other_mesh) != mesh_fingerprint(mesh)

    def test_parallel_build_matches_serial(self, mesh):
        serial = LandmarkIndex.build(mesh, count=3, seed=0)
        parallel = LandmarkIndex.build(mesh, count=3, seed=0, parallel=True)
        assert parallel.landmarks == serial.landmarks
        assert np.array_equal(parallel.tables.surface, serial.tables.surface)


class TestEngineIntegration:
    def test_standard_engine_reuses_cached_base_engine(self, obs_context):
        # Unique key so no other module's cached engine interferes.
        base = standard_engine("BH", 13, density=9.5, seed=6)
        with_lm = standard_engine("BH", 13, density=9.5, seed=6, landmarks=3)
        # Attaching landmarks must clone, not rebuild: shared DMTM/MSDN.
        assert with_lm.dmtm is base.dmtm
        assert with_lm.msdn is base.msdn
        assert with_lm.objects is base.objects
        assert with_lm.landmarks is not None
        snap = obs_context.registry.collect()
        assert snap["landmark.build"]["value"] == 1
        # The landmark variant is itself cached.
        again = standard_engine("BH", 13, density=9.5, seed=6, landmarks=3)
        assert again is with_lm
        snap = obs_context.registry.collect()
        assert snap["landmark.build"]["value"] == 1

    def test_queries_identical_with_and_without_landmarks(self):
        base = standard_engine("BH", 13, density=9.5, seed=6)
        with_lm = base.with_landmarks(3)
        for q in (4, 60, 111):
            a = base.query(q, 3, step_length=2)
            b = with_lm.query(q, 3, step_length=2)
            # The contract pins the *set* (order is by current ubs and
            # may shift when pruning changes polish targets).
            assert sorted(a.object_ids) == sorted(b.object_ids)
            assert a.degraded == b.degraded
            # Landmark lower bounds may only tighten the intervals.
            lbs_a = dict(zip(a.object_ids, (lb for lb, _ in a.intervals)))
            lbs_b = dict(zip(b.object_ids, (lb for lb, _ in b.intervals)))
            for obj, lb_a in lbs_a.items():
                assert lbs_b[obj] >= lb_a - 1e-9

    def test_pathnet_distance_unchanged_by_alt_heuristic(self, mesh, index):
        for s, t in ((0, 120), (9, 87), (45, 46)):
            plain = pathnet_distance(mesh, s, t)
            guided = pathnet_distance(mesh, s, t, landmarks=index)
            assert guided == pytest.approx(plain, abs=1e-9)

    def test_int_landmarks_param_builds_index(self):
        engine = standard_engine("BH", 13, density=9.5, seed=6)
        clone = engine.with_landmarks(2)
        assert clone.landmarks.count == 2
        detached = clone.with_landmarks(None)
        assert detached.landmarks is None


class TestOracleAndMutator:
    def test_oracle_registered(self):
        assert "landmark_admissible" in ORACLES
        oracle = ORACLES["landmark_admissible"]
        assert "landmarks" in oracle.module

    def test_mutator_registered(self):
        assert "weaken_landmark_bound" in MUTATORS

    def test_landmarks_mode_passes_clean(self):
        report = run_scenario(
            generate_scenario(CHEAP_SEED), modes={"landmarks"}
        )
        assert report.ok, [str(f) for f in report.findings]
        assert "landmarks" in report.modes_run

    def test_injected_inadmissible_bound_caught_and_shrunk(self, tmp_path):
        scenario = generate_scenario(CHEAP_SEED)

        def fails(candidate):
            return scenario_fails(
                candidate,
                oracle_names=["landmark_admissible"],
                mutator="weaken_landmark_bound",
                modes={"baseline"},
            )

        assert fails(scenario), "injected inadmissible bound not caught"
        outcome = shrink_scenario(scenario, fails, max_attempts=40)
        small = outcome.scenario
        assert outcome.steps >= 1
        assert small.objects.count <= scenario.objects.count
        assert fails(small), "shrunk scenario no longer fails"

        path = write_case(
            small, tmp_path, mutator="weaken_landmark_bound",
            oracles=["landmark_admissible"],
        )
        case = load_case(path)
        assert case["mutator"] == "weaken_landmark_bound"
        report = replay_case(path)
        assert not report.ok
        assert any(
            f.violation.oracle == "landmark_admissible"
            for f in report.findings
        )
