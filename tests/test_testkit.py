"""Tests for the testkit itself: generators, oracles, differential
runner, shrinker and CLI.

The headline acceptance test (``TestBugIsCaughtAndShrunk``) injects a
known bug into the query surface, requires an oracle to catch it, and
requires the shrinker to minimize the failing scenario to a tiny
replayable case — the end-to-end contract the nightly fuzz job relies
on.
"""

from __future__ import annotations

import json
from types import SimpleNamespace

import pytest

from repro.errors import QueryError
from repro.testkit import (
    MUTATORS,
    ORACLES,
    ObjectSpec,
    OracleContext,
    Scenario,
    build_engine,
    build_mesh,
    build_objects,
    generate_scenario,
    load_case,
    replay_case,
    resolve_queries,
    run_oracles,
    run_scenario,
    scenario_fails,
    shrink_scenario,
    standard_engine,
    standard_mesh,
    with_tiles,
    write_case,
)
from repro.testkit.cli import main
from repro.testkit.oracles import (
    check_kth_interval_valid,
    check_topk_agreement,
)

CHEAP_SEED = 42  # fractal[9], 15 objects, one query — runs in <1s


class TestScenarioRoundTrip:
    @pytest.mark.parametrize("seed", [0, 7, 42, 999])
    def test_json_round_trip_is_identity(self, seed):
        scenario = generate_scenario(seed)
        again = Scenario.from_json(scenario.to_json())
        assert again == scenario

    def test_json_is_canonical(self):
        scenario = generate_scenario(3)
        assert scenario.to_json() == Scenario.from_json(
            scenario.to_json()
        ).to_json()

    def test_unknown_schema_rejected(self):
        data = generate_scenario(1).to_dict()
        data["schema"] = "repro.testkit.scenario/v999"
        with pytest.raises(QueryError, match="schema"):
            Scenario.from_dict(data)

    def test_generation_is_deterministic(self):
        assert generate_scenario(5) == generate_scenario(5)
        assert generate_scenario(5) != generate_scenario(6)


class TestBuilders:
    def test_standard_mesh_is_cached(self):
        assert standard_mesh("BH", 13) is standard_mesh("BH", 13)

    def test_standard_engine_fresh_bypasses_cache(self):
        a = standard_engine("BH", 13, density=8.0, seed=3)
        b = standard_engine("BH", 13, density=8.0, seed=3)
        c = standard_engine("BH", 13, density=8.0, seed=3, fresh=True)
        assert a is b
        assert c is not a
        assert c.mesh is a.mesh  # the mesh stays shared

    def test_unknown_names_rejected(self):
        with pytest.raises(QueryError, match="standard mesh"):
            standard_mesh("alps")

    def test_objects_deterministic_and_distinct(self):
        scenario = generate_scenario(CHEAP_SEED)
        mesh = build_mesh(scenario.terrain)
        a = build_objects(mesh, scenario.objects)
        b = build_objects(mesh, scenario.objects)
        assert list(a.vertex_ids) == list(b.vertex_ids)
        assert len(set(a.vertex_ids)) == len(a)
        assert len(a) == scenario.objects.count

    def test_queries_resolve_with_clamped_k(self):
        scenario = generate_scenario(CHEAP_SEED)
        mesh = build_mesh(scenario.terrain)
        objects = build_objects(mesh, scenario.objects)
        for query in resolve_queries(scenario, mesh, objects):
            assert 0 <= query.vertex < mesh.num_vertices
            assert 1 <= query.k <= len(objects)

    def test_faulted_engine_requires_fault_spec(self):
        scenario = generate_scenario(CHEAP_SEED)
        assert scenario.fault is None
        with pytest.raises(QueryError, match="fault"):
            build_engine(scenario, with_faults=True)


class TestOracleCatalog:
    def test_every_oracle_documents_its_provenance(self):
        for oracle in ORACLES.values():
            assert oracle.paper_section
            assert oracle.module
            assert oracle.description

    def test_subset_selection(self):
        result = SimpleNamespace(
            object_ids=[0],
            intervals=[(1.0, 2.0)],
            degraded=False,
            converged=True,
            max_error=0.0,
            filter_trace=[],
            ranking_trace=[],
            metrics=SimpleNamespace(pages_accessed=0, logical_reads=0),
        )
        ctx = OracleContext(result=result, truth=[(0, 1.5)], k=1)
        assert run_oracles(ctx, names=["result_shape"]) == []

    def test_topk_agreement_skips_unconverged(self):
        """A query that exhausted its schedule reports best-known
        top-k; the 3 % set guarantee only applies when converged."""
        result = SimpleNamespace(
            object_ids=[5],
            intervals=[(1.0, 9.0)],
            degraded=False,
            converged=False,
        )
        ctx = OracleContext(result=result, truth=[(3, 1.0), (5, 8.0)], k=1)
        assert check_topk_agreement(ctx) == []
        converged = SimpleNamespace(
            object_ids=[5],
            intervals=[(1.0, 9.0)],
            degraded=False,
            converged=True,
        )
        assert check_topk_agreement(
            OracleContext(result=converged, truth=[(3, 1.0), (5, 8.0)], k=1)
        ) != []

    def test_kth_interval_valid_flags_inversion(self):
        event = SimpleNamespace(
            phase="ranking", level=0, kth_lb=5.0, kth_ub=1.0, done=False
        )
        result = SimpleNamespace(filter_trace=[], ranking_trace=[event])
        ctx = OracleContext(result=result, truth=[], k=1)
        assert any("inverted" in v for v in check_kth_interval_valid(ctx))


class TestDifferentialRunner:
    def test_clean_scenario_passes_everything(self):
        report = run_scenario(generate_scenario(CHEAP_SEED))
        assert report.ok
        assert "baseline" in report.modes_run
        assert "kernel" in report.modes_run
        assert "batch" in report.modes_run
        assert report.queries_run >= 1

    def test_modes_filter(self):
        report = run_scenario(
            generate_scenario(CHEAP_SEED), modes={"baseline"}
        )
        assert report.ok
        assert report.modes_run == ["baseline"]

    @pytest.mark.parametrize("mutator", sorted(MUTATORS))
    def test_known_bugs_are_caught(self, mutator):
        report = run_scenario(
            generate_scenario(CHEAP_SEED),
            mutator=mutator,
            modes={"baseline"},
        )
        assert not report.ok, f"mutator {mutator!r} escaped every oracle"


class TestBugIsCaughtAndShrunk:
    """The acceptance-criteria demonstration: an intentionally injected
    bound bug is caught by an oracle and shrunk to a tiny repro case."""

    def test_injected_bug_shrinks_to_small_replayable_case(self, tmp_path):
        scenario = generate_scenario(CHEAP_SEED)

        def fails(candidate):
            return scenario_fails(
                candidate, mutator="shrink_ub", modes={"baseline"}
            )

        assert fails(scenario), "injected bug not caught"
        outcome = shrink_scenario(scenario, fails, max_attempts=40)
        small = outcome.scenario
        assert outcome.steps >= 1
        assert small.objects.count <= 25
        assert small.objects.count <= scenario.objects.count
        assert small.terrain.size <= scenario.terrain.size
        assert fails(small), "shrunk scenario no longer fails"

        path = write_case(
            small, tmp_path, mutator="shrink_ub",
            oracles=["interval_sandwich", "result_shape"],
        )
        case = load_case(path)
        assert case["scenario"] == small
        assert case["mutator"] == "shrink_ub"
        report = replay_case(path)
        assert not report.ok
        assert any(
            f.violation.oracle == "interval_sandwich"
            for f in report.findings
        )

    def test_shrink_requires_failing_input(self):
        scenario = generate_scenario(CHEAP_SEED)
        with pytest.raises(QueryError, match="failing"):
            shrink_scenario(scenario, lambda s: False)

    def test_case_files_have_no_timestamps(self, tmp_path):
        path = write_case(generate_scenario(1), tmp_path)
        payload = json.loads(path.read_text())
        assert set(payload) == {
            "schema", "scenario", "mutator", "oracles", "findings"
        }

    def test_non_case_json_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"schema": "something/else"}))
        with pytest.raises(QueryError, match="not a testkit case"):
            load_case(path)


class TestCLI:
    def test_list_oracles(self, capsys):
        assert main(["--list-oracles"]) == 0
        out = capsys.readouterr().out
        for name in ORACLES:
            assert name in out

    def test_smoke_seed_passes(self, tmp_path, capsys):
        code = main(
            [
                "--seed-range", f"{CHEAP_SEED}:{CHEAP_SEED + 1}",
                "--cases-dir", str(tmp_path),
            ]
        )
        assert code == 0
        assert "1/1 scenarios passed" in capsys.readouterr().out
        assert not list(tmp_path.glob("*.json"))

    def test_expect_fail_self_check(self, tmp_path, capsys):
        code = main(
            [
                "--seed-range", f"{CHEAP_SEED}:{CHEAP_SEED + 1}",
                "--inject", "drop_worst",
                "--expect-fail",
                "--cases-dir", str(tmp_path),
            ]
        )
        assert code == 0
        assert "caught the injected bug" in capsys.readouterr().out

    def test_failure_writes_case_and_exits_nonzero(self, tmp_path, capsys):
        code = main(
            [
                "--seed-range", f"{CHEAP_SEED}:{CHEAP_SEED + 1}",
                "--inject", "drop_worst",
                "--cases-dir", str(tmp_path),
                "--max-shrink-attempts", "10",
            ]
        )
        assert code == 1
        cases = list(tmp_path.glob("*.json"))
        assert len(cases) == 1
        replay = main(["--replay", str(cases[0])])
        assert replay == 1

    def test_bad_seed_range_rejected(self):
        with pytest.raises(SystemExit):
            main(["--seed-range", "10"])
        with pytest.raises(SystemExit):
            main(["--seed-range", "5:5"])


TILED_SEED = 15  # bearhead[9], 6 objects, 1 query, tiles=2x2 — cheap


class TestShardAxis:
    """The ``shards`` differential axis: spec round trips, border
    object pressure, the ``shard_consistency`` oracle and the
    tile-collapse shrinker step."""

    def test_tiled_scenarios_round_trip(self):
        for seed in (TILED_SEED, 21):  # 2x2 and 3x3 draws
            scenario = generate_scenario(seed)
            assert scenario.terrain.tiles > 1
            assert Scenario.from_json(scenario.to_json()) == scenario

    def test_legacy_dicts_default_to_untiled(self):
        data = generate_scenario(TILED_SEED).to_dict()
        del data["terrain"]["tiles"]
        del data["objects"]["border_tiles"]
        scenario = Scenario.from_dict(data)
        assert scenario.terrain.tiles == 1
        assert scenario.objects.border_tiles == 0

    def test_border_tiles_cluster_objects_on_cut_lines(self):
        from dataclasses import replace as dc_replace

        from repro.shard import tile_cuts
        from repro.testkit import TerrainSpec

        terrain = TerrainSpec(kind="fractal", size=13, seed=3)
        mesh = build_mesh(terrain)
        spec = ObjectSpec(pattern="uniform", count=16, seed=7)
        bordered = dc_replace(spec, border_tiles=2)

        def near_cut(objects):
            cell = terrain.cell_size
            cut = tile_cuts(terrain.size, 2)[1]
            hits = 0
            for vid in objects.vertex_ids:
                r, c = divmod(vid, terrain.size)
                if abs(r - cut) <= 1 or abs(c - cut) <= 1:
                    hits += 1
            return hits

        plain = build_objects(mesh, spec)
        pressed = build_objects(mesh, bordered)
        assert near_cut(pressed) > near_cut(plain)
        again = build_objects(mesh, bordered)
        assert list(pressed.vertex_ids) == list(again.vertex_ids)

    def test_with_tiles_collapses_border_pressure_too(self):
        scenario = generate_scenario(21)  # tiles=3, border_tiles=3
        assert scenario.objects.border_tiles == 3
        down = with_tiles(scenario, 2)
        assert down.terrain.tiles == 2
        assert down.objects.border_tiles == 2
        flat = with_tiles(scenario, 1)
        assert flat.terrain.tiles == 1
        assert flat.objects.border_tiles == 0

    def test_reduction_ladder_collapses_tiles_before_terrain(self):
        from repro.testkit.shrink import _reductions

        scenario = generate_scenario(21)
        candidates = list(_reductions(scenario))
        tile_at = next(
            i for i, c in enumerate(candidates) if c.terrain.tiles == 1
        )
        size_at = next(
            i
            for i, c in enumerate(candidates)
            if c.terrain.size < scenario.terrain.size
        )
        assert tile_at < size_at
        assert any(c.terrain.tiles == 2 for c in candidates)

    def test_oracle_registered(self):
        assert "shard_consistency" in ORACLES
        oracle = ORACLES["shard_consistency"]
        assert "shard" in oracle.module

    def test_shards_mode_passes_clean(self):
        report = run_scenario(
            generate_scenario(TILED_SEED), modes={"shards"}
        )
        assert report.ok, [str(f) for f in report.findings]
        assert "shards" in report.modes_run

    def test_shards_mode_inactive_without_tiles(self):
        scenario = with_tiles(generate_scenario(TILED_SEED), 1)
        report = run_scenario(scenario, modes={"shards"})
        assert "shards" not in report.modes_run

    def test_injected_unsound_bound_caught_and_kept_tiled(self, tmp_path):
        scenario = generate_scenario(TILED_SEED)

        def fails(candidate):
            return scenario_fails(
                candidate,
                oracle_names=["shard_consistency"],
                mutator="inflate_lb",
                modes={"shards"},
            )

        assert fails(scenario), "unsound sharded bound not caught"
        outcome = shrink_scenario(scenario, fails, max_attempts=12)
        small = outcome.scenario
        # Collapsing the grid turns the shards leg off, which makes
        # the failure vanish — so the shrinker must keep tiles > 1.
        assert small.terrain.tiles > 1
        assert fails(small), "shrunk scenario no longer fails"
        path = write_case(
            small, tmp_path, mutator="inflate_lb",
            oracles=["shard_consistency"],
        )
        report = replay_case(path)
        assert not report.ok
        assert any(
            f.violation.oracle == "shard_consistency"
            for f in report.findings
        )
