"""Property tests of multiresolution refinement (paper §3.3/§4.2).

Three layers of invariants, from raw structures to the MR3 loop:

* **sandwich** — at every schedule level ``lb_r <= dS <= ub_r``;
* **monotone refinement** — raw DMTM upper bounds are non-increasing
  along the resolution ladder, and the *refined* candidate interval
  (running ``max`` of lbs, running ``min`` of ubs — exactly what
  ``DistanceInterval`` does) nests level over level while always
  containing dS;
* **k-th interval shrink** — in the LevelEvent traces of a real
  query, the tracked k-th upper bound never rises within a phase and
  the k-th interval ends tighter than it started.  (The k-th *lower*
  bound alone is not monotone: the identity of the k-th candidate
  changes as others are rejected.)
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.schedule import ResolutionSchedule
from repro.geodesic.exact import ExactGeodesic
from repro.msdn.msdn import MSDN
from repro.multires.dmtm import DMTM
from repro.terrain.mesh import TriangleMesh
from repro.terrain.synthetic import fractal_dem

# Built once; hypothesis re-runs test bodies many times.
_MESH = TriangleMesh.from_dem(
    fractal_dem(size=13, relief=600.0, roughness=0.7, seed=33)
)
_DMTM = DMTM(_MESH)
_MSDN = MSDN(_MESH)
_SCHEDULE = ResolutionSchedule.preset(1)
_GEODESICS: dict[int, ExactGeodesic] = {}

EPS = 1e-6


def _exact(a: int, b: int) -> float:
    geo = _GEODESICS.get(a)
    if geo is None:
        geo = _GEODESICS[a] = ExactGeodesic(_MESH, a)
    return geo.distance_to(b)


def _ladder(a: int, b: int) -> list[tuple[float, float]]:
    """Raw (lb, ub) at each schedule level, whole-terrain region."""
    out = []
    pa, pb = _MESH.vertices[a], _MESH.vertices[b]
    for res_u, res_l in _SCHEDULE.levels():
        ub_res = _DMTM.upper_bound(a, b, res_u)
        assert ub_res is not None
        lb = _MSDN.lower_bound(pa, pb, res_l).value
        out.append((lb, ub_res.value))
    return out


vertices = st.integers(min_value=0, max_value=_MESH.num_vertices - 1)


class TestSandwich:
    @given(vertices, vertices)
    @settings(max_examples=25, deadline=None)
    def test_every_level_brackets_exact(self, a, b):
        if a == b:
            return
        ds = _exact(a, b)
        for lb, ub in _ladder(a, b):
            assert lb <= ds + EPS
            assert ub >= ds - EPS
            assert lb >= 0.0

    @given(vertices, vertices)
    @settings(max_examples=25, deadline=None)
    def test_lower_bound_at_least_euclidean(self, a, b):
        if a == b:
            return
        de = float(
            np.linalg.norm(_MESH.vertices[a] - _MESH.vertices[b])
        )
        for lb, _ub in _ladder(a, b):
            assert lb >= de - EPS


class TestMonotoneRefinement:
    @given(vertices, vertices)
    @settings(max_examples=25, deadline=None)
    def test_upper_bounds_non_increasing(self, a, b):
        if a == b:
            return
        ubs = [ub for _lb, ub in _ladder(a, b)]
        for coarse, fine in zip(ubs, ubs[1:]):
            assert fine <= coarse + EPS + 1e-9 * coarse

    @given(vertices, vertices)
    @settings(max_examples=25, deadline=None)
    def test_refined_interval_nests_and_contains_exact(self, a, b):
        """Running-refined intervals (what ``DistanceInterval`` keeps
        per candidate) nest level over level around dS."""
        if a == b:
            return
        ds = _exact(a, b)
        run_lb, run_ub = 0.0, math.inf
        prev = (run_lb, run_ub)
        for lb, ub in _ladder(a, b):
            run_lb = max(run_lb, lb)
            run_ub = min(run_ub, ub)
            assert run_lb <= run_ub + EPS
            assert prev[0] - EPS <= run_lb and run_ub <= prev[1] + EPS
            assert run_lb <= ds + EPS <= ds + EPS
            assert run_ub >= ds - EPS
            prev = (run_lb, run_ub)


def _phase_traces(engine, qv, k, step_length):
    result = engine.query(qv, k, step_length=step_length)
    return [t for t in (result.filter_trace, result.ranking_trace) if t]


class TestKthIntervalShrink:
    """MR3's tracked k-th interval over real queries (LevelEvents)."""

    @pytest.mark.parametrize("k", [1, 3, 5])
    @pytest.mark.parametrize("step_length", [1, 2])
    def test_kth_ub_never_rises(self, small_engine, k, step_length):
        qv = small_engine.mesh.nearest_vertex(
            small_engine.mesh.xy_bounds().center
        )
        for trace in _phase_traces(small_engine, qv, k, step_length):
            ubs = [e.kth_ub for e in trace]
            finite = [u for u in ubs if math.isfinite(u)]
            assert finite, "no finite kth ub at any level"
            for coarse, fine in zip(ubs, ubs[1:]):
                assert fine <= coarse + EPS + 1e-9 * min(coarse, 1e12)

    @pytest.mark.parametrize("k", [2, 4])
    def test_kth_interval_ends_tighter(self, small_engine, k):
        qv = small_engine.mesh.nearest_vertex(
            small_engine.mesh.xy_bounds().center
        )
        for trace in _phase_traces(small_engine, qv, k, 2):
            if len(trace) < 2:
                continue
            first = trace[0].kth_ub - trace[0].kth_lb
            last = trace[-1].kth_ub - trace[-1].kth_lb
            if not math.isfinite(first):
                continue
            assert last <= first + EPS + 1e-9 * abs(first)

    def test_levels_follow_schedule(self, small_engine):
        """Events report the schedule's resolutions, ascending."""
        qv = small_engine.mesh.nearest_vertex(
            small_engine.mesh.xy_bounds().center
        )
        schedule = ResolutionSchedule.preset(2)
        for trace in _phase_traces(small_engine, qv, 3, 2):
            for event in trace:
                want_u, want_l = schedule.level(event.level)
                assert event.dmtm_resolution == pytest.approx(want_u)
                assert event.msdn_resolution == pytest.approx(want_l)
            levels = [e.level for e in trace]
            assert levels == sorted(levels)
