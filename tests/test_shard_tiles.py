"""Tile decomposition geometry: even-parity cuts, deterministic
routing, window extraction and border/anchor enumeration.

The parity contract is the load-bearing one:
:meth:`~repro.terrain.mesh.TriangleMesh.from_dem` picks cell diagonals
by local ``(r + c) % 2``, so every window origin must have an even
index sum for the window mesh to be a true submesh of the monolithic
mesh — :func:`~repro.shard.tiles.tile_cuts` guarantees it by keeping
every cut index even.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TerrainError
from repro.shard import TileGrid, TileSpan, tile_cuts
from repro.terrain.synthetic import fractal_dem


@pytest.fixture(scope="module")
def dem():
    return fractal_dem(17, 90.0, 400.0, 0.6, seed=3)


@pytest.fixture(scope="module")
def grid(dem):
    return TileGrid(dem, (2, 2))


class TestTileCuts:
    def test_endpoints_and_monotonicity(self):
        for extent in (5, 9, 13, 17, 33, 257):
            for tiles in (1, 2, 3, 4, 8):
                cuts = tile_cuts(extent, tiles)
                assert cuts[0] == 0
                assert cuts[-1] == extent - 1
                assert list(cuts) == sorted(set(cuts))

    def test_interior_cuts_are_even(self):
        for extent in (9, 13, 17, 33, 257):
            for tiles in (2, 3, 4, 8):
                for cut in tile_cuts(extent, tiles)[1:-1]:
                    assert cut % 2 == 0

    def test_tile_count_clamped_to_extent(self):
        # A size-5 DEM supports at most 2 tiles per axis (each span
        # needs two grid intervals after parity rounding).
        assert len(tile_cuts(5, 8)) - 1 == 2
        assert len(tile_cuts(3, 4)) - 1 == 1
        assert len(tile_cuts(2, 2)) - 1 == 1

    def test_tiny_extent_rejected(self):
        with pytest.raises(TerrainError, match="extent"):
            tile_cuts(1, 2)

    def test_requested_count_honoured_when_possible(self):
        assert len(tile_cuts(257, 8)) - 1 == 8
        assert len(tile_cuts(17, 4)) - 1 == 4


class TestRouting:
    def test_every_grid_point_routes_inside_its_tile(self, dem, grid):
        cell = dem.cell_size
        ox, oy = dem.origin
        for r in range(0, dem.rows, 3):
            for c in range(0, dem.cols, 3):
                i, j = grid.home_tile(ox + c * cell, oy + r * cell)
                assert grid.row_cuts[i] <= r <= grid.row_cuts[i + 1]
                assert grid.col_cuts[j] <= c <= grid.col_cuts[j + 1]

    def test_border_points_route_deterministically(self, dem, grid):
        # A point on a shared cut line hits several tile rectangles;
        # the lowest (row, col) must win, every time.
        cell = dem.cell_size
        ox, oy = dem.origin
        cut_r = grid.row_cuts[1]
        cut_c = grid.col_cuts[1]
        corner = (ox + cut_c * cell, oy + cut_r * cell)
        homes = {grid.home_tile(*corner) for _ in range(10)}
        assert homes == {(0, 0)}

    def test_far_outside_point_clamps(self, dem, grid):
        assert grid.home_tile(-1e9, -1e9) == (0, 0)
        assert grid.home_tile(1e9, 1e9) == (
            grid.tiles_rows - 1,
            grid.tiles_cols - 1,
        )


class TestSpans:
    def test_inverted_span_rejected(self):
        with pytest.raises(TerrainError, match="inverted"):
            TileSpan(1, 0, 0, 0)

    def test_expand_is_clipped_and_idempotent_at_full(self, grid):
        full = grid.full_span()
        assert grid.expand(full) == full
        one = grid.tile_span((0, 0))
        assert grid.expand(one) == full  # 2x2 grid: one ring covers it

    def test_span_for_disk_covers_the_disk(self, dem, grid):
        cell = dem.cell_size
        ox, oy = dem.origin
        x, y = ox + 7 * cell, oy + 7 * cell
        radius = 3 * cell
        span = grid.span_for_disk(x, y, radius)
        r0, r1, c0, c1 = grid.span_window(span)
        assert ox + c0 * cell <= x - radius or c0 == 0
        assert ox + c1 * cell >= x + radius or c1 == dem.cols - 1
        assert oy + r0 * cell <= y - radius or r0 == 0
        assert oy + r1 * cell >= y + radius or r1 == dem.rows - 1

    def test_window_origins_have_even_parity(self, dem):
        for tiles in ((2, 2), (3, 3), (4, 2)):
            grid = TileGrid(dem, tiles)
            for span in grid.all_tile_spans():
                r0, _r1, c0, _c1 = grid.span_window(span)
                assert (r0 + c0) % 2 == 0


class TestWindows:
    def test_window_dem_slices_heights_and_shifts_origin(self, dem, grid):
        span = grid.tile_span((1, 0))
        r0, r1, c0, c1 = grid.span_window(span)
        sub = grid.window_dem(span)
        assert np.array_equal(
            sub.heights, dem.heights[r0 : r1 + 1, c0 : c1 + 1]
        )
        assert sub.origin == (
            dem.origin[0] + c0 * dem.cell_size,
            dem.origin[1] + r0 * dem.cell_size,
        )
        assert sub.cell_size == dem.cell_size

    def test_full_span_window_is_whole_dem(self, dem, grid):
        sub = grid.window_dem(grid.full_span())
        assert np.array_equal(sub.heights, dem.heights)
        assert sub.origin == dem.origin

    def test_border_xy_empty_for_full_span(self, grid):
        assert len(grid.window_border_xy(grid.full_span())) == 0

    def test_border_xy_lies_on_interior_cut_lines(self, dem, grid):
        span = grid.tile_span((0, 0))
        border = grid.window_border_xy(span)
        assert len(border) > 0
        cell = dem.cell_size
        ox, oy = dem.origin
        wall_x = ox + grid.col_cuts[1] * cell
        wall_y = oy + grid.row_cuts[1] * cell
        for x, y in border:
            assert x == pytest.approx(wall_x) or y == pytest.approx(wall_y)
        # Spacing along the border never exceeds one cell (the
        # detour bound's slack term assumes it).
        xs = sorted(x for x, y in border if y == pytest.approx(wall_y))
        assert max(np.diff(xs)) <= cell + 1e-9

    def test_shared_border_vertices_lie_in_both_windows(self, dem, grid):
        span = grid.tile_span((0, 0))
        for nb in grid.neighbours(span):
            shared = grid.shared_border_vertices(span, nb)
            assert shared
            r0, r1, c0, c1 = grid.span_window(span)
            n0, n1, m0, m1 = grid.span_window(grid.tile_span(nb))
            for r, c in shared:
                assert r0 <= r <= r1 and c0 <= c <= c1
                assert n0 <= r <= n1 and m0 <= c <= m1

    def test_neighbours_of_full_span_empty(self, grid):
        assert grid.neighbours(grid.full_span()) == []
