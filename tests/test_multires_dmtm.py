"""Unit tests for the DMTM (upper bounds, extraction, storage)."""

import numpy as np
import pytest

from repro.geodesic.exact import ExactGeodesic
from repro.geometry.ellipse import EllipseRegion
from repro.multires.dmtm import DMTM, RESOLUTION_PATHNET
from repro.storage.pages import PageManager
from repro.storage.stats import IOStatistics


@pytest.fixture(scope="module")
def dmtm(request):
    mesh = request.getfixturevalue("rough_mesh")
    return DMTM(mesh)


@pytest.fixture(scope="module")
def exact_pairs(request):
    """A few vertex pairs with exact surface distances."""
    mesh = request.getfixturevalue("rough_mesh")
    rng = np.random.default_rng(6)
    pairs = {}
    for _ in range(4):
        a, b = rng.integers(0, mesh.num_vertices, size=2)
        if a == b:
            continue
        a, b = int(a), int(b)
        pairs[(a, b)] = ExactGeodesic(mesh, a).distance_to(b)
    return pairs


RESOLUTIONS = (0.01, 0.25, 0.5, 1.0, RESOLUTION_PATHNET)


class TestUpperBounds:
    def test_always_above_exact(self, dmtm, exact_pairs):
        for (a, b), ds in exact_pairs.items():
            for res in RESOLUTIONS:
                result = dmtm.upper_bound(a, b, res)
                assert result is not None
                assert result.value >= ds - 1e-6

    def test_tightens_with_resolution(self, dmtm, exact_pairs):
        """Higher resolution gives a tighter (or equal) bound in the
        running-min sense: the min over levels up to r is monotone."""
        for (a, b), ds in exact_pairs.items():
            best = float("inf")
            values = []
            for res in RESOLUTIONS:
                value = dmtm.upper_bound(a, b, res).value
                best = min(best, value)
                values.append(best)
            assert values == sorted(values, reverse=True)
            # The pathnet level must be within a few % of exact.
            assert values[-1] <= ds * 1.08

    def test_same_vertex_zero(self, dmtm):
        result = dmtm.upper_bound(5, 5, 0.25)
        # Same ancestor: the bound is twice the offset, possibly 0.
        assert result is not None
        assert result.value >= 0.0

    def test_path_keys_end_to_end(self, dmtm):
        result = dmtm.upper_bound(3, 200, 0.5)
        assert len(result.path_keys) >= 1
        assert all(k[0] == "n" for k in result.path_keys)

    def test_roi_restriction_still_valid(self, dmtm, exact_pairs):
        mesh = dmtm.mesh
        for (a, b), ds in exact_pairs.items():
            loose = dmtm.upper_bound(a, b, 0.25).value
            ellipse = EllipseRegion(
                mesh.vertices[a][:2], mesh.vertices[b][:2], loose * 1.01
            )
            result = dmtm.upper_bound(a, b, 1.0, roi=ellipse.mbr())
            assert result is not None
            assert result.value >= ds - 1e-6

    def test_disconnected_roi_returns_none(self, dmtm):
        from repro.geometry.primitives import BoundingBox

        tiny = BoundingBox((0.0, 0.0), (1.0, 1.0))
        result = dmtm.upper_bound(0, dmtm.mesh.num_vertices - 1, 1.0, roi=tiny)
        assert result is None

    def test_multi_target_matches_single(self, dmtm):
        network = dmtm.extract_network(0.5)
        targets = [40, 90, 230]
        multi = dmtm.upper_bounds_from(7, targets, network)
        for t in targets:
            single = dmtm.upper_bound(7, t, 0.5, network=network)
            assert multi[t].value == pytest.approx(single.value)


class TestExtraction:
    def test_cut_sizes_scale(self, dmtm):
        small = dmtm.extract_network(0.1)
        large = dmtm.extract_network(0.8)
        assert len(small.graph) < len(large.graph)

    def test_pathnet_level(self, dmtm):
        network = dmtm.extract_network(RESOLUTION_PATHNET)
        mesh = dmtm.mesh
        assert len(network.graph) == mesh.num_vertices + mesh.num_edges

    def test_path_region_boxes(self, dmtm):
        result = dmtm.upper_bound(3, 200, 0.25)
        boxes = dmtm.path_region(result.path_keys)
        assert len(boxes) == len(result.path_keys)
        expanded = dmtm.path_region(result.path_keys, expand=50.0)
        for small, big in zip(boxes, expanded):
            assert big.contains_box(small)


class TestStorage:
    def test_touch_accounting(self, request):
        mesh = request.getfixturevalue("rough_mesh")
        stats = IOStatistics()
        pm = PageManager(page_size=1024, buffer_pages=4, stats=stats)
        dmtm = DMTM(mesh)
        dmtm.attach_storage(pm)
        before = stats.snapshot()
        dmtm.extract_network(0.25)
        assert stats.delta_since(before).physical_reads > 0

    def test_charge_io_false_skips(self, request):
        mesh = request.getfixturevalue("rough_mesh")
        stats = IOStatistics()
        pm = PageManager(page_size=1024, buffer_pages=4, stats=stats)
        dmtm = DMTM(mesh)
        dmtm.attach_storage(pm)
        before = stats.snapshot()
        dmtm.extract_network(0.25, charge_io=False)
        assert stats.delta_since(before).physical_reads == 0

    def test_node_record_roundtrip(self, dmtm):
        node = dmtm.ddm.history.nodes[10]
        decoded = DMTM.decode_node(dmtm._encode_node(node))
        assert decoded["node_id"] == node.node_id
        assert decoded["rep"] == node.rep
        assert decoded["records"] == [(n, pytest.approx(d)) for n, d in node.records]
