"""Property tests for the frontier-batched numpy kernels.

The bucketed kernels (:mod:`repro.geodesic.frontier`) are a pure
performance change with the same contract as the CSR kernels: every
search shape must return exactly (``==``, not approx) what the dict
reference kernels return — distances, parents, tie-broken winners,
early-exit settled sets — across 200 random-graph seeds.  The
vectorised pathnet builder must likewise reproduce the Python
builder's graph node for node, edge for edge, bit for bit.

The dispatchable entry points delegate to the heap kernels below
``MIN_FRONTIER_NODES`` (and on zero-weight graphs), so these tests
pin the cutoff to 0 to force the bucket path onto small graphs where
brute-force comparison is cheap.
"""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

from repro.geodesic import frontier as frontier_mod
from repro.geodesic import use_kernel_mode
from repro.geodesic.csr import (
    astar_csr,
    csr_from_adjacency,
    multi_source_dijkstra_csr,
)
from repro.geodesic.dijkstra import (
    dijkstra_reference,
    dijkstra_with_parents_reference,
)
from repro.geodesic.frontier import (
    MIN_FRONTIER_NODES,
    astar_frontier,
    build_pathnet_arrays,
    dijkstra_frontier,
    dijkstra_frontier_with_parents,
    multi_source_frontier,
)
from repro.geodesic.pathnet import build_pathnet
from repro.testkit.generators import standard_mesh


@pytest.fixture(autouse=True)
def force_bucket_path(monkeypatch):
    """Remove the small-graph delegation so the bucket kernels run on
    every test graph (they are bit-identical either side of the
    cutoff; the cutoff is purely a speed knob)."""
    monkeypatch.setattr(frontier_mod, "MIN_FRONTIER_NODES", 0)


def random_geometric_graph(rng, n=None):
    """Connected-ish random graph with positions and admissible
    weights (same construction as the CSR differential tests)."""
    if n is None:
        n = rng.randint(2, 48)
    adj = [[] for _ in range(n)]
    pos = [
        (rng.uniform(0, 10), rng.uniform(0, 10), rng.uniform(0, 3))
        for _ in range(n)
    ]
    for u in range(n):
        for _ in range(rng.randint(1, 4)):
            v = rng.randrange(n)
            if v == u:
                continue
            w = math.dist(pos[u], pos[v]) + rng.uniform(0.0, 2.0)
            adj[u].append((v, w))
            adj[v].append((u, w))
    return adj, pos


def tie_heavy_graph(rng, n=None):
    """Graph whose weights come from a tiny integer set, so many
    shortest paths tie exactly and the tie-break rules actually
    decide the output."""
    if n is None:
        n = rng.randint(3, 30)
    adj = [[] for _ in range(n)]
    for u in range(n):
        for _ in range(rng.randint(1, 3)):
            v = rng.randrange(n)
            if v == u:
                continue
            w = float(rng.choice((1, 1, 2, 4)))
            adj[u].append((v, w))
            adj[v].append((u, w))
    return adj


class TestSingleSource:
    """60 seeds: full sweeps vs the dict reference."""

    @pytest.mark.parametrize("seed", range(60))
    def test_full_sweep_identical(self, seed):
        rng = random.Random(seed)
        adj, _pos = random_geometric_graph(rng)
        csr = csr_from_adjacency(adj)
        src = rng.randrange(len(adj))
        assert dijkstra_frontier(csr, src) == dijkstra_reference(adj, src)

    @pytest.mark.parametrize("seed", range(30))
    def test_targets_and_max_dist_identical(self, seed):
        """Early exit must settle exactly the reference's settled set,
        not merely cover the targets."""
        rng = random.Random(1000 + seed)
        adj, _pos = random_geometric_graph(rng)
        csr = csr_from_adjacency(adj)
        n = len(adj)
        src = rng.randrange(n)
        targets = {rng.randrange(n) for _ in range(rng.randint(1, 3))}
        max_dist = rng.choice([None, rng.uniform(1.0, 12.0)])
        assert dijkstra_frontier(
            csr, src, targets=set(targets), max_dist=max_dist
        ) == dijkstra_reference(
            adj, src, targets=set(targets), max_dist=max_dist
        )

    @pytest.mark.parametrize("seed", range(30))
    def test_parent_trees_identical(self, seed):
        """Tie-broken shortest-path trees feed the refined-region
        corridors; they must match node for node."""
        rng = random.Random(2000 + seed)
        adj = tie_heavy_graph(rng)
        csr = csr_from_adjacency(adj)
        src = rng.randrange(len(adj))
        d1, p1 = dijkstra_frontier_with_parents(csr, src)
        d2, p2 = dijkstra_with_parents_reference(adj, src)
        assert d1 == d2
        assert p1 == p2


class TestMultiSource:
    """40 seeds: offset-composed labels vs the heap twin."""

    @pytest.mark.parametrize("seed", range(40))
    def test_labels_identical(self, seed):
        rng = random.Random(3000 + seed)
        adj, _pos = random_geometric_graph(rng)
        csr = csr_from_adjacency(adj)
        n = len(adj)
        sources = [
            (rng.randrange(n), rng.uniform(0.0, 3.0))
            for _ in range(rng.randint(1, 4))
        ]
        if rng.random() < 0.3:
            # Duplicate a source node under a different offset: the
            # lower (value, rank) label must win in both kernels.
            sources.append((sources[0][0], rng.uniform(0.0, 3.0)))
        targets = (
            {rng.randrange(n) for _ in range(rng.randint(1, 3))}
            if rng.random() < 0.5
            else None
        )
        max_dist = rng.choice([None, rng.uniform(1.0, 12.0)])
        got = multi_source_frontier(
            csr, sources,
            targets=set(targets) if targets else None, max_dist=max_dist,
        )
        want = multi_source_dijkstra_csr(
            csr, sources,
            targets=set(targets) if targets else None, max_dist=max_dist,
        )
        assert got.value == want.value
        assert got.raw == want.raw
        assert got.origin == want.origin
        assert got.parent == want.parent


class TestAStar:
    """40 seeds: goal-directed values vs both heap kernels."""

    @pytest.mark.parametrize("seed", range(40))
    def test_value_identical(self, seed):
        rng = random.Random(4000 + seed)
        adj, pos = random_geometric_graph(rng)
        csr = csr_from_adjacency(adj, positions=pos)
        n = len(adj)
        src = rng.randrange(n)
        tgt = rng.randrange(n)
        want = dijkstra_reference(adj, src, targets={tgt}).get(tgt)
        assert astar_frontier(csr, src, tgt) == want
        assert astar_csr(csr, src, tgt) == want


class TestDispatchDelegation:
    def test_small_graph_delegates_without_patch(self, monkeypatch):
        """Below the cutoff the dispatchers hand off to the heap
        kernels — same answers, no frontier counters."""
        monkeypatch.setattr(
            frontier_mod, "MIN_FRONTIER_NODES", MIN_FRONTIER_NODES
        )
        adj, _pos = random_geometric_graph(random.Random(5))
        csr = csr_from_adjacency(adj)
        assert csr.num_nodes < MIN_FRONTIER_NODES
        assert dijkstra_frontier(csr, 0) == dijkstra_reference(adj, 0)

    def test_zero_weight_graph_delegates(self):
        """No positive bucket window exists with a zero-weight edge;
        the dispatcher must fall back, not loop or drift."""
        adj = [[(1, 0.0), (2, 1.0)], [(0, 0.0)], [(0, 1.0)]]
        csr = csr_from_adjacency(adj)
        assert dijkstra_frontier(csr, 0) == dijkstra_reference(adj, 0)


class TestBuilderEquivalence:
    """The vectorised pathnet builder vs the Python builder: same
    node-id order, same keys, bit-identical positions and weights,
    same adjacency order."""

    def assert_same_graph(self, mesh, spe, faces=None, forbidden=None):
        py = build_pathnet(
            mesh, steiner_per_edge=spe, faces=faces, forbidden_faces=forbidden
        )
        with use_kernel_mode("frontier"):
            arr = build_pathnet(
                mesh, steiner_per_edge=spe, faces=faces,
                forbidden_faces=forbidden,
            )
        assert len(arr) == len(py)
        for nid in range(len(py)):
            assert arr.key_of(nid) == py.key_of(nid)
            pa, pb = arr.position_of(nid), py.position_of(nid)
            assert pa is not None and pb is not None
            assert tuple(pa) == tuple(pb)
        assert arr.adjacency == py.adjacency

    @pytest.mark.parametrize("spe", [0, 1, 2])
    def test_full_mesh(self, spe):
        mesh = standard_mesh("BH", 9)
        self.assert_same_graph(mesh, spe)

    def test_face_subset_and_forbidden(self):
        mesh = standard_mesh("BH", 9)
        faces = np.arange(0, mesh.num_faces, 2, dtype=np.int64)
        forbidden = {int(faces[1]), int(faces[3])}
        self.assert_same_graph(mesh, 1, faces=faces, forbidden=forbidden)

    def test_raw_arrays_shape(self):
        mesh = standard_mesh("BH", 7)
        built = build_pathnet_arrays(mesh, 1)
        assert built is not None
        codes, positions, csr = built
        assert codes.shape[0] == positions.shape[0] == csr.num_nodes
        # Every code decodes to a vertex or an on-mesh Steiner point.
        assert (codes >= 0).all()
        assert (codes < mesh.num_vertices + mesh.num_edges).all()


class TestSearchViaDispatchers:
    """The engine-facing dispatchers ride the frontier kernels under
    ``use_kernel_mode("frontier")`` and stay bit-identical."""

    @pytest.mark.parametrize("spe", [1, 2])
    def test_pathnet_distance_identical(self, spe):
        from repro.geodesic.pathnet import pathnet_distance

        mesh = standard_mesh("BH", 9)
        pairs = [(0, mesh.num_vertices - 1), (3, mesh.num_vertices // 2)]
        for s, t in pairs:
            base = pathnet_distance(mesh, s, t, steiner_per_edge=spe)
            with use_kernel_mode("frontier"):
                fro = pathnet_distance(mesh, s, t, steiner_per_edge=spe)
            assert fro == base
