"""Boundary-anchor admissibility properties (satellite of the
sharding tentpole), mirroring the landmark admissibility suite:

* stitched cross-tile values are *upper* bounds on the exact global
  surface distance, and every one is realised by a genuine
  concatenated q -> border -> target path (the multi-source value
  equals the best per-anchor offset + neighbour-leg composition);
* border detour values are *lower* bounds on the exact global surface
  distance for any target beyond the window.

Ground truth is brute-force :class:`~repro.geodesic.ExactGeodesic`
over the monolithic mesh — the structure the sharded engine never
builds, which is exactly why these bounds carry the proof burden.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geodesic import ExactGeodesic
from repro.multires.dmtm import RESOLUTION_PATHNET
from repro.shard import (
    ShardedEngine,
    border_offsets,
    detour_lower_bounds,
    stitch_into,
    uniform_grid_objects,
)
from repro.terrain.mesh import TriangleMesh
from repro.terrain.synthetic import fractal_dem

SIZE = 13
EPS = 1e-6


def _setup(seed: int):
    dem = fractal_dem(SIZE, 90.0, 450.0, 0.6, seed=seed)
    vids = uniform_grid_objects(dem, 20, seed=seed + 1)
    sharded = ShardedEngine(dem, objects=vids, grid=(2, 2))
    mesh = TriangleMesh.from_dem(dem)  # ground truth only
    return dem, vids, sharded, mesh


@pytest.fixture(scope="module", params=[9, 31])
def world(request):
    return _setup(request.param)


def _home_and_neighbour(sharded):
    grid = sharded.grid
    home_span = grid.tile_span((0, 0))
    nb = (0, 1)
    return grid, home_span, nb


class TestDetourLowerBounds:
    def test_admissible_for_targets_beyond_the_window(self, world):
        dem, vids, sharded, mesh = world
        grid, home_span, _nb = _home_and_neighbour(sharded)
        r0, r1, c0, c1 = grid.span_window(home_span)
        border = grid.window_border_xy(home_span)
        cell = dem.cell_size
        queries = [(2, 1), (3, 4), (5, 5)]
        outside = [
            (vid, divmod(vid, dem.cols))
            for vid in vids
            if not (
                r0 <= vid // dem.cols <= r1 and c0 <= vid % dem.cols <= c1
            )
        ]
        assert outside, "fixture needs objects beyond the home window"
        target_xy = np.array(
            [
                (
                    dem.origin[0] + c * cell,
                    dem.origin[1] + r * cell,
                )
                for _vid, (r, c) in outside
            ]
        )
        for qr, qc in queries:
            q_vid = qr * dem.cols + qc
            q_xy = (
                dem.origin[0] + qc * cell,
                dem.origin[1] + qr * cell,
            )
            exact = ExactGeodesic(mesh, q_vid).distances()
            bounds = detour_lower_bounds(q_xy, border, target_xy, cell)
            for (vid, _rc), lb in zip(outside, bounds):
                ds = exact[vid]
                assert np.isfinite(ds)
                assert lb <= ds + EPS + 1e-9 * ds, (
                    f"detour lb {lb} exceeds exact dS {ds} "
                    f"(q={q_vid}, target={vid})"
                )

    def test_infinite_without_a_border(self, world):
        dem, _vids, sharded, _mesh = world
        grid = sharded.grid
        full_border = grid.window_border_xy(grid.full_span())
        bounds = detour_lower_bounds((0.0, 0.0), full_border, [(1.0, 1.0)], 1.0)
        assert bounds.shape == (1,)
        assert np.isinf(bounds[0])

    def test_nonnegative(self, world):
        dem, _vids, sharded, _mesh = world
        grid, home_span, _nb = _home_and_neighbour(sharded)
        border = grid.window_border_xy(home_span)
        near = border[0]  # a target sitting on the border itself
        bounds = detour_lower_bounds(near, border, [near], dem.cell_size)
        assert bounds[0] == 0.0


class TestStitchedUpperBounds:
    def test_stitched_values_overestimate_exact_distance(self, world):
        dem, _vids, sharded, mesh = world
        grid, home_span, nb = _home_and_neighbour(sharded)
        home = sharded.window_engine(home_span)
        nb_engine = sharded.window_engine(grid.tile_span(nb))
        r0, _r1, c0, _c1 = grid.span_window(home_span)
        n0, _n1, m0, _m1 = grid.span_window(grid.tile_span(nb))
        wcols_home = grid.span_window(home_span)[3] - c0 + 1
        wcols_nb = grid.span_window(grid.tile_span(nb))[3] - m0 + 1

        qr, qc = 3, 2
        q_vid = qr * dem.cols + qc
        local_q = (qr - r0) * wcols_home + (qc - c0)
        shared = grid.shared_border_vertices(home_span, nb)
        assert shared
        home_vids = [(r - r0) * wcols_home + (c - c0) for r, c in shared]
        offsets = border_offsets(home, local_q, home_vids)
        assert offsets, "home window cannot reach its own border"
        anchors = [
            ((r - n0) * wcols_nb + (c - m0), offsets[hv])
            for (r, c), hv in zip(shared, home_vids)
            if hv in offsets
        ]
        targets = [int(v) for v in nb_engine.objects.vertex_ids]
        values = stitch_into(nb_engine, anchors, targets)
        assert values, "no cross-tile target was reachable"

        exact = ExactGeodesic(mesh, q_vid).distances()
        network = nb_engine.dmtm.extract_network(
            RESOLUTION_PATHNET, charge_io=False
        )
        for local_t, value in values.items():
            lr, lc = divmod(local_t, wcols_nb)
            global_vid = (lr + n0) * dem.cols + (lc + m0)
            ds = exact[global_vid]
            assert np.isfinite(ds)
            assert value >= ds - EPS - 1e-9 * ds, (
                f"stitched ub {value} undershoots exact dS {ds} "
                f"(target {global_vid})"
            )
            # The multi-source value is a genuine concatenation:
            # exactly the best offset + neighbour-leg over the
            # anchors that reach this target.
            legs = []
            for anchor_vid, offset in anchors:
                found = nb_engine.dmtm.upper_bounds_from(
                    anchor_vid, [local_t], network
                )
                leg = found.get(local_t)
                if leg is not None:
                    legs.append(offset + float(leg.value))
            assert legs
            best = min(legs)
            assert value == pytest.approx(best, rel=1e-9, abs=1e-6)

    def test_empty_anchor_or_target_lists(self, world):
        _dem, _vids, sharded, _mesh = world
        grid, home_span, nb = _home_and_neighbour(sharded)
        nb_engine = sharded.window_engine(grid.tile_span(nb))
        assert stitch_into(nb_engine, [], [0]) == {}
        assert stitch_into(nb_engine, [(0, 0.0)], []) == {}
        home = sharded.window_engine(home_span)
        assert border_offsets(home, 0, []) == {}
