"""Tests for arbitrary-point query embedding (paper §3.2)."""

import numpy as np
import pytest

from repro.core.embedding import EmbeddedQuery, embed_point, source_of
from repro.errors import QueryError
from repro.geodesic.exact import ExactGeodesic


class TestEmbedPoint:
    def test_vertex_returns_id(self, rough_mesh):
        x, y, _z = rough_mesh.vertices[13]
        assert embed_point(rough_mesh, float(x), float(y)) == 13

    def test_interior_point_three_anchors(self, rough_mesh):
        bounds = rough_mesh.xy_bounds()
        x = float(bounds.center[0]) + 17.3
        y = float(bounds.center[1]) - 11.9
        q = embed_point(rough_mesh, x, y)
        assert isinstance(q, EmbeddedQuery)
        assert len(q.anchors) == 3
        assert q.position[0] == pytest.approx(x)
        # The embedded z matches the surface.
        assert q.position[2] == pytest.approx(
            rough_mesh.elevation_at(x, y), abs=1e-6
        )

    def test_anchor_offsets_are_facet_distances(self, rough_mesh):
        bounds = rough_mesh.xy_bounds()
        x = float(bounds.center[0]) + 31.0
        y = float(bounds.center[1]) + 23.0
        q = embed_point(rough_mesh, x, y)
        p = np.asarray(q.position)
        for vid, offset in q.anchors:
            assert offset == pytest.approx(
                float(np.linalg.norm(p - rough_mesh.vertices[vid]))
            )
            assert offset > 0

    def test_source_of_vertex(self, rough_mesh):
        pos, anchors = source_of(rough_mesh, 5)
        assert anchors == ((5, 0.0),)
        np.testing.assert_array_equal(pos, rough_mesh.vertices[5])

    def test_source_of_bad_vertex(self, rough_mesh):
        with pytest.raises(QueryError):
            source_of(rough_mesh, rough_mesh.num_vertices)


class TestEmbeddedQueries:
    def test_query_point_result_valid(self, small_engine):
        mesh = small_engine.mesh
        bounds = mesh.xy_bounds()
        x = float(bounds.center[0]) + 13.0
        y = float(bounds.center[1]) - 29.0
        res = small_engine.query_point(x, y, k=3, step_length=2)
        assert len(res.object_ids) == 3
        # Intervals must bracket exact distances from the *embedded*
        # point; validate via its anchors: dS(p, t) >= dS(v, t) - |pv|.
        from repro.core.embedding import embed_point

        q = embed_point(mesh, x, y)
        for obj, (lb, ub) in zip(res.object_ids, res.intervals):
            target = small_engine.objects.vertex_of(obj)
            best_ub = min(
                off + ExactGeodesic(mesh, vid).distance_to(target)
                for vid, off in q.anchors
            )
            # ub must be a genuine path: >= the best anchor route can
            # never be beaten by more than the facet diameter.
            assert ub >= lb - 1e-9
            assert lb <= best_ub + 1e-6

    def test_query_point_close_to_snap(self, small_engine):
        """Embedded and snapped queries of the same location agree up
        to the facet diameter."""
        mesh = small_engine.mesh
        bounds = mesh.xy_bounds()
        x = float(bounds.center[0]) + 40.0
        y = float(bounds.center[1]) + 35.0
        embedded = small_engine.query_point(x, y, k=3, step_length=2)
        snapped = small_engine.query_xy(x, y, k=3, step_length=2)
        # Sets need not be identical (the query moved), but heavily
        # overlap on a dense object set.
        assert len(set(embedded.object_ids) & set(snapped.object_ids)) >= 2

    def test_query_point_at_vertex_degrades_gracefully(self, small_engine):
        x, y, _z = small_engine.mesh.vertices[100]
        res = small_engine.query_point(float(x), float(y), k=2)
        assert len(res.object_ids) == 2

    def test_rejects_non_mr3(self, small_engine):
        bounds = small_engine.mesh.xy_bounds()
        with pytest.raises(QueryError):
            small_engine.query_point(
                float(bounds.center[0]) + 7.0,
                float(bounds.center[1]) + 7.0,
                k=1,
                method="ea",
            )
