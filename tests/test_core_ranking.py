"""Unit tests for the multiresolution distance ranker."""

import numpy as np
import pytest

from repro.core.objects import ObjectSet
from repro.core.ranking import DistanceRanker, RankerOptions
from repro.core.schedule import ResolutionSchedule
from repro.geodesic.exact import ExactGeodesic
from repro.msdn.msdn import MSDN
from repro.multires.dmtm import DMTM


@pytest.fixture(scope="module")
def stack(request):
    mesh = request.getfixturevalue("bh_mesh")
    dmtm = DMTM(mesh)
    msdn = MSDN(mesh)
    objects = ObjectSet.uniform(mesh, density=12.0, seed=3)
    return mesh, dmtm, msdn, objects


def make_ranker(stack, step=1, **opts):
    mesh, dmtm, msdn, _objects = stack
    return DistanceRanker(
        mesh, dmtm, msdn, ResolutionSchedule.preset(step), RankerOptions(**opts)
    )


def exact_order(mesh, objects, query_vertex):
    geo = ExactGeodesic(mesh, query_vertex)
    dists = [(geo.distance_to(objects.vertex_of(i)), i) for i in range(len(objects))]
    dists.sort()
    return dists


class TestRanking:
    @pytest.mark.parametrize("step", [1, 2, 3])
    def test_topk_matches_exact(self, stack, step):
        mesh, dmtm, msdn, objects = stack
        ranker = make_ranker(stack, step)
        qv = mesh.nearest_vertex(mesh.xy_bounds().center)
        candidates = ranker.make_candidates(range(len(objects)), objects)
        out = ranker.rank(qv, candidates, 4)
        truth = exact_order(mesh, objects, qv)
        want = {obj for _d, obj in truth[:4]}
        got = {c.object_id for c in out.winners}
        # Allow swaps only between objects closer than the pathnet
        # approximation error (3 %).
        kth = truth[3][0]
        for obj in got - want:
            ds = dict((o, d) for d, o in truth)[obj]
            assert ds <= kth * 1.05

    def test_intervals_bracket_exact(self, stack):
        mesh, dmtm, msdn, objects = stack
        ranker = make_ranker(stack)
        qv = 3
        geo = ExactGeodesic(mesh, qv)
        candidates = ranker.make_candidates(range(len(objects)), objects)
        ranker.rank(qv, candidates, 3)
        for cand in candidates:
            ds = geo.distance_to(cand.vertex)
            assert cand.lb <= ds + 1e-6
            if np.isfinite(cand.ub):
                assert cand.ub >= ds - 1e-6

    def test_empty_candidates(self, stack):
        ranker = make_ranker(stack)
        out = ranker.rank(0, [], 3)
        assert out.winners == []
        assert out.converged

    def test_tighten_kth(self, stack):
        mesh, _dmtm, _msdn, objects = stack
        ranker = make_ranker(stack)
        qv = mesh.nearest_vertex(mesh.xy_bounds().center)
        loose = ranker.rank(
            qv, ranker.make_candidates(range(3), objects), 3, tighten_kth=0.0
        )
        tight = ranker.rank(
            qv, ranker.make_candidates(range(3), objects), 3, tighten_kth=0.9
        )
        assert tight.kth_ub <= loose.kth_ub + 1e-9
        assert tight.iterations >= loose.iterations

    def test_options_do_not_change_results(self, stack):
        """Integration / refined region / dummy lb are performance
        switches; the winner set must be identical."""
        mesh, _dmtm, _msdn, objects = stack
        qv = mesh.nearest_vertex(mesh.xy_bounds().center)
        results = []
        for opts in (
            {},
            {"integrate_io": False},
            {"use_refined_region": False},
            {"use_dummy_lb": False},
        ):
            ranker = make_ranker(stack, 2, **opts)
            out = ranker.rank(
                qv, ranker.make_candidates(range(len(objects)), objects), 5
            )
            results.append({c.object_id for c in out.winners})
        assert all(r == results[0] for r in results[1:])
