"""Unit tests for BoundingBox and Segment."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry.primitives import BoundingBox, Segment


def box(lo, hi):
    return BoundingBox(tuple(lo), tuple(hi))


class TestBoundingBoxConstruction:
    def test_inverted_rejected(self):
        with pytest.raises(GeometryError):
            box((1, 0), (0, 1))

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(GeometryError):
            BoundingBox((0, 0), (1, 1, 1))

    def test_of_points(self):
        b = BoundingBox.of_points([(1, 5), (3, 2), (2, 4)])
        assert b.lo == (1, 2)
        assert b.hi == (3, 5)

    def test_of_points_empty_rejected(self):
        with pytest.raises(GeometryError):
            BoundingBox.of_points(np.empty((0, 2)))

    def test_around(self):
        b = BoundingBox.around((5.0, 5.0), 2.0)
        assert b.lo == (3.0, 3.0)
        assert b.hi == (7.0, 7.0)

    def test_hashable(self):
        assert hash(box((0, 0), (1, 1))) == hash(box((0, 0), (1, 1)))


class TestBoundingBoxProperties:
    def test_measure_2d(self):
        assert box((0, 0), (2, 3)).measure() == pytest.approx(6.0)

    def test_measure_3d(self):
        assert box((0, 0, 0), (2, 3, 4)).measure() == pytest.approx(24.0)

    def test_perimeter(self):
        assert box((0, 0), (2, 3)).perimeter() == pytest.approx(10.0)

    def test_center(self):
        assert tuple(box((0, 0), (4, 6)).center) == (2.0, 3.0)

    def test_xy_projection(self):
        b = box((1, 2, 3), (4, 5, 6)).xy()
        assert b.lo == (1, 2)
        assert b.hi == (4, 5)


class TestBoundingBoxPredicates:
    def test_contains_point(self):
        b = box((0, 0), (2, 2))
        assert b.contains_point((1, 1))
        assert b.contains_point((0, 2))  # boundary
        assert not b.contains_point((3, 1))

    def test_contains_box(self):
        outer = box((0, 0), (10, 10))
        assert outer.contains_box(box((1, 1), (9, 9)))
        assert not outer.contains_box(box((5, 5), (11, 9)))

    def test_intersects(self):
        a = box((0, 0), (2, 2))
        assert a.intersects(box((1, 1), (3, 3)))
        assert a.intersects(box((2, 2), (3, 3)))  # corner touch
        assert not a.intersects(box((3, 3), (4, 4)))

    def test_intersects_symmetric(self):
        a = box((0, 0), (2, 2))
        b = box((1, -5), (1.5, 10))
        assert a.intersects(b) == b.intersects(a)


class TestBoundingBoxCombinators:
    def test_union(self):
        u = box((0, 0), (1, 1)).union(box((2, -1), (3, 0.5)))
        assert u.lo == (0, -1)
        assert u.hi == (3, 1)

    def test_intersection(self):
        i = box((0, 0), (2, 2)).intersection(box((1, 1), (3, 3)))
        assert i.lo == (1, 1)
        assert i.hi == (2, 2)

    def test_intersection_disjoint_none(self):
        assert box((0, 0), (1, 1)).intersection(box((2, 2), (3, 3))) is None

    def test_expanded(self):
        e = box((0, 0), (1, 1)).expanded(0.5)
        assert e.lo == (-0.5, -0.5)
        assert e.hi == (1.5, 1.5)

    def test_expanded_negative_rejected(self):
        with pytest.raises(GeometryError):
            box((0, 0), (1, 1)).expanded(-1.0)

    def test_scaled_double(self):
        s = box((0, 0), (2, 2)).scaled(2.0)
        assert s.lo == (-1.0, -1.0)
        assert s.hi == (3.0, 3.0)


class TestBoundingBoxMetrics:
    def test_min_dist_point_inside_zero(self):
        assert box((0, 0), (2, 2)).min_dist_point((1, 1)) == 0.0

    def test_min_dist_point_outside(self):
        assert box((0, 0), (1, 1)).min_dist_point((4, 5)) == pytest.approx(5.0)

    def test_min_dist_box_overlapping_zero(self):
        assert box((0, 0), (2, 2)).min_dist_box(box((1, 1), (3, 3))) == 0.0

    def test_min_dist_box_diagonal(self):
        d = box((0, 0), (1, 1)).min_dist_box(box((4, 5), (6, 7)))
        assert d == pytest.approx(5.0)

    def test_min_dist_box_3d(self):
        d = box((0, 0, 0), (1, 1, 1)).min_dist_box(box((1, 1, 3), (2, 2, 4)))
        assert d == pytest.approx(2.0)

    def test_overlap_fraction_full(self):
        big = box((0, 0), (10, 10))
        small = box((2, 2), (4, 4))
        assert big.overlap_fraction(small) == pytest.approx(1.0)

    def test_overlap_fraction_disjoint(self):
        assert box((0, 0), (1, 1)).overlap_fraction(box((5, 5), (6, 6))) == 0.0

    def test_overlap_fraction_half(self):
        a = box((0, 0), (2, 2))
        b = box((1, 0), (3, 2))
        assert a.overlap_fraction(b) == pytest.approx(0.5)


class TestSegment:
    def test_length(self):
        assert Segment((0, 0, 0), (3, 4, 0)).length == pytest.approx(5.0)

    def test_midpoint(self):
        assert tuple(Segment((0, 0), (2, 4)).midpoint) == (1.0, 2.0)

    def test_mbr(self):
        m = Segment((3, 1), (0, 2)).mbr()
        assert m.lo == (0, 1)
        assert m.hi == (3, 2)

    def test_point_at(self):
        p = Segment((0, 0), (4, 0)).point_at(0.25)
        assert tuple(p) == (1.0, 0.0)

    def test_dist_point_perpendicular(self):
        assert Segment((0, 0), (2, 0)).dist_point((1, 3)) == pytest.approx(3.0)

    def test_dist_point_beyond_end(self):
        assert Segment((0, 0), (1, 0)).dist_point((4, 4)) == pytest.approx(5.0)

    def test_dist_point_degenerate(self):
        assert Segment((1, 1), (1, 1)).dist_point((4, 5)) == pytest.approx(5.0)
