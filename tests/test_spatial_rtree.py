"""Unit tests for the R-tree (vs brute force)."""

import numpy as np
import pytest

from repro.errors import IndexError_
from repro.geometry.primitives import BoundingBox
from repro.spatial.rtree import RTree


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(7)
    return rng.uniform(0.0, 100.0, size=(400, 2))


@pytest.fixture(scope="module")
def tree(points):
    t = RTree(max_entries=8)
    for i, p in enumerate(points):
        t.insert_point(p, i)
    return t


class TestConstruction:
    def test_bad_capacity(self):
        with pytest.raises(IndexError_):
            RTree(max_entries=1)

    def test_bad_min_entries(self):
        with pytest.raises(IndexError_):
            RTree(max_entries=4, min_entries=3)

    def test_len(self, tree, points):
        assert len(tree) == len(points)


class TestRangeQuery:
    def test_matches_brute_force(self, tree, points):
        region = BoundingBox((20.0, 30.0), (50.0, 70.0))
        got = sorted(tree.range_query(region))
        want = sorted(
            i for i, p in enumerate(points) if region.contains_point(p)
        )
        assert got == want

    def test_empty_region(self, tree):
        region = BoundingBox((200.0, 200.0), (300.0, 300.0))
        assert tree.range_query(region) == []

    def test_whole_space(self, tree, points):
        region = BoundingBox((-1.0, -1.0), (101.0, 101.0))
        assert len(tree.range_query(region)) == len(points)

    def test_empty_tree(self):
        t = RTree()
        assert t.range_query(BoundingBox((0, 0), (1, 1))) == []


class TestCircleQuery:
    @pytest.mark.parametrize("radius", [0.0, 5.0, 25.0, 80.0])
    def test_matches_brute_force(self, tree, points, radius):
        center = (42.0, 58.0)
        got = sorted(tree.circle_query(center, radius))
        want = sorted(
            i
            for i, p in enumerate(points)
            if np.hypot(p[0] - center[0], p[1] - center[1]) <= radius
        )
        assert got == want

    def test_negative_radius_rejected(self, tree):
        with pytest.raises(IndexError_):
            tree.circle_query((0, 0), -1.0)


class TestKnn:
    @pytest.mark.parametrize("k", [1, 3, 10, 50])
    def test_matches_brute_force(self, tree, points, k):
        q = (33.0, 66.0)
        got = [i for _d, i in tree.knn(q, k)]
        want = [
            i
            for _d, i in sorted(
                (np.hypot(p[0] - q[0], p[1] - q[1]), i)
                for i, p in enumerate(points)
            )[:k]
        ]
        assert got == want

    def test_distances_ascending(self, tree):
        result = tree.knn((10.0, 10.0), 20)
        dists = [d for d, _i in result]
        assert dists == sorted(dists)

    def test_k_larger_than_tree(self, points):
        t = RTree()
        for i, p in enumerate(points[:5]):
            t.insert_point(p, i)
        assert len(t.knn((0, 0), 10)) == 5

    def test_bad_k(self, tree):
        with pytest.raises(IndexError_):
            tree.knn((0, 0), 0)

    def test_empty_tree(self):
        assert RTree().knn((0, 0), 3) == []


class TestNearestIter:
    def test_yields_all_in_order(self, tree, points):
        q = (15.0, 85.0)
        seen = list(tree.nearest_iter(q))
        assert len(seen) == len(points)
        dists = [d for d, _i in seen]
        assert dists == sorted(dists)

    def test_lazy_prefix_matches_knn(self, tree):
        import itertools

        q = (55.0, 45.0)
        prefix = list(itertools.islice(tree.nearest_iter(q), 7))
        assert prefix == tree.knn(q, 7)

    def test_empty_tree_iter(self):
        assert list(RTree().nearest_iter((0, 0))) == []


class TestBoxEntries:
    def test_box_payloads(self):
        t = RTree(max_entries=4)
        boxes = [
            BoundingBox((i, i), (i + 2.0, i + 2.0)) for i in range(30)
        ]
        for i, b in enumerate(boxes):
            t.insert(b, i)
        region = BoundingBox((5.0, 5.0), (8.0, 8.0))
        got = sorted(t.range_query(region))
        want = sorted(i for i, b in enumerate(boxes) if b.intersects(region))
        assert got == want
