"""Tests for the surface range query extension (paper §6)."""

import numpy as np
import pytest

from repro.core.baseline import exact_knn
from repro.errors import QueryError
from repro.geodesic.exact import ExactGeodesic


@pytest.fixture(scope="module")
def truth(request):
    """Exact surface distance from a fixed query to every object."""
    engine = request.getfixturevalue("small_engine")
    qv = engine.snap(700.0, 700.0)
    geo = ExactGeodesic(engine.mesh, qv)
    dists = {
        obj: geo.distance_to(engine.objects.vertex_of(obj))
        for obj in range(len(engine.objects))
    }
    return qv, dists


class TestSurfaceRangeQuery:
    def test_result_within_radius(self, small_engine, truth):
        qv, dists = truth
        radius = float(np.median(list(dists.values())))
        res = small_engine.range_query(qv, radius)
        for obj, (lb, ub) in zip(res.object_ids, res.intervals):
            assert ub <= radius + 1e-9
            assert dists[obj] <= radius + 1e-9

    def test_no_true_member_missed(self, small_engine, truth):
        """Every object whose exact distance is clearly inside (by
        more than the pathnet tolerance) must be returned."""
        qv, dists = truth
        radius = float(np.median(list(dists.values())))
        res = small_engine.range_query(qv, radius)
        got = set(res.object_ids)
        for obj, d in dists.items():
            if d <= radius * 0.95:
                assert obj in got

    def test_zero_radius(self, small_engine):
        qv = small_engine.objects.vertex_of(0)
        res = small_engine.range_query(qv, 0.0)
        assert res.object_ids == [0]

    def test_radius_growth_monotone(self, small_engine, truth):
        qv, dists = truth
        r_small = float(np.quantile(list(dists.values()), 0.3))
        r_large = float(np.quantile(list(dists.values()), 0.7))
        small = set(small_engine.range_query(qv, r_small).object_ids)
        large = set(small_engine.range_query(qv, r_large).object_ids)
        assert small <= large

    def test_huge_radius_returns_all(self, small_engine, truth):
        qv, dists = truth
        res = small_engine.range_query(qv, max(dists.values()) * 2.0)
        assert len(res.object_ids) == len(small_engine.objects)

    def test_negative_radius_rejected(self, small_engine):
        with pytest.raises(QueryError):
            small_engine.range_query(0, -1.0)

    def test_consistent_with_knn(self, small_engine, truth):
        """range(q, dS of the k-th neighbour) contains the k-NN set
        (up to boundary ties within the approximation tolerance)."""
        qv, dists = truth
        knn = exact_knn(small_engine.mesh, small_engine.objects, qv, 3)
        radius = knn[-1][1] * 1.05
        res = small_engine.range_query(qv, radius)
        inside = set(res.object_ids)
        for obj, d in knn:
            if d <= radius * 0.97:
                assert obj in inside
