"""Unit tests for the clustered, spatial and locator record stores."""

import pytest

from repro.errors import StorageError
from repro.geometry.primitives import BoundingBox
from repro.storage.clustered import ClusteredRecordStore
from repro.storage.locator import LocatorStore
from repro.storage.pages import PageManager
from repro.storage.records import RecordCodec, pack_floats, unpack_floats
from repro.storage.segstore import SpatialRecordStore
from repro.storage.stats import IOStatistics


@pytest.fixture()
def pm():
    return PageManager(page_size=256, buffer_pages=4, stats=IOStatistics())


CODEC = RecordCodec(encode=pack_floats, decode=unpack_floats)


class TestClusteredStore:
    def test_fetch_range(self, pm):
        store = ClusteredRecordStore(
            [((i,), (float(i),)) for i in range(100)], CODEC, pm
        )
        recs = store.fetch_range((10,), (19,))
        assert [r[0] for r in recs] == [float(i) for i in range(10, 20)]

    def test_scan_all_sorted(self, pm):
        items = [((i % 7, i), (float(i),)) for i in range(50)]
        store = ClusteredRecordStore(items, CODEC, pm)
        values = [int(r[0]) for r in store.scan_all()]
        want = [i for _k, (v,) in sorted(items, key=lambda kv: kv[0]) for i in [int(v)]]
        assert values == want

    def test_keys_only_no_io(self, pm):
        store = ClusteredRecordStore(
            [((i,), (float(i),)) for i in range(50)], CODEC, pm
        )
        before = pm.stats.snapshot()
        keys = store.fetch_keys_range((5,), (9,))
        assert keys == [(i,) for i in range(5, 10)]
        assert pm.stats.delta_since(before).physical_reads == 0

    def test_contiguous_range_few_pages(self, pm):
        store = ClusteredRecordStore(
            [((i,), (float(i),)) for i in range(500)], CODEC, pm
        )
        pm.drop_buffer()
        before = pm.stats.snapshot()
        store.fetch_range((0,), (24,))
        narrow = pm.stats.delta_since(before).physical_reads
        assert narrow < store.num_pages / 3


class TestSpatialStore:
    def test_fetch_region(self, pm):
        items = [
            (BoundingBox((float(x), float(y)), (x + 1.0, y + 1.0)), (float(x), float(y)))
            for x in range(10)
            for y in range(10)
        ]
        store = SpatialRecordStore(items, CODEC, pm)
        region = BoundingBox((2.5, 2.5), (4.5, 4.5))
        got = sorted(store.fetch_region(region))
        want = sorted(
            rec for mbr, rec in items if mbr.xy().intersects(region)
        )
        assert got == want

    def test_empty_store(self, pm):
        store = SpatialRecordStore([], CODEC, pm)
        assert store.fetch_region(BoundingBox((0, 0), (1, 1))) == []


class TestLocatorStore:
    def test_fetch_and_touch(self, pm):
        items = [((i,), f"id{i}", bytes([i]) * 4) for i in range(60)]
        store = LocatorStore(items, pm)
        assert store.fetch("id3") == b"\x03\x03\x03\x03"
        pm.drop_buffer()
        before = pm.stats.snapshot()
        pages = store.touch([f"id{i}" for i in range(10)])
        assert pages >= 1
        assert pm.stats.delta_since(before).physical_reads == pages

    def test_unknown_id(self, pm):
        store = LocatorStore([((0,), "a", b"x")], pm)
        with pytest.raises(StorageError):
            store.fetch("b")

    def test_duplicate_id_rejected(self, pm):
        with pytest.raises(StorageError):
            LocatorStore([((0,), "a", b"x"), ((1,), "a", b"y")], pm)

    def test_clustering_locality(self, pm):
        """Records with adjacent cluster keys share pages; touching a
        contiguous run costs few pages."""
        items = [((i,), i, b"data" * 8) for i in range(200)]
        store = LocatorStore(items, pm)
        pm.drop_buffer()
        before = pm.stats.snapshot()
        store.touch(range(20))
        contiguous = pm.stats.delta_since(before).physical_reads
        pm.drop_buffer()
        before = pm.stats.snapshot()
        store.touch(range(0, 200, 10))
        scattered = pm.stats.delta_since(before).physical_reads
        assert contiguous < scattered
