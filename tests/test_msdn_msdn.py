"""Unit tests for the MSDN facade."""

import numpy as np
import pytest

from repro.geodesic.exact import ExactGeodesic
from repro.geometry.ellipse import EllipseRegion
from repro.msdn.msdn import MSDN
from repro.storage.pages import PageManager
from repro.storage.stats import IOStatistics


@pytest.fixture(scope="module")
def msdn(request):
    mesh = request.getfixturevalue("rough_mesh")
    return MSDN(mesh)


@pytest.fixture(scope="module")
def exact_pairs(request):
    mesh = request.getfixturevalue("rough_mesh")
    rng = np.random.default_rng(12)
    pairs = {}
    for _ in range(4):
        a, b = rng.integers(0, mesh.num_vertices, size=2)
        if a == b:
            continue
        pairs[(int(a), int(b))] = ExactGeodesic(mesh, int(a)).distance_to(int(b))
    return pairs


class TestLowerBounds:
    def test_valid_bounds(self, msdn, exact_pairs):
        mesh = msdn.mesh
        for (a, b), ds in exact_pairs.items():
            pa, pb = mesh.vertices[a], mesh.vertices[b]
            de = float(np.linalg.norm(pa - pb))
            for res in msdn.resolutions:
                lb = msdn.lower_bound(pa, pb, res).value
                assert lb <= ds + 1e-6
                assert lb >= de - 1e-6

    def test_roi_restriction_stays_valid(self, msdn, exact_pairs):
        mesh = msdn.mesh
        for (a, b), ds in exact_pairs.items():
            pa, pb = mesh.vertices[a], mesh.vertices[b]
            ellipse = EllipseRegion(pa[:2], pb[:2], ds * 1.02)
            lb = msdn.lower_bound(pa, pb, 1.0, roi=[ellipse.mbr()]).value
            assert lb <= ds + 1e-6

    def test_axis_choice(self, msdn):
        assert MSDN.choose_axis((0, 0, 0), (10, 1, 0)) == 0
        assert MSDN.choose_axis((0, 0, 0), (1, 10, 0)) == 1

    def test_resolution_snapping(self, msdn):
        assert msdn.nearest_resolution(0.3) in msdn.resolutions

    def test_plane_stride_reduces_at_low_res(self, msdn):
        assert msdn.plane_stride(0.25) > msdn.plane_stride(1.0)

    def test_corridor_is_overestimate(self, msdn, exact_pairs):
        """Dummy lower bound (corridor-restricted) >= true lower bound
        at the same resolution — the inequality MR3's skip test uses."""
        mesh = msdn.mesh
        for (a, b), _ds in exact_pairs.items():
            pa, pb = mesh.vertices[a], mesh.vertices[b]
            full = msdn.lower_bound(pa, pb, 0.5)
            if not full.path_keys:
                continue
            corridor = msdn.corridor_from_path(full.path_keys, 0.5)
            dummy = msdn.lower_bound(pa, pb, 0.5, corridor=corridor)
            assert dummy.value >= full.value - 1e-9

    def test_stats_structure(self, msdn):
        stats = msdn.stats()
        assert stats["planes_x"] > 0
        assert stats["planes_y"] > 0
        assert all(count > 0 for count in stats["chunks"].values())


class TestStorage:
    def test_lower_bound_charges_io(self, request):
        mesh = request.getfixturevalue("rough_mesh")
        stats = IOStatistics()
        pm = PageManager(page_size=1024, buffer_pages=4, stats=stats)
        msdn = MSDN(mesh)
        msdn.attach_storage(pm)
        pa = mesh.vertices[3]
        pb = mesh.vertices[mesh.num_vertices - 5]
        before = stats.snapshot()
        msdn.lower_bound(pa, pb, 0.5)
        assert stats.delta_since(before).physical_reads > 0
        # charge_io=False leaves the counters untouched.
        pm.drop_buffer()
        before = stats.snapshot()
        msdn.lower_bound(pa, pb, 0.5, charge_io=False)
        assert stats.delta_since(before).physical_reads == 0

    def test_touch_region(self, request):
        mesh = request.getfixturevalue("rough_mesh")
        stats = IOStatistics()
        pm = PageManager(page_size=1024, buffer_pages=4, stats=stats)
        msdn = MSDN(mesh)
        msdn.attach_storage(pm)
        before = stats.snapshot()
        msdn.touch_region(0.25, None, axes=(0,))
        assert stats.delta_since(before).physical_reads > 0
