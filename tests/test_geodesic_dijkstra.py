"""Unit tests for Dijkstra (cross-checked against networkx)."""

import networkx as nx
import numpy as np
import pytest

from repro.errors import GeodesicError
from repro.geodesic.dijkstra import dijkstra, dijkstra_with_parents, shortest_path


def random_graph(n=60, p=0.08, seed=5):
    rng = np.random.default_rng(seed)
    adj = [[] for _ in range(n)]
    g = nx.Graph()
    g.add_nodes_from(range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                w = float(rng.uniform(0.1, 10.0))
                adj[u].append((v, w))
                adj[v].append((u, w))
                g.add_edge(u, v, weight=w)
    return adj, g


class TestAgainstNetworkx:
    def test_all_distances(self):
        adj, g = random_graph()
        dist = dijkstra(adj, 0)
        want = nx.single_source_dijkstra_path_length(g, 0)
        assert set(dist) == set(want)
        for node, d in want.items():
            assert dist[node] == pytest.approx(d)

    def test_multiple_sources(self):
        adj, g = random_graph(seed=9)
        for src in (3, 17, 42):
            dist = dijkstra(adj, src)
            want = nx.single_source_dijkstra_path_length(g, src)
            for node, d in want.items():
                assert dist[node] == pytest.approx(d)

    def test_path_is_valid(self):
        adj, g = random_graph(seed=2)
        want = nx.single_source_dijkstra_path_length(g, 0)
        target = max(want, key=want.get)
        d, path = shortest_path(adj, 0, target)
        assert d == pytest.approx(want[target])
        assert path[0] == 0 and path[-1] == target
        total = 0.0
        for u, v in zip(path, path[1:]):
            total += dict(adj[u])[v]
        assert total == pytest.approx(d)


class TestPruning:
    def test_targets_early_exit(self):
        adj, _g = random_graph()
        full = dijkstra(adj, 0)
        partial = dijkstra(adj, 0, targets={1})
        assert partial[1] == pytest.approx(full[1])
        assert len(partial) <= len(full)

    def test_max_dist_cap(self):
        adj, _g = random_graph()
        capped = dijkstra(adj, 0, max_dist=5.0)
        full = dijkstra(adj, 0)
        for node, d in capped.items():
            assert d <= 5.0 + 1e-12
            assert d == pytest.approx(full[node])
        for node, d in full.items():
            if d <= 5.0:
                assert node in capped


class TestEdgeCases:
    def test_isolated_source(self):
        assert dijkstra([[], []], 0) == {0: 0.0}

    def test_unreachable_target_raises(self):
        with pytest.raises(GeodesicError):
            shortest_path([[], []], 0, 1)

    def test_bad_source(self):
        with pytest.raises(GeodesicError):
            dijkstra([[]], 5)

    def test_parents_consistent(self):
        adj, _g = random_graph(seed=13)
        dist, parent = dijkstra_with_parents(adj, 0)
        for node, p in parent.items():
            w = dict(adj[p])[node]
            assert dist[node] == pytest.approx(dist[p] + w)

    def test_self_path(self):
        adj, _g = random_graph()
        d, path = shortest_path(adj, 4, 4)
        assert d == 0.0
        assert path == [4]
