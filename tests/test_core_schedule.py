"""Unit tests for resolution schedules."""

import pytest

from repro.core.schedule import ResolutionSchedule
from repro.errors import QueryError
from repro.multires.dmtm import RESOLUTION_PATHNET


class TestPresets:
    def test_s1_levels(self):
        s = ResolutionSchedule.preset(1)
        assert s.dmtm_levels == (0.005, 0.25, 0.5, 0.75, 1.0, RESOLUTION_PATHNET)
        assert s.msdn_levels == (0.25, 0.375, 0.5, 0.75, 1.0)
        assert len(s) == 6

    def test_s2_and_s3_shorter(self):
        assert len(ResolutionSchedule.preset(2)) < len(ResolutionSchedule.preset(1))
        assert len(ResolutionSchedule.preset(3)) < len(ResolutionSchedule.preset(2))

    def test_ea_has_no_coarse_levels(self):
        s = ResolutionSchedule.preset("ea")
        assert s.dmtm_levels[0] == 1.0
        assert s.msdn_levels == (1.0,)

    def test_unknown_rejected(self):
        with pytest.raises(QueryError):
            ResolutionSchedule.preset(7)

    def test_all_presets_end_at_pathnet(self):
        for key in (1, 2, 3, "ea"):
            s = ResolutionSchedule.preset(key)
            assert s.dmtm_levels[-1] == RESOLUTION_PATHNET


class TestLevels:
    def test_saturation(self):
        s = ResolutionSchedule.preset(1)
        # MSDN ladder is shorter: last iteration repeats its last level.
        dmtm, msdn = s.level(5)
        assert dmtm == RESOLUTION_PATHNET
        assert msdn == 1.0

    def test_pairs_iterate_in_order(self):
        s = ResolutionSchedule.preset(2)
        pairs = list(s.levels())
        assert pairs[0] == (0.005, 0.25)
        assert pairs[-1] == (RESOLUTION_PATHNET, 1.0)

    def test_out_of_range(self):
        s = ResolutionSchedule.preset(3)
        with pytest.raises(QueryError):
            s.level(len(s))


class TestCustom:
    def test_custom_ok(self):
        s = ResolutionSchedule.custom([0.1, 1.0], [0.5, 1.0], name="mine")
        assert s.name == "mine"
        assert len(s) == 2

    def test_custom_must_ascend(self):
        with pytest.raises(QueryError):
            ResolutionSchedule.custom([1.0, 0.5], [0.5, 1.0])

    def test_custom_nonempty(self):
        with pytest.raises(QueryError):
            ResolutionSchedule.custom([], [1.0])
