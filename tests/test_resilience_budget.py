"""Budgeted (anytime) queries: graceful degradation with sound error
bounds.

Contract under test:

* an exhausted budget never raises — the result is flagged
  ``degraded=True`` and carries ``max_error``;
* a generous (or absent) budget returns the exact MR3 answer with
  ``degraded=False`` and bit-identical results/intervals/reads;
* the soundness property: on the differential grid, the degraded
  answer's reported k-th upper bound overshoots the *true* k-th
  surface distance by at most ``max_error``.
"""

from __future__ import annotations

import pytest

from repro.core.baseline import exact_knn
from repro.core.budget import BudgetTracker, QueryBudget
from repro.core.engine import SurfaceKNNEngine
from repro.errors import QueryError

EPS = 1e-6


class TestQueryBudget:
    def test_validation(self):
        with pytest.raises(QueryError):
            QueryBudget(max_pages=-1)
        with pytest.raises(QueryError):
            QueryBudget(max_seconds=-0.5)

    def test_unlimited(self):
        assert QueryBudget().unlimited
        assert not QueryBudget(max_pages=10).unlimited
        assert not QueryBudget(max_seconds=1.0).unlimited

    def test_tracker_without_stats_tracks_time_only(self):
        tracker = BudgetTracker(QueryBudget(max_pages=1), stats=None)
        assert not tracker.check()  # page limit untracked without stats
        assert tracker.pages_used() == 0

    def test_exhaustion_is_sticky(self):
        tracker = BudgetTracker(QueryBudget(max_seconds=0.0))
        assert tracker.check()
        assert tracker.exhausted
        assert "time budget" in tracker.exhausted_reason
        assert tracker.check()  # stays exhausted


class TestDegradedQueries:
    def test_tiny_page_budget_degrades_never_raises(self, small_engine):
        result = small_engine.query(40, 3, budget=QueryBudget(max_pages=1))
        assert result.degraded
        assert len(result.object_ids) == 3
        assert result.max_error > 0.0
        assert result.budget_reason and "page budget" in result.budget_reason
        assert all(lb <= ub + EPS for lb, ub in result.intervals)

    def test_zero_time_budget_degrades_never_raises(self, small_engine):
        result = small_engine.query(40, 3, budget=QueryBudget(max_seconds=0.0))
        assert result.degraded
        assert len(result.object_ids) == 3
        assert "time budget" in result.budget_reason

    def test_generous_budget_is_exact_and_identical(self, small_engine):
        want = small_engine.query(40, 3)
        got = small_engine.query(
            40, 3, budget=QueryBudget(max_pages=10_000_000, max_seconds=3600)
        )
        assert not got.degraded
        assert got.max_error == 0.0
        assert got.object_ids == want.object_ids
        assert got.intervals == want.intervals
        assert got.metrics.logical_reads == want.metrics.logical_reads

    def test_no_budget_is_never_degraded(self, small_engine):
        result = small_engine.query(40, 3)
        assert not result.degraded
        assert result.max_error == 0.0
        assert result.budget_reason is None

    def test_budget_caps_page_spend(self, small_engine):
        free = small_engine.query(40, 3)
        capped = small_engine.query(40, 3, budget=QueryBudget(max_pages=50))
        assert capped.degraded
        assert capped.metrics.logical_reads < free.metrics.logical_reads

    def test_degraded_trace_record_carries_error_bound(self, small_engine):
        record = small_engine.query(
            40, 3, budget=QueryBudget(max_pages=1)
        ).trace_record()
        assert record["degraded"] is True
        assert record["max_error"] > 0.0
        assert "budget_reason" in record

    def test_exact_record_has_no_degradation_keys(self, small_engine):
        record = small_engine.query(40, 3).trace_record()
        assert "degraded" not in record
        assert "max_error" not in record

    def test_degraded_explain_mentions_budget(self, small_engine):
        text = small_engine.query(
            40, 3, budget=QueryBudget(max_pages=1)
        ).explain()
        assert "DEGRADED" in text
        assert "max_error" in text

    def test_embedded_point_query_accepts_budget(self, small_engine):
        bounds = small_engine.mesh.xy_bounds()
        cx, cy = bounds.center
        result = small_engine.query_point(
            float(cx) + 1.7, float(cy) + 2.3, 3,
            budget=QueryBudget(max_pages=1),
        )
        assert result.degraded
        assert len(result.object_ids) == 3


class TestMaxErrorSoundness:
    """The property the anytime contract hangs on: on every
    differential-grid case, the true k-th surface distance lies within
    ``max_error`` of the reported k-th upper bound."""

    @pytest.fixture(scope="class")
    def engines(self, flat_mesh, rough_mesh):
        return [
            SurfaceKNNEngine(flat_mesh, density=25.0, seed=11),
            SurfaceKNNEngine(rough_mesh, density=12.0, seed=7),
        ]

    def _grid_vertices(self, mesh):
        bounds = mesh.xy_bounds()
        cx, cy = bounds.center
        lox, loy = bounds.lo[0], bounds.lo[1]
        hix, hiy = bounds.hi[0], bounds.hi[1]
        picks = [
            (cx, cy),
            (lox + 0.15 * (hix - lox), loy + 0.2 * (hiy - loy)),
            (hix - 0.1 * (hix - lox), cy),
        ]
        return sorted({mesh.nearest_vertex(p) for p in picks})

    @pytest.mark.parametrize("max_pages", [1, 40, 120])
    def test_max_error_bounds_true_error(self, engines, max_pages):
        budget = QueryBudget(max_pages=max_pages)
        checked = degraded_count = 0
        for engine in engines:
            for qv in self._grid_vertices(engine.mesh):
                for k in (1, 3, 5):
                    if k > len(engine.objects):
                        continue
                    result = engine.query(qv, k, budget=budget)
                    checked += 1
                    truth = exact_knn(
                        engine.mesh, engine.objects, qv, k
                    )
                    true_kth = truth[k - 1][1]
                    reported_kth_ub = result.intervals[-1][1]
                    if not result.degraded:
                        continue
                    degraded_count += 1
                    # The reported k-th ub is a genuine upper bound on
                    # the true k-th distance, and max_error bounds the
                    # overshoot.
                    assert reported_kth_ub >= true_kth - EPS, (
                        f"qv={qv} k={k}: reported ub {reported_kth_ub:.3f} "
                        f"below true kth {true_kth:.3f}"
                    )
                    assert reported_kth_ub - true_kth <= result.max_error + EPS, (
                        f"qv={qv} k={k} pages={max_pages}: true error "
                        f"{reported_kth_ub - true_kth:.3f} exceeds "
                        f"max_error {result.max_error:.3f}"
                    )
        assert checked > 0
        if max_pages == 1:
            assert degraded_count > 0, (
                "1-page budget never degraded — property untested"
            )
