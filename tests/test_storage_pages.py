"""Unit tests for the page manager and buffer pool."""

import pytest

from repro.errors import StorageError
from repro.storage.pages import PageManager
from repro.storage.stats import DiskModel, IOStatistics


class TestAllocation:
    def test_ids_sequential(self):
        pm = PageManager(page_size=128)
        assert pm.allocate(b"a") == 0
        assert pm.allocate(b"b") == 1
        assert pm.num_pages == 2

    def test_oversize_rejected(self):
        pm = PageManager(page_size=64)
        with pytest.raises(StorageError):
            pm.allocate(b"x" * 65)

    def test_bad_geometry(self):
        with pytest.raises(StorageError):
            PageManager(page_size=16)
        with pytest.raises(StorageError):
            PageManager(buffer_pages=0)


class TestBufferPool:
    def test_miss_then_hit(self):
        stats = IOStatistics()
        pm = PageManager(page_size=128, buffer_pages=4, stats=stats)
        pid = pm.allocate(b"hello")
        assert pm.read(pid) == b"hello"
        assert stats.physical_reads == 1
        pm.read(pid)
        assert stats.physical_reads == 1  # buffer hit
        assert stats.logical_reads == 2

    def test_lru_eviction(self):
        stats = IOStatistics()
        pm = PageManager(page_size=128, buffer_pages=2, stats=stats)
        pids = [pm.allocate(bytes([i])) for i in range(3)]
        pm.read(pids[0])
        pm.read(pids[1])
        pm.read(pids[2])  # evicts pids[0]
        pm.read(pids[0])  # miss again
        assert stats.physical_reads == 4

    def test_lru_recency_updated(self):
        stats = IOStatistics()
        pm = PageManager(page_size=128, buffer_pages=2, stats=stats)
        pids = [pm.allocate(bytes([i])) for i in range(3)]
        pm.read(pids[0])
        pm.read(pids[1])
        pm.read(pids[0])  # refresh 0; 1 becomes LRU
        pm.read(pids[2])  # evicts 1
        pm.read(pids[0])  # still cached
        assert stats.physical_reads == 3

    def test_drop_buffer(self):
        stats = IOStatistics()
        pm = PageManager(page_size=128, buffer_pages=4, stats=stats)
        pid = pm.allocate(b"z")
        pm.read(pid)
        pm.drop_buffer()
        pm.read(pid)
        assert stats.physical_reads == 2

    def test_missing_page(self):
        pm = PageManager()
        with pytest.raises(StorageError):
            pm.read(99)


class TestStatistics:
    def test_snapshot_delta(self):
        stats = IOStatistics()
        pm = PageManager(page_size=128, buffer_pages=1, stats=stats)
        a = pm.allocate(b"a")
        b = pm.allocate(b"b")
        before = stats.snapshot()
        pm.read(a)
        pm.read(b)
        delta = stats.delta_since(before)
        assert delta.physical_reads == 2
        assert delta.logical_reads == 2

    def test_reset(self):
        stats = IOStatistics(logical_reads=5, physical_reads=3)
        stats.reset()
        assert stats.logical_reads == 0
        assert stats.physical_reads == 0

    def test_disk_model(self):
        model = DiskModel(seconds_per_page=0.01)
        stats = IOStatistics(physical_reads=25)
        assert model.io_seconds(stats) == pytest.approx(0.25)
