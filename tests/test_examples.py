"""The examples are part of the public contract: each must run to
completion and print its key sections (smoke tests, CI-sized)."""

import runpy
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "MR3 found 5 neighbours" in out
        assert "exact baseline" in out
        assert "result sets agree: True" in out

    def test_wildlife_tracking(self):
        out = run_example("wildlife_tracking.py")
        assert "assigning sightings to groups" in out
        assert "minimum average ground speed" in out

    def test_rover_mission(self):
        out = run_example("rover_mission.py")
        assert "nearest science targets" in out
        assert "slope limit" in out
        assert "good enough" in out or "ladder exhausted" in out

    def test_multires_terrain(self):
        out = run_example("multires_terrain.py")
        assert "LOD 100%" in out
        assert "LOD 5%" in out
        assert "ub at" in out

    def test_herd_analytics(self):
        out = run_example("herd_analytics.py")
        assert "walking distance of the" in out
        assert "closest den pair" in out
