"""Degraded-mode execution under persistent storage faults.

Contract under test: with a kill-list of permanently dead DMTM/MSDN
pages, every query either answers exactly or comes back
``degraded=True`` with ``degraded_reason == "storage"`` and intervals
that still sandwich the exact surface distances — never a crash.
Engine health tracks the storage substrate, the circuit breaker
recovers through half-open probes, and wall-clock budgets reach into
the CSR kernels.
"""

from __future__ import annotations

import math
import time

import pytest

from repro.core.baseline import exact_knn
from repro.core.batch import BatchQueryExecutor, CircuitBreaker
from repro.core.budget import QueryBudget
from repro.core.engine import SurfaceKNNEngine
from repro.core.health import (
    HEALTH_DEGRADED,
    HEALTH_FAILED,
    HEALTH_HEALTHY,
    EngineHealth,
)
from repro.errors import QueryError, StorageError
from repro.geodesic.csr import csr_from_adjacency, dijkstra_csr
from repro.geodesic.deadline import DeadlineExceeded, deadline_scope
from repro.obs.export import query_record
from repro.storage.faults import kill_random_pages

KILL_FRACTION = 0.10
KILL_SEED = 13
QUERY_VERTICES = (10, 40, 100, 200)


def killed_engine(mesh, **kwargs) -> tuple[SurfaceKNNEngine, list[int]]:
    engine = SurfaceKNNEngine(mesh, density=10.0, seed=3, **kwargs)
    dead = kill_random_pages(engine.pages, KILL_FRACTION, seed=KILL_SEED)
    assert dead, "the kill-list must not be empty at this scale"
    return engine, dead


class TestStorageFallbackSoundness:
    @pytest.fixture(scope="class")
    def dead_engine(self, bh_mesh):
        engine, _dead = killed_engine(bh_mesh)
        return engine

    def test_every_query_answers_no_crashes(self, dead_engine):
        degraded = 0
        for qv in QUERY_VERTICES:
            result = dead_engine.query(qv, 3)  # must not raise
            assert len(result.object_ids) == 3
            if result.degraded:
                degraded += 1
                assert result.degraded_reason == "storage"
            else:
                assert result.degraded_reason is None
        assert degraded > 0, "kill-list never touched the bound pages"

    def test_degraded_intervals_sandwich_exact_distance(
        self, dead_engine, bh_mesh
    ):
        qv = QUERY_VERTICES[0]
        result = dead_engine.query(qv, 3)
        assert result.degraded and result.degraded_reason == "storage"
        truth = dict(
            exact_knn(bh_mesh, dead_engine.objects, qv, len(dead_engine.objects))
        )
        for obj, (lb, ub) in zip(result.object_ids, result.intervals):
            ds = truth[obj]
            assert lb <= ds + 1e-6 + 1e-9 * ds
            assert ub >= ds - 1e-6 - 1e-9 * ds

    def test_degraded_max_error_is_finite_and_nonnegative(self, dead_engine):
        for qv in QUERY_VERTICES:
            result = dead_engine.query(qv, 3)
            if result.degraded:
                assert math.isfinite(result.max_error)
                assert result.max_error >= 0.0

    def test_quarantine_absorbs_the_retry_storms(self, dead_engine):
        for qv in QUERY_VERTICES:
            dead_engine.query(qv, 3)
        stats = dead_engine.pages.quarantine.stats()
        assert stats["quarantined"] > 0
        assert stats["fast_fails_total"] > 0

    def test_degraded_mode_off_restores_fail_stop(self, bh_mesh):
        # Find a query the degraded engine survives only by fallback,
        # then replay it against a fail-stop twin with the same
        # kill-list: it must raise instead.
        soft, _ = killed_engine(bh_mesh)
        degraded_qv = next(
            qv for qv in QUERY_VERTICES if soft.query(qv, 3).degraded
        )
        hard, _ = killed_engine(bh_mesh, degraded_mode=False)
        with pytest.raises(StorageError):
            hard.query(degraded_qv, 3)


class TestDegradedReasonThreading:
    def test_storage_reason_reaches_query_record(self, bh_mesh):
        engine, _ = killed_engine(bh_mesh)
        result = next(
            engine.query(qv, 3)
            for qv in QUERY_VERTICES
            if engine.query(qv, 3).degraded
        )
        record = query_record(result)
        assert record["degraded"] is True
        assert record["degraded_reason"] == "storage"

    def test_budget_degradation_says_budget(self, small_engine):
        result = small_engine.query(40, 3, budget=QueryBudget(max_pages=1))
        assert result.degraded
        assert result.degraded_reason == "budget"
        assert query_record(result)["degraded_reason"] == "budget"

    def test_clean_result_has_no_reason(self, small_engine):
        result = small_engine.query(40, 3)
        assert not result.degraded
        assert result.degraded_reason is None
        assert "degraded_reason" not in query_record(result)


class TestEngineHealth:
    def test_fraction_validated(self, small_engine):
        with pytest.raises(QueryError):
            EngineHealth(small_engine, failed_quarantine_fraction=0.0)
        with pytest.raises(QueryError):
            EngineHealth(small_engine, failed_quarantine_fraction=1.5)

    def test_fresh_engine_is_healthy(self, bh_mesh):
        engine = SurfaceKNNEngine(bh_mesh, density=10.0, seed=3)
        assert engine.health.state() == HEALTH_HEALTHY
        assert engine.health.healthy

    def test_quarantine_degrades_then_transition_recorded(self, bh_mesh):
        engine, _ = killed_engine(bh_mesh)
        assert engine.health.state() == HEALTH_HEALTHY
        for qv in QUERY_VERTICES:
            engine.query(qv, 3)
        assert engine.health.state() == HEALTH_DEGRADED
        assert engine.health.cause_kind == "quarantine"
        assert (HEALTH_HEALTHY, HEALTH_DEGRADED) in [
            (a, b) for a, b, _cause in engine.health.transitions
        ]
        snapshot = engine.health.as_dict()
        assert snapshot["state"] == HEALTH_DEGRADED
        assert snapshot["quarantined_pages"] > 0

    def test_quarantine_fraction_fails_the_engine(self, bh_mesh):
        engine, _ = killed_engine(bh_mesh)
        # With an absurdly low threshold a single quarantined page
        # marks the engine failed.
        engine.health = EngineHealth(engine, failed_quarantine_fraction=1e-6)
        for qv in QUERY_VERTICES:
            engine.query(qv, 3)
        assert engine.health.state() == HEALTH_FAILED
        assert engine.health.cause_kind == "quarantine"

    def test_open_breaker_fails_the_engine(self, bh_mesh):
        engine = SurfaceKNNEngine(bh_mesh, density=10.0, seed=3)
        breaker = CircuitBreaker(threshold=2)
        engine.health.attach_breaker(breaker)
        breaker.record_failure()
        assert engine.health.state() == HEALTH_HEALTHY
        breaker.record_failure()
        assert engine.health.state() == HEALTH_FAILED
        assert engine.health.cause_kind == "breaker"
        breaker.record_success()
        assert engine.health.state() == HEALTH_HEALTHY


class TestCircuitBreakerHalfOpen:
    def tripped(self, threshold=2, cooldown=3) -> CircuitBreaker:
        breaker = CircuitBreaker(threshold=threshold, cooldown=cooldown)
        for _ in range(threshold):
            breaker.record_failure()
        assert breaker.open
        return breaker

    def test_cooldown_validated(self):
        with pytest.raises(QueryError):
            CircuitBreaker(cooldown=0)

    def test_probe_granted_after_cooldown_denials(self):
        breaker = self.tripped(cooldown=3)
        assert not breaker.allow()
        assert not breaker.allow()
        assert breaker.allow()  # third denial becomes the probe
        assert breaker.half_open
        # Only one probe in flight: concurrent callers stay denied.
        assert not breaker.allow()

    def test_probe_success_closes_and_counts_recovery(self):
        breaker = self.tripped(cooldown=3)
        for _ in range(2):
            breaker.allow()
        assert breaker.allow()
        breaker.record_success()
        assert not breaker.open
        assert not breaker.half_open
        assert breaker.recoveries == 1
        assert breaker.allow()

    def test_probe_failure_reopens_and_counts(self):
        breaker = self.tripped(cooldown=3)
        for _ in range(2):
            breaker.allow()
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.reopens == 1
        assert breaker.open
        assert not breaker.half_open
        assert not breaker.allow()
        # The cycle repeats: another cooldown's worth of denials earns
        # another probe.
        assert not breaker.allow()
        assert breaker.allow()
        assert breaker.half_open


class TestBatchUnderPersistentFaults:
    def test_summary_splits_reasons_and_reports_health(self, bh_mesh):
        engine, _ = killed_engine(bh_mesh)
        executor = BatchQueryExecutor(engine, workers=4)
        report = executor.run([(qv, 3) for qv in QUERY_VERTICES])
        summary = report.summary()
        assert summary["failed"] == 0
        assert summary["skipped"] == 0
        assert summary["degraded_storage"] > 0
        assert summary["degraded_budget"] == 0
        assert (
            summary["degraded"]
            == summary["degraded_storage"] + summary["degraded_budget"]
        )
        assert summary["engine_health"]["state"] == HEALTH_DEGRADED

    def test_budget_and_storage_counted_apart(self, small_engine):
        executor = BatchQueryExecutor(
            small_engine, workers=2, budget=QueryBudget(max_pages=1)
        )
        summary = executor.run([(40, 3), (50, 2)]).summary()
        assert summary["degraded_budget"] == summary["degraded"]
        assert summary["degraded_storage"] == 0


class TestKernelDeadline:
    def chain_csr(self, n: int = 256):
        adj = [[] for _ in range(n)]
        for u in range(n - 1):
            adj[u].append((u + 1, 1.0))
            adj[u + 1].append((u, 1.0))
        return csr_from_adjacency(adj)

    def test_kernel_notices_expired_deadline(self):
        csr = self.chain_csr()
        with deadline_scope(time.perf_counter() - 1.0):
            with pytest.raises(DeadlineExceeded):
                dijkstra_csr(csr, 0)

    def test_no_deadline_no_interference(self):
        csr = self.chain_csr(64)
        dist = dijkstra_csr(csr, 0)
        assert dist[63] == pytest.approx(63.0)

    def test_zero_second_budget_degrades_not_crashes(self, small_engine):
        result = small_engine.query(40, 3, budget=QueryBudget(max_seconds=0.0))
        assert result.degraded
        assert result.degraded_reason == "budget"
        assert len(result.object_ids) == 3
