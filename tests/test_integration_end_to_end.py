"""End-to-end integration: many queries, every method, one truth.

These are the "does the whole pipeline answer the paper's query
correctly" tests: MR3 (all step lengths), EA and the extensions are
validated against exact geodesic ground truth over a grid of query
points on both datasets.
"""

import numpy as np
import pytest

from repro.core.baseline import exact_knn


def check_agreement(engine, qv, k, method, step):
    result = engine.query(qv, k, method=method, step_length=step)
    truth = exact_knn(engine.mesh, engine.objects, qv, k)
    want = {obj for obj, _d in truth}
    got = set(result.object_ids)
    if got == want:
        return True
    # Disagreements may only involve near-ties within the pathnet
    # approximation tolerance.
    all_truth = dict(
        exact_knn(engine.mesh, engine.objects, qv, len(engine.objects))
    )
    kth = truth[-1][1]
    return all(all_truth[obj] <= kth * 1.05 for obj in got - want)


@pytest.mark.slow
class TestEndToEnd:
    @pytest.mark.parametrize("dataset", ["bh", "ep"])
    def test_grid_of_queries(self, request, dataset):
        engine = request.getfixturevalue(
            "small_engine" if dataset == "bh" else "ep_engine"
        )
        bounds = engine.mesh.xy_bounds()
        lo = np.asarray(bounds.lo)
        hi = np.asarray(bounds.hi)
        for fx in (0.3, 0.7):
            for fy in (0.35, 0.65):
                q = lo + np.array([fx, fy]) * (hi - lo)
                qv = engine.snap(float(q[0]), float(q[1]))
                for method, step in (("mr3", 1), ("mr3", 3), ("ea", 1)):
                    assert check_agreement(engine, qv, 3, method, step), (
                        dataset,
                        qv,
                        method,
                        step,
                    )

    def test_determinism(self, small_engine):
        qv = small_engine.snap(900.0, 1100.0)
        first = small_engine.query(qv, 4, step_length=2)
        second = small_engine.query(qv, 4, step_length=2)
        assert first.object_ids == second.object_ids
        assert first.intervals == second.intervals
        assert (
            first.metrics.pages_accessed == second.metrics.pages_accessed
        )

    def test_interval_width_shrinks_with_schedule_length(self, small_engine):
        """s=1 (more levels) ends with intervals at least as tight as
        s=3 (fewer levels) for the same query."""
        qv = small_engine.snap(900.0, 1100.0)
        fine = small_engine.query(qv, 3, step_length=1)
        coarse = small_engine.query(qv, 3, step_length=3)
        fine_width = sum(ub - lb for lb, ub in fine.intervals)
        coarse_width = sum(ub - lb for lb, ub in coarse.intervals)
        assert fine_width <= coarse_width * 1.25

    def test_k_equal_object_count(self, small_engine):
        qv = small_engine.snap(500.0, 1500.0)
        res = small_engine.query(qv, len(small_engine.objects))
        assert sorted(res.object_ids) == list(range(len(small_engine.objects)))

    def test_all_queries_on_tiny_terrain(self, request):
        """Exhaustive: every vertex of a tiny terrain as query."""
        from repro.core.engine import SurfaceKNNEngine
        from repro.terrain.mesh import TriangleMesh
        from repro.terrain.synthetic import fractal_dem

        mesh = TriangleMesh.from_dem(
            fractal_dem(size=7, relief=300.0, seed=9)
        )
        engine = SurfaceKNNEngine(
            mesh, density=40.0, seed=1, with_storage=False
        )
        for qv in range(0, mesh.num_vertices, 7):
            assert check_agreement(engine, qv, 2, "mr3", 2), qv
