"""Unit tests for record serialization and pagination."""

import pytest

from repro.errors import StorageError
from repro.storage.records import (
    pack_floats,
    pack_page,
    paginate,
    unpack_floats,
    unpack_page,
)


class TestFloatCodec:
    def test_roundtrip(self):
        values = (1.5, -2.25, 3e9, 0.0)
        assert unpack_floats(pack_floats(values)) == values

    def test_empty(self):
        assert unpack_floats(pack_floats([])) == ()


class TestPageCodec:
    def test_roundtrip(self):
        records = [b"alpha", b"", b"gamma" * 10]
        page = pack_page(records, page_size=512)
        assert unpack_page(page) == records

    def test_overflow_rejected(self):
        with pytest.raises(StorageError):
            pack_page([b"x" * 100], page_size=64)


class TestPaginate:
    def test_preserves_order(self):
        records = [bytes([i]) * 10 for i in range(50)]
        pages = paginate(records, page_size=128)
        flattened = [r for page in pages for r in page]
        assert flattened == records

    def test_respects_page_size(self):
        records = [b"x" * 30 for _ in range(40)]
        for page in paginate(records, page_size=128):
            packed = pack_page(page, page_size=128)
            assert len(packed) <= 128

    def test_single_huge_record_rejected(self):
        with pytest.raises(StorageError):
            paginate([b"x" * 1000], page_size=128)

    def test_empty_input(self):
        assert paginate([], page_size=128) == []
