"""Concurrency stress suite for :mod:`repro.core.batch`.

The headline guarantee under test: batch execution is
*observationally identical* to a sequential ``engine.query`` loop —
same ids, same intervals, same per-query logical reads — no matter
how many workers interleave, because the shared bound cache only
memoizes pure computations and page charging happens before any
cache consult.  Plus: no trace or metric cross-talk between workers,
and the global I/O aggregate equals the sum of per-query deltas.
"""

from __future__ import annotations

import pytest

from repro.core.batch import (
    BatchQuery,
    BatchQueryExecutor,
    BatchReport,
    BoundCache,
    shared_bound_cache,
)
from repro.core.engine import SurfaceKNNEngine
from repro.errors import QueryError
from repro.storage.stats import ThreadLocalIOStatistics


@pytest.fixture(scope="module")
def batch_engine(bh_mesh) -> SurfaceKNNEngine:
    """Module-owned engine: the executor installs a thread-local
    stats router on it, which must not leak into session fixtures."""
    return SurfaceKNNEngine(bh_mesh, density=10.0, seed=3)


def _mixed_specs(engine, n: int) -> list[BatchQuery]:
    """A deterministic mix of query positions, ks and step lengths."""
    mesh = engine.mesh
    verts = sorted(
        {
            mesh.nearest_vertex(p)
            for p in (
                mesh.xy_bounds().center,
                (200.0, 300.0),
                (1100.0, 200.0),
                (300.0, 1100.0),
                (900.0, 1000.0),
            )
        }
    )
    ks = (1, 2, 4, 6)
    steps = (1, 2)
    specs = []
    for i in range(n):
        specs.append(
            BatchQuery(
                vertex=verts[i % len(verts)],
                k=ks[(i // len(verts)) % len(ks)],
                step_length=steps[i % len(steps)],
            )
        )
    return specs


def _assert_identical(reference, results):
    assert len(reference) == len(results)
    for a, b in zip(reference, results):
        assert a.object_ids == b.object_ids
        assert a.intervals == b.intervals
        assert a.metrics.logical_reads == b.metrics.logical_reads


class TestIdentity:
    def test_workers1_equals_sequential_loop(self, batch_engine):
        specs = _mixed_specs(batch_engine, 12)
        seq = [
            batch_engine.query(s.vertex, s.k, step_length=s.step_length)
            for s in specs
        ]
        report = BatchQueryExecutor(batch_engine, workers=1).run(specs)
        _assert_identical(seq, report.results)

    @pytest.mark.slow
    def test_stress_8_workers_100_queries(self, batch_engine):
        """8 workers x 100 mixed queries, bit-identical to sequential."""
        specs = _mixed_specs(batch_engine, 100)
        seq = [
            batch_engine.query(s.vertex, s.k, step_length=s.step_length)
            for s in specs
        ]
        cache = BoundCache()
        report = BatchQueryExecutor(
            batch_engine, workers=8, bound_cache=cache
        ).run(specs)
        _assert_identical(seq, report.results)
        assert report.workers == 8
        assert len(report.latencies) == 100
        # The mixed workload repeats specs, so sharing must pay off.
        assert cache.hits > 0

    def test_shared_cache_across_executors_still_identical(
        self, batch_engine
    ):
        specs = _mixed_specs(batch_engine, 8)
        seq = [
            batch_engine.query(s.vertex, s.k, step_length=s.step_length)
            for s in specs
        ]
        cache = BoundCache()
        first = BatchQueryExecutor(
            batch_engine, workers=2, bound_cache=cache
        ).run(specs)
        # Second run hits the warm cache almost everywhere.
        second = BatchQueryExecutor(
            batch_engine, workers=4, bound_cache=cache
        ).run(specs)
        _assert_identical(seq, first.results)
        _assert_identical(seq, second.results)

    def test_share_bounds_false_disables_cache(self, batch_engine):
        executor = BatchQueryExecutor(
            batch_engine, workers=2, share_bounds=False
        )
        assert executor.bound_cache is None
        specs = _mixed_specs(batch_engine, 4)
        seq = [
            batch_engine.query(s.vertex, s.k, step_length=s.step_length)
            for s in specs
        ]
        report = executor.run(specs)
        _assert_identical(seq, report.results)
        assert report.cache_stats == {}


class TestIsolation:
    def test_no_trace_cross_talk(self, batch_engine):
        """Every result's span tree contains exactly its own query."""
        specs = _mixed_specs(batch_engine, 10)
        report = BatchQueryExecutor(
            batch_engine, workers=4, tracing=True
        ).run(specs)
        for spec, result in zip(specs, report.results):
            root = result.root_span
            assert root is not None and root.name == "engine.query"
            mr3_spans = root.find("mr3.query")
            assert len(mr3_spans) == 1, "foreign query spans leaked in"
            attrs = mr3_spans[0].attributes
            assert attrs["query_vertex"] == spec.vertex
            assert attrs["k"] == spec.k
            # The whole tree is finished and consistent.
            for span in root.walk():
                assert span.finished
                assert span.status == "ok"

    def test_global_reads_equal_sum_of_query_deltas(self, batch_engine):
        """The thread-local router's aggregate must equal the sum of
        the per-query windows — no reads lost, none double-counted."""
        executor = BatchQueryExecutor(batch_engine, workers=4)
        stats = batch_engine.stats
        assert isinstance(stats, ThreadLocalIOStatistics)
        stats.reset()
        report = executor.run(_mixed_specs(batch_engine, 16))

        by_class: dict[str, int] = {}
        logical = 0
        for result in report.results:
            logical += result.metrics.logical_reads
            for cls, count in result.metrics.reads_by_class.items():
                by_class[cls] = by_class.get(cls, 0) + count
        assert stats.logical_reads == logical
        assert stats.physical_by_class == by_class
        assert stats.physical_reads == sum(by_class.values())

    def test_engine_still_works_sequentially_after(self, batch_engine):
        """Installing the router must not break plain engine.query."""
        result = batch_engine.query(40, 3, step_length=2)
        assert len(result.object_ids) == 3
        assert result.metrics.logical_reads > 0


class TestApi:
    def test_workers_validated(self, batch_engine):
        with pytest.raises(QueryError):
            BatchQueryExecutor(batch_engine, workers=0)

    def test_spec_coercion(self):
        assert BatchQuery.of((3, 2)) == BatchQuery(vertex=3, k=2)
        assert BatchQuery.of(
            {"vertex": 1, "k": 4, "step_length": 2}
        ) == BatchQuery(vertex=1, k=4, step_length=2)
        spec = BatchQuery(vertex=0, k=1)
        assert BatchQuery.of(spec) is spec
        with pytest.raises(QueryError):
            BatchQuery.of("nope")

    def test_run_vertices(self, batch_engine):
        report = BatchQueryExecutor(batch_engine, workers=2).run_vertices(
            [10, 20, 30], k=2, step_length=2
        )
        assert [r.k for r in report.results] == [2, 2, 2]
        assert [r.query_vertex for r in report.results] == [10, 20, 30]

    def test_report_quantiles_and_summary(self):
        report = BatchReport(
            results=[],
            latencies=[0.4, 0.1, 0.3, 0.2],
            wall_seconds=2.0,
            workers=2,
        )
        assert report.latency_quantile(0.0) == pytest.approx(0.1)
        assert report.latency_quantile(1.0) == pytest.approx(0.4)
        assert report.latency_quantile(0.5) == pytest.approx(0.3)
        with pytest.raises(QueryError):
            report.latency_quantile(1.5)
        summary = BatchReport(
            results=[], latencies=[], wall_seconds=0.0, workers=1
        ).summary()
        assert summary["queries"] == 0
        assert summary["throughput_qps"] == 0.0

    def test_bound_cache_lru_and_none_values(self):
        cache = BoundCache(max_entries=2, max_networks=1)
        cache.store("a", None)  # None is a legitimate cached value
        found, value = cache.lookup("a")
        assert found and value is None
        cache.store("b", 1)
        cache.store("c", 2)  # evicts "a" (capacity 2)
        found, _ = cache.lookup("a")
        assert not found
        assert len(cache) == 2
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        cache.clear()
        assert len(cache) == 0
        with pytest.raises(QueryError):
            BoundCache(max_entries=0)

    def test_shared_bound_cache_is_a_singleton(self):
        assert shared_bound_cache() is shared_bound_cache()
