"""Tests for LOD mesh extraction (Fig. 1 style)."""

import numpy as np
import pytest

from repro.errors import MultiresError
from repro.multires.dmtm import DMTM
from repro.multires.extraction import extract_mesh


@pytest.fixture(scope="module")
def dmtm(request):
    return DMTM(request.getfixturevalue("rough_mesh"))


class TestExtractMesh:
    def test_full_resolution_counts(self, dmtm, rough_mesh):
        mesh = extract_mesh(dmtm, 1.0)
        assert mesh.num_vertices == rough_mesh.num_vertices

    def test_reduced_counts(self, dmtm, rough_mesh):
        mesh = extract_mesh(dmtm, 0.25)
        assert mesh.num_vertices == pytest.approx(
            rough_mesh.num_vertices * 0.25, abs=2
        )
        assert mesh.num_faces < rough_mesh.num_faces

    def test_result_is_valid_mesh(self, dmtm):
        mesh = extract_mesh(dmtm, 0.3)
        mesh.validate()  # manifold, oriented, no degenerate faces

    def test_surface_area_converges(self, dmtm, rough_mesh):
        """Finer cuts approximate the original surface area better."""
        original = rough_mesh.surface_area()
        errors = []
        for fraction in (0.1, 0.5, 1.0):
            area = extract_mesh(dmtm, fraction).surface_area()
            errors.append(abs(area - original) / original)
        assert errors[-1] < 0.02
        assert errors[-1] <= errors[0] + 1e-9

    def test_extent_preserved(self, dmtm, rough_mesh):
        coarse = extract_mesh(dmtm, 0.25)
        orig = rough_mesh.xy_bounds()
        got = coarse.xy_bounds()
        # Merged QEM positions drift inward a little; the approximate
        # terrain must still cover most of the original footprint.
        assert got.measure() >= orig.measure() * 0.6

    def test_too_small_fraction_rejected(self, request):
        from repro.terrain.mesh import TriangleMesh
        from repro.terrain.synthetic import fractal_dem

        tiny = DMTM(TriangleMesh.from_dem(fractal_dem(size=4, seed=1)))
        with pytest.raises(MultiresError):
            extract_mesh(tiny, 0.0001)
