"""Observability stack: tracing spans, metrics, trace export.

Covers the contracts docs/observability.md promises: span nesting and
exception safety, histogram quantile accuracy (error bounded by one
bucket width), JSONL round-trips, and the per-query trace invariants —
trace rounds match the iteration counters, and the per-level physical
page reads sum to the query's ``pages_accessed``.
"""

import json
import math

import numpy as np
import pytest

from repro.obs.events import LevelEvent, QueryTrace
from repro.obs.export import (
    query_record,
    query_trace,
    read_jsonl,
    render,
    write_jsonl,
)
from repro.obs.metrics import Histogram, MetricsRegistry, get_registry
from repro.obs.tracing import NOOP_SPAN, Span, Tracer


class TestTracing:
    def test_nesting(self):
        tracer = Tracer()
        with tracer.span("outer", k=5) as outer:
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            with tracer.span("inner"):
                pass
        roots = tracer.finished()
        assert [s.name for s in roots] == ["outer"]
        assert outer.attributes == {"k": 5}
        assert [c.name for c in outer.children] == ["inner", "inner"]
        assert len(outer.find("inner")) == 2
        assert all(s.finished and s.duration >= 0 for s in outer.walk())

    def test_exception_safety(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        # Both spans were popped and recorded despite the raise.
        assert tracer.current() is None
        (outer,) = tracer.finished()
        assert outer.status == "error"
        assert "boom" in outer.error
        (inner,) = outer.children
        assert inner.status == "error"
        # The tracer is reusable afterwards.
        with tracer.span("again"):
            pass
        assert len(tracer.finished()) == 2

    def test_disabled_tracer_is_noop(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("anything", k=1)
        assert span is NOOP_SPAN
        with span as sp:
            sp.set_attribute("ignored", 1)  # must not raise
        assert tracer.finished() == []

    def test_take_clears(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        assert [s.name for s in tracer.take()] == ["a"]
        assert tracer.finished() == []

    def test_span_to_dict(self):
        tracer = Tracer()
        with tracer.span("outer", k=3):
            with tracer.span("inner"):
                pass
        d = tracer.finished()[0].to_dict()
        assert d["name"] == "outer"
        assert d["status"] == "ok"
        assert d["attributes"] == {"k": 3}
        assert d["children"][0]["name"] == "inner"
        json.dumps(d)  # JSON-ready


class TestMetrics:
    def test_counter_and_gauge(self):
        reg = MetricsRegistry()
        reg.counter("c").add(2)
        reg.counter("c").add()
        assert reg.counter("c").value == 3
        with pytest.raises(ValueError):
            reg.counter("c").add(-1)
        reg.gauge("g").set(4.5)
        assert reg.gauge("g").value == 4.5
        out = reg.collect()
        assert out["c"] == {"type": "counter", "value": 3}
        assert out["g"]["value"] == 4.5
        reg.reset()
        assert reg.counter("c").value == 0

    def test_histogram_quantile_vs_reference(self):
        """Interpolated quantile error is bounded by one bucket width."""
        buckets = tuple(np.linspace(0.1, 1.0, 10))
        width = 0.1
        rng = np.random.default_rng(7)
        values = rng.uniform(0.0, 1.0, size=500)
        h = Histogram("t", buckets=buckets)
        for v in values:
            h.observe(v)
        for q in (0.1, 0.25, 0.5, 0.75, 0.9, 0.99):
            reference = float(np.quantile(values, q))
            assert abs(h.quantile(q) - reference) <= width + 1e-9
        assert h.mean == pytest.approx(float(np.mean(values)))
        assert h.count == 500

    def test_histogram_edge_cases(self):
        h = Histogram("t", buckets=(1.0, 2.0))
        assert h.quantile(0.5) == 0.0  # empty
        h.observe(5.0)  # overflow bucket
        assert h.quantile(1.0) == 5.0
        assert h.quantile(0.0) >= 0.0
        with pytest.raises(ValueError):
            h.quantile(1.5)
        with pytest.raises(ValueError):
            Histogram("bad", buckets=(2.0, 1.0))

    def test_histogram_quantile_exact_extremes(self):
        """q=0.0 / q=1.0 return the exact observed min/max, not a
        bucket-interpolated estimate."""
        h = Histogram("t", buckets=(1.0, 2.0, 4.0))
        for v in (0.3, 1.7, 3.9):
            h.observe(v)
        assert h.quantile(0.0) == 0.3
        assert h.quantile(1.0) == 3.9
        # Interior quantiles stay interpolated within their bucket.
        assert 1.0 <= h.quantile(0.5) <= 2.0

    def test_histogram_merge(self):
        a = Histogram("t", buckets=(1.0, 2.0))
        b = Histogram("t", buckets=(1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5)
        b.observe(5.0)
        a.merge(b)
        assert a.count == 3
        assert a.quantile(0.0) == 0.5
        assert a.quantile(1.0) == 5.0
        with pytest.raises(ValueError):
            a.merge(Histogram("t", buckets=(3.0,)))

    def test_default_registry_is_shared(self):
        assert get_registry() is get_registry()


class TestEvents:
    def _event(self, **overrides):
        base = dict(
            phase="filter", level=0, dmtm_resolution=0.05,
            msdn_resolution=0.25, active_before=5, active_after=3,
            kth_lb=10.0, kth_ub=20.0, done=False, cpu_seconds=0.001,
            logical_reads=4, physical_reads=2,
            reads_by_class={"dmtm": 2},
        )
        base.update(overrides)
        return LevelEvent(**base)

    def test_mapping_protocol(self):
        event = self._event()
        assert event["level"] == 0
        assert event["phase"] == "filter"
        with pytest.raises(KeyError):
            event["nope"]
        assert "kth_ub" in event.keys()
        assert dict(**event)["active_after"] == 3

    def test_round_trip(self):
        event = self._event(kth_ub=math.inf)
        again = LevelEvent.from_dict(event.to_dict())
        assert again == event

    def test_from_dict_ignores_unknown_keys(self):
        data = self._event().to_dict()
        data["future_field"] = 1
        assert LevelEvent.from_dict(data) == self._event()


class TestTracedQuery:
    @pytest.fixture()
    def traced(self, small_engine):
        """Run one query under an enabled tracer; restore the engine."""
        tracer = Tracer()
        original = small_engine.tracer
        small_engine.tracer = tracer
        try:
            qv = small_engine.snap(700.0, 700.0)
            result = small_engine.query(qv, 3, step_length=2)
        finally:
            small_engine.tracer = original
        return result, tracer

    def test_trace_rounds_match_iterations(self, traced):
        result, _tracer = traced
        m = result.metrics
        assert len(result.filter_trace) == m.iterations_filter
        assert len(result.ranking_trace) == m.iterations_ranking
        assert all(e.phase == "filter" for e in result.filter_trace)
        assert all(e.phase == "ranking" for e in result.ranking_trace)

    def test_level_reads_sum_to_pages_accessed(self, traced):
        """The acceptance invariant: per-level physical page deltas
        account for every page the query touched (steps 1 and 3 are
        in-memory R-tree work)."""
        result, _tracer = traced
        events = result.filter_trace + result.ranking_trace
        assert sum(e.physical_reads for e in events) == (
            result.metrics.pages_accessed
        )
        assert sum(e.logical_reads for e in events) == (
            result.metrics.logical_reads
        )
        by_class: dict = {}
        for e in events:
            for cls, n in e.reads_by_class.items():
                by_class[cls] = by_class.get(cls, 0) + n
        assert by_class == result.metrics.reads_by_class

    def test_span_tree_shape(self, traced):
        result, tracer = traced
        root = result.root_span
        assert isinstance(root, Span)
        assert root.name == "engine.query"
        assert root in tracer.finished()
        (mr3,) = root.find("mr3.query")
        for step in ("mr3.knn_2d", "mr3.filter", "mr3.range_2d", "mr3.ranking"):
            assert mr3.find(step), f"missing {step} span"
        levels = root.find("rank.level")
        assert len(levels) == (
            result.metrics.iterations_filter
            + result.metrics.iterations_ranking
        )

    def test_jsonl_round_trip(self, traced, tmp_path):
        result, _tracer = traced
        record = query_record(result)
        assert record["schema"] == "repro.query_trace/v1"
        path = tmp_path / "trace.jsonl"
        assert write_jsonl(path, [record]) == 1
        (loaded,) = read_jsonl(path)
        assert loaded == record
        trace = QueryTrace.from_dict(loaded)
        assert trace.events == result.filter_trace + result.ranking_trace
        assert trace.spans["name"] == "engine.query"
        assert trace.metrics["pages_accessed"] == (
            result.metrics.pages_accessed
        )

    def test_render_is_explain(self, traced):
        result, _tracer = traced
        text = result.explain()
        assert text == render(result)
        assert "step 2 (filter C1)" in text
        assert "ms CPU" in text
        assert "hit rate" in text
        assert "pages by structure:" in text

    def test_untraced_query_has_no_span(self, small_engine):
        result = small_engine.query(small_engine.snap(700.0, 700.0), 2)
        assert result.root_span is None
        assert query_trace(result).spans is None

    def test_kernel_counters_advance(self, small_engine, obs_context):
        reg = obs_context.registry
        before = reg.counter("geodesic.dijkstra.settled").value
        small_engine.query(small_engine.snap(600.0, 900.0), 2)
        assert reg.counter("geodesic.dijkstra.settled").value > before
        assert reg.counter("geodesic.dijkstra.relaxations").value > 0


class TestBufferHitRate:
    def test_warm_vs_cold(self, small_engine):
        qv = small_engine.snap(700.0, 700.0)
        cold = small_engine.query(qv, 3, cold_cache=True)
        warm = small_engine.query(qv, 3, cold_cache=False)
        for r in (cold, warm):
            m = r.metrics
            assert m.logical_reads >= m.pages_accessed
            assert 0.0 <= m.buffer_hit_rate <= 1.0
        # The warm run re-reads pages the cold run faulted in.
        assert warm.metrics.pages_accessed <= cold.metrics.pages_accessed
        assert warm.metrics.buffer_hit_rate >= cold.metrics.buffer_hit_rate
