"""Tests for the EXPLAIN trace and the .hgt DEM format."""

import numpy as np
import pytest

from repro.errors import TerrainError
from repro.terrain.dem import DemGrid


class TestExplainTrace:
    def test_trace_present_and_consistent(self, small_engine):
        qv = small_engine.snap(700.0, 900.0)
        res = small_engine.query(qv, 3, step_length=2)
        assert len(res.filter_trace) == res.metrics.iterations_filter
        assert len(res.ranking_trace) == res.metrics.iterations_ranking
        for entry in res.ranking_trace:
            assert entry["active_after"] <= entry["active_before"] + 3
            assert entry["kth_lb"] <= entry["kth_ub"] + 1e-9

    def test_resolutions_follow_schedule(self, small_engine):
        qv = small_engine.snap(700.0, 900.0)
        res = small_engine.query(qv, 3, step_length=3)
        from repro.core.schedule import ResolutionSchedule

        schedule = ResolutionSchedule.preset(3)
        for entry in res.ranking_trace:
            want_u, want_l = schedule.level(entry["level"])
            assert entry["dmtm_resolution"] == want_u
            assert entry["msdn_resolution"] == want_l

    def test_explain_renders(self, small_engine):
        qv = small_engine.snap(700.0, 900.0)
        res = small_engine.query(qv, 3)
        text = res.explain()
        assert "step 2 (filter C1)" in text
        assert "step 4 (rank C2)" in text
        assert "ms CPU" in text

    def test_kth_ub_tightens_over_levels(self, small_engine):
        qv = small_engine.snap(700.0, 900.0)
        res = small_engine.query(qv, 3, step_length=1)
        ubs = [e["kth_ub"] for e in res.ranking_trace]
        assert ubs == sorted(ubs, reverse=True)


class TestHgtFormat:
    def test_roundtrip(self):
        rng = np.random.default_rng(1)
        dem = DemGrid(
            np.round(rng.uniform(-100, 4000, size=(33, 33))), 90.0
        )
        back = DemGrid.from_hgt(dem.to_hgt(), cell_size=90.0)
        np.testing.assert_allclose(back.heights, dem.heights)

    def test_void_fill(self):
        heights = np.zeros((4, 4))
        dem = DemGrid(heights, 90.0)
        raw = bytearray(dem.to_hgt())
        # Poison one sample with the SRTM void value.
        import struct

        struct.pack_into(">h", raw, 0, -32768)
        back = DemGrid.from_hgt(bytes(raw), void_fill=123.0)
        assert (back.heights == 123.0).sum() == 1

    def test_row_order_north_first(self):
        # Sample (0,0) of an .hgt file is the NW corner, i.e. our
        # last row.
        heights = np.arange(16.0).reshape(4, 4)
        dem = DemGrid(heights, 90.0)
        raw = dem.to_hgt()
        first = np.frombuffer(raw[:8], dtype=">i2")
        np.testing.assert_array_equal(first, heights[-1])

    def test_non_square_rejected(self):
        dem = DemGrid(np.zeros((3, 4)), 90.0)
        with pytest.raises(TerrainError):
            dem.to_hgt()

    def test_bad_payload_rejected(self):
        with pytest.raises(TerrainError):
            DemGrid.from_hgt(b"\x00" * 10)  # 5 samples: not square
        with pytest.raises(TerrainError):
            DemGrid.from_hgt(b"\x00" * 7)  # odd byte count
