"""Unit tests for SDN chunks and the layered lower-bound DP."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry.polyline import Polyline
from repro.geometry.primitives import BoundingBox
from repro.msdn.sdn import SdnChunk, build_sdn_chunks, lower_bound_via_planes


def make_line(y: float, n: int = 9, z: float = 0.0) -> Polyline:
    xs = np.linspace(0.0, 8.0, n)
    pts = np.column_stack([xs, np.full(n, y), np.full(n, z)])
    return Polyline(pts)


class TestChunks:
    def test_full_resolution(self):
        chunks = build_sdn_chunks(make_line(0.0), 1, 0, 0.0, 1.0)
        assert len(chunks) == 8
        assert all(c.resolution == 1.0 for c in chunks)

    def test_keys_unique(self):
        chunks = build_sdn_chunks(make_line(0.0), 1, 3, 0.0, 0.5)
        keys = [c.key for c in chunks]
        assert len(set(keys)) == len(keys)

    def test_encode_decode_roundtrip(self):
        chunk = build_sdn_chunks(make_line(2.5, z=7.0), 0, 11, 2.5, 0.25)[0]
        back = SdnChunk.decode(chunk.encode())
        assert back.axis == chunk.axis
        assert back.plane_index == chunk.plane_index
        assert back.plane_value == pytest.approx(chunk.plane_value)
        assert back.resolution == pytest.approx(chunk.resolution)
        assert back.first == chunk.first and back.last == chunk.last
        assert np.allclose(back.mbr.lo, chunk.mbr.lo)
        assert np.allclose(back.mbr.hi, chunk.mbr.hi)


class TestLowerBoundDP:
    def test_no_planes_gives_euclid(self):
        lb, path = lower_bound_via_planes((0, 0, 0), (3, 4, 0), [])
        assert lb == pytest.approx(5.0)
        assert path == []

    def test_empty_layer_rejected(self):
        with pytest.raises(GeometryError):
            lower_bound_via_planes((0, 0, 0), (0, 5, 0), [[]])

    def test_single_flat_plane(self):
        layer = build_sdn_chunks(make_line(1.0), 1, 0, 1.0, 1.0)
        a, b = (4.0, 0.0, 0.0), (4.0, 2.0, 0.0)
        lb, path = lower_bound_via_planes(a, b, [layer])
        assert lb == pytest.approx(2.0)
        assert len(path) == 1

    def test_elevated_plane_forces_detour(self):
        """A crossing line high above the endpoints makes the bound
        exceed the straight xy distance."""
        layer = build_sdn_chunks(make_line(1.0, z=10.0), 1, 0, 1.0, 1.0)
        a, b = (4.0, 0.0, 0.0), (4.0, 2.0, 0.0)
        lb, _ = lower_bound_via_planes(a, b, [layer])
        climb = np.hypot(1.0, 10.0)
        assert lb == pytest.approx(2 * climb, rel=1e-6)

    def test_multi_layer_monotone_with_count(self):
        """More planes can only raise (or keep) the bound."""
        a, b = (4.0, 0.0, 0.0), (4.0, 4.0, 0.0)
        layers = [
            build_sdn_chunks(make_line(y, z=3.0), 1, i, y, 1.0)
            for i, y in enumerate((1.0, 2.0, 3.0))
        ]
        values = []
        for count in (1, 2, 3):
            lb, _ = lower_bound_via_planes(a, b, layers[:count])
            values.append(lb)
        assert values == sorted(values)

    def test_coarser_chunks_weaker(self):
        """The enclosure property makes lower resolutions weaker."""
        rng = np.random.default_rng(2)
        pts = np.column_stack(
            [
                np.linspace(0, 8, 17),
                np.full(17, 1.0),
                rng.uniform(0.0, 6.0, 17),
            ]
        )
        line = Polyline(pts)
        a, b = (4.0, 0.0, 0.0), (4.0, 2.0, 0.0)
        prev = -1.0
        for res in (0.25, 0.5, 1.0):
            layer = build_sdn_chunks(line, 1, 0, 1.0, res)
            lb, _ = lower_bound_via_planes(a, b, [layer])
            assert lb >= prev - 1e-9
            prev = lb

    def test_path_keys_one_per_layer(self):
        a, b = (4.0, 0.0, 0.0), (4.0, 4.0, 0.0)
        layers = [
            build_sdn_chunks(make_line(y), 1, i, y, 0.5)
            for i, y in enumerate((1.0, 2.0, 3.0))
        ]
        _lb, path = lower_bound_via_planes(a, b, layers)
        assert len(path) == 3
