"""Unit tests for the ellipse search region."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry.ellipse import EllipseRegion


class TestEllipseRegion:
    def test_circle_when_foci_coincide(self):
        e = EllipseRegion((0, 0), (0, 0), 4.0)
        assert e.semi_major == pytest.approx(2.0)
        assert e.semi_minor == pytest.approx(2.0)
        assert e.contains((1.9, 0.0))
        assert not e.contains((2.1, 0.0))

    def test_contains_foci(self):
        e = EllipseRegion((0, 0), (3, 0), 5.0)
        assert e.contains((0, 0))
        assert e.contains((3, 0))

    def test_boundary_point(self):
        # Major axis endpoints: distance sum equals the constant.
        e = EllipseRegion((-1, 0), (1, 0), 4.0)
        assert e.contains((2.0, 0.0))
        assert not e.contains((2.01, 0.0))

    def test_constant_clamped_to_focal_distance(self):
        e = EllipseRegion((0, 0), (3, 0), 1.0)
        assert e.constant == pytest.approx(3.0)

    def test_mbr_axis_aligned(self):
        e = EllipseRegion((-1, 0), (1, 0), 4.0)  # a=2, b=sqrt(3)
        m = e.mbr()
        assert m.lo[0] == pytest.approx(-2.0)
        assert m.hi[0] == pytest.approx(2.0)
        assert m.hi[1] == pytest.approx(np.sqrt(3.0))

    def test_mbr_rotated_contains_samples(self):
        e = EllipseRegion((1, 1), (4, 5), 7.0)
        m = e.mbr()
        # Sample boundary: all inside points must be inside the MBR.
        rng = np.random.default_rng(0)
        for _ in range(200):
            p = rng.uniform(-5, 12, size=2)
            if e.contains(p):
                assert m.contains_point(p)

    def test_shrink_to(self):
        e = EllipseRegion((0, 0), (2, 0), 6.0)
        s = e.shrink_to(4.0)
        assert s.constant == pytest.approx(4.0)

    def test_grow_rejected(self):
        e = EllipseRegion((0, 0), (2, 0), 4.0)
        with pytest.raises(GeometryError):
            e.shrink_to(5.0)

    def test_contains_uses_xy_only(self):
        e = EllipseRegion((0, 0), (2, 0), 4.0)
        assert e.contains((1.0, 0.0, 999.0))
