"""Unit tests for z-order keys."""

import pytest

from repro.errors import IndexError_
from repro.geometry.primitives import BoundingBox
from repro.spatial.zorder import zorder_key, zorder_key_normalized


class TestZOrderKey:
    def test_origin(self):
        assert zorder_key(0, 0) == 0

    def test_interleave_pattern(self):
        # x bits land on even positions, y bits on odd positions.
        assert zorder_key(1, 0) == 0b01
        assert zorder_key(0, 1) == 0b10
        assert zorder_key(1, 1) == 0b11
        assert zorder_key(2, 0) == 0b100
        assert zorder_key(3, 5) == 0b100111

    def test_injective_on_grid(self):
        seen = set()
        for x in range(32):
            for y in range(32):
                key = zorder_key(x, y)
                assert key not in seen
                seen.add(key)

    def test_negative_rejected(self):
        with pytest.raises(IndexError_):
            zorder_key(-1, 0)


class TestNormalized:
    def test_corners(self):
        b = BoundingBox((0.0, 0.0), (10.0, 10.0))
        assert zorder_key_normalized(0.0, 0.0, b, bits=4) == 0
        max_key = zorder_key_normalized(10.0, 10.0, b, bits=4)
        assert max_key == zorder_key(15, 15)

    def test_clamped_outside(self):
        b = BoundingBox((0.0, 0.0), (10.0, 10.0))
        assert zorder_key_normalized(-5.0, -5.0, b, bits=4) == 0

    def test_locality(self):
        """Nearby points should mostly share high key bits: the key
        difference of adjacent cells is smaller than that of far
        cells, on average."""
        b = BoundingBox((0.0, 0.0), (100.0, 100.0))
        near = abs(
            zorder_key_normalized(50.0, 50.0, b)
            - zorder_key_normalized(50.5, 50.0, b)
        )
        far = abs(
            zorder_key_normalized(50.0, 50.0, b)
            - zorder_key_normalized(99.0, 99.0, b)
        )
        assert near < far

    def test_bad_bits(self):
        b = BoundingBox((0.0, 0.0), (1.0, 1.0))
        with pytest.raises(IndexError_):
            zorder_key_normalized(0.5, 0.5, b, bits=0)
