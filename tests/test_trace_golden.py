"""Golden regression tests for the query-trace surface.

``QueryResult.explain()`` and the ``repro.query_trace/v1`` JSONL
record are consumed downstream (humans, jq pipelines), so their shape
and deterministic content are pinned against golden files.  Wall-clock
fields are normalized to zero first
(:func:`repro.obs.export.normalize_record`); page counts, candidate
counts, bound values and span structure must reproduce exactly on a
fresh engine.

Regenerate after an intentional format change with::

    UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest tests/test_trace_golden.py
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.core.engine import SurfaceKNNEngine
from repro.geodesic.csr import set_kernel_mode
from repro.obs.export import normalize_record, query_record
from repro.obs.tracing import Tracer
from repro.testkit.generators import standard_mesh

GOLDEN_DIR = Path(__file__).parent / "golden"
UPDATE = os.environ.get("UPDATE_GOLDENS") == "1"


def _golden_result():
    """The pinned query: fresh engine, fixed terrain/objects/query.

    A fresh engine (not a session fixture) keeps physical page counts
    deterministic: nothing else has touched the buffer pool.
    """
    engine = SurfaceKNNEngine(
        standard_mesh("BH", 17),
        density=10.0,
        seed=3,
        tracer=Tracer(),
    )
    qv = engine.mesh.nearest_vertex(engine.mesh.xy_bounds().center)
    return engine.query(qv, 3, step_length=2)


@pytest.fixture(scope="module", params=["csr", "reference"])
def kernel(request):
    """Every golden must reproduce under BOTH geodesic kernel modes —
    the flat CSR kernels are a pure performance change (PR 4), so the
    goldens hold whichever kernels run."""
    set_kernel_mode(request.param)
    yield request.param
    set_kernel_mode("csr")


@pytest.fixture(scope="module")
def golden_result(kernel):
    return _golden_result()


def _check_or_update(path: Path, text: str) -> None:
    if UPDATE or not path.exists():
        path.parent.mkdir(exist_ok=True)
        path.write_text(text, encoding="utf-8")
        if UPDATE:
            return
    assert path.read_text(encoding="utf-8") == text, (
        f"{path.name} drifted; regenerate with UPDATE_GOLDENS=1 if the "
        "change is intentional"
    )


class TestExplainGolden:
    def test_explain_matches_golden(self, golden_result):
        # Zero the wall-clock numbers explain() prints; everything
        # else in the rendering is deterministic.
        golden_result.metrics.cpu_seconds = 0.0
        golden_result.metrics.io_seconds = 0.0
        text = golden_result.explain() + "\n"
        _check_or_update(GOLDEN_DIR / "query_explain.txt", text)

    def test_explain_mentions_key_facts(self, golden_result):
        text = golden_result.explain()
        assert "step 2 (filter C1)" in text
        assert "step 4 (rank C2)" in text
        assert "pages by structure" in text


class TestTraceRecordGolden:
    def test_record_matches_golden(self, golden_result):
        record = normalize_record(query_record(golden_result))
        text = json.dumps(record, indent=2, sort_keys=True) + "\n"
        _check_or_update(GOLDEN_DIR / "query_trace.json", text)

    def test_record_is_reproducible(self, golden_result):
        """A second fresh engine produces the identical normalized
        record — the determinism the golden file relies on."""
        again = normalize_record(query_record(_golden_result()))
        assert again == normalize_record(query_record(golden_result))

    def test_schema_and_normalization(self, golden_result):
        record = query_record(golden_result)
        assert record["schema"] == "repro.query_trace/v1"
        normalized = normalize_record(record)
        assert normalized["metrics"]["cpu_seconds"] == 0.0
        assert normalized["metrics"]["io_seconds"] == 0.0
        assert normalized["metrics"]["total_seconds"] == 0.0
        assert all(e["cpu_seconds"] == 0.0 for e in normalized["events"])

        def all_durations(span):
            yield span["duration_seconds"]
            for child in span["children"]:
                yield from all_durations(child)

        assert set(all_durations(normalized["spans"])) == {0.0}
        # Normalization must not touch the original record.
        assert record["metrics"]["total_seconds"] >= 0.0
        assert record["spans"]["duration_seconds"] > 0.0
