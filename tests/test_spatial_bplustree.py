"""Unit tests for the B+-tree."""

import random

import pytest

from repro.errors import IndexError_
from repro.spatial.bplustree import BPlusTree


class TestBasics:
    def test_bad_order(self):
        with pytest.raises(IndexError_):
            BPlusTree(order=2)

    def test_insert_get(self):
        t = BPlusTree(order=4)
        t.insert(5, "five")
        t.insert(3, "three")
        assert t.get(5) == ["five"]
        assert t.get(99) == []

    def test_duplicates_kept(self):
        t = BPlusTree(order=4)
        for i in range(5):
            t.insert(7, i)
        assert sorted(t.get(7)) == [0, 1, 2, 3, 4]

    def test_len(self):
        t = BPlusTree(order=4)
        for i in range(100):
            t.insert(i, i)
        assert len(t) == 100


class TestLargeRandom:
    @pytest.fixture(scope="class")
    def tree_and_data(self):
        rng = random.Random(11)
        keys = [rng.randrange(0, 5000) for _ in range(2000)]
        t = BPlusTree(order=8)
        for i, k in enumerate(keys):
            t.insert(k, i)
        return t, keys

    def test_every_key_found(self, tree_and_data):
        t, keys = tree_and_data
        for k in set(keys):
            values = t.get(k)
            want = [i for i, kk in enumerate(keys) if kk == k]
            assert sorted(values) == want

    def test_items_sorted(self, tree_and_data):
        t, keys = tree_and_data
        out_keys = [k for k, _v in t.items()]
        assert out_keys == sorted(keys)

    def test_range_scan_matches_brute(self, tree_and_data):
        t, keys = tree_and_data
        lo, hi = 1000, 1500
        got = sorted(v for _k, v in t.range_scan(lo, hi))
        want = sorted(i for i, k in enumerate(keys) if lo <= k <= hi)
        assert got == want

    def test_range_scan_empty(self, tree_and_data):
        t, _keys = tree_and_data
        assert list(t.range_scan(100000, 200000)) == []

    def test_depth_reasonable(self, tree_and_data):
        t, _keys = tree_and_data
        assert 2 <= t.depth() <= 6


class TestTupleKeys:
    def test_composite_keys(self):
        t = BPlusTree(order=4)
        for lod in range(3):
            for z in range(20):
                t.insert((lod, z), (lod, z))
        got = [v for _k, v in t.range_scan((1, 5), (1, 10))]
        assert got == [(1, z) for z in range(5, 11)]
