"""Unit tests for the Distance Direct Mesh (DDM)."""

import numpy as np
import pytest

from repro.geometry.primitives import BoundingBox
from repro.multires.ddm import DistanceDirectMesh


@pytest.fixture(scope="module")
def ddm(request):
    mesh = request.getfixturevalue("rough_mesh")
    return DistanceDirectMesh(mesh)


class TestStructure:
    def test_counts(self, ddm, rough_mesh):
        assert ddm.num_leaves == rough_mesh.num_vertices
        assert ddm.num_nodes == 2 * rough_mesh.num_vertices - 1

    def test_node_mbrs_nest(self, ddm):
        """A parent's descendant MBR contains both children's."""
        for node in ddm.history.nodes:
            if node.children is not None:
                parent_box = ddm.node_mbr(node.node_id)
                for child in node.children:
                    assert parent_box.contains_box(ddm.node_mbr(child))

    def test_leaf_mbr_is_vertex(self, ddm, rough_mesh):
        box = ddm.node_mbr(5)
        assert box.lo == tuple(rough_mesh.vertices[5][:2])
        assert box.lo == box.hi

    def test_root_mbr_covers_terrain(self, ddm, rough_mesh):
        root = ddm.history.roots[0]
        terrain = rough_mesh.xy_bounds()
        assert ddm.node_mbr(root).contains_box(terrain)


class TestCuts:
    def test_cut_fraction_sizes(self, ddm):
        n = ddm.num_leaves
        for fraction in (0.1, 0.25, 0.5, 1.0):
            step = ddm.step_for_fraction(fraction)
            cut = ddm.cut_nodes(step)
            assert len(cut) == pytest.approx(max(2, round(n * fraction)), abs=1)

    def test_roi_filtering(self, ddm, rough_mesh):
        step = ddm.step_for_fraction(0.5)
        bounds = rough_mesh.xy_bounds()
        small = BoundingBox.around(bounds.center, float(bounds.extents[0]) * 0.15)
        filtered = ddm.cut_nodes(step, small)
        full = ddm.cut_nodes(step)
        assert 0 < len(filtered) < len(full)
        assert set(filtered) <= set(full)

    def test_cut_node_ids_vectorized_matches(self, ddm, rough_mesh):
        step = ddm.step_for_fraction(0.3)
        bounds = rough_mesh.xy_bounds()
        roi = BoundingBox.around(bounds.center, float(bounds.extents[0]) * 0.2)
        via_list = set(ddm.cut_nodes(step, roi))
        via_ids = {int(n) for n in ddm.cut_node_ids(step, [roi])}
        assert via_list == via_ids

    def test_approximate_vertices(self, ddm):
        pts = ddm.approximate_vertices(0.25)
        assert pts.shape[1] == 3
        assert len(pts) == pytest.approx(ddm.num_leaves * 0.25, abs=2)


class TestAncestors:
    def test_full_resolution_identity(self, ddm):
        anc, offset = ddm.ancestor(7, 0)
        assert anc == 7
        assert offset == 0.0

    def test_offsets_grow_coarser(self, ddm):
        """Walking to coarser cuts can only accumulate offset."""
        leaf = 23
        prev = 0.0
        for fraction in (1.0, 0.5, 0.25, 0.1):
            step = ddm.step_for_fraction(fraction)
            _anc, offset = ddm.ancestor(leaf, step)
            assert offset >= prev - 1e-12
            prev = offset
