"""Smoke tests for the bench harness (tiny sweeps, shape checks)."""

import pytest

from repro.bench.experiments import fig7, fig8, fig9, fig10, fig11
from repro.bench.runner import experiment_records, format_table
from repro.bench.workload import build_engine, dataset, mesh_for, query_vertices, vertex_pairs
from repro.errors import QueryError


class TestWorkload:
    def test_dataset_names(self):
        assert dataset("BH", 9).rows == 9
        assert dataset("EP", 9).rows == 9
        with pytest.raises(QueryError):
            dataset("XX")

    def test_mesh_cached(self):
        assert mesh_for("BH", 9) is mesh_for("BH", 9)

    def test_engine_cached(self):
        a = build_engine("BH", size=9, density=10.0)
        b = build_engine("BH", size=9, density=10.0)
        assert a is b

    def test_query_vertices_deterministic(self):
        mesh = mesh_for("BH", 17)
        assert query_vertices(mesh, 3, seed=1) == query_vertices(mesh, 3, seed=1)

    def test_vertex_pairs_separated(self):
        import numpy as np

        mesh = mesh_for("BH", 17)
        diag = float(np.linalg.norm(mesh.xy_bounds().extents))
        for a, b in vertex_pairs(mesh, 4, min_separation=0.3):
            d = float(np.linalg.norm(mesh.vertices[a][:2] - mesh.vertices[b][:2]))
            assert d >= 0.3 * diag


class TestFormatTable:
    def test_alignment_and_values(self):
        table = format_table(
            "T", ["x", "y"], [{"x": 1, "y": 1234.5}, {"x": 2, "y": None}]
        )
        assert "T" in table
        assert "1,234" in table  # thousands formatting
        assert "-" in table  # None placeholder


class TestExperimentShapes:
    """Miniature sweeps asserting the paper's qualitative shapes."""

    def test_fig7_exact_grows_faster(self):
        out = fig7(sizes=(9, 17), pairs_per_size=1)
        rows = out["rows"]
        assert rows[-1]["ch_seconds"] > rows[0]["ch_seconds"]
        # Exact is never cheaper than the approximation at the top size.
        assert rows[-1]["ch_seconds"] >= rows[-1]["ea_seconds"]

    def test_fig8_accuracy_monotone(self):
        out = fig8(quick=True, size=17, num_pairs=3)
        rows = out["rows"]
        # Accuracy grows with DMTM resolution for the best SDN column.
        best = [row["sdn_100%"] for row in rows]
        assert best == sorted(best)
        # SDN beats the Euclidean baseline at full resolution.
        assert rows[-1]["sdn_100%"] >= rows[-1]["euclid_lb"]

    def test_fig9_integration_saves_pages(self):
        out = fig9(quick=True, size=17, ks=(6,), queries_per_k=1)
        row = out["rows"][0]
        assert row["pages_on"] <= row["pages_off"]
        # Per-structure breakdown of the integrated run.
        assert row["pages_dmtm"] + row["pages_msdn"] <= row["pages_on"]

    def test_fig10_series_present(self):
        out = fig10(
            quick=True, size=17, ks=(4,), queries_per_k=1, datasets=("BH",)
        )
        series = out["rows"]["BH"][4]
        assert set(series) == {"s=1", "s=2", "s=3", "EA"}
        for metrics in series.values():
            assert metrics["pages"] > 0
            assert metrics["cpu"] > 0

    def test_fig11_density_reduces_cost(self):
        out = fig11(
            quick=True, size=17, k=3, densities=(4, 10), queries_per_o=1,
            datasets=("BH",),
        )
        per_o = out["rows"]["BH"]
        assert set(per_o) == {4, 10}

    def test_experiment_records_flatten_both_shapes(self):
        # List-shaped rows (fig7/8/9, related) -> one record per row.
        flat = experiment_records("fig9", {"rows": [{"k": 3}, {"k": 6}]})
        assert [r["point"] for r in flat] == [{"k": 3}, {"k": 6}]
        # Nested rows (fig10/11) -> one record per (dataset, x) point.
        nested = experiment_records(
            "fig10", {"rows": {"BH": {4: {"s=1": {"pages": 2.0}}}}}
        )
        (record,) = nested
        assert record["dataset"] == "BH" and record["x"] == 4
        for r in flat + nested:
            assert r["schema"] == "repro.bench/v1"
            assert r["figure"] in ("fig9", "fig10")
            assert "point" in r

    def test_related_experiment(self):
        from repro.bench.experiments import related

        out = related(quick=True, size=17, k=3)
        rows = {row["method"]: row for row in out["rows"]}
        assert rows["exact surface"]["agreement"] == 1.0
        # MR3 matches the exact answer at least as often as the
        # network baselines once ties are tolerated.
        assert (
            rows["MR3 s=1"]["agreement_3pct"]
            >= rows["INE (network)"]["agreement_3pct"]
        )
