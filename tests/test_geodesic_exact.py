"""Tests for the exact window-propagation geodesic.

Validation strategy (all cases have independent ground truth):

* flat and tilted planes — geodesic = 3D Euclidean distance;
* the unit cube — classic unfolding distances are known analytically;
* rugged terrain — exact <= every pathnet/network distance, >= the
  Euclidean distance, and converging pathnets approach it from above.
"""

import math

import numpy as np
import pytest

from repro.errors import GeodesicError
from repro.geodesic.exact import ExactGeodesic, exact_surface_distance
from repro.geodesic.pathnet import pathnet_distance


class TestFlatSurfaces:
    def test_flat_equals_euclid(self, flat_mesh):
        rng = np.random.default_rng(1)
        for _ in range(5):
            a, b = rng.integers(0, flat_mesh.num_vertices, size=2)
            if a == b:
                continue
            want = float(np.linalg.norm(flat_mesh.vertices[a] - flat_mesh.vertices[b]))
            got = exact_surface_distance(flat_mesh, int(a), int(b))
            assert got == pytest.approx(want, rel=1e-9)

    def test_tilted_plane_equals_euclid(self, tilted_mesh):
        a, b = 0, tilted_mesh.num_vertices - 1
        want = float(
            np.linalg.norm(tilted_mesh.vertices[a] - tilted_mesh.vertices[b])
        )
        got = exact_surface_distance(tilted_mesh, a, b)
        assert got == pytest.approx(want, rel=1e-9)

    def test_adjacent_vertices(self, flat_mesh):
        u = 0
        w = flat_mesh.vertex_neighbors[0][0]
        got = exact_surface_distance(flat_mesh, u, w)
        assert got == pytest.approx(flat_mesh.edge_length(u, w), rel=1e-9)


class TestCube:
    def test_adjacent_corner(self, cube_mesh):
        # (0,0,0) -> (1,0,0): along the edge.
        assert exact_surface_distance(cube_mesh, 0, 1) == pytest.approx(1.0)

    def test_face_diagonal(self, cube_mesh):
        # (0,0,0) -> (1,1,0): diagonal across the bottom face.
        assert exact_surface_distance(cube_mesh, 0, 2) == pytest.approx(
            math.sqrt(2.0), rel=1e-9
        )

    def test_opposite_corner(self, cube_mesh):
        # (0,0,0) -> (1,1,1): unfold two faces, sqrt(1^2 + 2^2).
        assert exact_surface_distance(cube_mesh, 0, 6) == pytest.approx(
            math.sqrt(5.0), rel=1e-6
        )

    def test_symmetry(self, cube_mesh):
        d1 = exact_surface_distance(cube_mesh, 0, 6)
        d2 = exact_surface_distance(cube_mesh, 6, 0)
        assert d1 == pytest.approx(d2, rel=1e-9)


class TestRuggedTerrain:
    def test_bracketed_by_euclid_and_network(self, rough_mesh):
        rng = np.random.default_rng(3)
        for _ in range(6):
            a, b = rng.integers(0, rough_mesh.num_vertices, size=2)
            if a == b:
                continue
            a, b = int(a), int(b)
            ds = exact_surface_distance(rough_mesh, a, b)
            de = float(np.linalg.norm(rough_mesh.vertices[a] - rough_mesh.vertices[b]))
            dn = pathnet_distance(rough_mesh, a, b, steiner_per_edge=0)
            assert de - 1e-9 <= ds <= dn + 1e-9

    def test_pathnet_converges_from_above(self, rough_mesh):
        a, b = 3, rough_mesh.num_vertices - 4
        ds = exact_surface_distance(rough_mesh, a, b)
        previous = float("inf")
        for steiner in (0, 1, 3):
            dp = pathnet_distance(rough_mesh, a, b, steiner_per_edge=steiner)
            assert ds <= dp + 1e-9
            assert dp <= previous + 1e-9
            previous = dp
        # With 3 Steiner points per edge the gap should be small.
        assert previous <= ds * 1.05

    def test_distances_all_vertices(self, rough_mesh):
        geo = ExactGeodesic(rough_mesh, 0)
        dist = geo.distances()
        assert dist.shape == (rough_mesh.num_vertices,)
        assert dist[0] == 0.0
        assert np.all(np.isfinite(dist))
        # Triangle inequality against one-hop neighbours.
        for w in rough_mesh.vertex_neighbors[0]:
            assert dist[w] <= rough_mesh.edge_length(0, w) + 1e-9


class TestApiErrors:
    def test_bad_source(self, flat_mesh):
        with pytest.raises(GeodesicError):
            ExactGeodesic(flat_mesh, -1)

    def test_bad_target(self, flat_mesh):
        geo = ExactGeodesic(flat_mesh, 0)
        with pytest.raises(GeodesicError):
            geo.distance_to(flat_mesh.num_vertices)

    def test_window_budget(self, rough_mesh):
        with pytest.raises(GeodesicError):
            exact_surface_distance(
                rough_mesh, 0, rough_mesh.num_vertices - 1, max_windows=10
            )

    def test_lazy_reuse(self, rough_mesh):
        geo = ExactGeodesic(rough_mesh, 5)
        d1 = geo.distance_to(20)
        d2 = geo.distance_to(20)
        assert d1 == d2
