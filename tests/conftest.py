"""Shared fixtures: small deterministic terrains and engines.

The meshes and engines come from :mod:`repro.testkit.generators` —
the single source of truth for named test terrain — so every module
(and the benchmark suite) queries byte-identical cached structures.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batch import shared_bound_cache
from repro.core.engine import SurfaceKNNEngine
from repro.geodesic.csr import set_kernel_mode
from repro.obs.context import ObsContext
from repro.terrain.mesh import TriangleMesh
from repro.testkit.generators import standard_engine, standard_mesh


@pytest.fixture(autouse=True, scope="module")
def _reset_shared_state():
    """Process-wide state must not leak between test modules.

    Guards the two pieces of genuinely global state: the shared batch
    bound cache and the geodesic kernel mode.  Reset runs before AND
    after each module, so a module that crashes mid-test cannot
    poison its successors either way.

    The metrics registry is deliberately NOT reset here: tests that
    read counters run inside a scoped :class:`repro.obs.ObsContext`
    (see the ``obs_context`` fixture) and never depend on the global
    registry's contents.
    """

    def reset():
        shared_bound_cache().clear()
        set_kernel_mode("csr")

    reset()
    yield
    reset()


@pytest.fixture
def obs_context():
    """A fresh activated :class:`ObsContext` (metrics only).

    Counter assertions read ``ctx.registry`` — isolated from every
    other test and from the process default registry, no global reset
    needed."""
    ctx = ObsContext("test")
    with ctx.activate():
        yield ctx


@pytest.fixture(scope="session")
def flat_mesh() -> TriangleMesh:
    """A flat 9x9 grid: geodesics equal Euclidean distances."""
    return standard_mesh("flat", 9)


@pytest.fixture(scope="session")
def rough_mesh() -> TriangleMesh:
    """A small rugged terrain (17x17)."""
    return standard_mesh("rough", 17)


@pytest.fixture(scope="session")
def bh_mesh() -> TriangleMesh:
    """Bearhead-like dataset at test scale."""
    return standard_mesh("BH", 17)


@pytest.fixture(scope="session")
def ep_mesh() -> TriangleMesh:
    """Eagle-Peak-like dataset at test scale."""
    return standard_mesh("EP", 17)


@pytest.fixture(scope="session")
def tilted_mesh() -> TriangleMesh:
    """A planar but tilted surface: geodesics still equal 3D
    Euclidean distances (the plane is developable)."""
    return standard_mesh("tilted", 9)


@pytest.fixture(scope="session")
def cube_mesh() -> TriangleMesh:
    """A closed unit cube (12 faces) with known exact geodesics."""
    vertices = np.array(
        [
            [0, 0, 0], [1, 0, 0], [1, 1, 0], [0, 1, 0],
            [0, 0, 1], [1, 0, 1], [1, 1, 1], [0, 1, 1],
        ],
        dtype=float,
    )
    faces = np.array(
        [
            [0, 2, 1], [0, 3, 2],  # bottom
            [4, 5, 6], [4, 6, 7],  # top
            [0, 1, 5], [0, 5, 4],  # front
            [1, 2, 6], [1, 6, 5],  # right
            [2, 3, 7], [2, 7, 6],  # back
            [3, 0, 4], [3, 4, 7],  # left
        ]
    )
    return TriangleMesh(vertices, faces)


@pytest.fixture(scope="session")
def small_engine() -> SurfaceKNNEngine:
    """An engine over the BH test terrain with ~20 objects."""
    return standard_engine("BH", 17, density=10.0, seed=3)


@pytest.fixture(scope="session")
def ep_engine() -> SurfaceKNNEngine:
    return standard_engine("EP", 17, density=10.0, seed=3)
