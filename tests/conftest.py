"""Shared fixtures: small deterministic terrains and engines.

Session-scoped so the expensive structures (DMTM collapse trees,
MSDN plane sweeps, exact geodesics) are built once per run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import SurfaceKNNEngine
from repro.terrain.dem import DemGrid
from repro.terrain.mesh import TriangleMesh
from repro.terrain.synthetic import bearhead_like, eagle_peak_like, fractal_dem


@pytest.fixture(scope="session")
def flat_mesh() -> TriangleMesh:
    """A flat 9x9 grid: geodesics equal Euclidean distances."""
    return TriangleMesh.from_dem(fractal_dem(size=9, relief=0.0, seed=1))


@pytest.fixture(scope="session")
def rough_mesh() -> TriangleMesh:
    """A small rugged terrain (17x17)."""
    return TriangleMesh.from_dem(
        fractal_dem(size=17, relief=700.0, roughness=0.75, seed=5)
    )


@pytest.fixture(scope="session")
def bh_mesh() -> TriangleMesh:
    """Bearhead-like dataset at test scale."""
    return TriangleMesh.from_dem(bearhead_like(size=17))


@pytest.fixture(scope="session")
def ep_mesh() -> TriangleMesh:
    """Eagle-Peak-like dataset at test scale."""
    return TriangleMesh.from_dem(eagle_peak_like(size=17))


@pytest.fixture(scope="session")
def tilted_mesh() -> TriangleMesh:
    """A planar but tilted surface: geodesics still equal 3D
    Euclidean distances (the plane is developable)."""
    size = 9
    heights = np.add.outer(np.arange(size), np.arange(size)) * 30.0
    return TriangleMesh.from_dem(DemGrid(heights, cell_size=90.0))


@pytest.fixture(scope="session")
def cube_mesh() -> TriangleMesh:
    """A closed unit cube (12 faces) with known exact geodesics."""
    vertices = np.array(
        [
            [0, 0, 0], [1, 0, 0], [1, 1, 0], [0, 1, 0],
            [0, 0, 1], [1, 0, 1], [1, 1, 1], [0, 1, 1],
        ],
        dtype=float,
    )
    faces = np.array(
        [
            [0, 2, 1], [0, 3, 2],  # bottom
            [4, 5, 6], [4, 6, 7],  # top
            [0, 1, 5], [0, 5, 4],  # front
            [1, 2, 6], [1, 6, 5],  # right
            [2, 3, 7], [2, 7, 6],  # back
            [3, 0, 4], [3, 4, 7],  # left
        ]
    )
    return TriangleMesh(vertices, faces)


@pytest.fixture(scope="session")
def small_engine(bh_mesh) -> SurfaceKNNEngine:
    """An engine over the BH test terrain with ~20 objects."""
    return SurfaceKNNEngine(bh_mesh, density=10.0, seed=3)


@pytest.fixture(scope="session")
def ep_engine(ep_mesh) -> SurfaceKNNEngine:
    return SurfaceKNNEngine(ep_mesh, density=10.0, seed=3)
