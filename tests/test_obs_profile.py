"""Phase profiler, scoped ObsContexts and perf-diff attribution.

Pins the PR's acceptance invariants:

* a profiled query is bit-identical to an unprofiled one (same ids,
  intervals and logical reads) and profiling is off by default;
* phase self-seconds partition wall time — they sum to the root's
  total exactly, which is what lets ``repro.obs.diff`` attribute an
  end-to-end delta with no unexplained residue;
* profile counter totals reconcile with ``QueryMetrics`` (logical /
  physical reads, per-class reads) and with the registry's kernel
  counters (settled / relaxations);
* ObsContexts isolate: two engines profiling concurrently never see
  each other's counters, and nobody resets a global to get there.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.core.batch import BatchQuery, BatchQueryExecutor
from repro.core.engine import SurfaceKNNEngine
from repro.obs.context import ObsContext, active_profiler, current
from repro.obs.diff import attribute, load_run
from repro.obs.diff import main as diff_main
from repro.obs.export import write_jsonl
from repro.obs.profile import (
    NOOP_PHASE,
    NULL_PROFILER,
    PHASES,
    PROFILE_SCHEMA,
    PhaseNode,
    Profile,
    Profiler,
    profile_from_record,
    profile_record,
)


# ----------------------------------------------------------------------
# Profiler unit behaviour
# ----------------------------------------------------------------------


class TestProfiler:
    def test_phases_aggregate_by_path(self):
        prof = Profiler()
        with prof.phase("query"):
            for _ in range(3):
                with prof.phase("graph-kernel"):
                    pass
            with prof.phase("page-io"):
                with prof.phase("graph-kernel"):
                    pass
        (profile,) = prof.take()
        root = profile.root
        assert root.name == "query" and root.calls == 1
        assert root.children["graph-kernel"].calls == 3
        # Same phase under a different parent is a different node.
        assert root.children["page-io"].children["graph-kernel"].calls == 1

    def test_reentrant_phase_does_not_double_bill(self):
        """A kernel calling another kernel (shortest_path →
        dijkstra_with_parents) nests graph-kernel inside graph-kernel;
        the aggregated self-seconds must still equal the outer
        frame's wall time, not twice it."""
        prof = Profiler()
        with prof.phase("query"):
            with prof.phase("graph-kernel") as outer:
                with prof.phase("graph-kernel") as inner:
                    pass
        (profile,) = prof.take()
        assert inner is outer.children["graph-kernel"]
        by_phase = profile.self_seconds_by_phase()
        assert by_phase["graph-kernel"] == pytest.approx(
            outer.seconds, abs=1e-12
        )
        assert sum(by_phase.values()) == pytest.approx(
            profile.total_seconds, abs=1e-12
        )

    def test_self_seconds_partition_wall_time(self):
        prof = Profiler()
        with prof.phase("query"):
            with prof.phase("interval-ranking"):
                with prof.phase("graph-kernel"):
                    pass
            with prof.phase("refinement"):
                pass
        (profile,) = prof.take()
        by_phase = profile.self_seconds_by_phase()
        assert sum(by_phase.values()) == pytest.approx(
            profile.total_seconds, abs=1e-12
        )

    def test_count_attributes_to_innermost(self):
        prof = Profiler()
        prof.count("orphan", 5)  # no open phase: silently dropped
        with prof.phase("query"):
            prof.count("a", 1)
            with prof.phase("graph-kernel"):
                prof.count("a", 2)
        (profile,) = prof.take()
        assert profile.root.counters == {"a": 1}
        assert profile.root.children["graph-kernel"].counters == {"a": 2}
        assert profile.counter("a") == 3
        assert profile.counter("orphan") == 0

    def test_disabled_profiler_is_noop(self):
        assert NULL_PROFILER.phase("query") is NOOP_PHASE
        NULL_PROFILER.count("settled", 9)
        with NULL_PROFILER.phase("query") as node:
            assert node is None
        assert NULL_PROFILER.finished() == []

    def test_exception_pops_frame_and_propagates(self):
        prof = Profiler()
        with pytest.raises(RuntimeError):
            with prof.phase("query"):
                raise RuntimeError("boom")
        assert prof.current() is None
        (profile,) = prof.take()  # the root still finished
        assert profile.root.calls == 1

    def test_record_round_trip(self):
        prof = Profiler()
        with prof.phase("query"):
            prof.count("settled", 7)
            with prof.phase("page-io"):
                prof.count("physical.dmtm", 2)
        (profile,) = prof.take()
        record = profile_record(profile, label="t/k=3")
        assert record["schema"] == PROFILE_SCHEMA
        again = profile_from_record(json.loads(json.dumps(record)))
        assert again.label == "t/k=3"
        assert again.total_seconds == profile.total_seconds
        assert again.total_counters() == profile.total_counters()
        assert again.self_seconds_by_phase() == (
            profile.self_seconds_by_phase()
        )
        with pytest.raises(ValueError):
            profile_from_record({"schema": "repro.query_trace/v1"})


# ----------------------------------------------------------------------
# End-to-end: profiled queries
# ----------------------------------------------------------------------


class TestQueryProfile:
    @pytest.fixture()
    def profiled(self, small_engine):
        ctx = ObsContext("t", profiling=True)
        qv = small_engine.snap(700.0, 700.0)
        result = small_engine.query(qv, 3, step_length=2, obs=ctx)
        return result, ctx

    def test_profiling_off_by_default(self, small_engine):
        result = small_engine.query(small_engine.snap(700.0, 700.0), 3)
        assert result.profile() is None

    def test_profiled_query_is_bit_identical(self, small_engine):
        qv = small_engine.snap(600.0, 900.0)
        plain = small_engine.query(qv, 3, step_length=2)
        ctx = ObsContext("t", profiling=True)
        profiled = small_engine.query(qv, 3, step_length=2, obs=ctx)
        assert profiled.object_ids == plain.object_ids
        assert profiled.intervals == plain.intervals
        assert profiled.metrics.logical_reads == plain.metrics.logical_reads
        assert profiled.metrics.pages_accessed == (
            plain.metrics.pages_accessed
        )

    def test_phase_names_come_from_catalog(self, profiled):
        result, _ctx = profiled
        profile = result.profile()
        names = {node.name for node in profile.root.walk()}
        assert names <= set(PHASES)
        assert profile.root.name == "query"
        assert "interval-ranking" in names

    def test_tree_sum_equals_root_time(self, profiled):
        result, _ctx = profiled
        profile = result.profile()
        by_phase = profile.self_seconds_by_phase()
        assert sum(by_phase.values()) == pytest.approx(
            profile.total_seconds, abs=1e-9
        )
        for node in profile.root.walk():
            assert node.child_seconds <= node.seconds + 1e-9

    def test_counters_reconcile_with_query_metrics(self, profiled):
        result, _ctx = profiled
        profile = result.profile()
        totals = profile.total_counters()
        m = result.metrics
        assert totals.get("logical_reads", 0) == m.logical_reads
        assert totals.get("physical_reads", 0) == m.pages_accessed
        by_class = {
            key[len("physical."):]: value
            for key, value in totals.items()
            if key.startswith("physical.")
        }
        assert by_class == m.reads_by_class

    def test_counters_reconcile_with_registry(self, small_engine):
        ctx = ObsContext("t", profiling=True)
        calls = ctx.registry.counter("geodesic.dijkstra.calls")
        settled = ctx.registry.counter("geodesic.dijkstra.settled")
        relax = ctx.registry.counter("geodesic.dijkstra.relaxations")
        before = (calls.value, settled.value, relax.value)
        result = small_engine.query(
            small_engine.snap(700.0, 700.0), 3, step_length=2, obs=ctx
        )
        totals = result.profile().total_counters()
        assert totals.get("kernel_calls", 0) == calls.value - before[0]
        assert totals.get("settled", 0) == settled.value - before[1]
        assert totals.get("relaxations", 0) == relax.value - before[2]

    def test_profiler_collects_finished_roots(self, small_engine):
        ctx = ObsContext("t", profiling=True)
        for k in (2, 3):
            small_engine.query(
                small_engine.snap(700.0, 700.0), k, step_length=2, obs=ctx
            )
        profiles = ctx.profiler.take()
        assert len(profiles) == 2
        assert ctx.profiler.take() == []  # drained

    def test_render_tree_is_presentable(self, profiled):
        result, _ctx = profiled
        text = result.profile().render_tree()
        assert "profile: mr3" in text
        assert "query" in text and "100.0%" in text
        assert "interval-ranking" in text


class TestFrontierCounters:
    """The ``geodesic.frontier.*`` counters reconcile with the shared
    kernel counters and with the profiler's phase-attributed counts.

    The graph must clear ``MIN_FRONTIER_NODES`` — smaller searches
    delegate to the heap kernels and emit no frontier counters (that
    delegation is itself pinned here).
    """

    def _big_graph(self, n=700, seed=11):
        import math
        import random

        from repro.geodesic.csr import csr_from_adjacency

        rng = random.Random(seed)
        adj = [[] for _ in range(n)]
        pos = [(rng.uniform(0, 50), rng.uniform(0, 50), 0.0) for _ in range(n)]
        for u in range(n):
            for _ in range(3):
                v = rng.randrange(n)
                if v == u:
                    continue
                w = math.dist(pos[u], pos[v]) + 0.01
                adj[u].append((v, w))
                adj[v].append((u, w))
        # Ring to keep it connected.
        for u in range(n):
            v = (u + 1) % n
            adj[u].append((v, 1.0))
            adj[v].append((u, 1.0))
        return adj, csr_from_adjacency(adj)

    def test_counters_reconcile(self):
        from repro.geodesic.frontier import (
            MIN_FRONTIER_NODES,
            multi_source_frontier,
        )

        adj, csr = self._big_graph()
        assert csr.num_nodes >= MIN_FRONTIER_NODES
        ctx = ObsContext("frontier", profiling=True)
        names = (
            "geodesic.frontier.buckets",
            "geodesic.frontier.batch_relaxations",
            "geodesic.frontier.max_frontier",
            "geodesic.dijkstra.settled",
        )
        counters = [ctx.registry.counter(name) for name in names]
        before = [c.value for c in counters]
        with ctx.activate():
            with ctx.profiler.phase("query"):
                found = multi_source_frontier(csr, [(0, 0.5), (3, 0.0)])
        buckets, batches, max_frontier, settled = (
            c.value - b for c, b in zip(counters, before)
        )
        assert len(found.value) == csr.num_nodes  # full sweep settled all
        assert settled == csr.num_nodes
        # Each bucket settles at least one node; at most one batched
        # relaxation runs per bucket; no single bucket (and so no
        # accumulated per-call maximum) exceeds the settled total.
        assert 0 < buckets <= settled
        assert 0 < batches <= buckets
        assert 0 < max_frontier <= settled
        # The same deltas land on the profiler's open phase frame.
        (profile,) = ctx.profiler.take()
        totals = profile.total_counters()
        assert totals.get("frontier_buckets", 0) == buckets
        assert totals.get("frontier_batch_relaxations", 0) == batches
        assert totals.get("frontier_max_frontier", 0) == max_frontier
        assert totals.get("settled", 0) == settled
        assert "frontier-relaxation" in {
            node.name for node in profile.root.walk()
        }

    def test_small_graphs_emit_no_frontier_counters(self):
        from repro.geodesic.csr import csr_from_adjacency
        from repro.geodesic.frontier import (
            MIN_FRONTIER_NODES,
            dijkstra_frontier,
        )

        csr = csr_from_adjacency([[(1, 1.0)], [(0, 1.0), (2, 2.0)], [(1, 2.0)]])
        assert csr.num_nodes < MIN_FRONTIER_NODES
        ctx = ObsContext("small", profiling=True)
        buckets = ctx.registry.counter("geodesic.frontier.buckets")
        settled = ctx.registry.counter("geodesic.dijkstra.settled")
        before = (buckets.value, settled.value)
        with ctx.activate():
            dijkstra_frontier(csr, 0)
        assert buckets.value == before[0]  # delegated: no bucket counters
        assert settled.value == before[1] + 3  # heap twin still reports


# ----------------------------------------------------------------------
# ObsContext scoping
# ----------------------------------------------------------------------


class TestObsContext:
    def test_activation_scopes_current(self):
        outer = ObsContext("outer")
        inner = ObsContext("inner")
        base = current()
        with outer.activate():
            assert current() is outer
            with inner.activate():
                assert current() is inner
            assert current() is outer
        assert current() is base

    def test_default_profiler_is_disabled(self):
        assert not current().profiler.enabled
        assert not active_profiler().enabled

    def test_child_inherits_enablement_and_absorb_merges(self):
        parent = ObsContext("p", profiling=True)
        child = parent.child("q0")
        assert child.profiler.enabled
        assert child.registry is not parent.registry
        child.registry.counter("settled").add(4)
        with child.profiler.phase("query"):
            pass
        parent.absorb(child)
        assert parent.registry.counter("settled").value == 4
        assert len(parent.profiler.finished()) == 1

    def test_two_engines_profile_concurrently_without_crosstalk(
        self, small_engine, ep_engine
    ):
        """The isolation acceptance test: two engines, two contexts,
        concurrent queries — disjoint telemetry, no global resets."""
        ctx_a = ObsContext("a", profiling=True)
        ctx_b = ObsContext("b", profiling=True)
        default_calls = current().registry.counter(
            "geodesic.dijkstra.calls"
        )
        default_before = default_calls.value
        errors: list[BaseException] = []

        def run(engine, ctx, n):
            try:
                qv = engine.snap(700.0, 700.0)
                for _ in range(n):
                    engine.query(qv, 2, step_length=2, obs=ctx)
            except BaseException as exc:  # pragma: no cover - diagnostics
                errors.append(exc)

        threads = [
            threading.Thread(target=run, args=(small_engine, ctx_a, 2)),
            threading.Thread(target=run, args=(ep_engine, ctx_b, 3)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(ctx_a.profiler.finished()) == 2
        assert len(ctx_b.profiler.finished()) == 3
        for ctx in (ctx_a, ctx_b):
            assert ctx.registry.counter("geodesic.dijkstra.calls").value > 0
        # Nothing leaked into the process default registry.
        assert default_calls.value == default_before

    def test_batch_executor_merges_child_contexts(self, bh_mesh):
        engine = SurfaceKNNEngine(bh_mesh, density=10.0, seed=3)
        ctx = ObsContext("batch", profiling=True)
        qv = engine.snap(700.0, 700.0)
        specs = [BatchQuery(vertex=qv, k=k, step_length=2) for k in (2, 3, 4)]
        report = BatchQueryExecutor(engine, workers=2, obs=ctx).run(specs)
        assert not report.errors
        assert len(ctx.profiler.finished()) == len(specs)
        assert ctx.registry.counter("geodesic.dijkstra.calls").value > 0


# ----------------------------------------------------------------------
# obs.diff attribution
# ----------------------------------------------------------------------


def _synthetic_record(query_s, kernel_s, io_s, reads_dmtm):
    root = PhaseNode("query")
    root.calls = 1
    root.seconds = query_s
    kernel = PhaseNode("graph-kernel")
    kernel.calls = 4
    kernel.seconds = kernel_s
    kernel.counters = {"settled": 100, "relaxations": 400}
    io = PhaseNode("page-io")
    io.calls = reads_dmtm
    io.seconds = io_s
    io.counters = {
        "physical_reads": reads_dmtm, "physical.dmtm": reads_dmtm,
    }
    root.children = {"graph-kernel": kernel, "page-io": io}
    return Profile(root, label="synthetic").to_record()


class TestDiff:
    def test_self_diff_is_all_zero(self, tmp_path):
        path = tmp_path / "run.jsonl"
        write_jsonl(path, [_synthetic_record(1.0, 0.4, 0.1, 20)])
        report = attribute(load_run(str(path)), load_run(str(path)))
        assert report["end_to_end"]["delta_seconds"] == 0.0
        assert all(p["delta_seconds"] == 0.0 for p in report["phases"])
        assert all(c["delta_reads"] == 0 for c in report["page_classes"])

    def test_phase_deltas_sum_to_end_to_end_delta(self, tmp_path):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        write_jsonl(a, [
            _synthetic_record(1.0, 0.4, 0.1, 20),
            _synthetic_record(2.0, 1.0, 0.5, 30),
        ])
        write_jsonl(b, [
            _synthetic_record(1.5, 0.9, 0.1, 20),
            _synthetic_record(2.0, 1.0, 0.7, 60),
        ])
        report = attribute(load_run(str(a)), load_run(str(b)))
        delta = report["end_to_end"]["delta_seconds"]
        assert delta == pytest.approx(0.5)
        assert sum(p["delta_seconds"] for p in report["phases"]) == (
            pytest.approx(delta)
        )
        assert sum(p["share"] for p in report["phases"]) == pytest.approx(1.0)
        # Sorted by |delta|: the kernel regression leads the table.
        assert report["phases"][0]["phase"] == "graph-kernel"
        (dmtm,) = report["page_classes"]
        assert dmtm["page_class"] == "dmtm"
        assert dmtm["delta_reads"] == 30

    def test_rejects_mixed_or_unknown_schemas(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        write_jsonl(bad, [
            _synthetic_record(1.0, 0.4, 0.1, 5),
            {"schema": "repro.bench/v1", "total": 1.0, "cpu": 0.5},
        ])
        with pytest.raises(SystemExit):
            load_run(str(bad))
        empty = tmp_path / "empty.jsonl"
        write_jsonl(empty, [])
        with pytest.raises(SystemExit):
            load_run(str(empty))

    def test_bench_records_diff_via_cpu_io_split(self, tmp_path):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        record = {
            "schema": "repro.bench/v1", "total": 2.0, "cpu": 1.5,
            "pages_dmtm": 10, "dijkstra_settled": 100,
        }
        write_jsonl(a, [record])
        write_jsonl(b, [dict(record, total=3.0, cpu=1.5, pages_dmtm=25)])
        report = attribute(load_run(str(a)), load_run(str(b)))
        assert report["kind"] == "bench"
        phases = {p["phase"]: p["delta_seconds"] for p in report["phases"]}
        assert phases == {"cpu": pytest.approx(0.0), "io": pytest.approx(1.0)}

    def test_cli_writes_json_report(self, tmp_path, capsys):
        run = tmp_path / "run.jsonl"
        out = tmp_path / "report.json"
        write_jsonl(run, [_synthetic_record(1.0, 0.4, 0.1, 20)])
        assert diff_main([str(run), str(run), "--json", str(out)]) == 0
        text = capsys.readouterr().out
        assert "end-to-end delta: +0.000000 s" in text
        assert "TOTAL" in text
        report = json.loads(out.read_text())
        assert report["schema"] == "repro.profile_diff/v1"
        assert report["end_to_end"]["delta_seconds"] == 0.0
