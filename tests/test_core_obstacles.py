"""Tests for the obstacle-constrained sk-NN extension."""

import numpy as np
import pytest

from repro.core.obstacles import obstacle_knn, region_faces, steep_faces
from repro.errors import QueryError
from repro.geometry.primitives import BoundingBox


class TestSteepFaces:
    def test_flat_has_none(self, flat_mesh):
        assert steep_faces(flat_mesh, 10.0) == set()

    def test_rough_has_some(self, rough_mesh):
        steep = steep_faces(rough_mesh, 30.0)
        assert steep
        assert steep < set(range(rough_mesh.num_faces))

    def test_threshold_monotone(self, rough_mesh):
        assert steep_faces(rough_mesh, 50.0) <= steep_faces(rough_mesh, 30.0)

    def test_bad_threshold(self, rough_mesh):
        with pytest.raises(QueryError):
            steep_faces(rough_mesh, 0.0)


class TestObstacleKnn:
    def test_no_obstacles_matches_pathnet_order(self, small_engine):
        qv = small_engine.snap(700.0, 700.0)
        free = obstacle_knn(
            small_engine.mesh, small_engine.objects, qv, 3, forbidden_faces=set()
        )
        assert len(free) == 3
        dists = [d for _o, d in free]
        assert dists == sorted(dists)

    def test_obstacles_never_shorten(self, small_engine):
        qv = small_engine.snap(700.0, 700.0)
        mesh = small_engine.mesh
        free = dict(
            obstacle_knn(mesh, small_engine.objects, qv, len(small_engine.objects), set())
        )
        wall = steep_faces(mesh, 35.0)
        constrained = obstacle_knn(
            mesh, small_engine.objects, qv, len(small_engine.objects), wall
        )
        for obj, d in constrained:
            assert d >= free[obj] - 1e-9

    def test_blocking_region_excludes(self, small_engine):
        """A forbidden band across the middle cuts off the far side."""
        mesh = small_engine.mesh
        bounds = mesh.xy_bounds()
        mid_y = float(bounds.center[1])
        band = BoundingBox(
            (bounds.lo[0] - 1.0, mid_y - 100.0),
            (bounds.hi[0] + 1.0, mid_y + 100.0),
        )
        wall = region_faces(mesh, band)
        qv = mesh.nearest_vertex((float(bounds.center[0]), float(bounds.lo[1]) + 100.0))
        result = obstacle_knn(
            mesh, small_engine.objects, qv, len(small_engine.objects), wall
        )
        reached = {obj for obj, _d in result}
        far_side = {
            obj
            for obj in range(len(small_engine.objects))
            if small_engine.objects.position_of(obj)[1] > mid_y + 100.0
        }
        assert reached.isdisjoint(far_side)

    def test_query_inside_obstacle_empty(self, small_engine):
        mesh = small_engine.mesh
        qv = small_engine.snap(700.0, 700.0)
        wall = set(range(mesh.num_faces))  # everything forbidden
        assert obstacle_knn(mesh, small_engine.objects, qv, 3, wall) == []

    def test_engine_facade(self, small_engine):
        qv = small_engine.snap(700.0, 700.0)
        res = small_engine.obstacle_query(qv, 2, max_slope_deg=55.0)
        assert res.method == "obstacle"
        assert len(res.object_ids) <= 2
        for lb, ub in res.intervals:
            assert lb == ub
