"""Tests for adaptive plane placement and >200 % DMTM resolutions."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geodesic.exact import ExactGeodesic
from repro.msdn.crossing import adaptive_plane_positions, plane_positions
from repro.msdn.msdn import MSDN
from repro.multires.dmtm import DMTM


class TestAdaptivePlanes:
    def test_same_count_as_uniform(self, rough_mesh):
        spacing = float(np.mean(rough_mesh.edge_lengths))
        uniform = plane_positions(rough_mesh.xy_bounds(), spacing, 1)
        adaptive = adaptive_plane_positions(rough_mesh, spacing, 1, strength=1.0)
        assert len(adaptive) == len(uniform)

    def test_positions_inside_terrain(self, rough_mesh):
        spacing = float(np.mean(rough_mesh.edge_lengths))
        bounds = rough_mesh.xy_bounds()
        for axis in (0, 1):
            positions = adaptive_plane_positions(rough_mesh, spacing, axis, 1.0)
            assert np.all(positions >= bounds.lo[axis] - spacing)
            assert np.all(positions <= bounds.hi[axis] + spacing)
            assert np.all(np.diff(positions) > 0)  # strictly ordered

    def test_strength_zero_is_uniform(self, rough_mesh):
        spacing = float(np.mean(rough_mesh.edge_lengths))
        uniform = plane_positions(rough_mesh.xy_bounds(), spacing, 0)
        adaptive = adaptive_plane_positions(rough_mesh, spacing, 0, strength=0.0)
        np.testing.assert_allclose(adaptive, uniform)

    def test_bad_strength(self, rough_mesh):
        with pytest.raises(GeometryError):
            adaptive_plane_positions(rough_mesh, 90.0, 0, strength=2.0)

    def test_density_follows_roughness(self, rough_mesh):
        """Planes concentrate where crossing lines are longest
        relative to the straight traverse."""
        spacing = float(np.mean(rough_mesh.edge_lengths))
        from repro.msdn.crossing import crossing_line

        uniform = plane_positions(rough_mesh.xy_bounds(), spacing, 1)
        roughness = []
        for v in uniform:
            line = crossing_line(rough_mesh, 1, float(v))
            straight = float(np.linalg.norm(line.points[-1, :2] - line.points[0, :2]))
            roughness.append(line.length() / straight)
        adaptive = adaptive_plane_positions(rough_mesh, spacing, 1, strength=1.0)
        # Compare plane density in the roughest vs smoothest third.
        order = np.argsort(roughness)
        smooth_band = (uniform[order[0]] - spacing, uniform[order[0]] + spacing)
        rough_band = (uniform[order[-1]] - spacing, uniform[order[-1]] + spacing)
        in_smooth = np.sum((adaptive > smooth_band[0]) & (adaptive < smooth_band[1]))
        in_rough = np.sum((adaptive > rough_band[0]) & (adaptive < rough_band[1]))
        assert in_rough >= in_smooth

    def test_lower_bounds_remain_valid(self, rough_mesh):
        msdn = MSDN(rough_mesh, adaptive_planes=1.0)
        rng = np.random.default_rng(4)
        for _ in range(3):
            a, b = rng.integers(0, rough_mesh.num_vertices, size=2)
            if a == b:
                continue
            ds = ExactGeodesic(rough_mesh, int(a)).distance_to(int(b))
            lb = msdn.lower_bound(
                rough_mesh.vertices[a], rough_mesh.vertices[b], 1.0
            ).value
            assert lb <= ds + 1e-6


class TestHigherPathnetResolutions:
    def test_300_tightens_over_200(self, rough_mesh):
        dmtm = DMTM(rough_mesh)
        a, b = 5, rough_mesh.num_vertices - 7
        ds = ExactGeodesic(rough_mesh, a).distance_to(b)
        ub2 = dmtm.upper_bound(a, b, 2.0).value
        ub3 = dmtm.upper_bound(a, b, 3.0).value
        assert ub3 <= ub2 + 1e-9
        assert ub3 >= ds - 1e-6

    def test_steiner_mapping(self, rough_mesh):
        dmtm = DMTM(rough_mesh, steiner_per_edge=1)
        assert dmtm._steiner_for(2.0) == 1
        assert dmtm._steiner_for(3.0) == 2
        assert dmtm._steiner_for(5.0) == 4
