"""Key-scoping regressions for engines that share storage and caches.

A :class:`~repro.shard.engine.ShardedEngine` owns many tile stores
behind one :class:`~repro.storage.pages.BufferPool` and may serve them
all from one :class:`~repro.core.batch.BoundCache`.  Tile stores
number their pages from zero, and same-shaped tiles produce colliding
ROI boxes and anchor tuples — so both layers need a per-structure
scope in their keys:

* the buffer pool keys entries by ``(owner, page_id)`` with a fresh
  owner token per :class:`~repro.storage.pages.PageManager`;
* the ranker inserts a structure scope (mesh fingerprint + DMTM/MSDN
  parameters) into every bound-cache key family.

These tests hammer two tiles that share page ids through one pool and
one cache and assert zero cross-talk: answers equal isolated runs,
and dropping one tile's buffer leaves the other's pages resident.
"""

from __future__ import annotations

import pytest

from repro.core.batch import BoundCache
from repro.core.engine import SurfaceKNNEngine
from repro.core.objects import ObjectSet
from repro.core.ranking import _structure_scope
from repro.shard import ShardedEngine, TileGrid, uniform_grid_objects
from repro.storage.pages import BufferPool
from repro.terrain.mesh import TriangleMesh
from repro.terrain.synthetic import fractal_dem


@pytest.fixture(scope="module")
def dem():
    return fractal_dem(17, 90.0, 500.0, 0.6, seed=13)


@pytest.fixture(scope="module")
def vids(dem):
    return uniform_grid_objects(dem, 24, seed=5)


def _tile_engines(dem, vids, buffer_pool=None):
    """Two standalone engines over the (0,0) and (0,1) tile windows
    of a 2x2 grid, optionally sharing one buffer pool."""
    grid = TileGrid(dem, (2, 2))
    engines = []
    for tile in ((0, 0), (0, 1)):
        span = grid.tile_span(tile)
        r0, r1, c0, c1 = grid.span_window(span)
        sub = grid.window_dem(span)
        mesh = TriangleMesh.from_dem(sub)
        wcols = c1 - c0 + 1
        local = [
            (v // dem.cols - r0) * wcols + (v % dem.cols - c0)
            for v in vids
            if r0 <= v // dem.cols <= r1 and c0 <= v % dem.cols <= c1
        ]
        engines.append(
            SurfaceKNNEngine(
                mesh,
                objects=ObjectSet(mesh, local),
                buffer_pool=buffer_pool,
            )
        )
    return engines


class TestBufferPoolScoping:
    def test_tile_stores_share_page_ids_but_not_pages(self, dem, vids):
        pool = BufferPool(4096)
        a, b = _tile_engines(dem, vids, buffer_pool=pool)
        # The regression precondition: both stores really do number
        # their pages from the same range.
        assert a.pages._owner != b.pages._owner
        ra = a.query(8, 3)
        rb = b.query(8, 3)
        owners = {owner for owner, _pid in pool._entries}
        page_ids = [
            {pid for owner, pid in pool._entries if owner == o}
            for o in sorted(owners)
        ]
        assert len(owners) == 2
        assert page_ids[0] & page_ids[1], "expected colliding page ids"
        # Isolated twins (private pools) must answer identically —
        # any cross-owner page aliasing would corrupt reads.
        a2, b2 = _tile_engines(dem, vids)
        ra2 = a2.query(8, 3)
        rb2 = b2.query(8, 3)
        assert ra.object_ids == ra2.object_ids
        assert ra.intervals == ra2.intervals
        assert ra.metrics.logical_reads == ra2.metrics.logical_reads
        assert rb.object_ids == rb2.object_ids
        assert rb.intervals == rb2.intervals
        assert rb.metrics.logical_reads == rb2.metrics.logical_reads

    def test_drop_buffer_only_evicts_own_owner(self, dem, vids):
        pool = BufferPool(4096)
        a, b = _tile_engines(dem, vids, buffer_pool=pool)
        a.query(8, 2)
        b.query(8, 2)
        b_pages = sum(
            1 for owner, _pid in pool._entries if owner == b.pages._owner
        )
        assert b_pages > 0
        a.pages.drop_buffer()
        remaining = {owner for owner, _pid in pool._entries}
        assert a.pages._owner not in remaining
        assert (
            sum(1 for o, _p in pool._entries if o == b.pages._owner)
            == b_pages
        )

    def test_sharded_engine_tiles_survive_interleaved_hammering(
        self, dem, vids
    ):
        # Interleave queries across two tiles of one sharded engine
        # (shared pool, shared everything) and compare against a fresh
        # engine answering each query exactly once.
        hammered = ShardedEngine(dem, objects=vids, grid=(2, 2))
        left = 4 * dem.cols + 2      # tile (0, 0)
        right = 4 * dem.cols + 13    # tile (0, 1)
        for _ in range(3):
            hammered.query(left, 3)
            hammered.query(right, 3)
        fresh = ShardedEngine(dem, objects=vids, grid=(2, 2))
        for vertex in (left, right):
            a = hammered.query(vertex, 3)
            b = fresh.query(vertex, 3)
            assert sorted(a.object_ids) == sorted(b.object_ids)
            assert a.intervals == b.intervals


class TestBoundCacheScoping:
    def test_structure_scope_distinguishes_meshes(self, dem, vids):
        a, b = _tile_engines(dem, vids)
        scope_a = _structure_scope(a.mesh, a.dmtm, a.msdn)
        scope_b = _structure_scope(b.mesh, b.dmtm, b.msdn)
        assert scope_a != scope_b
        # Memoized token: recomputing yields the identical scope.
        assert scope_a == _structure_scope(a.mesh, a.dmtm, a.msdn)

    def test_shared_cache_across_different_meshes_is_transparent(
        self, dem, vids
    ):
        # Two same-shaped tiles produce identical anchor tuples, ROI
        # boxes and resolutions — without the structure scope in the
        # keys, tile A's cached bounds would answer tile B's lookups.
        shared = BoundCache()
        a, b = _tile_engines(dem, vids)
        results_shared = []
        for _ in range(2):  # second round hits the warm cache
            for engine in (a, b):
                results_shared.append(
                    engine.query(8, 3, bound_cache=shared)
                )
        a2, b2 = _tile_engines(dem, vids)
        results_private = []
        for _ in range(2):
            for engine in (a2, b2):
                results_private.append(
                    engine.query(8, 3, bound_cache=BoundCache())
                )
        for got, want in zip(results_shared, results_private):
            assert got.object_ids == want.object_ids
            assert got.intervals == want.intervals
            assert got.metrics.logical_reads == want.metrics.logical_reads
