"""ShardedEngine answer identity against the monolithic engine.

The contract under test is the tentpole's: for any terrain both can
build, the sharded engine reports the *same neighbour sets* (and
degraded/budget flags) as one :class:`~repro.core.engine.SurfaceKNNEngine`
over the whole DEM — regardless of which window the router certified —
and the full-tile-span window is byte-identical to the monolithic
engine by construction.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batch import BatchQueryExecutor
from repro.core.budget import QueryBudget
from repro.core.engine import SurfaceKNNEngine
from repro.core.objects import ObjectSet
from repro.errors import QueryError
from repro.obs.context import ObsContext
from repro.shard import ShardedEngine, uniform_grid_objects
from repro.terrain.mesh import TriangleMesh
from repro.terrain.synthetic import fractal_dem


@pytest.fixture(scope="module")
def dem():
    return fractal_dem(17, 90.0, 500.0, 0.65, seed=7)


@pytest.fixture(scope="module")
def object_vids(dem):
    return uniform_grid_objects(dem, 24, seed=2)


@pytest.fixture(scope="module")
def mono(dem, object_vids):
    mesh = TriangleMesh.from_dem(dem)
    return SurfaceKNNEngine(mesh, objects=ObjectSet(mesh, object_vids))


@pytest.fixture(scope="module")
def sharded(dem, object_vids):
    return ShardedEngine(dem, objects=object_vids, grid=(2, 2))


def _query_vertices(dem):
    """A spread of probes including the tile-cut cross (the border
    queries are the ones sub-window certification finds hardest)."""
    mid = dem.rows // 2
    picks = [
        (2, 2), (2, dem.cols - 3), (dem.rows - 3, 2),
        (dem.rows - 3, dem.cols - 3), (mid, mid), (mid, 1),
        (1, mid), (5, 11),
    ]
    return [r * dem.cols + c for r, c in picks]


class TestAnswerIdentity:
    def test_sets_and_flags_match_monolithic(self, dem, mono, sharded):
        for vertex in _query_vertices(dem):
            for k in (1, 3, 5):
                a = mono.query(vertex, k)
                b = sharded.query(vertex, k)
                assert sorted(a.object_ids) == sorted(b.object_ids), (
                    f"vertex {vertex} k={k}"
                )
                assert a.degraded == b.degraded
                assert a.degraded_reason == b.degraded_reason
                assert a.budget_reason == b.budget_reason
                assert a.converged == b.converged

    def test_result_ids_are_global(self, dem, sharded, object_vids):
        vertex = 2 * dem.cols + 2
        result = sharded.query(vertex, 3)
        assert result.query_vertex == vertex
        for obj in result.object_ids:
            assert 0 <= obj < len(object_vids)
        for gid, _lb in result.rest:
            assert 0 <= gid < len(object_vids)

    def test_intervals_bracket_monolithic_intervals(self, dem, mono, sharded):
        # Sub-window lower bounds are rewritten to globally sound
        # values, so each object's interval must still contain the
        # monolithic converged distance estimate.
        vertex = 3 * dem.cols + 4
        a = mono.query(vertex, 4)
        b = sharded.query(vertex, 4)
        mono_iv = dict(zip(a.object_ids, a.intervals))
        for obj, (lb, ub) in zip(b.object_ids, b.intervals):
            m_lb, m_ub = mono_iv[obj]
            assert lb <= m_ub + 1e-6
            assert ub >= m_lb - 1e-6

    def test_single_tile_grid_is_byte_identical(self, dem, mono, object_vids):
        flat = ShardedEngine(dem, objects=object_vids, grid=(1, 1))
        vertex = 4 * dem.cols + 9
        a = mono.query(vertex, 3)
        b = flat.query(vertex, 3)
        assert a.object_ids == b.object_ids
        assert a.intervals == b.intervals
        assert a.metrics.logical_reads == b.metrics.logical_reads

    def test_budgeted_queries_match_monolithic(self, dem, mono, sharded):
        vertex = 6 * dem.cols + 6
        a = mono.query(vertex, 3, budget=QueryBudget(max_pages=8))
        b = sharded.query(vertex, 3, budget=QueryBudget(max_pages=8))
        assert a.object_ids == b.object_ids
        assert a.budget_reason == b.budget_reason
        assert a.degraded == b.degraded
        assert a.max_error == b.max_error


class TestBatchExecutor:
    def test_batch_matches_sequential_sharded(self, dem, sharded):
        vertices = _query_vertices(dem)[:6]
        sequential = [sharded.query(v, 3) for v in vertices]
        executor = BatchQueryExecutor(sharded, workers=3)
        report = executor.run([{"vertex": v, "k": 3} for v in vertices])
        assert not report.errors
        for seq, got in zip(sequential, report.results):
            assert got is not None
            assert sorted(seq.object_ids) == sorted(got.object_ids)
            assert seq.degraded == got.degraded
            assert seq.budget_reason == got.budget_reason


class TestBuilds:
    def test_warm_parallel_matches_serial(self, dem, object_vids):
        a = ShardedEngine(dem, objects=object_vids, grid=(2, 2))
        b = ShardedEngine(dem, objects=object_vids, grid=(2, 2))
        a.warm(parallel=True)
        b.warm(parallel=False)
        assert a.windows_built == b.windows_built
        vertex = 5 * dem.cols + 5
        ra = a.query(vertex, 3)
        rb = b.query(vertex, 3)
        assert sorted(ra.object_ids) == sorted(rb.object_ids)

    def test_windows_are_cached(self, sharded, dem):
        before = len(sharded.windows_built)
        vertex = 2 * dem.cols + 2
        sharded.query(vertex, 2)
        between = len(sharded.windows_built)
        sharded.query(vertex, 2)
        assert len(sharded.windows_built) == between >= before

    def test_density_object_placement(self, dem):
        engine = ShardedEngine(dem, grid=(2, 2), density=4.0, seed=1)
        assert engine.num_objects >= 1
        assert len(np.unique(engine.object_vertices)) == engine.num_objects


class TestObservability:
    def test_counters_and_phase_recorded(self, dem, object_vids):
        obs = ObsContext(profiling=True)
        engine = ShardedEngine(dem, objects=object_vids, grid=(2, 2), obs=obs)
        engine.query(2 * dem.cols + 2, 3)
        snap = obs.registry.collect()
        assert snap["shard.queries_total"]["value"] == 1
        assert snap["shard.windows_built_total"]["value"] >= 1
        phases = set()
        for profile in obs.profiler.finished():
            for node in profile.root.walk():
                phases.add(node.name)
        assert "shard-routing" in phases

    def test_trace_span_emitted(self, dem, object_vids):
        obs = ObsContext(tracing=True)
        engine = ShardedEngine(dem, objects=object_vids, grid=(2, 2), obs=obs)
        engine.query(3 * dem.cols + 3, 2)

        def walk(spans):
            for span in spans:
                yield span
                yield from walk(span.children)

        names = [s.name for s in walk(obs.tracer.finished())]
        assert "shard.query" in names
        assert "shard.build_window" in names
        root = next(
            s for s in obs.tracer.finished() if s.name == "shard.query"
        )
        assert "expansions" in root.attributes
        assert "tiles" in root.attributes


class TestValidation:
    def test_k_bounds_checked(self, sharded, object_vids):
        with pytest.raises(QueryError, match="k must be"):
            sharded.query(0, 0)
        with pytest.raises(QueryError, match="exceeds"):
            sharded.query(0, len(object_vids) + 1)

    def test_vertex_range_checked(self, dem, sharded):
        with pytest.raises(QueryError, match="out of range"):
            sharded.query(dem.rows * dem.cols, 1)
        with pytest.raises(QueryError, match="out of range"):
            sharded.query(-1, 1)

    def test_bad_object_lists_rejected(self, dem):
        with pytest.raises(QueryError, match="at least one"):
            ShardedEngine(dem, objects=[])
        with pytest.raises(QueryError, match="distinct"):
            ShardedEngine(dem, objects=[3, 3])
        with pytest.raises(QueryError, match="range"):
            ShardedEngine(dem, objects=[dem.rows * dem.cols])

    def test_uniform_grid_objects_validates_count(self, dem):
        with pytest.raises(QueryError, match="place"):
            uniform_grid_objects(dem, dem.rows * dem.cols + 1)
