"""Tests for the bench CLI and the experiment runner plumbing."""

import pytest

from repro.bench.__main__ import main
from repro.bench.runner import format_table, run_experiment


class TestRunner:
    def test_run_experiment_prints_tables(self, capsys):
        def fake_experiment(quick=False):
            return {"tables": ["HEADER\nrow"], "rows": [1, 2]}

        out = run_experiment(fake_experiment, quick=True)
        captured = capsys.readouterr().out
        assert "HEADER" in captured
        assert "fake_experiment completed" in captured
        assert out["rows"] == [1, 2]

    def test_format_table_empty_rows(self):
        table = format_table("T", ["a"], [])
        assert "T" in table

    def test_format_small_floats(self):
        table = format_table("T", ["v"], [{"v": 0.1234567}])
        assert "0.123" in table


class TestCli:
    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            main(["nope"])

    def test_help(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        assert "fig7" in capsys.readouterr().out

    def test_runs_quick_figure(self, capsys, monkeypatch):
        # Patch the experiment table so the CLI test stays fast.
        import repro.bench.__main__ as cli

        called = {}

        def fake(quick=False):
            called["quick"] = quick
            return {"tables": ["ok"], "rows": []}

        monkeypatch.setitem(cli._FIGURES, "fig7", fake)
        assert main(["fig7", "--quick"]) == 0
        assert called["quick"] is True
        assert "ok" in capsys.readouterr().out
