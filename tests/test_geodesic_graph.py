"""Unit tests for KeyedGraph."""

import pytest

from repro.errors import GeodesicError
from repro.geodesic.dijkstra import dijkstra
from repro.geodesic.graph import KeyedGraph


class TestKeyedGraph:
    def test_add_node_idempotent(self):
        g = KeyedGraph()
        a = g.add_node("a")
        assert g.add_node("a") == a
        assert len(g) == 1

    def test_contains(self):
        g = KeyedGraph()
        g.add_node(("v", 1))
        assert ("v", 1) in g
        assert ("v", 2) not in g

    def test_add_edge_creates_nodes(self):
        g = KeyedGraph()
        g.add_edge("x", "y", 2.0)
        assert len(g) == 2
        assert g.num_edges() == 1

    def test_self_loop_ignored(self):
        g = KeyedGraph()
        g.add_edge("x", "x", 1.0)
        assert g.num_edges() == 0

    def test_negative_weight_rejected(self):
        g = KeyedGraph()
        with pytest.raises(GeodesicError):
            g.add_edge("a", "b", -1.0)

    def test_unknown_key_rejected(self):
        g = KeyedGraph()
        with pytest.raises(GeodesicError):
            g.node_id("missing")

    def test_key_roundtrip(self):
        g = KeyedGraph()
        nid = g.add_node(("s", 3, 1))
        assert g.key_of(nid) == ("s", 3, 1)

    def test_dijkstra_over_keyed_graph(self):
        g = KeyedGraph()
        g.add_edge("a", "b", 1.0)
        g.add_edge("b", "c", 2.0)
        g.add_edge("a", "c", 10.0)
        dist = dijkstra(g.adjacency, g.node_id("a"))
        assert dist[g.node_id("c")] == pytest.approx(3.0)

    def test_degree(self):
        g = KeyedGraph()
        g.add_edge("a", "b", 1.0)
        g.add_edge("a", "c", 1.0)
        assert g.degree("a") == 2
        assert g.degree("b") == 1
