"""Unit tests for polylines and MBR-enclosing simplification."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry.polyline import Polyline, simplify_with_enclosure


def zigzag(n: int) -> Polyline:
    pts = np.array([[i, i % 2, (i * 7) % 3] for i in range(n)], dtype=float)
    return Polyline(pts)


class TestPolyline:
    def test_too_few_points_rejected(self):
        with pytest.raises(GeometryError):
            Polyline(np.array([[0.0, 0.0, 0.0]]))

    def test_counts(self):
        line = zigzag(5)
        assert line.num_points == 5
        assert line.num_segments == 4

    def test_length(self):
        line = Polyline(np.array([[0, 0, 0], [3, 4, 0], [3, 4, 2]], dtype=float))
        assert line.length() == pytest.approx(7.0)

    def test_segment_mbr(self):
        line = zigzag(4)
        m = line.segment_mbr(0)
        assert m.lo[0] == 0.0
        assert m.hi[0] == 1.0

    def test_segment_mbr_out_of_range(self):
        with pytest.raises(GeometryError):
            zigzag(3).segment_mbr(2)

    def test_mbr_covers_all_points(self):
        line = zigzag(10)
        m = line.mbr()
        for p in line.points:
            assert m.contains_point(p)


class TestSimplifyWithEnclosure:
    def test_full_resolution_is_identity(self):
        line = zigzag(9)
        chunks = simplify_with_enclosure(line, 1.0)
        assert len(chunks) == line.num_segments
        for i, c in enumerate(chunks):
            assert (c.first, c.last) == (i, i)

    def test_invalid_resolution_rejected(self):
        with pytest.raises(GeometryError):
            simplify_with_enclosure(zigzag(5), 0.0)
        with pytest.raises(GeometryError):
            simplify_with_enclosure(zigzag(5), 1.5)

    def test_chunk_count_tracks_resolution(self):
        line = zigzag(41)  # 40 segments
        assert len(simplify_with_enclosure(line, 0.5)) == 20
        assert len(simplify_with_enclosure(line, 0.25)) == 10

    def test_chunks_partition_segments(self):
        line = zigzag(17)
        for res in (0.25, 0.375, 0.5, 0.75, 1.0):
            chunks = simplify_with_enclosure(line, res)
            covered = []
            for c in chunks:
                covered.extend(range(c.first, c.last + 1))
            assert covered == list(range(line.num_segments))

    def test_enclosure_property(self):
        """The paper's key requirement: every chunk MBR encloses the
        MBRs of the original segments it replaces."""
        line = zigzag(23)
        for res in (0.25, 0.5, 0.75):
            for chunk in simplify_with_enclosure(line, res):
                for seg in range(chunk.first, chunk.last + 1):
                    assert chunk.mbr.contains_box(line.segment_mbr(seg))

    def test_single_chunk_floor(self):
        line = zigzag(3)
        chunks = simplify_with_enclosure(line, 0.01)
        assert len(chunks) == 1
        assert chunks[0].segment_count == line.num_segments
