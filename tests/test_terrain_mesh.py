"""Unit tests for TriangleMesh."""

import math

import numpy as np
import pytest

from repro.errors import MeshError, TerrainError
from repro.terrain.dem import DemGrid
from repro.terrain.mesh import TriangleMesh
from repro.terrain.synthetic import fractal_dem


class TestConstruction:
    def test_from_dem_counts(self):
        mesh = TriangleMesh.from_dem(fractal_dem(size=5, seed=1))
        assert mesh.num_vertices == 25
        assert mesh.num_faces == 2 * 4 * 4
        # Euler-ish check for a disc: V - E + F = 1
        assert mesh.num_vertices - mesh.num_edges + mesh.num_faces == 1

    def test_rejects_bad_indices(self):
        with pytest.raises(MeshError):
            TriangleMesh(np.zeros((3, 3)), np.array([[0, 1, 5]]))

    def test_rejects_degenerate_face(self):
        v = np.array([[0, 0, 0], [1, 0, 0], [0, 1, 0]], dtype=float)
        with pytest.raises(MeshError):
            TriangleMesh(v, np.array([[0, 1, 1]]))

    def test_rejects_zero_area_face(self):
        v = np.array([[0, 0, 0], [1, 0, 0], [2, 0, 0], [0, 1, 0]], dtype=float)
        with pytest.raises(MeshError):
            TriangleMesh(v, np.array([[0, 1, 2], [0, 1, 3]]))


class TestAdjacency:
    def test_edge_lengths(self, flat_mesh):
        # Grid edges are cell, cell, or diagonal lengths.
        cell = 90.0
        lengths = set(np.round(flat_mesh.edge_lengths, 6))
        assert lengths <= {cell, round(cell * math.sqrt(2), 6)}

    def test_vertex_neighbors_symmetric(self, rough_mesh):
        for v in range(0, rough_mesh.num_vertices, 37):
            for w in rough_mesh.vertex_neighbors[v]:
                assert v in rough_mesh.vertex_neighbors[w]

    def test_face_neighbors_reciprocal(self, rough_mesh):
        fn = rough_mesh.face_neighbors
        for fi in range(0, rough_mesh.num_faces, 17):
            for g in fn[fi]:
                if g >= 0:
                    assert fi in fn[g]

    def test_edge_length_lookup(self, flat_mesh):
        u = 0
        w = flat_mesh.vertex_neighbors[0][0]
        assert flat_mesh.edge_length(u, w) > 0

    def test_edge_length_missing_raises(self, flat_mesh):
        with pytest.raises(MeshError):
            flat_mesh.edge_length(0, flat_mesh.num_vertices - 1)


class TestGeometryQueries:
    def test_surface_area_flat(self, flat_mesh):
        extent = flat_mesh.xy_bounds().measure()
        assert flat_mesh.surface_area() == pytest.approx(extent)

    def test_surface_area_rough_exceeds_flat(self, rough_mesh):
        extent = rough_mesh.xy_bounds().measure()
        assert rough_mesh.surface_area() > extent * 1.05

    def test_locate_face_and_elevation(self, rough_mesh):
        b = rough_mesh.xy_bounds()
        x = (b.lo[0] + b.hi[0]) / 2 + 7.3
        y = (b.lo[1] + b.hi[1]) / 2 - 3.1
        fi = rough_mesh.locate_face(x, y)
        assert 0 <= fi < rough_mesh.num_faces
        z = rough_mesh.elevation_at(x, y)
        zmin, zmax = rough_mesh.vertices[:, 2].min(), rough_mesh.vertices[:, 2].max()
        assert zmin - 1e-9 <= z <= zmax + 1e-9

    def test_locate_face_off_mesh_raises(self, rough_mesh):
        with pytest.raises(TerrainError):
            rough_mesh.locate_face(-1e6, -1e6)

    def test_elevation_matches_vertex(self, rough_mesh):
        vid = rough_mesh.num_vertices // 2
        x, y, z = rough_mesh.vertices[vid]
        assert rough_mesh.elevation_at(x, y) == pytest.approx(z, abs=1e-6)

    def test_nearest_vertex(self, flat_mesh):
        vid = 7
        p = flat_mesh.vertices[vid]
        assert flat_mesh.nearest_vertex(p) == vid
        assert flat_mesh.nearest_vertex(p[:2]) == vid


class TestTopologyQueries:
    def test_boundary_vertices_of_grid(self, flat_mesh):
        boundary = flat_mesh.boundary_vertices()
        # A 9x9 grid has 32 boundary vertices.
        assert len(boundary) == 32

    def test_total_angle_interior_flat(self, flat_mesh):
        interior = set(range(flat_mesh.num_vertices)) - flat_mesh.boundary_vertices()
        vid = next(iter(interior))
        assert flat_mesh.vertex_total_angle(vid) == pytest.approx(2 * math.pi)

    def test_total_angle_cube_corner(self, cube_mesh):
        # Each cube corner has three right angles.
        assert cube_mesh.vertex_total_angle(0) == pytest.approx(3 * math.pi / 2)

    def test_cube_is_closed(self, cube_mesh):
        assert cube_mesh.boundary_vertices() == set()
        # Euler characteristic of a sphere: V - E + F = 2.
        assert cube_mesh.num_vertices - cube_mesh.num_edges + cube_mesh.num_faces == 2


class TestNetworkViews:
    def test_edge_network_shape(self, flat_mesh):
        adj = flat_mesh.edge_network()
        assert len(adj) == flat_mesh.num_vertices
        degree_sum = sum(len(n) for n in adj)
        assert degree_sum == 2 * flat_mesh.num_edges

    def test_submesh_faces_full_region(self, rough_mesh):
        faces = rough_mesh.submesh_faces(rough_mesh.xy_bounds())
        assert len(faces) == rough_mesh.num_faces

    def test_submesh_faces_small_region(self, rough_mesh):
        from repro.geometry.primitives import BoundingBox

        b = rough_mesh.xy_bounds()
        small = BoundingBox.around(b.center, float(b.extents[0]) * 0.1)
        faces = rough_mesh.submesh_faces(small)
        assert 0 < len(faces) < rough_mesh.num_faces
