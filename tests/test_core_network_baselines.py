"""Tests for the INE / IER network k-NN baselines (§2.1)."""

import numpy as np
import pytest

from repro.core.network_baselines import ier_knn, ine_knn
from repro.errors import QueryError
from repro.geodesic.dijkstra import dijkstra


def brute_network_knn(mesh, objects, qv, k):
    adj = mesh.edge_network()
    dist = dijkstra(adj, qv)
    ranked = sorted(
        (dist[objects.vertex_of(obj)], obj)
        for obj in range(len(objects))
        if objects.vertex_of(obj) in dist
    )
    return [(obj, d) for d, obj in ranked[:k]]


class TestIne:
    def test_matches_brute_force(self, small_engine):
        qv = small_engine.snap(800.0, 700.0)
        got = ine_knn(small_engine.mesh, small_engine.objects, qv, 5)
        want = brute_network_knn(small_engine.mesh, small_engine.objects, qv, 5)
        assert [d for _o, d in got] == pytest.approx([d for _o, d in want])
        assert {o for o, _d in got} == {o for o, _d in want}

    def test_ascending(self, small_engine):
        got = ine_knn(small_engine.mesh, small_engine.objects, 7, 6)
        dists = [d for _o, d in got]
        assert dists == sorted(dists)

    def test_validation(self, small_engine):
        with pytest.raises(QueryError):
            ine_knn(small_engine.mesh, small_engine.objects, 0, 0)
        with pytest.raises(QueryError):
            ine_knn(
                small_engine.mesh,
                small_engine.objects,
                0,
                len(small_engine.objects) + 1,
            )


class TestIer:
    def test_agrees_with_ine(self, small_engine):
        """Both compute the same thing (network k-NN); only their
        access patterns differ."""
        for qv in (7, small_engine.snap(800.0, 700.0), small_engine.snap(200.0, 1300.0)):
            ine = ine_knn(small_engine.mesh, small_engine.objects, qv, 4)
            ier = ier_knn(small_engine.mesh, small_engine.objects, qv, 4)
            assert [d for _o, d in ier] == pytest.approx([d for _o, d in ine])

    def test_query_at_object(self, small_engine):
        vid = small_engine.objects.vertex_of(2)
        ier = ier_knn(small_engine.mesh, small_engine.objects, vid, 1)
        assert ier[0][0] == 2
        assert ier[0][1] == 0.0


class TestNetworkVsSurface:
    def test_network_distance_overestimates_surface(self, small_engine):
        """The paper's motivation: dN >= dS, strictly so in general
        (network paths cannot cut across faces)."""
        from repro.geodesic.exact import ExactGeodesic

        qv = small_engine.snap(700.0, 900.0)
        ine = ine_knn(small_engine.mesh, small_engine.objects, qv, 5)
        geo = ExactGeodesic(small_engine.mesh, qv)
        overestimates = 0
        for obj, dn in ine:
            ds = geo.distance_to(small_engine.objects.vertex_of(obj))
            assert dn >= ds - 1e-9
            overestimates += dn > ds + 1e-6
        assert overestimates >= 3  # strict on most of a rugged terrain
