"""Tests for the final Kanai-Suzuki polish pass of the ranker."""

import numpy as np
import pytest

from repro.core.ranking import DistanceRanker, RankerOptions
from repro.core.schedule import ResolutionSchedule
from repro.geodesic.exact import ExactGeodesic


def run_rank(engine, qv, k, **opts):
    ranker = DistanceRanker(
        engine.mesh,
        engine.dmtm,
        engine.msdn,
        ResolutionSchedule.preset(1),
        RankerOptions(**opts),
    )
    cands = ranker.make_candidates(range(len(engine.objects)), engine.objects)
    out = ranker.rank(qv, cands, k)
    return out, cands


class TestFinalPolish:
    def test_polish_tightens_boundary_ubs(self, small_engine):
        qv = small_engine.snap(600.0, 1200.0)
        with_polish, cands_p = run_rank(small_engine, qv, 4, final_polish=True)
        without, cands_n = run_rank(small_engine, qv, 4, final_polish=False)
        width_p = sum(c.ub - c.lb for c in with_polish.winners)
        width_n = sum(c.ub - c.lb for c in without.winners)
        assert width_p <= width_n + 1e-9

    def test_polished_ubs_remain_valid(self, small_engine):
        qv = small_engine.snap(600.0, 1200.0)
        out, cands = run_rank(small_engine, qv, 4, final_polish=True)
        geo = ExactGeodesic(small_engine.mesh, qv)
        for cand in cands:
            if np.isfinite(cand.ub):
                ds = geo.distance_to(cand.vertex)
                assert cand.ub >= ds - 1e-6
                assert cand.lb <= ds + 1e-6

    def test_polish_within_tolerance_of_exact(self, small_engine):
        """After polishing, every winner's ub is within ~tolerance of
        its true surface distance."""
        qv = small_engine.snap(600.0, 1200.0)
        out, _cands = run_rank(
            small_engine, qv, 4, final_polish=True, polish_tolerance=0.02
        )
        geo = ExactGeodesic(small_engine.mesh, qv)
        for cand in out.winners:
            ds = geo.distance_to(cand.vertex)
            assert cand.ub <= ds * 1.10  # selective refinement slack
