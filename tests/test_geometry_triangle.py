"""Unit tests for triangle geometry and planar unfolding."""

import math

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry.triangle import (
    barycentric_2d,
    point_in_triangle_2d,
    triangle_area,
    unfold_triangle,
)


class TestTriangleArea:
    def test_right_triangle_2d(self):
        assert triangle_area((0, 0), (2, 0), (0, 2)) == pytest.approx(2.0)

    def test_right_triangle_3d(self):
        assert triangle_area((0, 0, 0), (2, 0, 0), (0, 2, 0)) == pytest.approx(2.0)

    def test_degenerate_zero(self):
        assert triangle_area((0, 0), (1, 1), (2, 2)) == pytest.approx(0.0)

    def test_orientation_independent(self):
        a, b, c = (0, 0), (3, 1), (1, 4)
        assert triangle_area(a, b, c) == pytest.approx(triangle_area(a, c, b))


class TestBarycentric:
    def test_vertices(self):
        a, b, c = (0, 0), (1, 0), (0, 1)
        assert barycentric_2d(a, a, b, c) == pytest.approx((1, 0, 0))
        assert barycentric_2d(b, a, b, c) == pytest.approx((0, 1, 0))
        assert barycentric_2d(c, a, b, c) == pytest.approx((0, 0, 1))

    def test_centroid(self):
        a, b, c = (0, 0), (3, 0), (0, 3)
        w = barycentric_2d((1, 1), a, b, c)
        assert w == pytest.approx((1 / 3, 1 / 3, 1 / 3))

    def test_sums_to_one(self):
        w = barycentric_2d((0.3, 0.2), (0, 0), (2, 0.5), (0.5, 3))
        assert sum(w) == pytest.approx(1.0)

    def test_degenerate_raises(self):
        with pytest.raises(GeometryError):
            barycentric_2d((0, 0), (0, 0), (1, 1), (2, 2))


class TestPointInTriangle:
    def test_inside(self):
        assert point_in_triangle_2d((0.2, 0.2), (0, 0), (1, 0), (0, 1))

    def test_outside(self):
        assert not point_in_triangle_2d((1, 1), (0, 0), (1, 0), (0, 1))

    def test_on_edge(self):
        assert point_in_triangle_2d((0.5, 0.0), (0, 0), (1, 0), (0, 1))

    def test_degenerate_false(self):
        assert not point_in_triangle_2d((0, 0), (0, 0), (1, 1), (2, 2))


class TestUnfoldTriangle:
    def test_equilateral(self):
        apex = unfold_triangle((0.0, 0.0), (1.0, 0.0), 1.0, 1.0, side=1)
        assert apex[0] == pytest.approx(0.5)
        assert apex[1] == pytest.approx(math.sqrt(3) / 2)

    def test_side_flip(self):
        up = unfold_triangle((0.0, 0.0), (2.0, 0.0), 1.5, 1.5, side=1)
        down = unfold_triangle((0.0, 0.0), (2.0, 0.0), 1.5, 1.5, side=-1)
        assert up[1] == pytest.approx(-down[1])

    def test_distances_preserved(self):
        a2, b2 = np.array([1.0, 2.0]), np.array([4.0, 6.0])
        d_a, d_b = 2.5, 4.2
        apex = unfold_triangle(a2, b2, d_a, d_b)
        assert np.linalg.norm(apex - a2) == pytest.approx(d_a, rel=1e-9)
        assert np.linalg.norm(apex - b2) == pytest.approx(d_b, rel=1e-9)

    def test_rotated_edge(self):
        # Unfolding must work for an edge in general position.
        a2 = np.array([3.0, -1.0])
        b2 = a2 + np.array([math.cos(0.7), math.sin(0.7)]) * 2.0
        apex = unfold_triangle(a2, b2, 1.7, 1.1)
        assert np.linalg.norm(apex - a2) == pytest.approx(1.7, rel=1e-9)

    def test_zero_edge_raises(self):
        with pytest.raises(GeometryError):
            unfold_triangle((1.0, 1.0), (1.0, 1.0), 1.0, 1.0)

    def test_bad_side_raises(self):
        with pytest.raises(GeometryError):
            unfold_triangle((0, 0), (1, 0), 1.0, 1.0, side=0)

    def test_triangle_inequality_clamped(self):
        # d_a + d_b slightly below edge length: apex clamps onto the line.
        apex = unfold_triangle((0.0, 0.0), (2.0, 0.0), 0.999, 0.999)
        assert apex[1] == pytest.approx(0.0, abs=1e-6)
