"""Tests for the surface closest-pair query (paper §6 extension)."""

import itertools

import numpy as np
import pytest

from repro.core.objects import ObjectSet
from repro.core.pairs import surface_closest_pair
from repro.core.schedule import ResolutionSchedule
from repro.errors import QueryError
from repro.geodesic.exact import ExactGeodesic


def brute_closest_pair(mesh, objects):
    best = None
    for a, b in itertools.combinations(range(len(objects)), 2):
        d = ExactGeodesic(mesh, objects.vertex_of(a)).distance_to(
            objects.vertex_of(b)
        )
        if best is None or d < best[1]:
            best = ((a, b), d)
    return best


class TestClosestPair:
    def test_matches_brute_force(self, small_engine):
        (pair, (lb, ub)) = small_engine.closest_pair()
        (want_pair, want_d) = brute_closest_pair(
            small_engine.mesh, small_engine.objects
        )
        assert lb <= ub
        # The returned pair's interval must bracket its exact distance...
        exact = ExactGeodesic(
            small_engine.mesh, small_engine.objects.vertex_of(pair[0])
        ).distance_to(small_engine.objects.vertex_of(pair[1]))
        assert lb - 1e-6 <= exact <= ub + 1e-6
        # ...and be the true winner up to the pathnet tolerance.
        assert exact <= want_d * 1.05 + 1e-9

    def test_interval_brackets_truth(self, ep_engine):
        (pair, (lb, ub)) = ep_engine.closest_pair(step_length=3)
        exact = ExactGeodesic(
            ep_engine.mesh, ep_engine.objects.vertex_of(pair[0])
        ).distance_to(ep_engine.objects.vertex_of(pair[1]))
        assert lb - 1e-6 <= exact <= ub + 1e-6

    def test_two_objects(self, bh_mesh):
        objects = ObjectSet(bh_mesh, [3, bh_mesh.num_vertices - 4])
        from repro.msdn.msdn import MSDN
        from repro.multires.dmtm import DMTM

        pair, (lb, ub) = surface_closest_pair(
            bh_mesh,
            DMTM(bh_mesh),
            MSDN(bh_mesh),
            objects,
            ResolutionSchedule.preset(2),
        )
        assert pair == (0, 1)
        assert 0 < lb <= ub

    def test_single_object_rejected(self, bh_mesh):
        from repro.msdn.msdn import MSDN
        from repro.multires.dmtm import DMTM

        with pytest.raises(QueryError):
            surface_closest_pair(
                bh_mesh,
                DMTM(bh_mesh),
                MSDN(bh_mesh),
                ObjectSet(bh_mesh, [3]),
                ResolutionSchedule.preset(2),
            )
