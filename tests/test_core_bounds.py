"""Unit tests for distance intervals and candidate classification."""

import pytest

from repro.core.bounds import Candidate, DistanceInterval, classify_candidates
from repro.errors import QueryError


def cand(obj, lb, ub):
    c = Candidate(object_id=obj, vertex=obj, position=(0.0, 0.0, 0.0))
    c.interval.refine_lb(lb)
    c.interval.refine_ub(ub)
    return c


class TestDistanceInterval:
    def test_monotone_refinement(self):
        iv = DistanceInterval()
        iv.refine_lb(5.0)
        iv.refine_lb(3.0)  # weaker: ignored
        assert iv.lb == 5.0
        iv.refine_ub(20.0)
        iv.refine_ub(25.0)  # weaker: ignored
        assert iv.ub == 20.0

    def test_inversion_rejected(self):
        iv = DistanceInterval()
        iv.refine_ub(10.0)
        with pytest.raises(QueryError):
            iv.refine_lb(11.0)

    def test_accuracy(self):
        iv = DistanceInterval()
        assert iv.accuracy == 0.0
        iv.refine_ub(10.0)
        iv.refine_lb(8.0)
        assert iv.accuracy == pytest.approx(0.8)

    def test_ordering_predicates(self):
        early = DistanceInterval(lb=1.0, ub=2.0)
        late = DistanceInterval(lb=3.0, ub=4.0)
        overlap = DistanceInterval(lb=1.5, ub=3.5)
        assert early.certainly_before(late)
        assert not late.certainly_before(early)
        assert early.overlaps(overlap)
        assert overlap.overlaps(late)
        assert not early.overlaps(late)


class TestClassification:
    def test_bad_k(self):
        with pytest.raises(QueryError):
            classify_candidates([cand(0, 0, 1)], 0)

    def test_fewer_than_k_all_win(self):
        out = classify_candidates([cand(0, 1, 2), cand(1, 3, 4)], 5)
        assert out.done
        assert len(out.winners) == 2

    def test_separated_intervals_done(self):
        candidates = [cand(i, i * 10.0, i * 10.0 + 5.0) for i in range(5)]
        out = classify_candidates(candidates, 2)
        assert out.done
        assert [c.object_id for c in out.winners] == [0, 1]
        assert len(out.rejected) == 3

    def test_overlap_keeps_active(self):
        candidates = [
            cand(0, 1.0, 2.0),
            cand(1, 1.5, 3.0),
            cand(2, 1.8, 3.2),
        ]
        out = classify_candidates(candidates, 1)
        assert not out.done
        assert out.active  # ties unresolved

    def test_clear_winner_extracted_early(self):
        candidates = [
            cand(0, 1.0, 2.0),  # certainly in any top-2
            cand(1, 5.0, 9.0),
            cand(2, 6.0, 10.0),
        ]
        out = classify_candidates(candidates, 2)
        assert any(c.object_id == 0 for c in out.winners)

    def test_rejected_by_kth_ub(self):
        candidates = [
            cand(0, 1.0, 2.0),
            cand(1, 1.5, 2.5),
            cand(2, 50.0, 60.0),  # lb far beyond the 2nd ub
        ]
        out = classify_candidates(candidates, 2)
        assert any(c.object_id == 2 for c in out.rejected)

    def test_kth_bounds_reported(self):
        candidates = [cand(0, 1.0, 2.0), cand(1, 3.0, 4.0), cand(2, 9.0, 11.0)]
        out = classify_candidates(candidates, 2)
        assert out.kth_ub == 4.0
        assert out.kth_lb == 3.0
        assert out.kth_accuracy == pytest.approx(0.75)

    def test_termination_rule_boundary(self):
        """ub(p_k) == lb(p_{k+1}) terminates (ties allowed either way)."""
        candidates = [cand(0, 1.0, 3.0), cand(1, 3.0, 5.0)]
        out = classify_candidates(candidates, 1)
        assert out.done
        assert out.winners[0].object_id == 0
