"""Unit + integration tests for MR3QueryProcessor and the engine."""

import numpy as np
import pytest

from repro.core.baseline import exact_knn
from repro.core.engine import SurfaceKNNEngine
from repro.errors import QueryError


class TestQueryBasics:
    def test_result_shape(self, small_engine):
        qv = small_engine.snap(700.0, 700.0)
        res = small_engine.query(qv, 3)
        assert len(res.object_ids) == 3
        assert len(res.intervals) == 3
        for lb, ub in res.intervals:
            assert lb <= ub + 1e-9

    def test_bad_k(self, small_engine):
        with pytest.raises(QueryError):
            small_engine.query(0, 0)
        with pytest.raises(QueryError):
            small_engine.query(0, len(small_engine.objects) + 1)

    def test_bad_vertex(self, small_engine):
        with pytest.raises(QueryError):
            small_engine.query(-1, 1)

    def test_bad_method(self, small_engine):
        with pytest.raises(QueryError):
            small_engine.query(0, 1, method="nope")

    def test_bad_method_message_names_alternatives(self, small_engine):
        with pytest.raises(QueryError, match="'mr3', 'ea' or 'exact'"):
            small_engine.query(0, 1, method="dijkstra")

    def test_bad_schedule_preset(self):
        from repro.core.schedule import ResolutionSchedule

        with pytest.raises(QueryError):
            ResolutionSchedule.preset("not-a-preset")

    def test_query_xy_snaps(self, small_engine):
        res = small_engine.query_xy(700.0, 700.0, k=2)
        assert len(res.object_ids) == 2

    def test_metrics_populated(self, small_engine):
        qv = small_engine.snap(600.0, 900.0)
        res = small_engine.query(qv, 3)
        m = res.metrics
        assert m.cpu_seconds > 0
        assert m.pages_accessed > 0
        assert m.total_seconds >= m.cpu_seconds
        assert m.iterations_filter >= 1
        assert m.candidates_examined >= 3
        assert m.logical_reads >= m.pages_accessed
        assert 0.0 <= m.buffer_hit_rate <= 1.0
        assert sum(m.reads_by_class.values()) == m.pages_accessed

    def test_explain_reports_io(self, small_engine):
        res = small_engine.query(small_engine.snap(600.0, 900.0), 3)
        text = res.explain()
        assert "ms I/O" in text
        assert "logical" in text
        assert "hit rate" in text


class TestCorrectness:
    @pytest.mark.parametrize("method,step", [("mr3", 1), ("mr3", 2), ("mr3", 3), ("ea", 1)])
    def test_matches_exact_within_tolerance(self, small_engine, method, step):
        mesh = small_engine.mesh
        rng = np.random.default_rng(1)
        for _ in range(3):
            qv = int(rng.integers(0, mesh.num_vertices))
            res = small_engine.query(qv, 4, method=method, step_length=step)
            truth = exact_knn(mesh, small_engine.objects, qv, 4)
            want = {obj for obj, _d in truth}
            got = set(res.object_ids)
            if got != want:
                # Any disagreement must involve near-ties within the
                # pathnet approximation error.
                true_d = dict(exact_knn(mesh, small_engine.objects, qv, len(small_engine.objects)))
                kth = truth[-1][1]
                for obj in got - want:
                    assert true_d[obj] <= kth * 1.05

    def test_exact_method(self, small_engine):
        qv = small_engine.snap(500.0, 500.0)
        res = small_engine.query(qv, 3, method="exact")
        truth = exact_knn(small_engine.mesh, small_engine.objects, qv, 3)
        assert res.object_ids == [obj for obj, _d in truth]
        for (lb, ub), (_obj, d) in zip(res.intervals, truth):
            assert lb == pytest.approx(d)
            assert ub == pytest.approx(d)

    def test_query_at_object_vertex(self, small_engine):
        """Querying at an object's own vertex returns it first with
        distance ~0."""
        vid = small_engine.objects.vertex_of(0)
        res = small_engine.query(vid, 1)
        assert res.object_ids == [0]
        assert res.intervals[0][1] == pytest.approx(0.0, abs=1e-9)


class TestEngineConfig:
    def test_without_storage(self, bh_mesh):
        engine = SurfaceKNNEngine(bh_mesh, density=10.0, seed=3, with_storage=False)
        res = engine.query(engine.snap(700.0, 700.0), 2)
        assert res.metrics.pages_accessed == 0
        assert len(res.object_ids) == 2

    def test_cold_cache_without_storage(self, bh_mesh):
        """cold_cache=True must be a no-op when ``pages is None``
        (with_storage=False), not an AttributeError."""
        engine = SurfaceKNNEngine(bh_mesh, density=10.0, seed=3, with_storage=False)
        assert engine.pages is None
        res = engine.query(engine.snap(700.0, 700.0), 2, cold_cache=True)
        assert res.metrics.pages_accessed == 0
        assert res.metrics.logical_reads == 0
        assert res.metrics.buffer_hit_rate == 0.0

    def test_set_objects(self, small_engine):
        original = small_engine.objects
        try:
            small_engine.set_objects(density=5.0, seed=9)
            assert len(small_engine.objects) != 0
            res = small_engine.query(0, 1)
            assert len(res.object_ids) == 1
        finally:
            small_engine.set_objects(objects=original)

    def test_distance_range_helper(self, small_engine):
        lb, ub = small_engine.distance_range(3, 100, 0.5, 0.5)
        assert 0 < lb <= ub


class TestEagleVsBearhead:
    def test_ep_converges_more_often(self, small_engine, ep_engine):
        """Smoother terrain gives tighter bounds: EP queries should
        converge at least as often as BH queries."""
        rng = np.random.default_rng(5)
        bh_conv = ep_conv = 0
        for _ in range(3):
            qv = int(rng.integers(0, small_engine.mesh.num_vertices))
            bh_conv += small_engine.query(qv, 3).converged
            ep_conv += ep_engine.query(qv, 3).converged
        assert ep_conv >= bh_conv
