"""Differential tests for the flat CSR kernels.

The CSR kernels are a pure performance change: every search shape
must return exactly (``==``, not approx) what the dict reference
kernels return — distances, parents, tie-broken winners — and the
end-to-end query surface (results, intervals, logical page counts,
golden trace records) must be bit-identical between kernel modes.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.errors import GeodesicError
from repro.geodesic.csr import (
    CSRGraph,
    astar_csr,
    csr_from_adjacency,
    dijkstra_csr,
    dijkstra_csr_with_parents,
    graph_dijkstra,
    graph_dijkstra_with_parents,
    kernel_mode,
    multi_source_dijkstra_csr,
    set_kernel_mode,
    use_reference_kernels,
)
from repro.geodesic.dijkstra import (
    dijkstra_reference,
    dijkstra_with_parents_reference,
)
from repro.geodesic.graph import KeyedGraph


def random_geometric_graph(rng, n=None):
    """A connected-ish random graph with 3D positions and
    triangle-inequality-respecting weights (A* needs admissibility)."""
    import math

    if n is None:
        n = rng.randint(2, 40)
    adj = [[] for _ in range(n)]
    pos = [
        (rng.uniform(0, 10), rng.uniform(0, 10), rng.uniform(0, 3))
        for _ in range(n)
    ]
    for u in range(n):
        for _ in range(rng.randint(1, 4)):
            v = rng.randrange(n)
            if v == u:
                continue
            w = math.dist(pos[u], pos[v]) + rng.uniform(0.0, 2.0)
            adj[u].append((v, w))
            adj[v].append((u, w))
    return adj, pos


class TestCSRStructure:
    def test_neighbor_order_preserved(self):
        adj = [[(1, 2.0), (2, 1.0)], [(0, 2.0)], [(0, 1.0)]]
        csr = csr_from_adjacency(adj)
        indptr, indices, weights = csr.lists()
        assert indptr == [0, 2, 3, 4]
        assert indices == [1, 2, 0, 0]
        assert weights == [2.0, 1.0, 2.0, 1.0]
        assert csr.num_nodes == 3
        assert csr.num_edges == 4

    def test_numpy_views_match_lists(self):
        rng = random.Random(3)
        adj, _pos = random_geometric_graph(rng)
        csr = csr_from_adjacency(adj)
        assert csr.indptr.tolist() == csr.lists()[0]
        assert csr.indices.tolist() == csr.lists()[1]
        assert csr.weights.tolist() == csr.lists()[2]
        assert csr.indptr.dtype == np.int64
        assert csr.weights.dtype == np.float64

    def test_empty_and_isolated_nodes(self):
        csr = csr_from_adjacency([[], [], []])
        assert csr.num_nodes == 3
        assert csr.num_edges == 0
        assert dijkstra_csr(csr, 1) == {1: 0.0}

    def test_heuristic_requires_positions(self):
        csr = csr_from_adjacency([[(1, 1.0)], [(0, 1.0)]])
        with pytest.raises(GeodesicError, match="positions"):
            csr.heuristic_to(0)

    def test_source_out_of_range(self):
        csr = csr_from_adjacency([[(1, 1.0)], [(0, 1.0)]])
        with pytest.raises(GeodesicError, match="out of range"):
            dijkstra_csr(csr, 7)
        with pytest.raises(GeodesicError, match="out of range"):
            multi_source_dijkstra_csr(csr, [(7, 0.0)])

    def test_csr_graph_accepts_arrays_and_lists(self):
        by_list = CSRGraph([0, 1, 2], [1, 0], [2.0, 2.0])
        by_array = CSRGraph(
            np.array([0, 1, 2]), np.array([1, 0]), np.array([2.0, 2.0])
        )
        assert by_list.lists() == by_array.lists()


class TestDifferentialSingleSource:
    """Exact equality against the dict reference, random graphs."""

    @pytest.mark.parametrize("seed", range(8))
    def test_full_sweep(self, seed):
        rng = random.Random(seed)
        adj, _pos = random_geometric_graph(rng)
        csr = csr_from_adjacency(adj)
        src = rng.randrange(len(adj))
        assert dijkstra_csr(csr, src) == dijkstra_reference(adj, src)

    @pytest.mark.parametrize("seed", range(8))
    def test_targets_and_max_dist(self, seed):
        rng = random.Random(100 + seed)
        adj, _pos = random_geometric_graph(rng)
        csr = csr_from_adjacency(adj)
        n = len(adj)
        src = rng.randrange(n)
        targets = {rng.randrange(n) for _ in range(rng.randint(1, 3))}
        max_dist = rng.choice([None, rng.uniform(1.0, 12.0)])
        assert dijkstra_csr(
            csr, src, targets=set(targets), max_dist=max_dist
        ) == dijkstra_reference(adj, src, targets=set(targets), max_dist=max_dist)

    @pytest.mark.parametrize("seed", range(8))
    def test_with_parents_identical_trees(self, seed):
        """Not just distances: the tie-broken shortest-path tree must
        match, because upper-bound path keys feed the refined-region
        corridors."""
        rng = random.Random(200 + seed)
        adj, _pos = random_geometric_graph(rng)
        csr = csr_from_adjacency(adj)
        src = rng.randrange(len(adj))
        d1, p1 = dijkstra_csr_with_parents(csr, src)
        d2, p2 = dijkstra_with_parents_reference(adj, src)
        assert d1 == d2
        assert p1 == p2


class TestDifferentialMultiSource:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_per_source_composition(self, seed):
        """The single multi-source search must equal the reference
        composition: per-source Dijkstra, then a strict-< minimum of
        ``offset + distance`` (first source wins ties)."""
        rng = random.Random(300 + seed)
        adj, _pos = random_geometric_graph(rng)
        csr = csr_from_adjacency(adj)
        n = len(adj)
        sources = [
            (rng.randrange(n), rng.uniform(0.0, 3.0))
            for _ in range(rng.randint(1, 4))
        ]
        found = multi_source_dijkstra_csr(csr, sources)
        per = [dijkstra_reference(adj, s) for s, _off in sources]
        for node in range(n):
            best = None
            best_rank = None
            for rank, (_s, off) in enumerate(sources):
                d = per[rank].get(node)
                if d is None:
                    continue
                value = off + d
                if best is None or value < best:
                    best = value
                    best_rank = rank
            assert found.value.get(node) == best
            if best is not None:
                assert found.origin[node] == best_rank

    def test_raw_and_path(self):
        adj = [[(1, 1.0)], [(0, 1.0), (2, 1.0)], [(1, 1.0)]]
        found = multi_source_dijkstra_csr(adj_csr := csr_from_adjacency(adj), [(0, 5.0), (2, 0.0)])
        assert adj_csr.num_nodes == 3
        # Node 1 is 1.0 from both sources; source 2's offset is lower.
        assert found.value[1] == 1.0
        assert found.raw[1] == 1.0
        assert found.origin[1] == 1
        assert found.path_to(1) == [2, 1]
        # Even source 0 settles cheaper from source 2 (0.0 + 2.0 beats
        # its own 5.0 offset) — the cross-anchor minimum applies to
        # source nodes too.
        assert found.value[0] == 2.0
        assert found.raw[0] == 2.0
        assert found.origin[0] == 1
        assert found.path_to(0) == [2, 1, 0]
        # Source 2 settles from itself with raw 0.
        assert found.value[2] == 0.0
        assert found.raw[2] == 0.0
        assert found.path_to(2) == [2]

    def test_empty_sources(self):
        csr = csr_from_adjacency([[], []])
        found = multi_source_dijkstra_csr(csr, [])
        assert found.value == {}

    def test_targets_early_exit_covers_all_targets(self):
        rng = random.Random(77)
        adj, _pos = random_geometric_graph(rng, n=30)
        csr = csr_from_adjacency(adj)
        sources = [(0, 0.5), (5, 0.0)]
        full = multi_source_dijkstra_csr(csr, sources)
        targets = {3, 9, 21}
        partial = multi_source_dijkstra_csr(csr, sources, targets=set(targets))
        for t in targets & set(full.value):
            assert partial.value[t] == full.value[t]


class TestDifferentialAStar:
    @pytest.mark.parametrize("seed", range(8))
    def test_value_equals_dijkstra(self, seed):
        rng = random.Random(400 + seed)
        adj, pos = random_geometric_graph(rng)
        csr = csr_from_adjacency(adj, positions=pos)
        n = len(adj)
        src = rng.randrange(n)
        tgt = rng.randrange(n)
        want = dijkstra_reference(adj, src, targets={tgt}).get(tgt)
        assert astar_csr(csr, src, tgt) == want

    def test_source_equals_target(self):
        csr = csr_from_adjacency([[(1, 1.0)], [(0, 1.0)]], positions=[(0, 0, 0), (1, 0, 0)])
        assert astar_csr(csr, 1, 1) == 0.0

    def test_unreachable_returns_none(self):
        csr = csr_from_adjacency([[], []], positions=[(0, 0, 0), (5, 0, 0)])
        assert astar_csr(csr, 0, 1) is None


class TestKernelMode:
    def test_default_is_csr(self):
        assert kernel_mode() == "csr"

    def test_context_manager_restores(self):
        with use_reference_kernels():
            assert kernel_mode() == "reference"
        assert kernel_mode() == "csr"

    def test_invalid_mode_rejected(self):
        with pytest.raises(GeodesicError, match="unknown kernel mode"):
            set_kernel_mode("simd")


class TestKeyedGraphMemoization:
    def _graph(self):
        g = KeyedGraph()
        g.add_edge("a", "b", 1.0)
        g.add_edge("b", "c", 2.0)
        return g

    def test_csr_is_memoized(self):
        g = self._graph()
        assert g.csr_if_compiled() is None
        first = g.csr()
        assert g.csr() is first
        assert g.csr_if_compiled() is first

    def test_mutation_invalidates(self):
        g = self._graph()
        first = g.csr()
        g.add_edge("c", "d", 3.0)
        assert g.csr_if_compiled() is None
        second = g.csr()
        assert second is not first
        assert second.num_nodes == 4

    def test_new_node_invalidates(self):
        g = self._graph()
        g.csr()
        g.add_node("z")
        assert g.csr_if_compiled() is None

    def test_existing_node_keeps_memo(self):
        g = self._graph()
        first = g.csr()
        g.add_node("a")  # already present: no structural change
        assert g.csr_if_compiled() is first

    def test_position_fill_invalidates_memo(self):
        """Filling a missing position on an existing node must drop
        the compiled CSR: the old compilation snapshotted its (absent)
        positions table, and A* availability depends on it."""
        g = KeyedGraph()
        g.add_node("a", position=(0.0, 0.0, 0.0))
        g.add_edge("a", "b", 1.0)  # b joins without a position
        first = g.csr()
        assert first.positions is None
        g.add_node("b", position=(1.0, 0.0, 0.0))
        assert g.csr_if_compiled() is None
        second = g.csr()
        assert second is not first
        assert second.positions is not None
        # Idempotent: re-adding with the position already set keeps
        # the fresh compilation.
        g.add_node("b", position=(9.0, 9.0, 9.0))
        assert g.csr_if_compiled() is second
        assert tuple(second.positions[g.node_id("b")]) == (1.0, 0.0, 0.0)

    def test_views_rematerialise_after_list_growth(self):
        """A caller growing the list storage after the numpy views
        were materialised must not search on stale views (the frontier
        kernels read the arrays, not the lists)."""
        from repro.geodesic.frontier import dijkstra_frontier

        adj = [[(1, 2.0)], [(0, 2.0)]]
        csr = csr_from_adjacency(adj)
        assert csr.indptr.shape[0] == 3  # views materialised
        indptr, indices, weights = csr.lists()
        # Grow in place: new node 2 linked to node 1 (2 appends to the
        # end of node 1's block, then gets its own block).
        indices.insert(2, 2)
        weights.insert(2, 1.0)
        indptr[2] = 3
        indices.append(1)
        weights.append(1.0)
        indptr.append(4)
        adj[1].append((2, 1.0))
        adj.append([(1, 1.0)])
        assert csr.num_nodes == 3
        assert csr.indptr.shape[0] == 4  # re-materialised, not stale
        assert dijkstra_csr(csr, 0) == dijkstra_reference(adj, 0)
        assert dijkstra_frontier(csr, 0) == dijkstra_reference(adj, 0)

    def test_positions_attached_only_when_complete(self):
        g = KeyedGraph()
        g.add_node("a", position=(0.0, 0.0, 0.0))
        g.add_edge("a", "b", 1.0)  # b has no position
        assert g.csr().positions is None
        g2 = KeyedGraph()
        g2.add_node("a", position=(0.0, 0.0, 0.0))
        g2.add_node("b", position=(1.0, 0.0, 0.0))
        g2.add_edge("a", "b", 1.0)
        assert g2.csr().positions is not None


class TestDispatchers:
    def test_compile_on_reuse_rule(self):
        """A graph never compiled stays on the dict kernel; once some
        caller compiled it, the dispatcher rides the arrays.  Both
        give identical answers."""
        g = KeyedGraph()
        g.add_edge("a", "b", 1.0)
        g.add_edge("b", "c", 2.0)
        fresh = graph_dijkstra(g, g.node_id("a"))
        assert g.csr_if_compiled() is None  # dispatcher did not compile
        g.csr()
        compiled = graph_dijkstra(g, g.node_id("a"))
        assert fresh == compiled
        d1, p1 = graph_dijkstra_with_parents(g, g.node_id("a"))
        with use_reference_kernels():
            d2, p2 = graph_dijkstra_with_parents(g, g.node_id("a"))
        assert (d1, p1) == (d2, p2)


class TestCounters:
    def test_kernels_report_shared_counters(self, obs_context):
        reg = obs_context.registry
        calls = reg.counter("geodesic.dijkstra.calls")
        settled = reg.counter("geodesic.dijkstra.settled")
        before = (calls.value, settled.value)
        csr = csr_from_adjacency([[(1, 1.0)], [(0, 1.0)]])
        dijkstra_csr(csr, 0)
        assert calls.value == before[0] + 1
        assert settled.value == before[1] + 2


class TestEndToEndIdentity:
    """The whole query surface must not notice the kernel swap."""

    @pytest.fixture(scope="class")
    def both_modes(self):
        from repro.testkit.generators import standard_engine, standard_mesh

        mesh = standard_mesh("BH", 13)

        def run():
            # fresh=True: each mode must rebuild its own structures.
            engine = standard_engine("BH", 13, density=8.0, seed=3, fresh=True)
            out = []
            for qv in (10, 40, 88):
                result = engine.query(qv, 3, step_length=2)
                out.append(
                    (
                        tuple(result.object_ids),
                        tuple(result.intervals),
                        result.metrics.logical_reads,
                        result.metrics.pages_accessed,
                    )
                )
            center = mesh.xy_bounds().center
            result = engine.query_point(float(center[0]), float(center[1]), 3)
            out.append(
                (
                    tuple(result.object_ids),
                    tuple(result.intervals),
                    result.metrics.logical_reads,
                    result.metrics.pages_accessed,
                )
            )
            return out

        csr_answers = run()
        with use_reference_kernels():
            ref_answers = run()
        return csr_answers, ref_answers

    def test_results_identical(self, both_modes):
        csr_answers, ref_answers = both_modes
        assert [a[0] for a in csr_answers] == [a[0] for a in ref_answers]

    def test_intervals_bit_identical(self, both_modes):
        csr_answers, ref_answers = both_modes
        assert [a[1] for a in csr_answers] == [a[1] for a in ref_answers]

    def test_page_counts_identical(self, both_modes):
        csr_answers, ref_answers = both_modes
        assert [a[2:] for a in csr_answers] == [a[2:] for a in ref_answers]

    def test_golden_trace_identical_across_modes(self):
        """The pinned golden query produces the same normalized trace
        record under both kernel modes — the goldens in tests/golden
        hold whichever kernels run."""
        from repro.obs.export import normalize_record, query_record
        from test_trace_golden import _golden_result

        csr_record = normalize_record(query_record(_golden_result()))
        with use_reference_kernels():
            ref_record = normalize_record(query_record(_golden_result()))
        assert csr_record == ref_record
