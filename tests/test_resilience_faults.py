"""Resilient storage: CRC-checked pages, seeded fault injection and
bounded retries.

Contract under test: with an injector attached, every transient fault
and every corruption is either recovered by a retry (invisible in
results) or surfaced as a typed ``StorageError`` subclass after the
policy is exhausted — and the retry/corruption counters reconcile
exactly with the injector's own event log.  Without an injector the
read path is behaviourally identical to a fault-free build.
"""

from __future__ import annotations

import pytest

from repro.core.engine import SurfaceKNNEngine
from repro.errors import (
    PageCorruptionError,
    PageReadError,
    StorageError,
)
from repro.obs.tracing import Tracer
from repro.storage.faults import (
    FAULT_CORRUPT,
    FAULT_TRANSIENT,
    FaultInjector,
    RetryPolicy,
)
from repro.storage.pages import PageManager


def make_manager(injector=None, **kwargs) -> PageManager:
    pm = PageManager(fault_injector=injector, **kwargs)
    for i in range(8):
        pm.allocate(f"page-{i}".encode() * 10)
    return pm


class TestFaultInjector:
    def test_same_seed_same_schedule(self):
        runs = []
        for _ in range(2):
            inj = FaultInjector(seed=42, transient_rate=0.5, corrupt_rate=0.3)
            outcomes = []
            for attempt in range(50):
                try:
                    data, _lat = inj.on_read(attempt % 4, b"payload")
                    outcomes.append(data)
                except Exception:
                    outcomes.append("transient")
            runs.append((outcomes, [e.kind for e in inj.log]))
        assert runs[0] == runs[1]

    def test_rates_validated(self):
        with pytest.raises(StorageError):
            FaultInjector(transient_rate=1.5)
        with pytest.raises(StorageError):
            FaultInjector(corrupt_rate=-0.1)

    def test_max_faults_caps_hard_faults(self):
        inj = FaultInjector(seed=1, transient_rate=1.0, max_faults=3)
        failures = 0
        for i in range(10):
            try:
                inj.on_read(i, b"x")
            except Exception:
                failures += 1
        assert failures == 3
        assert inj.injected_total == 3

    def test_corruption_changes_payload(self):
        inj = FaultInjector(seed=2, corrupt_rate=1.0)
        data, _lat = inj.on_read(0, b"hello world")
        assert data != b"hello world"
        assert len(data) == len(b"hello world")

    def test_latency_reported_not_slept(self):
        inj = FaultInjector(seed=3, latency_rate=1.0, latency_seconds=5.0)
        _data, latency = inj.on_read(0, b"x")
        assert latency == 5.0  # 5 simulated seconds returned instantly


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(StorageError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(StorageError):
            RetryPolicy(backoff_factor=0.5)

    def test_backoff_is_deterministic_exponential(self):
        policy = RetryPolicy(backoff_base=0.01, backoff_factor=2.0)
        assert policy.backoff_seconds(1) == pytest.approx(0.01)
        assert policy.backoff_seconds(2) == pytest.approx(0.02)
        assert policy.backoff_seconds(3) == pytest.approx(0.04)


class TestPageManagerRecovery:
    def test_transient_faults_recovered_by_retry(self):
        inj = FaultInjector(seed=1, transient_rate=1.0, max_faults=2)
        pm = make_manager(inj, retry_policy=RetryPolicy(max_attempts=4))
        data = pm.read(0)
        assert data.startswith(b"page-0")
        assert pm.fault_stats.retries_total == 2
        assert pm.fault_stats.transient_faults_total == 2
        assert pm.fault_stats.reads_failed_total == 0

    def test_exhausted_retries_raise_page_read_error(self):
        inj = FaultInjector(seed=1, transient_rate=1.0)
        pm = make_manager(inj, retry_policy=RetryPolicy(max_attempts=3))
        with pytest.raises(PageReadError):
            pm.read(0)
        assert pm.fault_stats.reads_failed_total == 1
        # 3 attempts = 2 retries, all of them failed.
        assert pm.fault_stats.retries_total == 2

    def test_corruption_detected_by_crc_and_retried(self):
        inj = FaultInjector(seed=2, corrupt_rate=1.0, max_faults=1)
        pm = make_manager(inj)
        data = pm.read(3)
        assert data.startswith(b"page-3")
        assert pm.fault_stats.corruptions_total == 1

    def test_persistent_corruption_raises_corruption_error(self):
        inj = FaultInjector(seed=2, corrupt_rate=1.0)
        pm = make_manager(inj, retry_policy=RetryPolicy(max_attempts=2))
        with pytest.raises(PageCorruptionError):
            pm.read(0)
        assert pm.fault_stats.corruptions_total == 2
        assert pm.fault_stats.reads_failed_total == 1

    def test_typed_errors_are_storage_errors(self):
        assert issubclass(PageReadError, StorageError)
        assert issubclass(PageCorruptionError, StorageError)

    def test_buffer_hit_skips_the_disk(self):
        # First read recovers; the cached copy must not re-draw faults.
        inj = FaultInjector(seed=1, transient_rate=1.0, max_faults=2)
        pm = make_manager(inj)
        pm.read(0)
        injected_after_first = inj.injected_total
        pm.read(0)
        assert inj.injected_total == injected_after_first

    def test_latency_spikes_accounted(self):
        inj = FaultInjector(seed=4, latency_rate=1.0, latency_seconds=0.25)
        pm = make_manager(inj)
        pm.read(0)
        assert pm.fault_stats.latency_events_total == 1
        assert pm.fault_stats.latency_seconds_total == pytest.approx(0.25)

    def test_retry_spans_emitted(self):
        inj = FaultInjector(seed=1, transient_rate=1.0, max_faults=1)
        tracer = Tracer()
        pm = PageManager(fault_injector=inj, tracer=tracer)
        pm.allocate(b"spanful")
        with tracer.span("test.root"):
            pm.read(0)
        (root,) = tracer.finished()
        retries = root.find("storage.retry")
        assert len(retries) == 1
        assert retries[0].attributes["attempt"] == 2

    def test_no_injector_means_no_counters(self):
        pm = make_manager(None)
        for i in range(8):
            pm.read(i)
        stats = pm.fault_stats.as_dict()
        assert all(v == 0 for v in stats.values())


class TestEngineUnderFaults:
    """Whole-stack: a faulted engine must answer every query
    identically to a clean one, with the counters reconciling."""

    @pytest.fixture(scope="class")
    def engines(self, bh_mesh):
        clean = SurfaceKNNEngine(bh_mesh, density=10.0, seed=3)
        injector = FaultInjector(
            seed=7, transient_rate=0.04, corrupt_rate=0.02
        )
        faulted = SurfaceKNNEngine(
            bh_mesh, density=10.0, seed=3,
            fault_injector=injector,
            retry_policy=RetryPolicy(max_attempts=8),
        )
        return clean, faulted, injector

    def test_results_identical_under_recovered_faults(self, engines):
        clean, faulted, injector = engines
        for qv in (10, 40, 100, 200):
            want = clean.query(qv, 3)
            got = faulted.query(qv, 3)
            assert got.object_ids == want.object_ids
            assert got.intervals == want.intervals
            assert (
                got.metrics.logical_reads == want.metrics.logical_reads
            ), "fault recovery must not change logical read accounting"
        assert injector.injected_total > 0, "schedule injected nothing"

    def test_counters_reconcile_with_injector_log(self, engines):
        _clean, faulted, injector = engines
        stats = faulted.pages.fault_stats
        assert stats.transient_faults_total == injector.counts[FAULT_TRANSIENT]
        assert stats.corruptions_total == injector.counts[FAULT_CORRUPT]
        assert stats.retries_total == (
            injector.injected_total - stats.reads_failed_total
        )

    def test_injector_swappable_at_runtime(self, bh_mesh):
        engine = SurfaceKNNEngine(bh_mesh, density=10.0, seed=3)
        assert engine.pages.fault_injector is None
        injector = FaultInjector(seed=5, transient_rate=0.05)
        engine.pages.fault_injector = injector
        engine.query(40, 3)
        assert injector.injected_total >= 0  # schedule consulted
        engine.pages.fault_injector = None
        before = engine.pages.fault_stats.retries_total
        engine.query(40, 3)
        assert engine.pages.fault_stats.retries_total == before
