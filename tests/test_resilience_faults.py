"""Resilient storage: CRC-checked pages, seeded fault injection and
bounded retries.

Contract under test: with an injector attached, every transient fault
and every corruption is either recovered by a retry (invisible in
results) or surfaced as a typed ``StorageError`` subclass after the
policy is exhausted — and the retry/corruption counters reconcile
exactly with the injector's own event log.  Without an injector the
read path is behaviourally identical to a fault-free build.
"""

from __future__ import annotations

import pytest

from repro.core.engine import SurfaceKNNEngine
from repro.errors import (
    PageCorruptionError,
    PageReadError,
    QuarantinedPageError,
    StorageError,
)
from repro.obs.tracing import Tracer
from repro.storage.faults import (
    FAULT_CORRUPT,
    FAULT_DEAD,
    FAULT_TRANSIENT,
    FaultInjector,
    PageQuarantine,
    RetryPolicy,
    kill_random_pages,
)
from repro.storage.pages import PageManager


def make_manager(injector=None, **kwargs) -> PageManager:
    pm = PageManager(fault_injector=injector, **kwargs)
    for i in range(8):
        pm.allocate(f"page-{i}".encode() * 10)
    return pm


class TestFaultInjector:
    def test_same_seed_same_schedule(self):
        runs = []
        for _ in range(2):
            inj = FaultInjector(seed=42, transient_rate=0.5, corrupt_rate=0.3)
            outcomes = []
            for attempt in range(50):
                try:
                    data, _lat = inj.on_read(attempt % 4, b"payload")
                    outcomes.append(data)
                except Exception:
                    outcomes.append("transient")
            runs.append((outcomes, [e.kind for e in inj.log]))
        assert runs[0] == runs[1]

    def test_rates_validated(self):
        with pytest.raises(StorageError):
            FaultInjector(transient_rate=1.5)
        with pytest.raises(StorageError):
            FaultInjector(corrupt_rate=-0.1)

    def test_max_faults_caps_hard_faults(self):
        inj = FaultInjector(seed=1, transient_rate=1.0, max_faults=3)
        failures = 0
        for i in range(10):
            try:
                inj.on_read(i, b"x")
            except Exception:
                failures += 1
        assert failures == 3
        assert inj.injected_total == 3

    def test_corruption_changes_payload(self):
        inj = FaultInjector(seed=2, corrupt_rate=1.0)
        data, _lat = inj.on_read(0, b"hello world")
        assert data != b"hello world"
        assert len(data) == len(b"hello world")

    def test_latency_reported_not_slept(self):
        inj = FaultInjector(seed=3, latency_rate=1.0, latency_seconds=5.0)
        _data, latency = inj.on_read(0, b"x")
        assert latency == 5.0  # 5 simulated seconds returned instantly


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(StorageError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(StorageError):
            RetryPolicy(backoff_factor=0.5)

    def test_backoff_is_deterministic_exponential(self):
        policy = RetryPolicy(backoff_base=0.01, backoff_factor=2.0)
        assert policy.backoff_seconds(1) == pytest.approx(0.01)
        assert policy.backoff_seconds(2) == pytest.approx(0.02)
        assert policy.backoff_seconds(3) == pytest.approx(0.04)


class TestPageManagerRecovery:
    def test_transient_faults_recovered_by_retry(self):
        inj = FaultInjector(seed=1, transient_rate=1.0, max_faults=2)
        pm = make_manager(inj, retry_policy=RetryPolicy(max_attempts=4))
        data = pm.read(0)
        assert data.startswith(b"page-0")
        assert pm.fault_stats.retries_total == 2
        assert pm.fault_stats.transient_faults_total == 2
        assert pm.fault_stats.reads_failed_total == 0

    def test_exhausted_retries_raise_page_read_error(self):
        inj = FaultInjector(seed=1, transient_rate=1.0)
        pm = make_manager(inj, retry_policy=RetryPolicy(max_attempts=3))
        with pytest.raises(PageReadError):
            pm.read(0)
        assert pm.fault_stats.reads_failed_total == 1
        # 3 attempts = 2 retries, all of them failed.
        assert pm.fault_stats.retries_total == 2

    def test_corruption_detected_by_crc_and_retried(self):
        inj = FaultInjector(seed=2, corrupt_rate=1.0, max_faults=1)
        pm = make_manager(inj)
        data = pm.read(3)
        assert data.startswith(b"page-3")
        assert pm.fault_stats.corruptions_total == 1

    def test_persistent_corruption_raises_corruption_error(self):
        inj = FaultInjector(seed=2, corrupt_rate=1.0)
        pm = make_manager(inj, retry_policy=RetryPolicy(max_attempts=2))
        with pytest.raises(PageCorruptionError):
            pm.read(0)
        assert pm.fault_stats.corruptions_total == 2
        assert pm.fault_stats.reads_failed_total == 1

    def test_typed_errors_are_storage_errors(self):
        assert issubclass(PageReadError, StorageError)
        assert issubclass(PageCorruptionError, StorageError)

    def test_buffer_hit_skips_the_disk(self):
        # First read recovers; the cached copy must not re-draw faults.
        inj = FaultInjector(seed=1, transient_rate=1.0, max_faults=2)
        pm = make_manager(inj)
        pm.read(0)
        injected_after_first = inj.injected_total
        pm.read(0)
        assert inj.injected_total == injected_after_first

    def test_latency_spikes_accounted(self):
        inj = FaultInjector(seed=4, latency_rate=1.0, latency_seconds=0.25)
        pm = make_manager(inj)
        pm.read(0)
        assert pm.fault_stats.latency_events_total == 1
        assert pm.fault_stats.latency_seconds_total == pytest.approx(0.25)

    def test_retry_spans_emitted(self):
        inj = FaultInjector(seed=1, transient_rate=1.0, max_faults=1)
        tracer = Tracer()
        pm = PageManager(fault_injector=inj, tracer=tracer)
        pm.allocate(b"spanful")
        with tracer.span("test.root"):
            pm.read(0)
        (root,) = tracer.finished()
        retries = root.find("storage.retry")
        assert len(retries) == 1
        assert retries[0].attributes["attempt"] == 2

    def test_no_injector_means_no_counters(self):
        pm = make_manager(None)
        for i in range(8):
            pm.read(i)
        stats = pm.fault_stats.as_dict()
        assert all(v == 0 for v in stats.values())


class TestPageQuarantine:
    """Lifecycle of a known-bad page: admit after retry exhaustion,
    fail fast without touching the disk, probe after the read-counted
    cooldown, readmit on recovery — with cumulative history intact."""

    def dead_page_manager(self, cooldown_reads: int = 3):
        injector = FaultInjector(seed=1)
        injector.kill([0])
        pm = make_manager(
            injector,
            retry_policy=RetryPolicy(max_attempts=2),
            quarantine=PageQuarantine(cooldown_reads=cooldown_reads),
        )
        return pm, injector

    def test_exhausted_read_enters_quarantine(self):
        pm, injector = self.dead_page_manager()
        with pytest.raises(PageReadError):
            pm.read(0)
        assert (pm._owner, 0) in pm.quarantine
        assert pm.quarantine.reason_of(pm._owner, 0) == FAULT_TRANSIENT
        assert pm.fault_stats.pages_quarantined_total == 1
        assert pm.fault_stats.reads_failed_total == 1
        # Both attempts of the one retry cycle hit the kill-list.
        assert [e.kind for e in injector.log] == [FAULT_DEAD, FAULT_DEAD]

    def test_quarantined_reads_fail_fast_without_disk(self):
        pm, injector = self.dead_page_manager(cooldown_reads=3)
        with pytest.raises(PageReadError):
            pm.read(0)
        events_after_admit = len(injector.log)
        # Reads 1 and 2 of the cooldown window are blocked outright:
        # typed error, no retry storm, no injector traffic.
        for _ in range(2):
            with pytest.raises(QuarantinedPageError):
                pm.read(0)
        assert len(injector.log) == events_after_admit
        assert pm.fault_stats.quarantine_fastfails_total == 2
        assert pm.quarantine.stats()["fast_fails_total"] == 2
        # Fast fails are refusals, not read failures.
        assert pm.fault_stats.reads_failed_total == 1

    def test_quarantined_error_is_a_storage_error(self):
        assert issubclass(QuarantinedPageError, StorageError)

    def test_probe_failure_doubles_cooldown(self):
        pm, injector = self.dead_page_manager(cooldown_reads=3)
        with pytest.raises(PageReadError):
            pm.read(0)
        for _ in range(2):
            with pytest.raises(QuarantinedPageError):
                pm.read(0)
        events_before_probe = len(injector.log)
        # The cooldown-th gated read probes the disk: the full retry
        # cycle runs again and fails again.
        with pytest.raises(PageReadError):
            pm.read(0)
        assert len(injector.log) == events_before_probe + 2
        assert pm.fault_stats.quarantine_probes_total == 1
        (entry,) = pm.quarantine.entries()
        assert entry.cooldown == 6  # doubled after the failed probe
        # The page stays quarantined; the next read fails fast again.
        with pytest.raises(QuarantinedPageError):
            pm.read(0)

    def test_revived_page_is_readmitted_on_probe(self):
        pm, injector = self.dead_page_manager(cooldown_reads=1)
        with pytest.raises(PageReadError):
            pm.read(0)
        injector.revive([0])
        # cooldown_reads=1 makes the very next read the probe.
        data = pm.read(0)
        assert data.startswith(b"page-0")
        assert (pm._owner, 0) not in pm.quarantine
        assert len(pm.quarantine) == 0
        assert pm.fault_stats.pages_readmitted_total == 1
        assert pm.quarantine.stats()["readmissions_total"] == 1
        # Cumulative history survives readmission.
        history = pm.quarantine.history()[(pm._owner, 0)]
        assert history == {"admissions": 1, "probes": 1, "readmissions": 1}
        # A readmitted page serves reads normally again.
        pm.drop_buffer()
        assert pm.read(0).startswith(b"page-0")

    def test_retry_identity_survives_quarantine_cycles(self):
        # The counter reconciliation from the recoverable-fault
        # contract must still hold when dead-page probe cycles are in
        # the mix: every injected event is either retried past or
        # ends a failed read, and fast-fails add nothing.
        pm, injector = self.dead_page_manager(cooldown_reads=2)
        for _ in range(12):
            with pytest.raises(StorageError):
                pm.read(0)
        stats = pm.fault_stats
        assert stats.retries_total == (
            injector.injected_total - stats.reads_failed_total
        )
        assert stats.quarantine_fastfails_total > 0

    def test_cooldown_validated(self):
        with pytest.raises(StorageError):
            PageQuarantine(cooldown_reads=0)
        with pytest.raises(StorageError):
            PageQuarantine(cooldown_reads=8, max_cooldown_reads=4)


class TestKillRandomPages:
    def test_fraction_validated(self):
        pm = make_manager(None)
        with pytest.raises(StorageError):
            kill_random_pages(pm, 1.5)
        with pytest.raises(StorageError):
            kill_random_pages(pm, -0.1)

    def test_respects_page_classes(self):
        # make_manager allocates everything under the default "other"
        # class, which the default DMTM/MSDN filter must skip.
        pm = make_manager(None)
        assert kill_random_pages(pm, 1.0) == []
        dead = kill_random_pages(pm, 0.5, classes=("other",))
        assert len(dead) == 4  # floor(8 * 0.5)
        assert dead == sorted(dead)

    def test_installs_zero_rate_injector(self):
        pm = make_manager(None)
        assert pm.fault_injector is None
        dead = kill_random_pages(pm, 0.25, seed=9, classes=("other",))
        injector = pm.fault_injector
        assert injector is not None
        assert set(injector.dead_pages) == set(dead)
        # The installed injector only carries the kill-list: reads of
        # surviving pages stay fault-free.
        for page_id in range(8):
            if page_id in injector.dead_pages:
                continue
            assert pm.read(page_id).startswith(b"page-")
        assert all(e.kind == FAULT_DEAD for e in injector.log)

    def test_deterministic_for_seed(self):
        picks = [
            kill_random_pages(make_manager(None), 0.5, seed=3, classes=("other",))
            for _ in range(2)
        ]
        assert picks[0] == picks[1]


class TestEngineUnderFaults:
    """Whole-stack: a faulted engine must answer every query
    identically to a clean one, with the counters reconciling."""

    @pytest.fixture(scope="class")
    def engines(self, bh_mesh):
        clean = SurfaceKNNEngine(bh_mesh, density=10.0, seed=3)
        injector = FaultInjector(
            seed=7, transient_rate=0.04, corrupt_rate=0.02
        )
        faulted = SurfaceKNNEngine(
            bh_mesh, density=10.0, seed=3,
            fault_injector=injector,
            retry_policy=RetryPolicy(max_attempts=8),
        )
        return clean, faulted, injector

    def test_results_identical_under_recovered_faults(self, engines):
        clean, faulted, injector = engines
        for qv in (10, 40, 100, 200):
            want = clean.query(qv, 3)
            got = faulted.query(qv, 3)
            assert got.object_ids == want.object_ids
            assert got.intervals == want.intervals
            assert (
                got.metrics.logical_reads == want.metrics.logical_reads
            ), "fault recovery must not change logical read accounting"
        assert injector.injected_total > 0, "schedule injected nothing"

    def test_counters_reconcile_with_injector_log(self, engines):
        _clean, faulted, injector = engines
        stats = faulted.pages.fault_stats
        assert stats.transient_faults_total == injector.counts[FAULT_TRANSIENT]
        assert stats.corruptions_total == injector.counts[FAULT_CORRUPT]
        assert stats.retries_total == (
            injector.injected_total - stats.reads_failed_total
        )

    def test_injector_swappable_at_runtime(self, bh_mesh):
        engine = SurfaceKNNEngine(bh_mesh, density=10.0, seed=3)
        assert engine.pages.fault_injector is None
        injector = FaultInjector(seed=5, transient_rate=0.05)
        engine.pages.fault_injector = injector
        engine.query(40, 3)
        assert injector.injected_total >= 0  # schedule consulted
        engine.pages.fault_injector = None
        before = engine.pages.fault_stats.retries_total
        engine.query(40, 3)
        assert engine.pages.fault_stats.retries_total == before
