"""Unit tests for synthetic terrain generators."""

import numpy as np
import pytest

from repro.errors import TerrainError
from repro.terrain.mesh import TriangleMesh
from repro.terrain.roughness import surface_to_euclid_ratio
from repro.terrain.synthetic import (
    bearhead_like,
    eagle_peak_like,
    fractal_dem,
    gaussian_hills_dem,
)


class TestFractalDem:
    def test_deterministic(self):
        a = fractal_dem(size=17, seed=42)
        b = fractal_dem(size=17, seed=42)
        np.testing.assert_array_equal(a.heights, b.heights)

    def test_seed_changes_output(self):
        a = fractal_dem(size=17, seed=1)
        b = fractal_dem(size=17, seed=2)
        assert not np.array_equal(a.heights, b.heights)

    def test_relief_respected(self):
        dem = fractal_dem(size=17, relief=500.0, seed=3)
        span = dem.heights.max() - dem.heights.min()
        assert span == pytest.approx(500.0)

    def test_non_power_sizes_cropped(self):
        dem = fractal_dem(size=20, seed=1)
        assert dem.rows == 20 and dem.cols == 20

    def test_too_small_rejected(self):
        with pytest.raises(TerrainError):
            fractal_dem(size=2)


class TestGaussianHills:
    def test_shape(self):
        dem = gaussian_hills_dem(size=20, seed=4)
        assert dem.rows == 20

    def test_smooth_relief(self):
        dem = gaussian_hills_dem(size=20, relief=100.0, seed=4)
        assert dem.heights.max() - dem.heights.min() == pytest.approx(100.0)


class TestDatasetContrast:
    def test_bh_rougher_than_ep(self):
        """The defining property of the two paper datasets: Bearhead's
        surface/Euclid ratio must clearly exceed Eagle Peak's."""
        bh = TriangleMesh.from_dem(bearhead_like(size=17))
        ep = TriangleMesh.from_dem(eagle_peak_like(size=17))
        r_bh = surface_to_euclid_ratio(bh, num_pairs=12, seed=0)
        r_ep = surface_to_euclid_ratio(ep, num_pairs=12, seed=0)
        assert r_bh > r_ep + 0.05
        assert r_ep >= 1.0

    def test_same_extent(self):
        bh = bearhead_like(size=17)
        ep = eagle_peak_like(size=17)
        assert bh.width == ep.width
