"""Failure injection: corrupted storage, hostile inputs, resource
limits.  A library is judged by how it fails, not only how it works."""

import struct

import numpy as np
import pytest

from repro.errors import (
    GeodesicError,
    MeshError,
    MultiresError,
    StorageError,
    TerrainError,
)
from repro.storage.pages import PageManager
from repro.storage.records import pack_page, unpack_page


class TestCorruptStorage:
    def test_truncated_page_detected(self):
        page = pack_page([b"hello", b"world"], page_size=256)
        with pytest.raises(struct.error):
            unpack_page(page[:5])

    def test_record_count_mismatch(self):
        # A page claiming more records than it holds must not return
        # phantom data silently.
        bogus = struct.pack("<H", 3) + struct.pack("<H", 1) + b"x"
        with pytest.raises(struct.error):
            unpack_page(bogus)

    def test_reading_unallocated_page(self):
        pm = PageManager()
        with pytest.raises(StorageError):
            pm.read(0)

    @pytest.fixture(scope="class")
    def ddm_bytes(self, tmp_path_factory):
        from repro.multires.persist import save_history
        from repro.simplification.collapse import build_collapse_history
        from repro.terrain.mesh import TriangleMesh
        from repro.terrain.synthetic import fractal_dem

        mesh = TriangleMesh.from_dem(fractal_dem(size=5, seed=1))
        history = build_collapse_history(mesh)
        path = tmp_path_factory.mktemp("ddm") / "ddm.bin"
        save_history(history, path)
        return path, path.read_bytes()

    def test_corrupt_ddm_file(self, ddm_bytes):
        from repro.multires.persist import load_history

        path, data = ddm_bytes
        # Truncate mid-node: validate() must catch it, typed.
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(MultiresError):
            load_history(path)
        path.write_bytes(data)

    def test_ddm_structural_byte_corruption_detected(self, ddm_bytes):
        from repro.multires.persist import load_history, validate

        path, data = ddm_bytes
        validate(data)  # pristine file passes
        # Inflate the node count in the header: the framed walk must
        # run off the end and raise the typed error, never a bare
        # struct.error.
        corrupt = bytearray(data)
        corrupt[8] ^= 0xFF  # low byte of u64 num_leaves/num_nodes frame
        corrupt[16] ^= 0xFF
        path.write_bytes(bytes(corrupt))
        with pytest.raises(MultiresError):
            load_history(path)
        path.write_bytes(data)

    def test_ddm_bad_magic_and_trailing_garbage(self, ddm_bytes):
        from repro.multires.persist import validate

        _path, data = ddm_bytes
        with pytest.raises(MultiresError, match="magic"):
            validate(b"NOTADDM1" + data[8:])
        with pytest.raises(MultiresError, match="trailing"):
            validate(data + b"\x00garbage")

    def test_ddm_root_out_of_range(self, ddm_bytes):
        from repro.multires.persist import _HEAD, _MAGIC, validate

        _path, data = ddm_bytes
        corrupt = bytearray(data)
        # First root id lives right after magic + header + root count.
        offset = len(_MAGIC) + _HEAD.size + 8
        corrupt[offset : offset + 8] = (2**63 - 1).to_bytes(8, "little")
        with pytest.raises(MultiresError, match="root"):
            validate(bytes(corrupt))

    def test_ddm_roundtrip_still_loads(self, ddm_bytes):
        from repro.multires.persist import load_history

        path, data = ddm_bytes
        path.write_bytes(data)
        history = load_history(path)
        assert history.num_leaves > 0


class TestHostileMeshes:
    def test_non_manifold_rejected(self):
        from repro.terrain.mesh import TriangleMesh

        # Three faces share one edge.
        v = np.array(
            [[0, 0, 0], [1, 0, 0], [0, 1, 0], [0, -1, 1], [1, 1, 1]],
            dtype=float,
        )
        f = np.array([[0, 1, 2], [0, 1, 3], [0, 1, 4]])
        with pytest.raises(MeshError):
            TriangleMesh(v, f)

    def test_nan_vertices_rejected(self):
        from repro.terrain.mesh import TriangleMesh

        v = np.array([[0, 0, 0], [1, 0, np.nan], [0, 1, 0]], dtype=float)
        with pytest.raises(MeshError):
            TriangleMesh(v, np.array([[0, 1, 2]]))

    def test_disconnected_terrain_rejected_by_ddm(self):
        from repro.multires.ddm import DistanceDirectMesh
        from repro.terrain.mesh import TriangleMesh

        # Two islands: collapse cannot reach a single root.
        v = np.array(
            [
                [0, 0, 0], [1, 0, 0], [0, 1, 0],
                [10, 10, 0], [11, 10, 0], [10, 11, 0],
            ],
            dtype=float,
        )
        f = np.array([[0, 1, 2], [3, 4, 5]])
        mesh = TriangleMesh(v, f)
        with pytest.raises(MultiresError):
            DistanceDirectMesh(mesh)


class TestResourceLimits:
    def test_geodesic_window_budget_enforced(self, rough_mesh):
        from repro.geodesic.exact import ExactGeodesic

        geo = ExactGeodesic(rough_mesh, 0, max_windows=5)
        with pytest.raises(GeodesicError):
            geo.distance_to(rough_mesh.num_vertices - 1)

    def test_dem_rejects_inf(self):
        from repro.terrain.dem import DemGrid

        h = np.zeros((3, 3))
        h[2, 2] = np.inf
        with pytest.raises(TerrainError):
            DemGrid(h, 1.0)
