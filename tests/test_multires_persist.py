"""Tests for DMTM persistence (save/load of the collapse history)."""

import numpy as np
import pytest

from repro.errors import MultiresError
from repro.multires.dmtm import DMTM
from repro.multires.persist import load_history, save_history
from repro.simplification.collapse import build_collapse_history


@pytest.fixture(scope="module")
def history(request):
    return build_collapse_history(request.getfixturevalue("rough_mesh"))


class TestRoundtrip:
    def test_structure_identical(self, history, tmp_path):
        path = tmp_path / "ddm.bin"
        save_history(history, path)
        back = load_history(path)
        assert back.num_leaves == history.num_leaves
        assert back.roots == history.roots
        assert len(back.nodes) == len(history.nodes)
        for a, b in zip(history.nodes, back.nodes):
            assert a.node_id == b.node_id
            assert a.rep == b.rep
            assert a.children == b.children
            assert a.parent == b.parent
            assert a.birth_step == b.birth_step
            assert a.death_step == b.death_step
            assert a.error == pytest.approx(b.error)
            assert a.offset_to_parent_rep == pytest.approx(b.offset_to_parent_rep)
            np.testing.assert_allclose(a.position, b.position)
            assert a.records == [(n, pytest.approx(d)) for n, d in b.records]

    def test_cuts_identical(self, history, tmp_path):
        path = tmp_path / "ddm.bin"
        save_history(history, path)
        back = load_history(path)
        step = history.step_for_fraction(0.3)
        assert back.cut_at_step(step) == history.cut_at_step(step)
        assert sorted(back.edges_of_cut(back.cut_at_step(step))) == sorted(
            history.edges_of_cut(history.cut_at_step(step))
        )

    def test_dmtm_queries_identical(self, request, tmp_path):
        mesh = request.getfixturevalue("rough_mesh")
        original = DMTM(mesh)
        path = tmp_path / "dmtm.bin"
        original.save(path)
        restored = DMTM.load(mesh, path)
        for res in (0.1, 0.5, 1.0):
            a = original.upper_bound(3, 200, res)
            b = restored.upper_bound(3, 200, res)
            assert a.value == pytest.approx(b.value)

    def test_wrong_mesh_rejected(self, request, tmp_path):
        mesh = request.getfixturevalue("rough_mesh")
        other = request.getfixturevalue("flat_mesh")
        path = tmp_path / "dmtm.bin"
        DMTM(mesh).save(path)
        with pytest.raises(MultiresError):
            DMTM.load(other, path)

    def test_garbage_rejected(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"not a ddm file at all")
        with pytest.raises(MultiresError):
            load_history(path)
