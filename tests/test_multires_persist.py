"""Tests for DMTM persistence (save/load of the collapse history)."""

import struct

import numpy as np
import pytest

from repro.errors import MultiresError
from repro.multires.dmtm import DMTM
from repro.multires.persist import (
    _HEAD,
    _MAGIC,
    _NODE,
    load_history,
    save_history,
    validate,
)
from repro.simplification.collapse import build_collapse_history


@pytest.fixture(scope="module")
def history(request):
    return build_collapse_history(request.getfixturevalue("rough_mesh"))


class TestRoundtrip:
    def test_structure_identical(self, history, tmp_path):
        path = tmp_path / "ddm.bin"
        save_history(history, path)
        back = load_history(path)
        assert back.num_leaves == history.num_leaves
        assert back.roots == history.roots
        assert len(back.nodes) == len(history.nodes)
        for a, b in zip(history.nodes, back.nodes):
            assert a.node_id == b.node_id
            assert a.rep == b.rep
            assert a.children == b.children
            assert a.parent == b.parent
            assert a.birth_step == b.birth_step
            assert a.death_step == b.death_step
            assert a.error == pytest.approx(b.error)
            assert a.offset_to_parent_rep == pytest.approx(b.offset_to_parent_rep)
            np.testing.assert_allclose(a.position, b.position)
            assert a.records == [(n, pytest.approx(d)) for n, d in b.records]

    def test_cuts_identical(self, history, tmp_path):
        path = tmp_path / "ddm.bin"
        save_history(history, path)
        back = load_history(path)
        step = history.step_for_fraction(0.3)
        assert back.cut_at_step(step) == history.cut_at_step(step)
        assert sorted(back.edges_of_cut(back.cut_at_step(step))) == sorted(
            history.edges_of_cut(history.cut_at_step(step))
        )

    def test_dmtm_queries_identical(self, request, tmp_path):
        mesh = request.getfixturevalue("rough_mesh")
        original = DMTM(mesh)
        path = tmp_path / "dmtm.bin"
        original.save(path)
        restored = DMTM.load(mesh, path)
        for res in (0.1, 0.5, 1.0):
            a = original.upper_bound(3, 200, res)
            b = restored.upper_bound(3, 200, res)
            assert a.value == pytest.approx(b.value)

    def test_wrong_mesh_rejected(self, request, tmp_path):
        mesh = request.getfixturevalue("rough_mesh")
        other = request.getfixturevalue("flat_mesh")
        path = tmp_path / "dmtm.bin"
        DMTM(mesh).save(path)
        with pytest.raises(MultiresError):
            DMTM.load(other, path)

    def test_garbage_rejected(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"not a ddm file at all")
        with pytest.raises(MultiresError):
            load_history(path)


class TestValidateNegativePaths:
    """Every frame of the container must fail loudly, typed, and with
    the offending frame named — never a bare ``struct.error`` or a
    silent mis-parse."""

    @pytest.fixture(scope="class")
    def blob(self, history, tmp_path_factory):
        path = tmp_path_factory.mktemp("persist") / "ddm.bin"
        save_history(history, path)
        data = path.read_bytes()
        validate(data)  # the pristine serialization passes
        return data

    # --- header ----------------------------------------------------

    def test_empty_file(self):
        with pytest.raises(MultiresError, match="magic"):
            validate(b"")

    def test_magic_prefix_only(self):
        with pytest.raises(MultiresError, match="header"):
            validate(_MAGIC)

    def test_truncated_header(self, blob):
        cut = len(_MAGIC) + _HEAD.size - 3
        with pytest.raises(MultiresError, match="header"):
            validate(blob[:cut])

    def test_leaves_exceed_nodes(self, blob):
        _leaves, nodes = _HEAD.unpack_from(blob, len(_MAGIC))
        corrupt = bytearray(blob)
        _HEAD.pack_into(corrupt, len(_MAGIC), nodes + 1, nodes)
        with pytest.raises(MultiresError, match="leaves"):
            validate(bytes(corrupt))

    # --- root table ------------------------------------------------

    def test_truncated_root_count(self, blob):
        cut = len(_MAGIC) + _HEAD.size + 4
        with pytest.raises(MultiresError, match="root count"):
            validate(blob[:cut])

    def test_root_count_exceeds_nodes(self, blob):
        _leaves, nodes = _HEAD.unpack_from(blob, len(_MAGIC))
        corrupt = bytearray(blob)
        struct.pack_into(
            "<Q", corrupt, len(_MAGIC) + _HEAD.size, nodes + 1
        )
        with pytest.raises(MultiresError, match="roots exceed"):
            validate(bytes(corrupt))

    def test_truncated_root_table(self, blob):
        offset = len(_MAGIC) + _HEAD.size
        (num_roots,) = struct.unpack_from("<Q", blob, offset)
        assert num_roots >= 1
        cut = offset + 8 + 8 * num_roots - 2
        with pytest.raises(MultiresError, match="root table"):
            validate(blob[:cut])

    # --- node frames -----------------------------------------------

    def _nodes_offset(self, blob) -> int:
        offset = len(_MAGIC) + _HEAD.size
        (num_roots,) = struct.unpack_from("<Q", blob, offset)
        return offset + 8 + 8 * num_roots

    def test_truncated_first_node_frame(self, blob):
        cut = self._nodes_offset(blob) + _NODE.size // 2
        with pytest.raises(MultiresError, match="node 0"):
            validate(blob[:cut])

    def test_truncated_mid_file_names_the_node(self, blob):
        cut = (len(blob) + self._nodes_offset(blob)) // 2
        with pytest.raises(MultiresError, match=r"node \d+"):
            validate(blob[:cut])

    def test_inflated_record_count_overruns(self, blob):
        """A corrupt record_count makes node 0 claim more neighbour
        records than the file holds."""
        corrupt = bytearray(blob)
        count_at = self._nodes_offset(blob) + _NODE.size - 4
        struct.pack_into("<I", corrupt, count_at, 1_000_000)
        with pytest.raises(MultiresError, match="node 0 records"):
            validate(bytes(corrupt))

    def test_truncated_trailing_records(self, blob):
        """Cut inside the final node's frame or record block."""
        with pytest.raises(MultiresError, match=r"node \d+"):
            validate(blob[:-4])

    def test_trailing_bytes_rejected(self, blob):
        with pytest.raises(MultiresError, match="trailing"):
            validate(blob + b"\x00\x00")

    # --- error ergonomics ------------------------------------------

    def test_source_named_in_error(self, blob):
        with pytest.raises(MultiresError, match="ddm-from-s3"):
            validate(blob[:-4], source="ddm-from-s3")

    def test_load_history_validates_first(self, blob, tmp_path):
        """load_history goes through validate(): a truncated file
        raises the typed error, not struct.error."""
        path = tmp_path / "cut.bin"
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(MultiresError, match=str(path)):
            load_history(path)
