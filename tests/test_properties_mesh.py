"""Property-based tests over generated terrains: mesh structure,
crossing lines and DEM serialization."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.msdn.crossing import crossing_line
from repro.terrain.dem import DemGrid
from repro.terrain.mesh import TriangleMesh
from repro.terrain.synthetic import fractal_dem

terrain_params = st.tuples(
    st.integers(min_value=4, max_value=12),  # size
    st.integers(min_value=0, max_value=10_000),  # seed
    st.floats(min_value=0.0, max_value=800.0, allow_nan=False),  # relief
)


def build(params) -> TriangleMesh:
    size, seed, relief = params
    return TriangleMesh.from_dem(
        fractal_dem(size=size, seed=seed, relief=relief)
    )


class TestMeshStructureProperties:
    @given(terrain_params)
    @settings(max_examples=25, deadline=None)
    def test_euler_characteristic_of_disc(self, params):
        mesh = build(params)
        assert mesh.num_vertices - mesh.num_edges + mesh.num_faces == 1

    @given(terrain_params)
    @settings(max_examples=25, deadline=None)
    def test_edge_manifold(self, params):
        mesh = build(params)
        for incident in mesh.edge_faces:
            assert 1 <= len(incident) <= 2

    @given(terrain_params)
    @settings(max_examples=20, deadline=None)
    def test_surface_area_at_least_extent(self, params):
        mesh = build(params)
        assert mesh.surface_area() >= mesh.xy_bounds().measure() - 1e-6


class TestCrossingLineProperties:
    @given(terrain_params, st.floats(min_value=0.1, max_value=0.9))
    @settings(max_examples=25, deadline=None)
    def test_crossing_line_on_plane_and_monotone(self, params, frac):
        mesh = build(params)
        bounds = mesh.xy_bounds()
        y0 = bounds.lo[1] + frac * (bounds.hi[1] - bounds.lo[1])
        # Nudge off grid lines to avoid degenerate vertex hits.
        y0 += 0.37 * 1e-3 * (bounds.hi[1] - bounds.lo[1])
        line = crossing_line(mesh, 1, float(y0))
        if line is None:
            return
        np.testing.assert_allclose(line.points[:, 1], y0, atol=1e-9)
        assert np.all(np.diff(line.points[:, 0]) >= 0)


class TestDemProperties:
    @given(
        st.integers(min_value=2, max_value=9),
        st.integers(min_value=2, max_value=9),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=40)
    def test_ascii_roundtrip(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        dem = DemGrid(rng.uniform(-100, 3000, size=(rows, cols)), 25.0)
        back = DemGrid.from_ascii(dem.to_ascii())
        np.testing.assert_allclose(back.heights, dem.heights, rtol=1e-5)

    @given(
        st.integers(min_value=2, max_value=9),
        st.integers(min_value=0, max_value=1000),
        st.floats(min_value=0.05, max_value=0.95),
        st.floats(min_value=0.05, max_value=0.95),
    )
    @settings(max_examples=40)
    def test_bilinear_within_sample_range(self, size, seed, fx, fy):
        rng = np.random.default_rng(seed)
        dem = DemGrid(rng.uniform(0, 500, size=(size, size)), 10.0)
        x = fx * dem.width
        y = fy * dem.height
        z = dem.elevation_at(x, y)
        assert dem.heights.min() - 1e-9 <= z <= dem.heights.max() + 1e-9
