"""Unit tests for quadric error metrics and the collapse engine."""

import numpy as np
import pytest

from repro.errors import SimplificationError
from repro.geodesic.dijkstra import dijkstra
from repro.simplification.collapse import build_collapse_history
from repro.simplification.quadric import (
    best_merge_position,
    face_quadric,
    quadric_error,
    vertex_quadrics,
)


class TestQuadrics:
    def test_on_plane_zero_error(self):
        q = face_quadric((0, 0, 0), (1, 0, 0), (0, 1, 0))
        assert quadric_error(q, (0.3, 0.3, 0.0)) == pytest.approx(0.0, abs=1e-12)
        assert quadric_error(q, (5.0, -7.0, 0.0)) == pytest.approx(0.0, abs=1e-9)

    def test_off_plane_squared_distance(self):
        q = face_quadric((0, 0, 0), (1, 0, 0), (0, 1, 0))
        # Unit-area weighting: the triangle has area 0.5.
        assert quadric_error(q, (0.0, 0.0, 2.0)) == pytest.approx(0.5 * 4.0)

    def test_degenerate_face_zero_quadric(self):
        q = face_quadric((0, 0, 0), (1, 1, 1), (2, 2, 2))
        assert np.allclose(q, 0.0)

    def test_vertex_quadrics_shape(self, flat_mesh):
        q = vertex_quadrics(flat_mesh)
        assert q.shape == (flat_mesh.num_vertices, 4, 4)
        # Flat mesh: every vertex lies on the common plane z=0.
        for vid in range(0, flat_mesh.num_vertices, 13):
            err = quadric_error(q[vid], flat_mesh.vertices[vid])
            assert err == pytest.approx(0.0, abs=1e-6)

    def test_quadric_error_bad_shape(self):
        with pytest.raises(SimplificationError):
            quadric_error(np.zeros((3, 3)), (0, 0, 0))

    def test_best_merge_position_prefers_plane(self):
        q = face_quadric((0, 0, 0), (1, 0, 0), (0, 1, 0))
        pos, err = best_merge_position(q, (0.0, 0.0, 1.0), (1.0, 0.0, -1.0))
        assert err <= quadric_error(q, (0.0, 0.0, 1.0)) + 1e-12


class TestCollapseHistory:
    @pytest.fixture(scope="class")
    def history(self, request):
        mesh = request.getfixturevalue("rough_mesh")
        return build_collapse_history(mesh)

    def test_tree_shape(self, history, rough_mesh):
        n = rough_mesh.num_vertices
        assert history.num_leaves == n
        assert len(history.nodes) == 2 * n - 1
        assert len(history.roots) == 1

    def test_parents_and_children_consistent(self, history):
        for node in history.nodes:
            if node.children is not None:
                a, b = node.children
                assert history.nodes[a].parent == node.node_id
                assert history.nodes[b].parent == node.node_id
                assert history.nodes[a].death_step == node.birth_step

    def test_errors_monotone_up_the_tree(self, history):
        for node in history.nodes:
            if node.children is not None:
                for child in node.children:
                    assert history.nodes[child].error < node.error

    def test_rep_is_descendant_leaf(self, history):
        for node in history.nodes:
            if node.children is None:
                assert node.rep == node.node_id
            else:
                # Walk down following rep-carrying children.
                rep = node.rep
                stack = [node.node_id]
                found = False
                while stack:
                    nid = stack.pop()
                    current = history.nodes[nid]
                    if current.children is None:
                        if nid == rep:
                            found = True
                            break
                    else:
                        stack.extend(current.children)
                assert found

    def test_cut_sizes(self, history):
        n = history.num_leaves
        assert len(history.cut_at_step(0)) == n
        assert len(history.cut_at_step(history.num_steps)) == 1
        mid = history.step_for_fraction(0.5)
        assert len(history.cut_at_step(mid)) == pytest.approx(n / 2, abs=2)

    def test_bad_fraction(self, history):
        with pytest.raises(SimplificationError):
            history.step_for_fraction(0.0)
        with pytest.raises(SimplificationError):
            history.step_for_fraction(1.5)

    def test_cut_edges_within_cut(self, history):
        cut = history.cut_at_step(history.step_for_fraction(0.3))
        alive = set(cut)
        for u, w, d in history.edges_of_cut(cut):
            assert u in alive and w in alive
            assert d > 0

    def test_cut_network_connected(self, history):
        """Any cut of a connected terrain must form a connected
        network — otherwise upper bounds would be undefined."""
        for fraction in (0.1, 0.5, 1.0):
            cut = history.cut_at_step(history.step_for_fraction(fraction))
            index = {n: i for i, n in enumerate(cut)}
            adj = [[] for _ in cut]
            for u, w, d in history.edges_of_cut(cut):
                adj[index[u]].append((index[w], d))
                adj[index[w]].append((index[u], d))
            reached = dijkstra(adj, 0)
            assert len(reached) == len(cut)

    def test_ancestor_offsets(self, history, rough_mesh):
        """ancestor_at_step returns a valid (node, offset) pair: the
        node is alive and the offset is a non-negative path length."""
        step = history.step_for_fraction(0.25)
        for leaf in range(0, history.num_leaves, 29):
            anc, offset = history.ancestor_at_step(leaf, step)
            assert history.nodes[anc].alive_at(step)
            assert offset >= 0.0

    def test_leaf_edges_match_mesh(self, history, rough_mesh):
        cut = history.cut_at_step(0)
        edges = {(u, w) for u, w, _d in history.edges_of_cut(cut)}
        assert len(edges) == rough_mesh.num_edges

    def test_recorded_distances_are_rep_paths(self, history, rough_mesh):
        """Every recorded DDM distance equals the length of some path
        between the two representatives in the original edge network —
        i.e. it is >= the true network distance between the reps."""
        adj = rough_mesh.edge_network()
        step = history.step_for_fraction(0.4)
        cut = history.cut_at_step(step)
        checked = 0
        for u, w, d in history.edges_of_cut(cut):
            rep_u = history.nodes[u].rep
            rep_w = history.nodes[w].rep
            dn = dijkstra(adj, rep_u, targets={rep_w}).get(rep_w)
            assert dn is not None
            assert d >= dn - 1e-9
            checked += 1
            if checked >= 25:
                break
