"""Edge cases and error paths across modules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import DistanceInterval
from repro.errors import (
    GeodesicError,
    GeometryError,
    MeshError,
    MultiresError,
    QueryError,
    StorageError,
    SurfKnnError,
    TerrainError,
)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [GeometryError, MeshError, TerrainError, StorageError,
         MultiresError, QueryError, GeodesicError],
    )
    def test_all_derive_from_base(self, exc):
        assert issubclass(exc, SurfKnnError)
        with pytest.raises(SurfKnnError):
            raise exc("boom")


class TestDmtmEdges:
    def test_path_region_unknown_key(self, request):
        from repro.multires.dmtm import DMTM

        mesh = request.getfixturevalue("flat_mesh")
        dmtm = DMTM(mesh)
        with pytest.raises(MultiresError):
            dmtm.path_region([("x", 1)])

    def test_pathnet_resolution_constant(self):
        from repro.multires.dmtm import RESOLUTION_PATHNET

        assert RESOLUTION_PATHNET == 2.0


class TestMsdnEdges:
    def test_corridor_with_unknown_keys(self, request):
        from repro.msdn.msdn import MSDN

        mesh = request.getfixturevalue("flat_mesh")
        msdn = MSDN(mesh)
        boxes = msdn.corridor_from_path([("c", 9, 9, 9, 9)], 1.0)
        assert boxes == []  # unknown keys silently yield no corridor

    def test_flat_terrain_lower_bound_is_euclid(self, request):
        """On a flat terrain the surface distance IS the Euclidean
        distance, so the lower bound must equal it."""
        from repro.msdn.msdn import MSDN

        mesh = request.getfixturevalue("flat_mesh")
        msdn = MSDN(mesh)
        a, b = 0, mesh.num_vertices - 1
        pa, pb = mesh.vertices[a], mesh.vertices[b]
        lb = msdn.lower_bound(pa, pb, 1.0).value
        euclid = float(np.linalg.norm(pa - pb))
        assert lb == pytest.approx(euclid, rel=1e-6)


class TestIntervalProperties:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["lb", "ub"]),
                st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
            ),
            max_size=30,
        )
    )
    @settings(max_examples=100)
    def test_refinement_sequences_stay_consistent(self, ops):
        """Any refinement sequence keeps lb <= ub (or raises cleanly)
        and both monotone."""
        iv = DistanceInterval()
        prev_lb, prev_ub = iv.lb, iv.ub
        for kind, value in ops:
            try:
                if kind == "lb":
                    iv.refine_lb(value)
                else:
                    iv.refine_ub(value)
            except QueryError:
                return  # inverted request rejected: fine
            assert iv.lb >= prev_lb
            assert iv.ub <= prev_ub
            assert iv.lb <= iv.ub * (1 + 1e-9) + 1e-9
            prev_lb, prev_ub = iv.lb, iv.ub


class TestFlatTerrainEndToEnd:
    def test_flat_knn_equals_euclid_knn(self, request):
        """On flat ground surface k-NN must equal Euclidean k-NN."""
        from repro.core.engine import SurfaceKNNEngine

        mesh = request.getfixturevalue("flat_mesh")
        engine = SurfaceKNNEngine(mesh, density=30.0, seed=2, with_storage=False)
        qv = mesh.nearest_vertex(mesh.xy_bounds().center)
        res = engine.query(qv, 4, step_length=2)
        q = mesh.vertices[qv]
        dists = np.linalg.norm(engine.objects.positions - q, axis=1)
        want = set(np.argsort(dists, kind="stable")[:4])
        # Ties in a symmetric grid are possible: compare distances.
        got_d = sorted(float(dists[o]) for o in res.object_ids)
        want_d = sorted(float(dists[int(o)]) for o in want)
        assert got_d == pytest.approx(want_d, rel=1e-6)
