"""Unit tests for crossing-line extraction."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry.primitives import BoundingBox
from repro.msdn.crossing import crossing_line, plane_positions, supersample_polyline
from repro.geometry.polyline import Polyline


class TestPlanePositions:
    def test_spacing_and_interiority(self):
        b = BoundingBox((0.0, 0.0), (100.0, 100.0))
        values = plane_positions(b, 10.0, axis=1)
        assert len(values) == 10
        assert values[0] == pytest.approx(5.0)
        assert all(0.0 < v < 100.0 for v in values)

    def test_empty_when_too_wide(self):
        b = BoundingBox((0.0, 0.0), (4.0, 4.0))
        assert len(plane_positions(b, 10.0, axis=0)) == 0

    def test_bad_axis(self):
        b = BoundingBox((0.0, 0.0), (1.0, 1.0))
        with pytest.raises(GeometryError):
            plane_positions(b, 1.0, axis=2)

    def test_bad_spacing(self):
        b = BoundingBox((0.0, 0.0), (1.0, 1.0))
        with pytest.raises(GeometryError):
            plane_positions(b, 0.0, axis=0)


class TestCrossingLine:
    def test_all_points_on_plane(self, rough_mesh):
        bounds = rough_mesh.xy_bounds()
        y0 = float(bounds.center[1]) + 13.7
        line = crossing_line(rough_mesh, 1, y0)
        assert line is not None
        np.testing.assert_allclose(line.points[:, 1], y0, atol=1e-9)

    def test_monotone_in_other_axis(self, rough_mesh):
        bounds = rough_mesh.xy_bounds()
        x0 = float(bounds.center[0]) - 7.1
        line = crossing_line(rough_mesh, 0, x0)
        ys = line.points[:, 1]
        assert np.all(np.diff(ys) >= 0)

    def test_points_on_surface(self, rough_mesh):
        bounds = rough_mesh.xy_bounds()
        y0 = float(bounds.center[1]) + 20.3
        line = crossing_line(rough_mesh, 1, y0)
        for p in line.points[::5]:
            z = rough_mesh.elevation_at(float(p[0]), float(p[1]))
            assert p[2] == pytest.approx(z, abs=1e-6)

    def test_spans_terrain(self, rough_mesh):
        bounds = rough_mesh.xy_bounds()
        y0 = float(bounds.center[1]) + 5.0
        line = crossing_line(rough_mesh, 1, y0)
        assert line.points[0, 0] == pytest.approx(bounds.lo[0], abs=1e-6)
        assert line.points[-1, 0] == pytest.approx(bounds.hi[0], abs=1e-6)

    def test_plane_outside_returns_none(self, rough_mesh):
        assert crossing_line(rough_mesh, 1, -1e9) is None


class TestSupersample:
    def test_point_count(self):
        line = Polyline(np.array([[0, 0, 0], [4, 0, 0], [4, 4, 0]], dtype=float))
        out = supersample_polyline(line, 4)
        assert out.num_points == 2 * 4 + 1

    def test_preserves_geometry(self):
        line = Polyline(np.array([[0, 0, 0], [4, 0, 0], [4, 4, 0]], dtype=float))
        out = supersample_polyline(line, 3)
        assert out.length() == pytest.approx(line.length())
        # Original points are kept.
        for p in line.points:
            assert any(np.allclose(p, q) for q in out.points)

    def test_factor_one_identity(self):
        line = Polyline(np.array([[0, 0, 0], [1, 1, 1]], dtype=float))
        assert supersample_polyline(line, 1) is line

    def test_bad_factor(self):
        line = Polyline(np.array([[0, 0, 0], [1, 1, 1]], dtype=float))
        with pytest.raises(GeometryError):
            supersample_polyline(line, 0)
