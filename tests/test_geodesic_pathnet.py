"""Unit tests for pathnets (Steiner subdivision graphs)."""

import numpy as np
import pytest

from repro.errors import GeodesicError
from repro.geodesic.pathnet import (
    build_pathnet,
    pathnet_distance,
    pathnet_shortest_path,
    steiner_key,
    vertex_key,
)


class TestConstruction:
    def test_zero_steiner_contains_mesh_edges(self, flat_mesh):
        g = build_pathnet(flat_mesh, steiner_per_edge=0)
        assert len(g) == flat_mesh.num_vertices
        # Every mesh edge exists with its length.
        for eid in range(0, flat_mesh.num_edges, 11):
            u, w = flat_mesh.edge_vertices[eid]
            d = pathnet_distance(flat_mesh, int(u), int(w), steiner_per_edge=0)
            assert d <= flat_mesh.edge_lengths[eid] + 1e-9

    def test_steiner_node_count(self, flat_mesh):
        g = build_pathnet(flat_mesh, steiner_per_edge=1)
        assert len(g) == flat_mesh.num_vertices + flat_mesh.num_edges

    def test_negative_steiner_rejected(self, flat_mesh):
        with pytest.raises(GeodesicError):
            build_pathnet(flat_mesh, steiner_per_edge=-1)

    def test_restricted_faces(self, rough_mesh):
        faces = np.arange(10)
        g = build_pathnet(rough_mesh, steiner_per_edge=1, faces=faces)
        full = build_pathnet(rough_mesh, steiner_per_edge=1)
        assert len(g) < len(full)


class TestDistances:
    def test_flat_steiner_improves_over_edges(self, flat_mesh):
        # On a flat grid, cutting across faces shortens paths compared
        # to edge-only routes for non-axis-aligned pairs.
        a = 0
        b = flat_mesh.num_vertices - 2  # off-diagonal target
        d0 = pathnet_distance(flat_mesh, a, b, steiner_per_edge=0)
        d2 = pathnet_distance(flat_mesh, a, b, steiner_per_edge=2)
        euclid = float(np.linalg.norm(flat_mesh.vertices[a] - flat_mesh.vertices[b]))
        assert d2 <= d0 + 1e-9
        assert d2 >= euclid - 1e-9

    def test_distance_is_upper_bound_of_euclid(self, rough_mesh):
        rng = np.random.default_rng(4)
        for _ in range(5):
            a, b = rng.integers(0, rough_mesh.num_vertices, size=2)
            if a == b:
                continue
            d = pathnet_distance(rough_mesh, int(a), int(b), steiner_per_edge=1)
            euclid = float(
                np.linalg.norm(rough_mesh.vertices[a] - rough_mesh.vertices[b])
            )
            assert d >= euclid - 1e-9

    def test_missing_vertex_in_region_raises(self, rough_mesh):
        faces = np.arange(4)
        far_vertex = rough_mesh.num_vertices - 1
        with pytest.raises(GeodesicError):
            pathnet_distance(
                rough_mesh, 0, far_vertex, steiner_per_edge=1, faces=faces
            )


class TestPaths:
    def test_path_endpoints_and_keys(self, rough_mesh):
        a, b = 2, rough_mesh.num_vertices - 3
        d, keys = pathnet_shortest_path(rough_mesh, a, b, steiner_per_edge=1)
        assert keys[0] == vertex_key(a)
        assert keys[-1] == vertex_key(b)
        for key in keys:
            assert key[0] in ("v", "s")

    def test_path_length_consistent(self, rough_mesh):
        a, b = 1, rough_mesh.num_vertices // 2
        d, keys = pathnet_shortest_path(rough_mesh, a, b, steiner_per_edge=1)
        assert d == pytest.approx(
            pathnet_distance(rough_mesh, a, b, steiner_per_edge=1)
        )

    def test_key_helpers(self):
        assert vertex_key(3) == ("v", 3)
        assert steiner_key(7, 2) == ("s", 7, 2)
