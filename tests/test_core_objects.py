"""Unit tests for ObjectSet."""

import numpy as np
import pytest

from repro.core.objects import ObjectSet
from repro.errors import QueryError


class TestConstruction:
    def test_explicit_vertices(self, rough_mesh):
        objs = ObjectSet(rough_mesh, [3, 17, 200])
        assert len(objs) == 3
        assert objs.vertex_of(1) == 17

    def test_duplicate_rejected(self, rough_mesh):
        with pytest.raises(QueryError):
            ObjectSet(rough_mesh, [3, 3])

    def test_out_of_range_rejected(self, rough_mesh):
        with pytest.raises(QueryError):
            ObjectSet(rough_mesh, [rough_mesh.num_vertices])

    def test_empty_rejected(self, rough_mesh):
        with pytest.raises(QueryError):
            ObjectSet(rough_mesh, [])


class TestUniform:
    def test_density_object_count(self, rough_mesh):
        objs = ObjectSet.uniform(rough_mesh, density=10.0, seed=0)
        area = rough_mesh.xy_bounds().measure() / 1e6
        assert len(objs) == max(1, round(10.0 * area))
        assert objs.density == pytest.approx(10.0, rel=0.3)

    def test_deterministic(self, rough_mesh):
        a = ObjectSet.uniform(rough_mesh, density=5.0, seed=7)
        b = ObjectSet.uniform(rough_mesh, density=5.0, seed=7)
        assert a.vertex_ids == b.vertex_ids

    def test_bad_density(self, rough_mesh):
        with pytest.raises(QueryError):
            ObjectSet.uniform(rough_mesh, density=0.0)

    def test_too_dense_rejected(self, rough_mesh):
        with pytest.raises(QueryError):
            ObjectSet.uniform(rough_mesh, density=1e9)

    def test_positions_on_mesh(self, rough_mesh):
        objs = ObjectSet.uniform(rough_mesh, density=8.0, seed=2)
        for i in range(len(objs)):
            vid = objs.vertex_of(i)
            np.testing.assert_array_equal(
                objs.position_of(i), rough_mesh.vertices[vid]
            )


class TestQueries:
    @pytest.fixture(scope="class")
    def objs(self, request):
        mesh = request.getfixturevalue("rough_mesh")
        return ObjectSet.uniform(mesh, density=15.0, seed=4)

    def test_knn_2d_matches_brute(self, objs):
        q = objs.mesh.xy_bounds().center
        got = objs.knn_2d(q, 5)
        dists = np.linalg.norm(objs.positions[:, :2] - q, axis=1)
        want = list(np.argsort(dists)[:5])
        assert sorted(got) == sorted(int(w) for w in want)

    def test_range_2d_matches_brute(self, objs):
        q = objs.mesh.xy_bounds().center
        radius = 400.0
        got = sorted(objs.range_2d(q, radius))
        dists = np.linalg.norm(objs.positions[:, :2] - q, axis=1)
        want = sorted(int(i) for i in np.nonzero(dists <= radius)[0])
        assert got == want

    def test_bad_object_id(self, objs):
        with pytest.raises(QueryError):
            objs.vertex_of(len(objs))
