"""Zero-dependency tracing: nestable, timed spans.

A :class:`Span` is a named, timed unit of work carrying free-form
attributes; spans nest (``children``) to form a per-query tree such as

    engine.query
      mr3.knn_2d
      mr3.filter
        rank.level  {phase: filter, level: 0}
        rank.level  {phase: filter, level: 1}
      mr3.range_2d
      mr3.ranking
        rank.level  {phase: ranking, level: 0}

A :class:`Tracer` keeps a *thread-local* active-span stack (so nesting
is correct even when several engines query concurrently) and collects
finished root spans.  Tracing is **optional and cheap**: a disabled
tracer hands out a shared no-op span whose enter/exit do nothing, so
instrumented code pays one attribute check per ``span()`` call and
nothing else (see docs/observability.md for measured overhead).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field


@dataclass
class Span:
    """One timed unit of work in a trace tree."""

    name: str
    attributes: dict = field(default_factory=dict)
    started_at: float = 0.0  # perf_counter timestamp (relative only)
    duration: float | None = None  # seconds; None while still open
    status: str = "ok"  # "ok" | "error"
    error: str | None = None
    children: list["Span"] = field(default_factory=list)

    def set_attribute(self, key: str, value) -> None:
        self.attributes[key] = value

    @property
    def finished(self) -> bool:
        return self.duration is not None

    def walk(self):
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> list["Span"]:
        """All spans named ``name`` in this subtree."""
        return [s for s in self.walk() if s.name == name]

    def to_dict(self) -> dict:
        """JSON-ready representation (used by the exporters)."""
        out = {
            "name": self.name,
            "duration_seconds": self.duration,
            "status": self.status,
            "attributes": dict(self.attributes),
            "children": [c.to_dict() for c in self.children],
        }
        if self.error is not None:
            out["error"] = self.error
        return out


class _NoopSpan:
    """Shared do-nothing span handed out by disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_attribute(self, key: str, value) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class _SpanContext:
    """Context manager binding one Span to a tracer's active stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._span.started_at = time.perf_counter()
        self._tracer._stack().append(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        span.duration = time.perf_counter() - span.started_at
        if exc is not None:
            span.status = "error"
            span.error = f"{exc_type.__name__}: {exc}"
        stack = self._tracer._stack()
        # Exception safety: the span is always popped and recorded,
        # even when the body raised — the stack cannot leak.
        if stack and stack[-1] is span:
            stack.pop()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._tracer._lock:
                self._tracer._finished.append(span)
        return False  # never swallow the exception


class Tracer:
    """Collects span trees; disabled tracers are no-ops.

    One tracer per engine (or a shared one) is the intended usage::

        tracer = Tracer()
        with tracer.span("engine.query", k=5) as sp:
            sp.set_attribute("candidates", 12)
        tracer.finished()[-1].duration
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._local = threading.local()
        self._lock = threading.Lock()
        self._finished: list[Span] = []

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attributes):
        """Open a nested span; use as a context manager."""
        if not self.enabled:
            return NOOP_SPAN
        return _SpanContext(self, Span(name=name, attributes=attributes))

    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def finished(self) -> list[Span]:
        """Finished *root* spans, oldest first."""
        with self._lock:
            return list(self._finished)

    def take(self) -> list[Span]:
        """Return finished root spans and clear the buffer."""
        with self._lock:
            spans, self._finished = self._finished, []
        return spans

    def reset(self) -> None:
        with self._lock:
            self._finished.clear()
        self._stack().clear()


#: Shared disabled tracer — the default everywhere instrumentation is
#: optional.  ``Tracer(enabled=False)`` spans cost one ``if``.
NULL_TRACER = Tracer(enabled=False)
