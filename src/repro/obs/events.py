"""Typed per-query trace events.

These replace the untyped dicts the ranking loop used to append to
``filter_trace``/``ranking_trace``: every refinement level now emits a
:class:`LevelEvent` recording what the level *decided* (candidate
counts, the k-th interval) and what it *cost* (CPU seconds plus the
logical/physical page delta attributed to exactly that level, broken
down by page class).  Summing the events' ``physical_reads`` over both
phases reproduces the query's ``pages_accessed`` — the invariant
tests/test_obs.py asserts.

``LevelEvent`` supports read-only mapping access (``event["level"]``,
``**event``) so existing dict-shaped consumers keep working.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass(frozen=True)
class LevelEvent:
    """One resolution level of the MR3 ranking loop."""

    phase: str  # "filter" (step 2) | "ranking" (step 4)
    level: int
    dmtm_resolution: float
    msdn_resolution: float
    active_before: int
    active_after: int
    kth_lb: float
    kth_ub: float
    done: bool
    cpu_seconds: float = 0.0
    logical_reads: int = 0
    physical_reads: int = 0
    # Physical reads by page class (dmtm / msdn / objects / index).
    reads_by_class: dict = field(default_factory=dict)

    # -- read-only mapping protocol (legacy dict-trace compatibility) --

    def __getitem__(self, key: str):
        try:
            return getattr(self, key)
        except AttributeError:
            raise KeyError(key) from None

    def keys(self):
        return [f.name for f in fields(self)]

    def to_dict(self) -> dict:
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["reads_by_class"] = dict(self.reads_by_class)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "LevelEvent":
        names = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in names})


@dataclass
class QueryTrace:
    """Everything observed about one query, ready for export."""

    method: str
    query_vertex: int
    k: int
    converged: bool
    events: list[LevelEvent]
    metrics: dict
    spans: dict | None = None  # root Span.to_dict(), when traced

    def to_dict(self) -> dict:
        return {
            "method": self.method,
            "query_vertex": self.query_vertex,
            "k": self.k,
            "converged": self.converged,
            "events": [e.to_dict() for e in self.events],
            "metrics": dict(self.metrics),
            "spans": self.spans,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "QueryTrace":
        return cls(
            method=data["method"],
            query_vertex=data["query_vertex"],
            k=data["k"],
            converged=data["converged"],
            events=[LevelEvent.from_dict(e) for e in data["events"]],
            metrics=dict(data["metrics"]),
            spans=data.get("spans"),
        )
