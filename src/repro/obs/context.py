"""Scoped telemetry contexts: registry + tracer + profiler as a unit.

PR 1 gave the repo a process-wide metrics singleton
(:func:`repro.obs.metrics.get_registry`), which worked until two
things needed isolation: tests (conftest had to autouse-reset the
registry between modules — a reset-ordering hazard) and the planned
sk-NN service (per-tenant telemetry cannot share one mutable global).

An :class:`ObsContext` bundles the three observability instruments —
a :class:`~repro.obs.metrics.MetricsRegistry`, a
:class:`~repro.obs.tracing.Tracer` and a
:class:`~repro.obs.profile.Profiler` — into one explicitly-carried
value:

* the engine accepts ``obs=`` (constructor or per call) and
  *activates* the context around each query so that code without an
  engine handle (graph kernels, the page manager, the bound cache)
  reports into the right registry;
* :class:`~repro.core.batch.BatchQueryExecutor` derives a per-query
  :meth:`child` context in each worker and merges it back into the
  batch context — the per-tenant aggregation shape the service needs;
* :func:`current` resolves the active context through a
  :mod:`contextvars` variable, falling back to a module-level
  **default context** that wraps the legacy singleton registry, so
  ``get_registry()`` keeps returning the same object it always did
  when no context is active (backward compatible, now deprecated).
"""

from __future__ import annotations

import contextvars
import threading

from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import NULL_PROFILER, Profiler
from repro.obs.tracing import NULL_TRACER, Tracer

__all__ = [
    "ObsContext",
    "active_profiler",
    "active_registry",
    "current",
    "default_context",
]


class _Activation:
    """Context manager installing an ObsContext as the active one."""

    __slots__ = ("_ctx", "_token")

    def __init__(self, ctx: "ObsContext"):
        self._ctx = ctx

    def __enter__(self) -> "ObsContext":
        self._token = _active.set(self._ctx)
        return self._ctx

    def __exit__(self, exc_type, exc, tb) -> bool:
        _active.reset(self._token)
        return False


class ObsContext:
    """One scope's observability instruments.

    Parameters
    ----------
    name:
        Diagnostic label (shows up in ``repr``; child contexts derive
        ``parent/child`` names).
    registry / tracer / profiler:
        Explicit instruments; by default a context gets a **fresh**
        registry, the no-op tracer and the no-op profiler.
    tracing / profiling:
        Convenience switches: ``tracing=True`` builds an enabled
        :class:`Tracer`, ``profiling=True`` an enabled
        :class:`Profiler`, without importing either class at the call
        site.
    """

    def __init__(
        self,
        name: str = "",
        *,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        profiler: Profiler | None = None,
        tracing: bool = False,
        profiling: bool = False,
    ):
        self.name = name
        self.registry = registry if registry is not None else MetricsRegistry()
        if tracer is not None:
            self.tracer = tracer
        else:
            self.tracer = Tracer() if tracing else NULL_TRACER
        if profiler is not None:
            self.profiler = profiler
        else:
            self.profiler = Profiler() if profiling else NULL_PROFILER

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (
            f"ObsContext(name={self.name!r}, "
            f"tracing={self.tracer.enabled}, "
            f"profiling={self.profiler.enabled})"
        )

    # -- scoping --------------------------------------------------------

    def activate(self) -> _Activation:
        """Install this context as the active one for the dynamic
        extent of a ``with`` block (re-entrant; per-thread/task via
        :mod:`contextvars`)."""
        return _Activation(self)

    # -- hierarchy ------------------------------------------------------

    def child(self, name: str = "") -> "ObsContext":
        """A fresh context inheriting this one's *enablement*.

        The child gets its own registry, its own tracer (enabled iff
        the parent's is) and its own profiler (likewise), so one
        query's telemetry is isolated until :meth:`absorb` folds it
        back into the parent — the batch executor's per-query shape.
        """
        label = f"{self.name}/{name}" if self.name and name else (
            name or self.name
        )
        return ObsContext(
            name=label,
            tracing=self.tracer.enabled,
            profiling=self.profiler.enabled,
        )

    def absorb(self, child: "ObsContext") -> None:
        """Merge a finished child's telemetry into this context:
        counters add, gauges last-write-wins, histograms merge
        bucket-wise, finished profiles are adopted."""
        self.registry.merge(child.registry)
        if child.profiler.enabled and self.profiler.enabled:
            self.profiler.adopt(child.profiler.take())

    # -- convenience ----------------------------------------------------

    def collect(self) -> dict:
        """Snapshot of this context's metrics (registry.collect())."""
        return self.registry.collect()


#: The active context for the current thread/task (None → default).
_active: contextvars.ContextVar[ObsContext | None] = contextvars.ContextVar(
    "repro_obs_context", default=None
)

_default: ObsContext | None = None
_default_lock = threading.Lock()


def default_context() -> ObsContext:
    """The process-wide fallback context.

    Wraps the legacy module-level registry, so code still using the
    deprecated :func:`repro.obs.metrics.get_registry` and code that
    never passes ``obs=`` keep sharing the exact same counters they
    did before scoped contexts existed.
    """
    global _default
    if _default is None:
        from repro.obs import metrics

        with _default_lock:
            if _default is None:
                _default = ObsContext(
                    name="default", registry=metrics.default_registry()
                )
    return _default


def current() -> ObsContext:
    """The active context, falling back to :func:`default_context`."""
    ctx = _active.get()
    return ctx if ctx is not None else default_context()


def active_registry() -> MetricsRegistry:
    """Registry of the active context (what ``get_registry`` now
    resolves to)."""
    return current().registry


def active_profiler() -> Profiler:
    """Profiler of the active context (no-op unless a profiling
    context is active)."""
    return current().profiler
