"""Process-wide metrics: named counters, gauges and histograms.

The registry is deliberately tiny — no labels, no exposition formats —
because its consumers are the bench harness and tests, not a scrape
endpoint.  Counters are monotone totals (kernel work: vertices
settled, edges relaxed), gauges are last-written values (structure
sizes), histograms are fixed-bucket distributions with an interpolated
quantile readout (per-query latencies).

Registries are scoped through :class:`~repro.obs.context.ObsContext`:
hot kernels resolve the *active* context's registry via the
(deprecated but still supported) :func:`get_registry`, which falls
back to the legacy module-level default when no context is active.
Instruments are created on first use.  Incrementing a counter is one
dict hit + integer add, cheap enough to stay always-on (kernels
additionally batch their counts and report once per call, not once
per relaxation).
"""

from __future__ import annotations

import bisect
import math
import threading


class Counter:
    """Monotonically increasing total.

    ``add`` takes the instrument lock: attribute ``+=`` is not atomic
    in CPython, so unlocked concurrent increments from a query thread
    pool would lose counts.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def add(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        with self._lock:
            self.value += amount

    def reset(self) -> None:
        with self._lock:
            self.value = 0


class Gauge:
    """Last-written value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def reset(self) -> None:
        self.value = 0.0


#: Default histogram buckets: exponential, centred on the
#: milliseconds-to-seconds range of per-query timings.
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Histogram:
    """Fixed-bucket histogram with quantile readout.

    ``buckets`` are ascending finite upper bounds; observations above
    the last bound land in an implicit +inf bucket.  Quantiles are
    estimated by linear interpolation inside the owning bucket
    (clamped to the observed min/max), so the estimation error is at
    most one bucket width — verified against a reference in
    tests/test_obs.py.
    """

    __slots__ = (
        "name", "bounds", "counts", "count", "total", "_min", "_max", "_lock",
    )

    def __init__(self, name: str, buckets=DEFAULT_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError("histogram buckets must be ascending and distinct")
        if not all(math.isfinite(b) for b in bounds):
            raise ValueError("histogram buckets must be finite")
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1: overflow bucket
        self.count = 0
        self.total = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.counts[bisect.bisect_left(self.bounds, value)] += 1
            self.count += 1
            self.total += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated q-quantile (0 <= q <= 1) of the observations."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        # The extremes are tracked exactly — no bucket interpolation.
        if q == 0.0:
            return self._min
        if q == 1.0:
            return self._max
        rank = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                lo = self.bounds[i - 1] if i > 0 else min(self._min, self.bounds[0])
                hi = self.bounds[i] if i < len(self.bounds) else self._max
                fraction = (rank - (cumulative - bucket_count)) / bucket_count
                estimate = lo + (hi - lo) * max(0.0, min(1.0, fraction))
                return max(self._min, min(self._max, estimate))
        return self._max

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one.

        Requires identical bucket bounds (child contexts create their
        instruments from the same call sites, so bounds always line
        up in practice).
        """
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histogram {other.name!r}: bucket bounds differ"
            )
        with self._lock:
            for i, n in enumerate(other.counts):
                self.counts[i] += n
            self.count += other.count
            self.total += other.total
            if other._min < self._min:
                self._min = other._min
            if other._max > self._max:
                self._max = other._max

    def reset(self) -> None:
        with self._lock:
            self.counts = [0] * (len(self.bounds) + 1)
            self.count = 0
            self.total = 0.0
            self._min = math.inf
            self._max = -math.inf


class MetricsRegistry:
    """Named instruments, created on first use."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(name, Counter(name))
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.setdefault(name, Gauge(name))
        return instrument

    def histogram(self, name: str, buckets=DEFAULT_BUCKETS) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.setdefault(
                    name, Histogram(name, buckets)
                )
        return instrument

    def collect(self) -> dict:
        """Snapshot every instrument as a JSON-ready dict."""
        out: dict[str, dict] = {}
        for name, c in sorted(self._counters.items()):
            out[name] = {"type": "counter", "value": c.value}
        for name, g in sorted(self._gauges.items()):
            out[name] = {"type": "gauge", "value": g.value}
        for name, h in sorted(self._histograms.items()):
            out[name] = {
                "type": "histogram",
                "count": h.count,
                "mean": h.mean,
                "p50": h.quantile(0.5),
                "p95": h.quantile(0.95),
                "p99": h.quantile(0.99),
            }
        return out

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's instruments into this one.

        Counters add, gauges are last-write-wins, histograms merge
        bucket-wise.  This is how a batch :class:`ObsContext` absorbs
        its per-query children.
        """
        for name, c in list(other._counters.items()):
            self.counter(name).add(c.value)
        for name, g in list(other._gauges.items()):
            self.gauge(name).set(g.value)
        for name, h in list(other._histograms.items()):
            self.histogram(name, h.bounds).merge(h)

    def reset(self) -> None:
        """Zero every instrument (keeps registrations)."""
        for group in (self._counters, self._gauges, self._histograms):
            for instrument in group.values():
                instrument.reset()


_default = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The legacy process-wide registry — the default
    :class:`~repro.obs.context.ObsContext` wraps exactly this object."""
    return _default


def get_registry() -> MetricsRegistry:
    """Registry of the **active** observability context.

    .. deprecated::
        Prefer carrying an :class:`~repro.obs.context.ObsContext` (or
        calling :func:`repro.obs.context.active_registry`).  With no
        context active this still returns the same process-wide
        registry it always did, so existing callers are unaffected;
        inside ``with ctx.activate():`` it resolves to that context's
        registry.
    """
    from repro.obs.context import active_registry

    return active_registry()
