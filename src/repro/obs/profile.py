"""Phase profiler: deterministic, low-overhead cost attribution.

PR 4's lesson was that a 43× kernel win moved the end-to-end needle
only 1.11× — the cost had migrated, and nothing could say *where*.
The profiler answers that question per query: a tree of named
**phases** (see :data:`PHASES`), each carrying wall time, invocation
count and counter deltas (settled nodes, relaxations, logical and
physical page reads by page class).

Design:

* A :class:`Profiler` keeps a *thread-local* stack of open
  :class:`PhaseNode` frames, exactly like the tracer's span stack.
  ``profiler.phase(name)`` opens a frame; frames with the same name
  under the same parent **aggregate** (flamegraph semantics: the tree
  is a call tree keyed by phase path, not one node per invocation).
* ``profiler.count(name, n)`` attributes a counter delta to the
  innermost open frame — the page manager and the graph kernels call
  it at the same points they feed the metrics registry, so the
  profile's counter totals reconcile with ``QueryMetrics`` exactly.
* A disabled profiler hands out a shared no-op phase and ``count``
  returns immediately, so un-profiled queries pay one attribute check
  per instrumented boundary (measured in CI: within 10 % of the
  fully uninstrumented latency, bit-identical results).

The finished tree is exposed as :class:`Profile` —
``QueryResult.profile()`` — with a flamegraph-style
:meth:`Profile.render_tree` and a ``repro.profile/v1`` JSON record
(:func:`profile_record` / :func:`profile_from_record`) that
``python -m repro.obs.diff`` consumes for regression attribution.
"""

from __future__ import annotations

import threading
import time

#: Schema tag of the JSON profile record.
PROFILE_SCHEMA = "repro.profile/v1"

#: The phase catalog (see docs/observability.md for the boundaries):
#: where each phase starts and ends in the MR3 stack.
PHASES = (
    "query",            # engine.query root
    "spatial-filter",   # MR3 steps 1 & 3: R-tree knn_2d / range_2d
    "interval-ranking", # one per DistanceRanker resolution level
    "bound-composition",# DMTM ub + MSDN lb updates within a level
    "graph-kernel",     # one per Dijkstra/A* kernel invocation
    "frontier-relaxation",  # one per frontier-batched kernel invocation
    "refinement",       # Kanai-Suzuki selective polish
    "landmark-lazy-build",  # incremental landmark rows built on demand
    "page-io",          # physical page fetches (buffer-pool misses)
)


class PhaseNode:
    """One node of the aggregated phase tree.

    ``seconds``/``calls`` accumulate over every invocation of this
    phase at this tree position; ``counters`` holds the counter deltas
    attributed while this frame was innermost.  ``children`` is keyed
    by phase name (aggregation by path).
    """

    __slots__ = ("name", "seconds", "calls", "counters", "children", "_open")

    def __init__(self, name: str):
        self.name = name
        self.seconds = 0.0
        self.calls = 0
        self.counters: dict[str, float] = {}
        self.children: dict[str, "PhaseNode"] = {}
        self._open = 0  # re-entrancy guard: no double-counted seconds

    @property
    def child_seconds(self) -> float:
        return sum(c.seconds for c in self.children.values())

    @property
    def self_seconds(self) -> float:
        """Wall time spent in this phase excluding child phases."""
        return max(0.0, self.seconds - self.child_seconds)

    def walk(self):
        """Yield this node and every descendant, depth-first."""
        yield self
        for child in self.children.values():
            yield from child.walk()

    def count(self, name: str, amount: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def to_dict(self) -> dict:
        """JSON-ready representation (``repro.profile/v1`` ``root``)."""
        return {
            "name": self.name,
            "seconds": self.seconds,
            "calls": self.calls,
            "counters": dict(self.counters),
            "children": [c.to_dict() for c in self.children.values()],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PhaseNode":
        node = cls(data["name"])
        node.seconds = float(data.get("seconds", 0.0))
        node.calls = int(data.get("calls", 0))
        node.counters = dict(data.get("counters", {}))
        for child in data.get("children", []):
            node.children[child["name"]] = cls.from_dict(child)
        return node


class _NoopPhase:
    """Shared do-nothing phase handed out by disabled profilers."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NOOP_PHASE = _NoopPhase()


class _PhaseContext:
    """Context manager binding one phase entry to a profiler stack."""

    __slots__ = ("_profiler", "_name", "_node", "_t0")

    def __init__(self, profiler: "Profiler", name: str):
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> PhaseNode:
        stack = self._profiler._stack()
        if stack:
            parent = stack[-1]
            node = parent.children.get(self._name)
            if node is None:
                node = PhaseNode(self._name)
                parent.children[self._name] = node
        else:
            node = PhaseNode(self._name)
        node._open += 1
        stack.append(node)
        self._node = node
        self._t0 = time.perf_counter()
        return node

    def __exit__(self, exc_type, exc, tb) -> bool:
        elapsed = time.perf_counter() - self._t0
        node = self._node
        stack = self._profiler._stack()
        # Exception safety: the frame is always popped, like spans.
        if stack and stack[-1] is node:
            stack.pop()
        node._open -= 1
        if node._open == 0:
            # Re-entrant phases (a kernel phase inside a kernel phase)
            # only bill the outermost entry, so seconds never exceed
            # real wall time.
            node.seconds += elapsed
        node.calls += 1
        if not stack:
            self._profiler._record_root(node)
        return False  # never swallow the exception


class Profiler:
    """Collects per-query phase trees; disabled profilers are no-ops.

    One profiler per :class:`~repro.obs.context.ObsContext`.  The
    engine opens the ``"query"`` root phase around each query; nested
    instrumented sections (ranker levels, kernels, the page manager)
    open child phases through the *active* context, so the tree
    composes without plumbing a handle through every call.
    """

    def __init__(self, enabled: bool = True, max_profiles: int = 4096):
        self.enabled = enabled
        self.max_profiles = max_profiles
        self._local = threading.local()
        self._lock = threading.Lock()
        self._finished: list[Profile] = []

    def _stack(self) -> list[PhaseNode]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def phase(self, name: str):
        """Open a (possibly aggregated) phase; use as a context manager."""
        if not self.enabled:
            return NOOP_PHASE
        return _PhaseContext(self, name)

    def count(self, name: str, amount: float = 1) -> None:
        """Attribute a counter delta to the innermost open phase."""
        if not self.enabled:
            return
        stack = self._stack()
        if stack:
            counters = stack[-1].counters
            counters[name] = counters.get(name, 0) + amount

    def current(self) -> PhaseNode | None:
        """The innermost open phase on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def _record_root(self, node: PhaseNode) -> None:
        with self._lock:
            self._finished.append(Profile(node))
            if len(self._finished) > self.max_profiles:
                del self._finished[: -self.max_profiles]

    def finished(self) -> list["Profile"]:
        """Finished root profiles, oldest first."""
        with self._lock:
            return list(self._finished)

    def take(self) -> list["Profile"]:
        """Return finished root profiles and clear the buffer."""
        with self._lock:
            profiles, self._finished = self._finished, []
        return profiles

    def adopt(self, profiles) -> None:
        """Absorb finished profiles from a child context's profiler."""
        with self._lock:
            self._finished.extend(profiles)
            if len(self._finished) > self.max_profiles:
                del self._finished[: -self.max_profiles]

    def reset(self) -> None:
        with self._lock:
            self._finished.clear()
        self._stack().clear()


#: Shared disabled profiler — the default everywhere profiling is
#: optional.  ``phase()`` on it costs one ``if``.
NULL_PROFILER = Profiler(enabled=False)


class Profile:
    """A finished phase tree with aggregation and rendering helpers."""

    def __init__(self, root: PhaseNode, label: str | None = None):
        self.root = root
        self.label = label

    @property
    def total_seconds(self) -> float:
        return self.root.seconds

    def self_seconds_by_phase(self) -> dict[str, float]:
        """Exclusive (self) wall seconds aggregated by phase name.

        Sums to ``total_seconds`` exactly — the invariant obs.diff
        relies on to make phase attributions add up.
        """
        out: dict[str, float] = {}
        for node in self.root.walk():
            out[node.name] = out.get(node.name, 0.0) + node.self_seconds
        return out

    def counters_by_phase(self) -> dict[str, dict]:
        """Counter deltas aggregated by phase name."""
        out: dict[str, dict] = {}
        for node in self.root.walk():
            bucket = out.setdefault(node.name, {})
            for key, value in node.counters.items():
                bucket[key] = bucket.get(key, 0) + value
        return out

    def total_counters(self) -> dict:
        """Counter deltas aggregated over the whole tree — these equal
        the query's ``QueryMetrics`` totals (tested invariant)."""
        out: dict = {}
        for node in self.root.walk():
            for key, value in node.counters.items():
                out[key] = out.get(key, 0) + value
        return out

    def counter(self, name: str):
        return self.total_counters().get(name, 0)

    def render_tree(self, bar_width: int = 24) -> str:
        """Flamegraph-style text rendering of the phase tree."""
        total = self.root.seconds
        lines = []
        if self.label:
            lines.append(f"profile: {self.label}")

        def visit(node: PhaseNode, depth: int) -> None:
            share = node.seconds / total if total > 0 else 0.0
            bar = "#" * max(1 if node.seconds > 0 else 0,
                            round(share * bar_width))
            name = "  " * depth + node.name
            lines.append(
                f"{name:<28} {node.calls:>6}x {node.seconds * 1000:>10.3f} ms"
                f" {share:>7.1%}  {bar}"
            )
            interesting = {
                k: v for k, v in node.counters.items() if v
            }
            if interesting:
                detail = ", ".join(
                    f"{k}={v:g}" for k, v in sorted(interesting.items())
                )
                lines.append(f"{'  ' * (depth + 1)}[{detail}]")
            for child in node.children.values():
                visit(child, depth + 1)

        visit(self.root, 0)
        return "\n".join(lines)

    def to_record(self, label: str | None = None) -> dict:
        """One JSONL-ready ``repro.profile/v1`` record."""
        record = {
            "schema": PROFILE_SCHEMA,
            "total_seconds": self.total_seconds,
            "root": self.root.to_dict(),
        }
        tag = label if label is not None else self.label
        if tag is not None:
            record["label"] = tag
        return record

    @classmethod
    def from_record(cls, record: dict) -> "Profile":
        if record.get("schema") != PROFILE_SCHEMA:
            raise ValueError(
                f"not a {PROFILE_SCHEMA} record: {record.get('schema')!r}"
            )
        return cls(PhaseNode.from_dict(record["root"]),
                   label=record.get("label"))


def profile_record(profile: Profile, label: str | None = None) -> dict:
    """Module-level alias of :meth:`Profile.to_record`."""
    return profile.to_record(label=label)


def profile_from_record(record: dict) -> Profile:
    """Module-level alias of :meth:`Profile.from_record`."""
    return Profile.from_record(record)


def kernel_phase_named(phase: str):
    """Decorator factory wrapping a graph-search kernel in ``phase``
    on the *active* context's profiler.

    Kernels are free functions without an engine handle, so they find
    the profiler through :func:`repro.obs.context.active_profiler`;
    with profiling disabled (the default) the wrapper costs one
    context lookup and one attribute check per kernel call — the
    kernels themselves batch counters once per call, so the hot loops
    stay untouched.
    """
    import functools

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            from repro.obs.context import active_profiler

            profiler = active_profiler()
            if not profiler.enabled:
                return fn(*args, **kwargs)
            with profiler.phase(phase):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


#: The heap/dict kernels bill to ``graph-kernel``; the frontier-batched
#: kernels bill to ``frontier-relaxation`` via the same factory.
kernel_phase = kernel_phase_named("graph-kernel")
