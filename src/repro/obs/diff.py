"""Perf-regression attribution between two profile/bench runs.

Usage::

    python -m repro.obs.diff A.jsonl B.jsonl [--json OUT] [--top N]

Both inputs are JSONL files of ``repro.profile/v1`` records (what
``repro.bench --profile-out`` and ``QueryResult.profile().to_record()``
emit) or of ``repro.bench/v1`` records (``--metrics-out``).  The tool
attributes the end-to-end wall-time delta between run A and run B to
phases and page classes, so a perf PR ships with a machine-readable
"what got faster/slower and why".

Attribution uses each phase's **self** seconds (exclusive time), so
the per-phase deltas sum *exactly* to the end-to-end delta — there is
no "unexplained" residue.  Comparing a run against itself yields an
all-zero table (the CI self-check).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.export import read_jsonl
from repro.obs.profile import PROFILE_SCHEMA

DIFF_SCHEMA = "repro.profile_diff/v1"
BENCH_SCHEMA = "repro.bench/v1"


def _walk(node: dict):
    yield node
    for child in node.get("children", ()):
        yield from _walk(child)


def _profile_totals(records: list[dict]) -> dict:
    """Aggregate a run of ``repro.profile/v1`` records.

    Returns end-to-end seconds, self-seconds per phase, physical
    reads per page class, and selected counter totals.
    """
    total = 0.0
    phases: dict[str, float] = {}
    classes: dict[str, float] = {}
    counters: dict[str, float] = {}
    for record in records:
        root = record["root"]
        total += float(root.get("seconds", 0.0))
        for node in _walk(root):
            child_secs = sum(
                float(c.get("seconds", 0.0)) for c in node.get("children", ())
            )
            self_secs = max(0.0, float(node.get("seconds", 0.0)) - child_secs)
            name = node["name"]
            phases[name] = phases.get(name, 0.0) + self_secs
            for key, value in node.get("counters", {}).items():
                counters[key] = counters.get(key, 0) + value
                if key.startswith("physical."):
                    cls = key[len("physical."):]
                    classes[cls] = classes.get(cls, 0) + value
    return {
        "kind": "profile",
        "records": len(records),
        "total_seconds": total,
        "phases": phases,
        "page_classes": classes,
        "counters": counters,
    }


def _bench_totals(records: list[dict]) -> dict:
    """Aggregate a run of ``repro.bench/v1`` records.

    Bench points carry total/cpu seconds and per-class page counts
    but no phase tree, so the attribution falls back to a cpu-vs-io
    split; page-class deltas still come out per structure.
    """
    total = 0.0
    phases: dict[str, float] = {"cpu": 0.0, "io": 0.0}
    classes: dict[str, float] = {}
    counters: dict[str, float] = {}
    for record in records:
        t = float(record.get("total", 0.0))
        cpu = float(record.get("cpu", 0.0))
        total += t
        phases["cpu"] += cpu
        phases["io"] += max(0.0, t - cpu)
        for key, value in record.items():
            if key.startswith("pages_") and isinstance(value, (int, float)):
                cls = key[len("pages_"):]
                classes[cls] = classes.get(cls, 0) + value
            if key.startswith("dijkstra_") and isinstance(value, (int, float)):
                counters[key] = counters.get(key, 0) + value
    return {
        "kind": "bench",
        "records": len(records),
        "total_seconds": total,
        "phases": phases,
        "page_classes": classes,
        "counters": counters,
    }


def load_run(path: str) -> dict:
    """Load one JSONL run and aggregate it by schema kind."""
    records = read_jsonl(path)
    if not records:
        raise SystemExit(f"{path}: no records")
    schemas = {r.get("schema") for r in records}
    if schemas == {PROFILE_SCHEMA}:
        return _profile_totals(records)
    if schemas == {BENCH_SCHEMA}:
        return _bench_totals(records)
    raise SystemExit(
        f"{path}: expected {PROFILE_SCHEMA} or {BENCH_SCHEMA} records, "
        f"found schemas {sorted(str(s) for s in schemas)}"
    )


def attribute(a: dict, b: dict) -> dict:
    """Attribute the A→B end-to-end delta to phases and page classes.

    The sum of the per-phase ``delta`` entries equals
    ``end_to_end.delta`` exactly (self-seconds partition wall time).
    ``share`` is each phase's fraction of the end-to-end delta.
    """
    if a["kind"] != b["kind"]:
        raise SystemExit(
            f"cannot compare a {a['kind']} run against a {b['kind']} run"
        )
    delta_total = b["total_seconds"] - a["total_seconds"]

    phases = []
    for name in sorted(set(a["phases"]) | set(b["phases"])):
        pa = a["phases"].get(name, 0.0)
        pb = b["phases"].get(name, 0.0)
        delta = pb - pa
        phases.append({
            "phase": name,
            "a_seconds": pa,
            "b_seconds": pb,
            "delta_seconds": delta,
            "share": delta / delta_total if delta_total else 0.0,
        })
    phases.sort(key=lambda p: abs(p["delta_seconds"]), reverse=True)

    classes = []
    for name in sorted(set(a["page_classes"]) | set(b["page_classes"])):
        ca = a["page_classes"].get(name, 0)
        cb = b["page_classes"].get(name, 0)
        classes.append({
            "page_class": name,
            "a_reads": ca,
            "b_reads": cb,
            "delta_reads": cb - ca,
        })
    classes.sort(key=lambda c: abs(c["delta_reads"]), reverse=True)

    counters = []
    for name in sorted(set(a["counters"]) | set(b["counters"])):
        ca = a["counters"].get(name, 0)
        cb = b["counters"].get(name, 0)
        counters.append({
            "counter": name, "a": ca, "b": cb, "delta": cb - ca,
        })

    return {
        "schema": DIFF_SCHEMA,
        "kind": a["kind"],
        "records": {"a": a["records"], "b": b["records"]},
        "end_to_end": {
            "a_seconds": a["total_seconds"],
            "b_seconds": b["total_seconds"],
            "delta_seconds": delta_total,
        },
        "phases": phases,
        "page_classes": classes,
        "counters": counters,
    }


def _fmt_share(share: float, delta_total: float) -> str:
    if delta_total == 0.0:
        return "-"
    return f"{share:+8.1%}"


def render_diff(report: dict, top: int = 0) -> str:
    """Human-readable attribution tables."""
    e2e = report["end_to_end"]
    delta = e2e["delta_seconds"]
    rel = delta / e2e["a_seconds"] if e2e["a_seconds"] else 0.0
    lines = [
        f"run A: {report['records']['a']} {report['kind']} records, "
        f"{e2e['a_seconds']:.6f} s",
        f"run B: {report['records']['b']} {report['kind']} records, "
        f"{e2e['b_seconds']:.6f} s",
        f"end-to-end delta: {delta:+.6f} s ({rel:+.1%})",
        "",
        f"{'phase':<20} {'A (s)':>12} {'B (s)':>12} "
        f"{'delta (s)':>12} {'share':>8}",
    ]
    phases = report["phases"][:top] if top else report["phases"]
    for p in phases:
        lines.append(
            f"{p['phase']:<20} {p['a_seconds']:>12.6f} "
            f"{p['b_seconds']:>12.6f} {p['delta_seconds']:>+12.6f} "
            f"{_fmt_share(p['share'], delta):>8}"
        )
    check = sum(p["delta_seconds"] for p in report["phases"])
    lines.append(
        f"{'TOTAL':<20} {e2e['a_seconds']:>12.6f} {e2e['b_seconds']:>12.6f} "
        f"{check:>+12.6f} {_fmt_share(1.0 if delta else 0.0, delta):>8}"
    )
    if report["page_classes"]:
        lines += [
            "",
            f"{'page class':<20} {'A reads':>12} {'B reads':>12} "
            f"{'delta':>12}",
        ]
        for c in report["page_classes"]:
            lines.append(
                f"{c['page_class']:<20} {c['a_reads']:>12g} "
                f"{c['b_reads']:>12g} {c['delta_reads']:>+12g}"
            )
    interesting = [c for c in report["counters"] if c["delta"]]
    if interesting:
        lines += [
            "",
            f"{'counter':<28} {'A':>14} {'B':>14} {'delta':>14}",
        ]
        for c in interesting:
            lines.append(
                f"{c['counter']:<28} {c['a']:>14g} {c['b']:>14g} "
                f"{c['delta']:>+14g}"
            )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.diff",
        description=(
            "Attribute the end-to-end wall-time delta between two "
            "profile/bench JSONL runs to phases and page classes."
        ),
    )
    parser.add_argument("run_a", help="baseline JSONL (run A)")
    parser.add_argument("run_b", help="candidate JSONL (run B)")
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the attribution report as JSON ('-' for stdout)",
    )
    parser.add_argument(
        "--top", type=int, default=0, metavar="N",
        help="show only the N largest phase contributions (0 = all)",
    )
    args = parser.parse_args(argv)

    report = attribute(load_run(args.run_a), load_run(args.run_b))
    print(render_diff(report, top=args.top))
    if args.json == "-":
        print(json.dumps(report, indent=2))
    elif args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"\nwrote {args.json}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
