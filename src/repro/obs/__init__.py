"""Observability layer: tracing spans, metrics, typed trace events
and per-query trace export.

Everything here is zero-dependency and optional: the engine defaults
to the shared :data:`~repro.obs.tracing.NULL_TRACER`, whose spans are
no-ops.  See docs/observability.md for the concepts and the measured
overhead.
"""

from repro.obs.events import LevelEvent, QueryTrace
from repro.obs.export import (
    query_record,
    query_trace,
    read_jsonl,
    render,
    write_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.tracing import NULL_TRACER, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LevelEvent",
    "MetricsRegistry",
    "NULL_TRACER",
    "QueryTrace",
    "Span",
    "Tracer",
    "get_registry",
    "query_record",
    "query_trace",
    "read_jsonl",
    "render",
    "write_jsonl",
]
