"""Observability layer: tracing spans, metrics, scoped contexts,
phase profiling and per-query trace export.

Everything here is zero-dependency and optional: the engine defaults
to the shared :data:`~repro.obs.tracing.NULL_TRACER` and the disabled
:data:`~repro.obs.profile.NULL_PROFILER`, whose spans/phases are
no-ops.  Telemetry is scoped through :class:`ObsContext` (registry +
tracer + profiler); the module-level :func:`get_registry` singleton
remains as a deprecated fallback.  See docs/observability.md for the
concepts, the phase catalog and the measured overhead.
"""

from repro.obs.context import (
    ObsContext,
    active_profiler,
    active_registry,
    current,
    default_context,
)
from repro.obs.events import LevelEvent, QueryTrace
from repro.obs.export import (
    query_record,
    query_trace,
    read_jsonl,
    render,
    write_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    get_registry,
)
from repro.obs.profile import (
    NULL_PROFILER,
    PHASES,
    Profile,
    Profiler,
    profile_from_record,
    profile_record,
)
from repro.obs.tracing import NULL_TRACER, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LevelEvent",
    "MetricsRegistry",
    "NULL_PROFILER",
    "NULL_TRACER",
    "ObsContext",
    "PHASES",
    "Profile",
    "Profiler",
    "QueryTrace",
    "Span",
    "Tracer",
    "active_profiler",
    "active_registry",
    "current",
    "default_context",
    "default_registry",
    "get_registry",
    "profile_from_record",
    "profile_record",
    "query_record",
    "query_trace",
    "read_jsonl",
    "render",
    "write_jsonl",
]
