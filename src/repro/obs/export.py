"""Trace exporters: JSON/JSONL writers and the human ``render()``.

``QueryResult.explain()`` delegates to :func:`render`; the bench
runner's ``--metrics-out`` writes one JSONL record per experiment
point through :func:`write_jsonl`.  Records are plain dicts so the
format stays greppable/jq-able; non-finite floats (an unbounded k-th
interval is ``inf``) use Python's JSON extension literals
(``Infinity``), which :func:`read_jsonl` reads back verbatim.
"""

from __future__ import annotations

import json

from repro.obs.events import LevelEvent, QueryTrace


def metrics_dict(metrics) -> dict:
    """JSON-ready view of a ``QueryMetrics``-shaped object."""
    return {
        "cpu_seconds": metrics.cpu_seconds,
        "io_seconds": metrics.io_seconds,
        "total_seconds": metrics.total_seconds,
        "pages_accessed": metrics.pages_accessed,
        "logical_reads": metrics.logical_reads,
        "buffer_hit_rate": metrics.buffer_hit_rate,
        "reads_by_class": dict(metrics.reads_by_class),
        "iterations_filter": metrics.iterations_filter,
        "iterations_ranking": metrics.iterations_ranking,
        "candidates_examined": metrics.candidates_examined,
    }


def query_trace(result) -> QueryTrace:
    """Build a :class:`QueryTrace` from a finished ``QueryResult``."""
    events = list(result.filter_trace) + list(result.ranking_trace)
    root = getattr(result, "root_span", None)
    return QueryTrace(
        method=result.method,
        query_vertex=result.query_vertex,
        k=result.k,
        converged=result.converged,
        events=events,
        metrics=metrics_dict(result.metrics),
        spans=root.to_dict() if root is not None else None,
    )


def query_record(result) -> dict:
    """One JSONL-ready record for a finished query.

    Degradation keys are only present on degraded (budget-exhausted)
    results, so records of exact queries — and the golden traces
    built from them — are byte-identical to the pre-budget format.
    """
    record = query_trace(result).to_dict()
    record["schema"] = "repro.query_trace/v1"
    if getattr(result, "degraded", False):
        record["degraded"] = True
        record["max_error"] = result.max_error
        if getattr(result, "degraded_reason", None):
            record["degraded_reason"] = result.degraded_reason
        if getattr(result, "budget_reason", None):
            record["budget_reason"] = result.budget_reason
    return record


def normalize_record(record: dict) -> dict:
    """Copy of a ``repro.query_trace/v1`` record with every wall-clock
    quantity zeroed (metrics seconds, per-event CPU, span durations).

    Page counts, candidate counts and bound values are deterministic
    for a given engine/query and stay untouched — this is what golden
    regression tests compare against.
    """
    out = json.loads(json.dumps(record, sort_keys=True))
    metrics = out.get("metrics")
    if isinstance(metrics, dict):
        for key in ("cpu_seconds", "io_seconds", "total_seconds"):
            if key in metrics:
                metrics[key] = 0.0
    for event in out.get("events", []):
        if "cpu_seconds" in event:
            event["cpu_seconds"] = 0.0

    def scrub(span: dict) -> None:
        span["duration_seconds"] = 0.0
        for child in span.get("children", []):
            scrub(child)

    if isinstance(out.get("spans"), dict):
        scrub(out["spans"])
    return out


def write_jsonl(path, records, append: bool = False) -> int:
    """Write dict records one-per-line; returns the record count."""
    mode = "a" if append else "w"
    count = 0
    with open(path, mode, encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
            count += 1
    return count


def read_jsonl(path) -> list[dict]:
    """Read back a JSONL file written by :func:`write_jsonl`."""
    records = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


# ----------------------------------------------------------------------
# human rendering
# ----------------------------------------------------------------------

def _render_event(event: LevelEvent) -> str:
    done = "  DONE" if event.done else ""
    io = ""
    if event.logical_reads or event.physical_reads:
        io = f"  io {event.physical_reads}/{event.logical_reads} pages"
    return (
        f"  level {event.level}: DMTM {event.dmtm_resolution:>5.1%} / "
        f"MSDN {event.msdn_resolution:>4.0%}  active {event.active_before}"
        f" -> {event.active_after}  kth in [{event.kth_lb:.1f}, "
        f"{event.kth_ub:.1f}]{io}{done}"
    )


def render(result) -> str:
    """Human-readable account of how a query was answered.

    This is the body of ``QueryResult.explain()``: the two ranking
    phases level by level (with per-level physical/logical page
    counts), then the cost line including the simulated I/O time and
    buffer behaviour that raw page counts hide.
    """
    lines = [
        f"{result.method} query at vertex {result.query_vertex}, "
        f"k={result.k}, converged={result.converged}"
    ]
    if getattr(result, "degraded", False):
        if getattr(result, "degraded_reason", None) == "storage":
            reason = (
                "storage faults survived the retry policy; redundant "
                "bound sources substituted"
            )
        else:
            reason = (
                getattr(result, "budget_reason", None) or "budget exhausted"
            )
        lines.append(
            f"DEGRADED: {reason}; answer is best-known top-{result.k} "
            f"with max_error {result.max_error:.1f}"
        )
    for label, trace in (
        ("step 2 (filter C1)", result.filter_trace),
        ("step 4 (rank C2)", result.ranking_trace),
    ):
        if not trace:
            continue
        lines.append(f"{label}:")
        for event in trace:
            lines.append(_render_event(event))
    m = result.metrics
    lines.append(
        f"cost: {m.cpu_seconds * 1000:.0f} ms CPU + "
        f"{m.io_seconds * 1000:.0f} ms I/O, "
        f"{m.pages_accessed} pages ({m.logical_reads} logical, "
        f"hit rate {m.buffer_hit_rate:.0%}), "
        f"{len(result.object_ids)} results"
    )
    if m.reads_by_class:
        breakdown = ", ".join(
            f"{cls}={count}" for cls, count in sorted(m.reads_by_class.items())
        )
        lines.append(f"pages by structure: {breakdown}")
    return "\n".join(lines)
