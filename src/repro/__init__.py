"""surfknn — surface k-NN query processing with multiresolution
terrain models.

A from-scratch reproduction of *Surface k-NN Query Processing*
(Deng, Zhou, Shen, Xu, Lin — ICDE 2006).  See README.md for the
architecture overview and DESIGN.md for the subsystem inventory.

The stable public surface is re-exported here; subpackages remain
importable for advanced use.
"""

__version__ = "1.0.0"

from repro.errors import SurfKnnError
from repro.terrain import (
    DemGrid,
    TriangleMesh,
    bearhead_like,
    eagle_peak_like,
    fractal_dem,
    gaussian_hills_dem,
    roughness_report,
)
from repro.geodesic import (
    dijkstra,
    exact_surface_distance,
    kanai_suzuki_distance,
    pathnet_distance,
)
from repro.core import SurfaceKNNEngine, ObjectSet

__all__ = [
    "__version__",
    "SurfKnnError",
    "DemGrid",
    "TriangleMesh",
    "bearhead_like",
    "eagle_peak_like",
    "fractal_dem",
    "gaussian_hills_dem",
    "roughness_report",
    "dijkstra",
    "exact_surface_distance",
    "kanai_suzuki_distance",
    "pathnet_distance",
    "SurfaceKNNEngine",
    "ObjectSet",
]
