"""Multiresolution terrain structures: DM/DDM collapse trees and the
unified DMTM (Distance MultiresoluTion Mesh).

The DMTM is one of the paper's two core data structures.  It unifies:

* a **DDM** (Distance Direct Mesh) — a Direct Mesh [Xu, Zhou & Lin,
  ICDE'04] binary collapse tree augmented with representative
  vertices and original-surface path distances, covering resolutions
  *below* the original mesh and supporting *monotone upper bounds*;
* a **pathnet** — Steiner subdivision of the original mesh, the
  resolution *above* the original ("200 %") where network distance is
  taken as the surface distance.
"""

from repro.multires.ddm import DistanceDirectMesh
from repro.multires.dmtm import DMTM, NetworkView, RESOLUTION_PATHNET
from repro.multires.extraction import extract_mesh

__all__ = [
    "DistanceDirectMesh",
    "DMTM",
    "NetworkView",
    "RESOLUTION_PATHNET",
    "extract_mesh",
]
