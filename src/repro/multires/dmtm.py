"""DMTM — the Distance MultiresoluTion Mesh.

One unified structure covering every resolution MR3 touches:

* ``resolution <= 1.0`` — a DDM cut keeping that fraction of the
  original vertices; network edges carry representative-path
  distances, so Dijkstra over a cut yields a genuine original-surface
  path length, i.e. a valid **upper bound** of ``dS``;
* ``resolution == 1.0`` — the original mesh itself (the cut at step 0);
* ``resolution == RESOLUTION_PATHNET (2.0)`` — the Steiner pathnet,
  "DMTM resolution 200 %", where the paper takes ``dN = dS`` by
  definition.

When storage is attached (:meth:`attach_storage`), every extraction
charges the shared buffer pool for the node/face records it uses —
the "pages accessed" observable of Figures 9–11.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.errors import MultiresError
from repro.geodesic.csr import (
    graph_dijkstra_with_parents,
    kernel_mode,
    multi_source_dijkstra_csr,
)
from repro.geodesic.graph import KeyedGraph
from repro.geodesic.pathnet import build_pathnet, vertex_key
from repro.geometry.primitives import BoundingBox
from repro.multires.ddm import DistanceDirectMesh
from repro.spatial.zorder import zorder_key_normalized
from repro.storage.locator import LocatorStore
from repro.storage.pages import PageManager
from repro.storage.stats import PAGE_CLASS_DMTM

RESOLUTION_PATHNET = 2.0


def _roi_list(roi) -> list[BoundingBox] | None:
    """Normalize an ROI argument to a list of 2D boxes (or None)."""
    if roi is None:
        return None
    if isinstance(roi, BoundingBox):
        roi = [roi]
    return [box.xy() if box.dim == 3 else box for box in roi]


def _intersects_roi(mbr: BoundingBox, roi: list[BoundingBox] | None) -> bool:
    if roi is None:
        return True
    return any(mbr.intersects(box) for box in roi)


@dataclass
class NetworkView:
    """A network extracted from the DMTM at some resolution/ROI."""

    graph: KeyedGraph
    resolution: float
    records_used: int
    step: int | None = None

    def csr(self):
        """The network's compiled CSR form (memoized on the graph, so
        batch workers sharing a BoundCache-held view share the
        arrays too)."""
        return self.graph.csr()


@dataclass
class UpperBoundResult:
    """Outcome of one DMTM upper-bound estimation."""

    value: float
    path_keys: list
    resolution: float


class DMTM:
    """Distance multiresolution mesh over a terrain.

    Parameters
    ----------
    mesh:
        The original :class:`repro.terrain.TriangleMesh`.
    steiner_per_edge:
        Steiner points per edge at the pathnet level (paper: 1).
    """

    def __init__(self, mesh, steiner_per_edge: int = 1, ddm=None):
        self.mesh = mesh
        self.ddm = ddm if ddm is not None else DistanceDirectMesh(mesh)
        self.steiner_per_edge = steiner_per_edge
        self._node_store: LocatorStore | None = None
        self._face_store: LocatorStore | None = None
        # Frontier-mode I/O fast path: record-id → page resolved once
        # per store (same pages read, same order, no per-call tuples).
        self._node_pages: np.ndarray | None = None
        self._face_pages: np.ndarray | None = None

    def save(self, path) -> None:
        """Persist the collapse history (the expensive build product);
        reload with :meth:`load`."""
        from repro.multires.persist import save_history

        save_history(self.ddm.history, path)

    @classmethod
    def load(cls, mesh, path, steiner_per_edge: int = 1) -> "DMTM":
        """Rebuild a DMTM from a saved history and the original mesh."""
        from repro.multires.ddm import DistanceDirectMesh
        from repro.multires.persist import load_history

        history = load_history(path)
        if history.num_leaves != mesh.num_vertices:
            raise MultiresError(
                f"history has {history.num_leaves} leaves but the mesh "
                f"has {mesh.num_vertices} vertices"
            )
        ddm = DistanceDirectMesh(mesh, history)
        return cls(mesh, steiner_per_edge=steiner_per_edge, ddm=ddm)

    # ------------------------------------------------------------------
    # storage
    # ------------------------------------------------------------------

    def attach_storage(self, pages: PageManager) -> None:
        """Lay the DMTM out on pages (z-order clustered) so that
        extractions are charged page I/O."""
        world = self.mesh.xy_bounds()
        node_items = []
        for node in self.ddm.history.nodes:
            key = zorder_key_normalized(
                float(node.position[0]), float(node.position[1]), world
            )
            node_items.append((key, node.node_id, self._encode_node(node)))
        self._node_store = LocatorStore(
            node_items, pages, page_class=PAGE_CLASS_DMTM
        )
        face_items = []
        for fi in range(self.mesh.num_faces):
            centroid = self.mesh.face_points(fi).mean(axis=0)
            key = zorder_key_normalized(float(centroid[0]), float(centroid[1]), world)
            face_items.append((key, fi, self._encode_face(fi)))
        self._face_store = LocatorStore(
            face_items, pages, page_class=PAGE_CLASS_DMTM
        )
        self._node_pages = None
        self._face_pages = None

    def _encode_node(self, node) -> bytes:
        head = struct.pack(
            "<qqqd3dH",
            node.node_id,
            node.rep,
            node.birth_step,
            node.error,
            *[float(c) for c in node.position],
            len(node.records),
        )
        body = b"".join(struct.pack("<qd", nbr, d) for nbr, d in node.records)
        return head + body

    @staticmethod
    def decode_node(blob: bytes) -> dict:
        """Decode a node record (used by tests to verify round trips)."""
        node_id, rep, birth, error, x, y, z, count = struct.unpack_from(
            "<qqqd3dH", blob, 0
        )
        offset = struct.calcsize("<qqqd3dH")
        records = []
        for _ in range(count):
            nbr, d = struct.unpack_from("<qd", blob, offset)
            offset += struct.calcsize("<qd")
            records.append((nbr, d))
        return {
            "node_id": node_id,
            "rep": rep,
            "birth_step": birth,
            "error": error,
            "position": (x, y, z),
            "records": records,
        }

    def _encode_face(self, fi: int) -> bytes:
        pts = self.mesh.face_points(fi)
        return struct.pack(
            "<q3q9d",
            fi,
            *[int(v) for v in self.mesh.faces[fi]],
            *[float(c) for c in pts.ravel()],
        )

    def _touch_nodes(self, node_ids) -> None:
        store = self._node_store
        if store is None:
            return
        if kernel_mode() == "frontier":
            if self._node_pages is None:
                self._node_pages = np.array(
                    [
                        store.page_of(node.node_id)
                        for node in self.ddm.history.nodes
                    ],
                    dtype=np.int64,
                )
            store.touch_pages(
                self._node_pages[np.asarray(node_ids, dtype=np.int64)]
            )
            return
        store.touch(node_ids)

    def _touch_faces(self, face_ids) -> None:
        store = self._face_store
        if store is None:
            return
        if kernel_mode() == "frontier":
            if self._face_pages is None:
                self._face_pages = np.array(
                    [store.page_of(fi) for fi in range(self.mesh.num_faces)],
                    dtype=np.int64,
                )
            store.touch_pages(
                self._face_pages[np.asarray(list(face_ids), dtype=np.int64)]
            )
            return
        store.touch(int(fi) for fi in face_ids)

    # ------------------------------------------------------------------
    # extraction
    # ------------------------------------------------------------------

    def touch_region(self, resolution: float, roi=None) -> None:
        """Charge page I/O for the records an extraction over ``roi``
        at ``resolution`` would use, without building the network.

        MR3's integrated I/O regions fetch a merged region once
        (through this method) and then run per-candidate extractions
        with ``charge_io=False``.
        """
        roi = _roi_list(roi)
        if resolution <= 1.0:
            step = self.ddm.step_for_fraction(resolution)
            cut = [int(n) for n in self.ddm.cut_node_ids(step, roi)]
            self._touch_nodes(cut)
        else:
            self._touch_faces(self._faces_in_roi(roi))

    def extract_network(
        self, resolution: float, roi=None, charge_io: bool = True
    ) -> NetworkView:
        """Build the network at ``resolution`` restricted to ``roi``.

        ``roi`` may be None, one :class:`BoundingBox`, or a list of
        boxes (MR3's refined search regions).  ``charge_io=False``
        skips page accounting (use when the covering region was
        already fetched via :meth:`touch_region`).
        """
        roi = _roi_list(roi)
        if resolution <= 1.0:
            return self._extract_cut(resolution, roi, charge_io)
        return self._extract_pathnet(resolution, roi, charge_io)

    def _extract_cut(self, resolution: float, roi, charge_io: bool) -> NetworkView:
        step = self.ddm.step_for_fraction(resolution)
        cut_ids = self.ddm.cut_node_ids(step, roi)
        if kernel_mode() == "frontier" and cut_ids.size:
            return self._extract_cut_arrays(resolution, step, cut_ids, charge_io)
        cut = [int(n) for n in cut_ids]
        if charge_io:
            self._touch_nodes(cut)
        graph = KeyedGraph()
        for node_id in cut:
            graph.add_node(
                ("n", node_id), position=self.ddm.node_position(node_id)
            )
        for u, w, d in self.ddm.cut_edges(cut):
            graph.add_edge(("n", u), ("n", w), d)
        return NetworkView(
            graph=graph, resolution=resolution, records_used=len(cut), step=step
        )

    def _extract_cut_arrays(
        self, resolution: float, step: int, cut_ids: np.ndarray, charge_io: bool
    ) -> NetworkView:
        """Frontier-mode cut extraction: the cut's recorded edges are
        selected and compiled to CSR with array operations instead of
        per-edge ``add_edge`` calls.  The node set, edge set and edge
        weights are exactly those of the object path (same
        first-occurrence dedupe — see DDM.cut_edge_arrays), so
        searches over either build return the same distances."""
        from repro.geodesic.csr import CSRGraph

        if charge_io:
            self._touch_nodes(cut_ids)
        u, w, d = self.ddm.cut_edge_arrays(cut_ids)
        nnodes = int(cut_ids.size)
        # cut_ids is ascending (np.nonzero order), so local ids come
        # from binary search.
        lu = np.searchsorted(cut_ids, u)
        lw = np.searchsorted(cut_ids, w)
        src_dir = np.concatenate([lu, lw])
        dst_dir = np.concatenate([lw, lu])
        w_dir = np.concatenate([d, d])
        order = np.argsort(src_dir, kind="stable")
        indptr = np.zeros(nnodes + 1, dtype=np.int64)
        np.cumsum(np.bincount(src_dir, minlength=nnodes), out=indptr[1:])
        positions = self.ddm.node_positions()[cut_ids]
        csr = CSRGraph(
            indptr, dst_dir[order], w_dir[order], positions=positions
        )
        graph = KeyedGraph.from_arrays(
            [("n", int(i)) for i in cut_ids], positions, csr
        )
        return NetworkView(
            graph=graph, resolution=resolution, records_used=nnodes, step=step
        )

    def _faces_in_roi(self, roi) -> np.ndarray:
        if roi is None:
            return np.arange(self.mesh.num_faces)
        keep: set[int] = set()
        for box in roi:
            keep.update(int(fi) for fi in self.mesh.submesh_faces(box))
        return np.asarray(sorted(keep), dtype=np.int64)

    def _steiner_for(self, resolution: float) -> int:
        """Steiner density of a pathnet-level resolution.

        200 % = the configured density (paper default 1/edge); every
        further +100 % adds one Steiner point per edge — the paper's
        "simply inserting more Steiner points into the highest LOD
        surface model to generate DMTM at higher resolution".
        """
        extra = max(0, int(round(resolution)) - 2)
        return self.steiner_per_edge + extra

    def _extract_pathnet(self, resolution: float, roi, charge_io: bool = True) -> NetworkView:
        faces = self._faces_in_roi(roi)
        if charge_io:
            self._touch_faces(faces)
        graph = build_pathnet(self.mesh, self._steiner_for(resolution), faces)
        return NetworkView(
            graph=graph,
            resolution=resolution,
            records_used=int(len(faces)),
            step=None,
        )

    # ------------------------------------------------------------------
    # upper bounds
    # ------------------------------------------------------------------

    def upper_bound(
        self,
        vertex_a: int,
        vertex_b: int,
        resolution: float,
        roi=None,
        network: NetworkView | None = None,
    ) -> UpperBoundResult | None:
        """Estimate ``ub(vertex_a, vertex_b)`` at a resolution.

        Returns None when the restricted network does not connect the
        two points (the caller should widen the region — the paper's
        "expanded by double each vertex's MBR" rule).  A reusable
        ``network`` (from :meth:`extract_network`) skips re-extraction
        when several pairs share one region.
        """
        if network is None:
            network = self.extract_network(resolution, roi)
        if network.resolution <= 1.0:
            return self._upper_bound_cut(vertex_a, vertex_b, network)
        return self._upper_bound_pathnet(vertex_a, vertex_b, network)

    def _upper_bound_cut(
        self, vertex_a: int, vertex_b: int, network: NetworkView
    ) -> UpperBoundResult | None:
        step = network.step
        anc_a, off_a = self.ddm.ancestor(vertex_a, step)
        anc_b, off_b = self.ddm.ancestor(vertex_b, step)
        key_a = ("n", anc_a)
        key_b = ("n", anc_b)
        graph = network.graph
        if key_a not in graph or key_b not in graph:
            return None
        if anc_a == anc_b:
            return UpperBoundResult(
                value=off_a + off_b,
                path_keys=[key_a],
                resolution=network.resolution,
            )
        sid = graph.node_id(key_a)
        tid = graph.node_id(key_b)
        dist, parent = graph_dijkstra_with_parents(graph, sid, targets={tid})
        if tid not in dist:
            return None
        path = [tid]
        while path[-1] != sid:
            path.append(parent[path[-1]])
        path.reverse()
        return UpperBoundResult(
            value=off_a + dist[tid] + off_b,
            path_keys=[graph.key_of(n) for n in path],
            resolution=network.resolution,
        )

    def _upper_bound_pathnet(
        self, vertex_a: int, vertex_b: int, network: NetworkView
    ) -> UpperBoundResult | None:
        graph = network.graph
        key_a = vertex_key(vertex_a)
        key_b = vertex_key(vertex_b)
        if key_a not in graph or key_b not in graph:
            return None
        sid = graph.node_id(key_a)
        tid = graph.node_id(key_b)
        dist, parent = graph_dijkstra_with_parents(graph, sid, targets={tid})
        if tid not in dist:
            return None
        path = [tid]
        while path[-1] != sid:
            path.append(parent[path[-1]])
        path.reverse()
        return UpperBoundResult(
            value=dist[tid],
            path_keys=[graph.key_of(n) for n in path],
            resolution=network.resolution,
        )

    def upper_bounds_from(
        self, source_vertex: int, target_vertices, network: NetworkView
    ) -> dict[int, UpperBoundResult | None]:
        """Single-source upper bounds toward many candidates.

        All k-NN candidates share the query as source, so one Dijkstra
        over a shared network serves them all — the main CPU saving of
        fetching an integrated region once.
        """
        graph = network.graph
        results: dict[int, UpperBoundResult | None] = {}
        if network.resolution <= 1.0:
            step = network.step
            anc_s, off_s = self.ddm.ancestor(source_vertex, step)
            key_s = ("n", anc_s)
            anc_info = {}
            for v in target_vertices:
                anc_v, off_v = self.ddm.ancestor(v, step)
                anc_info[v] = (("n", anc_v), off_v)
            key_of = lambda v: anc_info[v][0]  # noqa: E731
            extra_of = lambda v: off_s + anc_info[v][1]  # noqa: E731
        else:
            key_s = vertex_key(source_vertex)
            key_of = vertex_key
            extra_of = lambda v: 0.0  # noqa: E731
        if key_s not in graph:
            return {v: None for v in target_vertices}
        sid = graph.node_id(key_s)
        target_ids = {
            graph.node_id(key_of(v))
            for v in target_vertices
            if key_of(v) in graph
        }
        dist, parent = graph_dijkstra_with_parents(
            graph, sid, targets=set(target_ids)
        )
        for v in target_vertices:
            key_v = key_of(v)
            if key_v not in graph:
                results[v] = None
                continue
            tid = graph.node_id(key_v)
            if tid == sid:
                results[v] = UpperBoundResult(
                    value=extra_of(v),
                    path_keys=[key_v],
                    resolution=network.resolution,
                )
                continue
            if tid not in dist:
                results[v] = None
                continue
            path = [tid]
            while path[-1] != sid:
                path.append(parent[path[-1]])
            path.reverse()
            results[v] = UpperBoundResult(
                value=extra_of(v) + dist[tid],
                path_keys=[graph.key_of(n) for n in path],
                resolution=network.resolution,
            )
        return results

    def upper_bounds_multi(
        self, anchors, target_vertices, network: NetworkView
    ) -> dict[int, tuple[float, list]]:
        """Best combined upper bound per target over all ``(vertex,
        offset)`` source anchors: ``min over anchors a of
        (offset_a + ub(a, target))``, strict minimum so the
        first-listed anchor wins ties.

        Returns ``{target_vertex: (value, path_keys)}``, omitting
        unreachable targets — the contract of
        ``DistanceRanker._combined_ubs``.

        At the pathnet level with the CSR kernels this settles every
        anchor and every candidate in ONE multi-source search instead
        of one Dijkstra per anchor; the multi-source priority is
        recomposed as ``offset + raw`` per relaxation, which is the
        same float expression the per-anchor path evaluates, so the
        values (and tie-broken paths) are unchanged.  Cut levels keep
        the per-anchor composition ``offset_a + (off_s + off_t + d)``
        whose float rounding a folded search could not reproduce, so
        they run one (CSR) multi-target search per anchor.
        """
        if kernel_mode() != "reference" and network.resolution > 1.0:
            return self._upper_bounds_multi_pathnet(
                anchors, target_vertices, network
            )
        best: dict[int, tuple[float, list]] = {}
        for anchor_vertex, offset in anchors:
            results = self.upper_bounds_from(
                anchor_vertex, target_vertices, network
            )
            for vertex, result in results.items():
                if result is None:
                    continue
                value = offset + result.value
                current = best.get(vertex)
                if current is None or value < current[0]:
                    best[vertex] = (value, result.path_keys)
        return best

    def _upper_bounds_multi_pathnet(
        self, anchors, target_vertices, network: NetworkView
    ) -> dict[int, tuple[float, list]]:
        graph = network.graph
        sources = []
        for anchor_vertex, offset in anchors:
            key = vertex_key(anchor_vertex)
            if key in graph:
                sources.append((graph.node_id(key), float(offset)))
        if not sources:
            return {}
        target_ids = {
            graph.node_id(vertex_key(v))
            for v in target_vertices
            if vertex_key(v) in graph
        }
        if kernel_mode() == "frontier":
            from repro.geodesic.frontier import multi_source_frontier

            found = multi_source_frontier(
                network.csr(), sources, targets=set(target_ids)
            )
        else:
            found = multi_source_dijkstra_csr(
                network.csr(), sources, targets=set(target_ids)
            )
        best: dict[int, tuple[float, list]] = {}
        for v in target_vertices:
            key_v = vertex_key(v)
            if key_v not in graph:
                continue
            tid = graph.node_id(key_v)
            if tid not in found.value:
                continue
            path_keys = [graph.key_of(n) for n in found.path_to(tid)]
            best[v] = (found.value[tid], path_keys)
        return best

    # ------------------------------------------------------------------
    # refined search regions
    # ------------------------------------------------------------------

    def path_region(
        self, path_keys, expand: float = 0.0
    ) -> list[BoundingBox]:
        """MR3's refined search region for the *next* resolution: the
        MBRs of the descendants of the nodes on the current
        upper-bound path, each optionally expanded (the paper doubles
        vertex MBRs when the corridor proves too narrow)."""
        boxes: list[BoundingBox] = []
        for key in path_keys:
            if key[0] == "n":
                box = self.ddm.node_mbr(key[1])
            elif key[0] == "v":
                p = tuple(self.mesh.vertices[key[1]][:2])
                box = BoundingBox(p, p)
            elif key[0] == "s":
                u, w = self.mesh.edge_vertices[key[1]]
                box = BoundingBox.of_points(
                    self.mesh.vertices[[int(u), int(w)], :2]
                )
            else:
                raise MultiresError(f"unknown path key {key!r}")
            if expand > 0.0:
                box = box.expanded(expand)
            boxes.append(box)
        return boxes
