"""On-disk persistence for the DMTM collapse history.

The paper pre-creates the DMTM and stores it in the database ("DMTM
is pre-created and a clustering B+ tree index is used"); the QEM
collapse is by far the most expensive build step, so a library user
wants to build once and reload.  The format is a small framed binary
container (no pickle: loading data must never execute code).

Layout:
    magic  b"SKNNDDM1"
    u64    num_leaves
    u64    num_nodes
    u64    num_roots, then u64 per root
    per node:
        i64 node_id, i64 rep, i64 birth, i64 death (-1 = alive),
        i64 parent (-1 = none), i64 child_a (-1), i64 child_b,
        f64 error, f64 offset_to_parent_rep, 3*f64 position,
        u32 record_count, then (i64 nbr, f64 dist) per record
"""

from __future__ import annotations

import struct
from pathlib import Path

import numpy as np

from repro.errors import MultiresError
from repro.simplification.collapse import CollapseHistory, CollapseNode

_MAGIC = b"SKNNDDM1"
_HEAD = struct.Struct("<QQ")
_NODE = struct.Struct("<7q2d3dI")
_REC = struct.Struct("<qd")


def save_history(history: CollapseHistory, path) -> None:
    """Write a collapse history to ``path``."""
    parts = [_MAGIC, _HEAD.pack(history.num_leaves, len(history.nodes))]
    parts.append(struct.pack("<Q", len(history.roots)))
    for root in history.roots:
        parts.append(struct.pack("<Q", root))
    for node in history.nodes:
        a, b = node.children if node.children is not None else (-1, -1)
        parts.append(
            _NODE.pack(
                node.node_id,
                node.rep,
                node.birth_step,
                node.death_step if node.death_step is not None else -1,
                node.parent if node.parent is not None else -1,
                a,
                b,
                node.error,
                node.offset_to_parent_rep,
                *[float(c) for c in node.position],
                len(node.records),
            )
        )
        for nbr, dist in node.records:
            parts.append(_REC.pack(nbr, dist))
    Path(path).write_bytes(b"".join(parts))


def validate(data: bytes, source="<bytes>") -> None:
    """Structural integrity check of a serialized collapse history.

    Walks the full framed layout — magic, header, root table, every
    node and neighbour record — verifying each frame fits inside
    ``data`` and the counts are mutually consistent, and raises
    :class:`MultiresError` naming ``source`` and the offending frame.
    A file that passes cannot make :func:`load_history` run off the
    end of the buffer or mis-frame a node (a flipped byte inside a
    float payload is indistinguishable from data, which is why pages
    additionally carry CRCs in the storage layer).
    """

    def need(offset: int, size: int, what: str) -> None:
        if offset + size > len(data):
            raise MultiresError(
                f"{source}: truncated DDM history — {what} needs "
                f"{size} bytes at offset {offset}, file has {len(data)}"
            )

    if not data.startswith(_MAGIC):
        raise MultiresError(f"{source} is not a DDM history file (bad magic)")
    offset = len(_MAGIC)
    need(offset, _HEAD.size, "header")
    num_leaves, num_nodes = _HEAD.unpack_from(data, offset)
    offset += _HEAD.size
    if num_leaves > num_nodes:
        raise MultiresError(
            f"{source}: header claims {num_leaves} leaves but only "
            f"{num_nodes} nodes"
        )
    need(offset, 8, "root count")
    (num_roots,) = struct.unpack_from("<Q", data, offset)
    offset += 8
    if num_roots > num_nodes:
        raise MultiresError(
            f"{source}: {num_roots} roots exceed the {num_nodes} nodes"
        )
    need(offset, 8 * num_roots, "root table")
    roots = struct.unpack_from(f"<{num_roots}Q", data, offset)
    offset += 8 * num_roots
    for root in roots:
        if root >= num_nodes:
            raise MultiresError(
                f"{source}: root id {root} out of range [0, {num_nodes})"
            )
    for index in range(num_nodes):
        need(offset, _NODE.size, f"node {index}")
        record_count = _NODE.unpack_from(data, offset)[-1]
        offset += _NODE.size
        need(offset, _REC.size * record_count, f"node {index} records")
        offset += _REC.size * record_count
    if offset != len(data):
        raise MultiresError(
            f"{source}: {len(data) - offset} trailing bytes after the "
            f"last node"
        )


def load_history(path) -> CollapseHistory:
    """Read a collapse history written by :func:`save_history`.

    The byte stream is validated (:func:`validate`) before parsing,
    so a truncated or structurally corrupted file raises
    :class:`MultiresError` instead of a bare ``struct.error``.
    """
    data = Path(path).read_bytes()
    validate(data, source=str(path))
    offset = len(_MAGIC)
    num_leaves, num_nodes = _HEAD.unpack_from(data, offset)
    offset += _HEAD.size
    (num_roots,) = struct.unpack_from("<Q", data, offset)
    offset += 8
    roots = list(struct.unpack_from(f"<{num_roots}Q", data, offset))
    offset += 8 * num_roots
    nodes: list[CollapseNode] = []
    for _ in range(num_nodes):
        (
            node_id,
            rep,
            birth,
            death,
            parent,
            child_a,
            child_b,
            error,
            rep_offset,
            x,
            y,
            z,
            record_count,
        ) = _NODE.unpack_from(data, offset)
        offset += _NODE.size
        records = []
        for _r in range(record_count):
            nbr, dist = _REC.unpack_from(data, offset)
            offset += _REC.size
            records.append((nbr, dist))
        nodes.append(
            CollapseNode(
                node_id=node_id,
                rep=rep,
                position=np.array([x, y, z]),
                error=error,
                birth_step=birth,
                children=None if child_a < 0 else (child_a, child_b),
                parent=None if parent < 0 else parent,
                death_step=None if death < 0 else death,
                records=records,
                offset_to_parent_rep=rep_offset,
            )
        )
    if len(nodes) != num_nodes:
        raise MultiresError("truncated DDM history file")
    return CollapseHistory(nodes, num_leaves=num_leaves, roots=roots)
