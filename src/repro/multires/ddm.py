"""The Distance Direct Mesh (DDM).

A thin, query-oriented wrapper over the QEM collapse history: it adds
the per-node xy MBRs of descendant leaves (used for ROI filtering and
for MR3's *refined search regions*) and exposes the cut/extraction
operations the DMTM needs.

The Direct Mesh connectivity-encoding of the original paper — each
node lists the ids of nodes "with a similar LOD" so extraction never
walks from the root — corresponds here to
:attr:`CollapseNode.records`: a node's record list names exactly the
nodes alive at its birth that it may connect to in some cut, each
with the DDM distance value.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MultiresError
from repro.geometry.primitives import BoundingBox
from repro.simplification.collapse import CollapseHistory, build_collapse_history


class DistanceDirectMesh:
    """DDM built from (or wrapped around) a collapse history."""

    def __init__(self, mesh, history: CollapseHistory | None = None):
        self.mesh = mesh
        self.history = history if history is not None else build_collapse_history(mesh)
        if len(self.history.roots) != 1:
            raise MultiresError(
                "terrain mesh must be connected; collapse produced "
                f"{len(self.history.roots)} roots"
            )
        self._node_mbrs = self._compute_node_mbrs()
        nodes = self.history.nodes
        never = self.history.num_steps + 1
        self._birth = np.array([n.birth_step for n in nodes], dtype=np.int64)
        self._death = np.array(
            [n.death_step if n.death_step is not None else never for n in nodes],
            dtype=np.int64,
        )
        self._mbr_lo = np.array([b.lo for b in self._node_mbrs])
        self._mbr_hi = np.array([b.hi for b in self._node_mbrs])
        self._positions = np.array([n.position for n in nodes], dtype=float)
        # Lazily flattened record lists for vectorized cut-edge
        # selection (see cut_edge_arrays).
        self._rec_src: np.ndarray | None = None
        self._rec_dst: np.ndarray | None = None
        self._rec_d: np.ndarray | None = None

    # -- derived structure ------------------------------------------------

    def _compute_node_mbrs(self) -> list[BoundingBox]:
        """xy MBR of each node's descendant original vertices.

        Children precede parents in creation order, so one forward
        pass suffices.
        """
        nodes = self.history.nodes
        mbrs: list[BoundingBox | None] = [None] * len(nodes)
        for node in nodes:
            if node.is_leaf:
                p = tuple(self.mesh.vertices[node.node_id][:2])
                mbrs[node.node_id] = BoundingBox(p, p)
            else:
                a, b = node.children
                mbrs[node.node_id] = mbrs[a].union(mbrs[b])
        return mbrs

    def node_mbr(self, node_id: int) -> BoundingBox:
        """xy MBR of the node's descendant leaves."""
        return self._node_mbrs[node_id]

    @property
    def num_leaves(self) -> int:
        return self.history.num_leaves

    @property
    def num_nodes(self) -> int:
        return len(self.history.nodes)

    # -- cuts ----------------------------------------------------------

    def step_for_fraction(self, fraction: float) -> int:
        return self.history.step_for_fraction(fraction)

    def cut_nodes(self, step: int, roi: BoundingBox | None = None) -> list[int]:
        """Nodes of the cut at ``step`` whose descendant MBR meets the
        (2D) region of interest."""
        boxes = None if roi is None else [roi.xy() if roi.dim == 3 else roi]
        return [int(n) for n in self.cut_node_ids(step, boxes)]

    def cut_node_ids(self, step: int, roi_boxes=None) -> np.ndarray:
        """Vectorized cut selection: node ids alive at ``step`` whose
        descendant xy-MBR intersects any ROI box (all when None)."""
        alive = (self._birth <= step) & (self._death > step)
        if roi_boxes is not None:
            hit = np.zeros(len(alive), dtype=bool)
            lo = self._mbr_lo
            hi = self._mbr_hi
            for box in roi_boxes:
                hit |= (
                    (lo[:, 0] <= box.hi[0])
                    & (hi[:, 0] >= box.lo[0])
                    & (lo[:, 1] <= box.hi[1])
                    & (hi[:, 1] >= box.lo[1])
                )
            alive &= hit
        return np.nonzero(alive)[0]

    def cut_edges(self, cut: list[int]):
        """(u, w, dist) edges among the cut (see CollapseHistory)."""
        return self.history.edges_of_cut(cut)

    def _record_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._rec_src is None:
            src: list[int] = []
            dst: list[int] = []
            dists: list[float] = []
            for node in self.history.nodes:
                for nbr, d in node.records:
                    src.append(node.node_id)
                    dst.append(nbr)
                    dists.append(d)
            self._rec_src = np.asarray(src, dtype=np.int64)
            self._rec_dst = np.asarray(dst, dtype=np.int64)
            self._rec_d = np.asarray(dists, dtype=float)
        return self._rec_src, self._rec_dst, self._rec_d

    def cut_edge_arrays(
        self, cut_ids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized twin of :meth:`cut_edges`: ``(u, w, d)`` arrays
        of the recorded edges alive in the cut, each edge once with
        ``u < w``.

        Applies the same first-occurrence rule as
        ``CollapseHistory.edges_of_cut``: when a pair is recorded from
        both endpoints, the distance of the record met first in
        ascending (node, record-slot) order wins — the flattened
        record arrays preserve exactly that order, and ``np.unique``'s
        ``return_index`` picks the smallest index per key.
        """
        src, dst, d = self._record_arrays()
        alive = np.zeros(self.num_nodes, dtype=bool)
        alive[cut_ids] = True
        keep = alive[src] & alive[dst]
        s, t, dd = src[keep], dst[keep], d[keep]
        u = np.minimum(s, t)
        w = np.maximum(s, t)
        packed = u * np.int64(self.num_nodes) + w
        _uniq, first = np.unique(packed, return_index=True)
        u, w, dd = u[first], w[first], dd[first]
        loops = u != w  # add_edge drops self-loops; mirror that here
        return u[loops], w[loops], dd[loops]

    def node_positions(self) -> np.ndarray:
        """(num_nodes, 3) array of representative positions (shared,
        do not mutate)."""
        return self._positions

    def ancestor(self, leaf_id: int, step: int) -> tuple[int, float]:
        """(cut ancestor, representative path offset) for a vertex."""
        return self.history.ancestor_at_step(leaf_id, step)

    def node_position(self, node_id: int) -> np.ndarray:
        return self.history.nodes[node_id].position

    def approximate_vertices(self, fraction: float) -> np.ndarray:
        """Positions of the cut at ``fraction`` — the Fig. 1 style
        reduced-resolution terrain point set."""
        step = self.step_for_fraction(fraction)
        cut = self.history.cut_at_step(step)
        return np.array([self.history.nodes[n].position for n in cut])
