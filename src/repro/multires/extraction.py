"""Approximate-mesh extraction from a DMTM cut.

DM/DDM cuts are *networks* (that is all distance estimation needs),
but the original Direct Mesh also serves visualization: Figure 1 of
the paper shows the same terrain at two triangle counts.  This module
turns a cut's point set back into a triangulated height field by
Delaunay-triangulating the xy-projections — valid for terrain height
fields, where any xy-triangulation of the points is a legal surface
approximation.

Requires scipy (an optional dependency used only here).
"""

from __future__ import annotations

import numpy as np

from repro.errors import MultiresError
from repro.terrain.mesh import TriangleMesh


def extract_mesh(dmtm, fraction: float) -> TriangleMesh:
    """A triangulated approximation of the terrain at ``fraction`` of
    its original vertex count (Fig. 1 style LOD extraction).

    Returns a fully valid :class:`TriangleMesh`; raises
    :class:`MultiresError` when the cut is too small to triangulate
    or scipy is unavailable.
    """
    try:
        from scipy.spatial import Delaunay
    except ImportError as exc:  # pragma: no cover - env without scipy
        raise MultiresError("mesh extraction requires scipy") from exc

    points = dmtm.ddm.approximate_vertices(fraction)
    if points.shape[0] < 3:
        raise MultiresError(
            f"cut at fraction {fraction} has only {points.shape[0]} "
            "vertices; cannot triangulate"
        )
    tri = Delaunay(points[:, :2])
    faces = tri.simplices.astype(np.int64)
    # Delaunay triangles are CCW in xy already, but guard anyway and
    # drop slivers that would fail mesh validation.
    v = points
    cross = np.cross(
        np.c_[v[faces[:, 1], :2] - v[faces[:, 0], :2], np.zeros(len(faces))],
        np.c_[v[faces[:, 2], :2] - v[faces[:, 0], :2], np.zeros(len(faces))],
    )[:, 2]
    flip = cross < 0
    faces[flip] = faces[flip][:, [0, 2, 1]]
    keep = np.abs(cross) > 1e-9
    faces = faces[keep]
    if faces.shape[0] == 0:
        raise MultiresError("cut points are collinear; cannot triangulate")
    return TriangleMesh(points, faces)
