"""Benchmark harness regenerating the paper's evaluation.

One experiment driver per figure of Section 5:

* :func:`repro.bench.experiments.fig7`  — CH vs EA response time;
* :func:`repro.bench.experiments.fig8`  — distance-range accuracy;
* :func:`repro.bench.experiments.fig9`  — integrated I/O regions;
* :func:`repro.bench.experiments.fig10` — effect of k;
* :func:`repro.bench.experiments.fig11` — effect of object density.

Run from the command line::

    python -m repro.bench fig8 [--quick]

or through pytest-benchmark via the files under ``benchmarks/``.
"""

from repro.bench.workload import (
    build_engine,
    dataset,
    query_vertices,
)
from repro.bench.experiments import fig7, fig8, fig9, fig10, fig11
from repro.bench.runner import format_table, run_experiment

__all__ = [
    "build_engine",
    "dataset",
    "query_vertices",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "format_table",
    "run_experiment",
]
