"""Experiment drivers — one per figure of the paper's Section 5.

Every driver returns ``{"tables": [str, ...], "rows": ...}`` where
``rows`` holds the raw series for programmatic checks (the pytest
benches assert the paper's qualitative shapes on them).  All drivers
take a ``quick`` flag: quick mode shrinks sweeps for CI; full mode is
what EXPERIMENTS.md records.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.bench.runner import format_table
from repro.bench.workload import build_engine, mesh_for, query_vertices, vertex_pairs
from repro.geodesic.exact import ExactGeodesic
from repro.geodesic.kanai_suzuki import kanai_suzuki_distance
from repro.multires.dmtm import RESOLUTION_PATHNET


# ----------------------------------------------------------------------
# Fig. 7 — Chen & Han (exact) vs Enhanced Approximation, response time
# ----------------------------------------------------------------------

def fig7(quick: bool = False, sizes=None, pairs_per_size: int = 2) -> dict:
    """Single-pair surface distance: exact window propagation (our
    Chen-Han stand-in, "CH") vs Kanai-Suzuki selective refinement
    ("EA"), as mesh size grows.  The paper's Fig. 7 shows CH blowing
    up quadratically while EA stays flat."""
    if sizes is None:
        sizes = (9, 13, 17, 25) if quick else (9, 13, 17, 25, 33, 41, 49)
    rows = []
    for size in sizes:
        mesh = mesh_for("BH", size)
        pairs = vertex_pairs(mesh, pairs_per_size, seed=3)
        ch_time = 0.0
        ea_time = 0.0
        for a, b in pairs:
            t0 = time.process_time()
            ExactGeodesic(mesh, a).distance_to(b)
            ch_time += time.process_time() - t0
            t0 = time.process_time()
            kanai_suzuki_distance(mesh, a, b, tolerance=0.03)
            ea_time += time.process_time() - t0
        rows.append(
            {
                "vertices": mesh.num_vertices,
                "ch_seconds": ch_time / len(pairs),
                "ea_seconds": ea_time / len(pairs),
                "ratio": (ch_time / ea_time) if ea_time > 0 else None,
            }
        )
    table = format_table(
        "Fig. 7 — exact (CH) vs approximate (EA) single-pair time",
        ["vertices", "ch_seconds", "ea_seconds", "ratio"],
        rows,
    )
    return {"tables": [table], "rows": rows}


# ----------------------------------------------------------------------
# Fig. 8 — distance range accuracy ε = lb/ub
# ----------------------------------------------------------------------

def fig8(quick: bool = False, size: int = 33, num_pairs: int | None = None) -> dict:
    """Accuracy ε = lb/ub against DMTM resolution, one curve per SDN
    resolution plus the Euclidean-lb baseline (paper Fig. 8)."""
    if num_pairs is None:
        num_pairs = 4 if quick else 10
    dmtm_levels = (
        (0.05, 0.5, 1.0, RESOLUTION_PATHNET)
        if quick
        else (0.05, 0.125, 0.25, 0.5, 0.75, 1.0, RESOLUTION_PATHNET)
    )
    sdn_levels = (0.25, 0.5, 1.0) if quick else (0.25, 0.375, 0.5, 0.75, 1.0)
    engine = build_engine("BH", size=size, with_storage=False)
    mesh = engine.mesh
    pairs = vertex_pairs(mesh, num_pairs, seed=5)

    euclid = {
        (a, b): float(np.linalg.norm(mesh.vertices[a] - mesh.vertices[b]))
        for a, b in pairs
    }
    rows = []
    for res_u in dmtm_levels:
        ubs = {}
        for a, b in pairs:
            result = engine.dmtm.upper_bound(a, b, res_u)
            ubs[(a, b)] = result.value if result is not None else None
        row = {"dmtm_pct": res_u * 100.0}
        # Euclidean-lb baseline.
        accs = [
            euclid[p] / ubs[p] for p in pairs if ubs[p]
        ]
        row["euclid_lb"] = float(np.mean(accs)) if accs else None
        for res_l in sdn_levels:
            accs = []
            for a, b in pairs:
                if not ubs[(a, b)]:
                    continue
                lb = engine.msdn.lower_bound(
                    mesh.vertices[a], mesh.vertices[b], res_l
                ).value
                accs.append(min(lb, ubs[(a, b)]) / ubs[(a, b)])
            row[f"sdn_{res_l * 100:g}%"] = float(np.mean(accs)) if accs else None
        rows.append(row)
    columns = ["dmtm_pct", "euclid_lb"] + [f"sdn_{r * 100:g}%" for r in sdn_levels]
    table = format_table(
        "Fig. 8 — distance range accuracy (mean lb/ub)", columns, rows
    )
    return {"tables": [table], "rows": rows}


# ----------------------------------------------------------------------
# Fig. 9 — effect of the integrated I/O region
# ----------------------------------------------------------------------

def fig9(
    quick: bool = False,
    size: int | None = None,
    density: float = 4.0,
    ks=None,
    queries_per_k: int | None = None,
) -> dict:
    """Pages accessed vs k with I/O-region integration on vs off
    (paper Fig. 9; o = 4, s = 2)."""
    if size is None:
        size = 33 if quick else 49
    if ks is None:
        ks = (3, 9, 15) if quick else (3, 6, 9, 12, 15, 18, 21, 24, 27, 30)
    if queries_per_k is None:
        queries_per_k = 1 if quick else 2
    engine = build_engine("BH", size=size, density=density)
    queries = query_vertices(engine.mesh, queries_per_k, seed=9)
    rows = []
    for k in ks:
        pages = {True: [], False: []}
        dmtm_on, msdn_on = [], []
        for option in (True, False):
            for qv in queries:
                result = engine.query(
                    qv, k, step_length=2, integrate_io=option
                )
                pages[option].append(result.metrics.pages_accessed)
                if option:
                    by_class = result.metrics.reads_by_class
                    dmtm_on.append(by_class.get("dmtm", 0))
                    msdn_on.append(by_class.get("msdn", 0))
        rows.append(
            {
                "k": k,
                "pages_on": float(np.mean(pages[True])),
                "pages_off": float(np.mean(pages[False])),
                "saving": 1.0 - float(np.mean(pages[True])) / max(
                    float(np.mean(pages[False])), 1.0
                ),
                "pages_dmtm": float(np.mean(dmtm_on)),
                "pages_msdn": float(np.mean(msdn_on)),
            }
        )
    table = format_table(
        "Fig. 9 — integrated I/O region (pages accessed, s=2, o=4)",
        ["k", "pages_on", "pages_off", "saving", "pages_dmtm", "pages_msdn"],
        rows,
    )
    return {"tables": [table], "rows": rows}


# ----------------------------------------------------------------------
# Batch execution — concurrent sk-NN with a shared bound cache
# ----------------------------------------------------------------------

def batch(
    quick: bool = False,
    batch: int | None = None,
    workers: int = 4,
    size: int | None = None,
    density: float = 4.0,
    ks=None,
    queries_per_k: int | None = None,
) -> dict:
    """Not a paper figure: throughput of the fig9 workload run through
    :class:`repro.core.batch.BatchQueryExecutor` (shared bound cache,
    thread pool) vs a plain sequential ``engine.query`` loop.

    The executor must be *observationally identical* to the loop —
    same result sets, same intervals, same per-query logical reads —
    so each row records those checks alongside throughput and latency
    percentiles."""
    from repro.core.batch import BatchQuery, BatchQueryExecutor, BoundCache

    if size is None:
        size = 33 if quick else 49
    if ks is None:
        ks = (3, 9, 15) if quick else (3, 6, 9, 12, 15, 18, 21, 24, 27, 30)
    if queries_per_k is None:
        queries_per_k = 1 if quick else 2
    if batch is None:
        batch = 12 if quick else 60
    engine = build_engine("BH", size=size, density=density)
    qvs = query_vertices(engine.mesh, queries_per_k, seed=9)
    base = [(qv, k) for k in ks for qv in qvs]
    specs = [
        BatchQuery(vertex=base[i % len(base)][0], k=base[i % len(base)][1],
                   step_length=2)
        for i in range(batch)
    ]

    # Sequential baseline: the pre-batch code path, no bound cache.
    t0 = time.perf_counter()
    seq = [
        engine.query(s.vertex, s.k, step_length=s.step_length) for s in specs
    ]
    seq_wall = time.perf_counter() - t0
    seq_qps = len(specs) / seq_wall if seq_wall > 0 else float("inf")

    rows = [
        {
            "mode": "sequential",
            "workers": 0,
            "queries": len(specs),
            "wall_seconds": seq_wall,
            "throughput_qps": seq_qps,
            "speedup_vs_seq": 1.0,
            "latency_p50": None,
            "latency_p95": None,
            "latency_p99": None,
            "identical_results": True,
            "identical_logical_reads": True,
            "cache_hit_rate": None,
        }
    ]
    for nworkers in (1, workers):
        report = BatchQueryExecutor(
            engine, workers=nworkers, bound_cache=BoundCache()
        ).run(specs)
        same_results = all(
            a.object_ids == b.object_ids and a.intervals == b.intervals
            for a, b in zip(seq, report.results)
        )
        # Logical reads are deterministic per query; physical reads
        # depend on shared buffer-pool state under interleaving, so
        # only the logical counts are pinned here.
        same_reads = all(
            a.metrics.logical_reads == b.metrics.logical_reads
            for a, b in zip(seq, report.results)
        )
        summary = report.summary()
        rows.append(
            {
                "mode": f"batch w={nworkers}",
                "workers": nworkers,
                "queries": len(specs),
                "wall_seconds": report.wall_seconds,
                "throughput_qps": summary["throughput_qps"],
                "speedup_vs_seq": summary["throughput_qps"] / seq_qps,
                "latency_p50": summary["latency_p50"],
                "latency_p95": summary["latency_p95"],
                "latency_p99": summary["latency_p99"],
                "identical_results": same_results,
                "identical_logical_reads": same_reads,
                "cache_hit_rate": summary["bound_cache"]["hit_rate"],
            }
        )
    table = format_table(
        f"Batch execution — fig9 workload, {len(specs)} queries (BH, s=2)",
        [
            "mode", "queries", "wall_seconds", "throughput_qps",
            "speedup_vs_seq", "latency_p50", "latency_p95", "latency_p99",
            "identical_results", "identical_logical_reads", "cache_hit_rate",
        ],
        rows,
    )
    return {"tables": [table], "rows": rows}


# ----------------------------------------------------------------------
# Related-work comparison (§2.1): network k-NN vs surface k-NN
# ----------------------------------------------------------------------

def related(quick: bool = False, size: int | None = None, k: int = 5) -> dict:
    """Not a paper figure, but its §2.1 argument made measurable:
    network k-NN (INE / IER over the mesh edge network) vs MR3 vs the
    exact surface answer — CPU cost and answer agreement."""
    from repro.core.baseline import exact_knn
    from repro.core.network_baselines import ier_knn, ine_knn

    if size is None:
        size = 17 if quick else 33
    engine = build_engine("BH", size=size, density=6.0, with_storage=False)
    queries = query_vertices(engine.mesh, 2 if quick else 5, seed=21)
    # Exact distances once per query, for both agreement metrics.
    truth_sets: dict[int, set] = {}
    truth_dists: dict[int, dict] = {}
    for qv in queries:
        pairs = exact_knn(engine.mesh, engine.objects, qv, len(engine.objects))
        truth_dists[qv] = dict(pairs)
        truth_sets[qv] = {obj for obj, _d in pairs[:k]}

    def tie_tolerant_match(qv, got: set) -> bool:
        """Exact-set match, or the extras are all within the 3 %
        surface-distance tolerance of the true k-th distance."""
        want = truth_sets[qv]
        if got == want:
            return True
        kth = sorted(truth_dists[qv].values())[k - 1]
        return all(truth_dists[qv][obj] <= kth * 1.03 for obj in got - want)

    rows = []
    for name, runner in (
        ("INE (network)", lambda qv: ine_knn(engine.mesh, engine.objects, qv, k)),
        ("IER (network)", lambda qv: ier_knn(engine.mesh, engine.objects, qv, k)),
        ("MR3 s=1", lambda qv: [
            (obj, None) for obj in engine.query(qv, k, step_length=1).object_ids
        ]),
        ("exact surface", lambda qv: exact_knn(engine.mesh, engine.objects, qv, k)),
    ):
        cpu = 0.0
        exact_agree = 0
        tied_agree = 0
        for qv in queries:
            t0 = time.process_time()
            result = runner(qv)
            cpu += time.process_time() - t0
            got = {obj for obj, _d in result}
            exact_agree += got == truth_sets[qv]
            tied_agree += tie_tolerant_match(qv, got)
        rows.append(
            {
                "method": name,
                "cpu_seconds": cpu / len(queries),
                "agreement": exact_agree / len(queries),
                "agreement_3pct": tied_agree / len(queries),
            }
        )
    table = format_table(
        f"Related work — network vs surface k-NN (k={k}, BH)",
        ["method", "cpu_seconds", "agreement", "agreement_3pct"],
        rows,
    )
    return {"tables": [table], "rows": rows}


# ----------------------------------------------------------------------
# Figs 10 & 11 — effect of k and of object density
# ----------------------------------------------------------------------

_SERIES = (("s=1", "mr3", 1), ("s=2", "mr3", 2), ("s=3", "mr3", 3), ("EA", "ea", 1))


_DIJKSTRA_COUNTERS = (
    "geodesic.dijkstra.calls",
    "geodesic.dijkstra.settled",
    "geodesic.dijkstra.relaxations",
)


# Phases reported as per-query mean self-seconds columns in the
# fig10/fig11 rows ("query" is the root; its self time is plumbing).
_PROFILE_PHASES = (
    "spatial-filter",
    "interval-ranking",
    "bound-composition",
    "graph-kernel",
    "frontier-relaxation",
    "landmark-lazy-build",
    "refinement",
    "page-io",
)


def _phase_column(phase: str) -> str:
    return "phase_" + phase.replace("-", "_")


def _run_series(engine, queries, k) -> dict:
    """Mean metrics of each algorithm configuration over the queries.

    Alongside the timing/page metrics, each label carries the mean
    per-query Dijkstra kernel work (calls / settled nodes /
    relaxations), measured as registry counter deltas around each
    query, plus the mean self-seconds of every profiler phase
    (``phase_*`` columns) — the ``--metrics-out`` view of how much
    search the kernels actually did and where the wall time went.

    Queries run under a profiling :class:`~repro.obs.ObsContext`: the
    ambient one when the caller already activated a profiling context
    (``--profile-out`` does), otherwise a local context so bench
    counters never leak into the process default registry."""
    from repro.obs.context import ObsContext, current

    ambient = current()
    ctx = (
        ambient
        if ambient.profiler.enabled
        else ObsContext("bench", profiling=True)
    )
    counters = [ctx.registry.counter(name) for name in _DIJKSTRA_COUNTERS]
    out = {}
    for label, method, step in _SERIES:
        total, cpu, pages, logical = [], [], [], []
        pages_dmtm, pages_msdn = [], []
        kernel_work: dict[str, list] = {name: [] for name in _DIJKSTRA_COUNTERS}
        phase_work: dict[str, list] = {name: [] for name in _PROFILE_PHASES}
        for qv in queries:
            before = [c.value for c in counters]
            result = engine.query(
                qv, k, method=method, step_length=step, obs=ctx
            )
            for name, counter, start in zip(
                _DIJKSTRA_COUNTERS, counters, before
            ):
                kernel_work[name].append(counter.value - start)
            profile = result.profile()
            by_phase = (
                profile.self_seconds_by_phase() if profile is not None else {}
            )
            for name in _PROFILE_PHASES:
                phase_work[name].append(by_phase.get(name, 0.0))
            total.append(result.metrics.total_seconds)
            cpu.append(result.metrics.cpu_seconds)
            pages.append(result.metrics.pages_accessed)
            logical.append(result.metrics.logical_reads)
            by_class = result.metrics.reads_by_class
            pages_dmtm.append(by_class.get("dmtm", 0))
            pages_msdn.append(by_class.get("msdn", 0))
        out[label] = {
            "total": float(np.mean(total)),
            "cpu": float(np.mean(cpu)),
            "pages": float(np.mean(pages)),
            "logical": float(np.mean(logical)),
            "pages_dmtm": float(np.mean(pages_dmtm)),
            "pages_msdn": float(np.mean(pages_msdn)),
            "dijkstra_calls": float(np.mean(kernel_work[_DIJKSTRA_COUNTERS[0]])),
            "dijkstra_settled": float(np.mean(kernel_work[_DIJKSTRA_COUNTERS[1]])),
            "dijkstra_relaxations": float(
                np.mean(kernel_work[_DIJKSTRA_COUNTERS[2]])
            ),
            **{
                _phase_column(name): float(np.mean(phase_work[name]))
                for name in _PROFILE_PHASES
            },
        }
    return out


def _metric_tables(title_prefix: str, xlabel: str, per_x: dict) -> list[str]:
    tables = []
    labels = [label for label, _m, _s in _SERIES]
    for metric, name in (
        ("total", "total time (s)"),
        ("cpu", "CPU time (s)"),
        ("pages", "pages accessed"),
    ):
        rows = [
            {xlabel: x, **{label: series[label][metric] for label in labels}}
            for x, series in per_x.items()
        ]
        tables.append(
            format_table(f"{title_prefix} — {name}", [xlabel] + labels, rows)
        )
    # Where the wall time goes for the paper's canonical s=2 config;
    # the other series carry the same phase_* columns in the raw rows.
    phase_cols = [_phase_column(p) for p in _PROFILE_PHASES]
    rows = [
        {xlabel: x, **{c: series["s=2"][c] for c in phase_cols}}
        for x, series in per_x.items()
        if "s=2" in series
    ]
    if rows:
        tables.append(
            format_table(
                f"{title_prefix} — phase self-seconds (s=2)",
                [xlabel] + phase_cols,
                rows,
            )
        )
    return tables


def fig10(
    quick: bool = False,
    size: int | None = None,
    density: float = 4.0,
    ks=None,
    queries_per_k: int | None = None,
    datasets=("BH", "EP"),
) -> dict:
    """Effect of k (o = 4): total time, CPU time and pages accessed
    for MR3 at s = 1, 2, 3 vs the EA benchmark, on both datasets
    (paper Fig. 10 a-f)."""
    if size is None:
        size = 33 if quick else 49
    if ks is None:
        ks = (3, 9, 15) if quick else (3, 6, 9, 12, 15, 18, 21, 24, 27, 30)
    if queries_per_k is None:
        queries_per_k = 1 if quick else 2
    tables = []
    rows: dict[str, dict] = {}
    for name in datasets:
        engine = build_engine(name, size=size, density=density)
        queries = query_vertices(engine.mesh, queries_per_k, seed=9)
        per_k = {k: _run_series(engine, queries, k) for k in ks}
        rows[name] = per_k
        tables.extend(
            _metric_tables(f"Fig. 10 ({name}) — effect of k", "k", per_k)
        )
    return {"tables": tables, "rows": rows}


def fig11(
    quick: bool = False,
    size: int | None = None,
    k: int = 10,
    densities=None,
    queries_per_o: int | None = None,
    datasets=("BH", "EP"),
) -> dict:
    """Effect of object density (k = 10), same series and metrics as
    Fig. 10 (paper Fig. 11 a-f)."""
    if size is None:
        size = 33 if quick else 49
    if densities is None:
        densities = (2, 5, 8) if quick else (1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
    if queries_per_o is None:
        queries_per_o = 1 if quick else 2
    tables = []
    rows: dict[str, dict] = {}
    for name in datasets:
        engine = build_engine(name, size=size, density=max(densities))
        queries = query_vertices(engine.mesh, queries_per_o, seed=9)
        per_o = {}
        for density in densities:
            engine.set_objects(density=density, seed=1)
            if k > len(engine.objects):
                continue
            per_o[density] = _run_series(engine, queries, k)
        rows[name] = per_o
        tables.extend(
            _metric_tables(
                f"Fig. 11 ({name}) — effect of object density", "o", per_o
            )
        )
    return {"tables": tables, "rows": rows}


# ----------------------------------------------------------------------
# Resilience: fault-injection sweep and budgeted (anytime) queries
# ----------------------------------------------------------------------

def faults(
    quick: bool = False,
    size: int | None = None,
    density: float = 4.0,
    k: int = 5,
    queries: int | None = None,
    workers: int = 8,
    rates=None,
    budgets=None,
    seed: int = 11,
) -> dict:
    """Not a paper figure: the resilience contract made measurable.

    Table 1 sweeps the injected fault rate (split evenly between
    transient read errors and silent corruption) over a concurrent
    batch and reports what survived: failed/skipped queries, the
    retry/corruption counters, whether they reconcile with the
    injector's own log, and whether every answer still matches the
    fault-free engine (retries must be invisible in results).

    Table 2 sweeps per-query page budgets on the clean engine and
    reports the degraded rate and the error-bound sizes — the
    anytime-query cost/accuracy trade-off.
    """
    from repro.core import SurfaceKNNEngine
    from repro.core.batch import BatchQueryExecutor
    from repro.core.budget import QueryBudget
    from repro.storage.faults import FaultInjector, RetryPolicy

    if size is None:
        size = 17 if quick else 33
    if queries is None:
        queries = 24 if quick else 100
    if rates is None:
        rates = (0.0, 0.02, 0.05) if quick else (0.0, 0.01, 0.02, 0.05, 0.10)
    if budgets is None:
        budgets = (None, 200, 50, 10) if quick else (None, 500, 200, 50, 10)

    mesh = mesh_for("BH", size)
    reference = SurfaceKNNEngine(mesh, density=density, seed=1)
    qvs = query_vertices(mesh, min(queries, 32), seed=seed)
    specs = [(qvs[i % len(qvs)], k) for i in range(queries)]
    baseline = [reference.query(v, kk) for v, kk in specs]

    fault_rows = []
    for rate in rates:
        injector = (
            FaultInjector(
                seed=seed, transient_rate=rate / 2, corrupt_rate=rate / 2
            )
            if rate > 0
            else None
        )
        engine = SurfaceKNNEngine(
            mesh, density=density, seed=1,
            fault_injector=injector,
            retry_policy=RetryPolicy(max_attempts=6),
        )
        report = BatchQueryExecutor(engine, workers=workers).run(specs)
        summary = report.summary()
        stats = engine.pages.fault_stats
        injected = injector.injected_total if injector is not None else 0
        match = sum(
            1
            for got, want in zip(report.results, baseline)
            if got is not None and got.object_ids == want.object_ids
        )
        fault_rows.append(
            {
                "fault_rate": rate,
                "queries": len(specs),
                "failed": summary["failed"],
                "skipped": summary["skipped"],
                "injected": injected,
                "retries": stats.retries_total,
                "transients": stats.transient_faults_total,
                "corruptions": stats.corruptions_total,
                "reads_failed": stats.reads_failed_total,
                # Every injected fault fails one attempt; each failed
                # attempt is retried unless its read gave up entirely.
                "counters_match": (
                    stats.retries_total
                    == injected - stats.reads_failed_total
                ),
                "match_rate": match / len(specs),
            }
        )

    budget_rows = []
    for max_pages in budgets:
        budget = QueryBudget(max_pages=max_pages) if max_pages else None
        results = [
            reference.query(v, kk, budget=budget) for v, kk in specs
        ]
        degraded = [r for r in results if r.degraded]
        exact = sum(
            1
            for got, want in zip(results, baseline)
            if got.object_ids == want.object_ids
        )
        budget_rows.append(
            {
                "max_pages": max_pages if max_pages else "unlimited",
                "queries": len(specs),
                "degraded_rate": len(degraded) / len(specs),
                "exact_match_rate": exact / len(specs),
                "mean_max_error": (
                    sum(r.max_error for r in degraded) / len(degraded)
                    if degraded
                    else 0.0
                ),
                "mean_logical_reads": (
                    sum(r.metrics.logical_reads for r in results)
                    / len(results)
                ),
            }
        )

    tables = [
        format_table(
            f"Fault injection — {queries} queries, {workers} workers "
            f"(BH {size}x{size}, k={k})",
            [
                "fault_rate", "queries", "failed", "skipped", "injected",
                "retries", "transients", "corruptions", "reads_failed",
                "counters_match", "match_rate",
            ],
            fault_rows,
        ),
        format_table(
            "Budgeted (anytime) queries — page budget vs degradation",
            [
                "max_pages", "queries", "degraded_rate", "exact_match_rate",
                "mean_max_error", "mean_logical_reads",
            ],
            budget_rows,
        ),
    ]
    return {
        "tables": tables,
        "rows": {"faults": fault_rows, "budgets": budget_rows},
    }


def chaos(
    quick: bool = False,
    size: int | None = None,
    density: float = 4.0,
    k: int = 5,
    queries: int | None = None,
    workers: int = 4,
    fractions=None,
    seed: int = 13,
) -> dict:
    """Degraded-mode chaos sweep: persistent (kill-list) page faults.

    For each dead-page fraction a fresh engine has that share of its
    DMTM/MSDN pages put on the injector kill-list — every read of
    those pages fails, retries never help — and a concurrent batch
    runs against it.  The degraded-mode contract under measurement:

    * **no crashes** — every query completes or is explicitly skipped
      by admission control, never raises;
    * **availability** — the fraction of queries that returned an
      answer (exact or degraded);
    * **honest degradation** — every non-exact answer carries
      ``degraded=True`` with ``degraded_reason="storage"`` and a
      finite, sound ``max_error``;
    * **bounded retry cost** — the quarantine's fast-fail counter
      shows dead pages being refused without disk retries.
    """
    from repro.core import SurfaceKNNEngine
    from repro.core.batch import BatchQueryExecutor
    from repro.storage.faults import kill_random_pages

    if size is None:
        size = 17 if quick else 33
    if queries is None:
        queries = 16 if quick else 64
    if fractions is None:
        fractions = (0.0, 0.05, 0.10) if quick else (0.0, 0.02, 0.05, 0.10)

    mesh = mesh_for("BH", size)
    reference = SurfaceKNNEngine(mesh, density=density, seed=1)
    qvs = query_vertices(mesh, min(queries, 32), seed=seed)
    specs = [(qvs[i % len(qvs)], k) for i in range(queries)]
    baseline = [reference.query(v, kk) for v, kk in specs]

    rows = []
    for fraction in fractions:
        engine = SurfaceKNNEngine(mesh, density=density, seed=1)
        dead = kill_random_pages(engine.pages, fraction, seed=seed)
        report = BatchQueryExecutor(engine, workers=workers).run(specs)
        summary = report.summary()
        ok = report.ok_results
        degraded = [r for r in ok if r.degraded]
        bad_reason = sum(
            1 for r in degraded if r.degraded_reason != "storage"
        )
        finite_errors = [
            r.max_error for r in degraded if math.isfinite(r.max_error)
        ]
        exact = sum(
            1
            for got, want in zip(report.results, baseline)
            if got is not None
            and not got.degraded
            and got.object_ids == want.object_ids
        )
        q_stats = engine.pages.quarantine.stats()
        rows.append(
            {
                "fraction": fraction,
                "dead_pages": len(dead),
                "queries": len(specs),
                "crashed": summary["failed"],
                "skipped": summary["skipped"],
                "availability": len(ok) / len(specs),
                "degraded_rate": len(degraded) / len(specs),
                "bad_reason": bad_reason,
                "exact_match_rate": exact / len(specs),
                "mean_max_error": (
                    sum(finite_errors) / len(finite_errors)
                    if finite_errors
                    else 0.0
                ),
                "quarantined": q_stats["quarantined"],
                "fast_fails": q_stats["fast_fails_total"],
                "probes": q_stats["probes_total"],
                "health": summary["engine_health"].get("state", "n/a"),
                # The contract in one flag: nothing crashed and every
                # answered query is exact or honestly storage-degraded.
                "answers_ok": summary["failed"] == 0 and bad_reason == 0,
            }
        )

    tables = [
        format_table(
            f"Chaos — persistent dead pages, {queries} queries, "
            f"{workers} workers (BH {size}x{size}, k={k})",
            [
                "fraction", "dead_pages", "queries", "crashed", "skipped",
                "availability", "degraded_rate", "exact_match_rate",
                "mean_max_error", "quarantined", "fast_fails", "probes",
                "health", "answers_ok",
            ],
            rows,
        ),
    ]
    return {"tables": tables, "rows": rows}


# ----------------------------------------------------------------------
# Kernel trajectory — dict reference kernels vs flat CSR kernels
# ----------------------------------------------------------------------

def kernels(
    quick: bool = False,
    size: int | None = None,
    density: float = 6.0,
    num_anchors: int | None = None,
    num_targets: int | None = None,
    num_queries: int | None = None,
    repeats: int = 3,
    out: str | None = None,
) -> dict:
    """Not a paper figure: the CSR kernel family measured against the
    dict reference kernels it replaced.

    Table 1 (micro) times the three search shapes on the pathnet-level
    network: the multi-source kernel against one reference Dijkstra
    per (anchor, target) pair and against the per-anchor multi-target
    loop; a full single-source sweep; and single-target A* against
    single-target Dijkstra.  Every comparison first asserts the values
    are identical — a speedup over different answers would be
    meaningless.

    Table 2 (end-to-end) runs the same ``engine.query`` workload on
    two fresh engines, one per kernel mode, and pins results,
    intervals and logical page reads to be identical before reporting
    wall clock.

    Table 3 (frontier end-to-end) runs the fig10 k-sweep under
    reference kernels (no landmarks) and under the frontier bucket
    kernels with lazily built landmark bounds; the lazy build happens
    inside the timed query phase, so the reported speedup is fully
    amortized.  Neighbour sets and degraded flags are asserted
    identical.  When ``out`` is set, the full document is written
    there as ``repro.bench/v1`` JSON (the checked-in
    ``BENCH_GEODESIC.json``).
    """
    import json

    from repro.core.engine import SurfaceKNNEngine
    from repro.geodesic import use_kernel_mode
    from repro.geodesic.csr import (
        astar_csr,
        dijkstra_csr,
        multi_source_dijkstra_csr,
        use_reference_kernels,
    )
    from repro.geodesic.dijkstra import (
        dijkstra_reference,
    )
    from repro.geodesic.frontier import (
        astar_frontier,
        dijkstra_frontier,
        multi_source_frontier,
    )
    from repro.geodesic.pathnet import vertex_key

    if size is None:
        size = 25 if quick else 33
    if num_anchors is None:
        num_anchors = 4 if quick else 8
    if num_targets is None:
        num_targets = 8 if quick else 16
    if num_queries is None:
        num_queries = 4 if quick else 8

    engine = build_engine("BH", size=size, density=density, with_storage=False)
    network = engine.dmtm.extract_network(RESOLUTION_PATHNET, charge_io=False)
    graph = network.graph
    csr = network.csr()
    adjacency = graph.adjacency

    # Anchors/targets: deterministic mesh vertices present in the
    # pathnet, anchors carrying synthetic additive offsets like the
    # ranking loop's partial path costs.
    candidates = [
        v for v in query_vertices(engine.mesh, (num_anchors + num_targets) * 2, seed=13)
        if vertex_key(v) in graph
    ]
    anchor_vs = candidates[:num_anchors]
    target_vs = candidates[num_anchors : num_anchors + num_targets]
    anchor_ids = [graph.node_id(vertex_key(v)) for v in anchor_vs]
    target_ids = [graph.node_id(vertex_key(v)) for v in target_vs]
    sources = [(nid, 0.37 * (i + 1)) for i, nid in enumerate(anchor_ids)]

    def best_of(fn):
        best = float("inf")
        value = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            value = fn()
            best = min(best, time.perf_counter() - t0)
        return best, value

    def ref_per_pair():
        best: dict[int, float] = {}
        for aid, offset in sources:
            for tid in target_ids:
                d = dijkstra_reference(adjacency, aid, targets={tid}).get(tid)
                if d is None:
                    continue
                value = offset + d
                if tid not in best or value < best[tid]:
                    best[tid] = value
        return best

    def ref_per_anchor():
        best: dict[int, float] = {}
        for aid, offset in sources:
            dist = dijkstra_reference(adjacency, aid, targets=set(target_ids))
            for tid in target_ids:
                d = dist.get(tid)
                if d is None:
                    continue
                value = offset + d
                if tid not in best or value < best[tid]:
                    best[tid] = value
        return best

    def csr_multi_source():
        found = multi_source_dijkstra_csr(csr, sources, targets=set(target_ids))
        return {tid: found.value[tid] for tid in target_ids if tid in found.value}

    def frontier_multi_source():
        found = multi_source_frontier(csr, sources, targets=set(target_ids))
        return {tid: found.value[tid] for tid in target_ids if tid in found.value}

    pair_seconds, pair_values = best_of(ref_per_pair)
    anchor_seconds, anchor_values = best_of(ref_per_anchor)
    multi_seconds, multi_values = best_of(csr_multi_source)
    frontier_seconds, frontier_values = best_of(frontier_multi_source)
    if not (pair_values == anchor_values == multi_values == frontier_values):
        raise AssertionError(
            "kernel divergence: multi-source values differ from reference"
        )

    src = anchor_ids[0]
    sweep_ref_seconds, sweep_ref = best_of(lambda: dijkstra_reference(adjacency, src))
    sweep_csr_seconds, sweep_csr = best_of(lambda: dijkstra_csr(csr, src))
    sweep_fro_seconds, sweep_fro = best_of(lambda: dijkstra_frontier(csr, src))
    if not (sweep_ref == sweep_csr == sweep_fro):
        raise AssertionError("kernel divergence: full single-source sweep differs")

    tgt = target_ids[-1]
    astar_ref_seconds, astar_ref = best_of(
        lambda: dijkstra_reference(adjacency, src, targets={tgt}).get(tgt)
    )
    astar_csr_seconds, astar_value = best_of(lambda: astar_csr(csr, src, tgt))
    astar_fro_seconds, astar_fro_value = best_of(
        lambda: astar_frontier(csr, src, tgt)
    )
    if not (astar_ref == astar_value == astar_fro_value):
        raise AssertionError("kernel divergence: A* value differs from Dijkstra")

    searches = len(sources) * len(target_ids)
    kernel_rows = [
        {
            "comparison": "multi-source",
            "kernel": "reference per-pair",
            "searches": searches,
            "seconds": pair_seconds,
            "speedup": 1.0,
            "identical": True,
        },
        {
            "comparison": "multi-source",
            "kernel": "reference per-anchor",
            "searches": len(sources),
            "seconds": anchor_seconds,
            "speedup": pair_seconds / anchor_seconds if anchor_seconds > 0 else None,
            "identical": True,
        },
        {
            "comparison": "multi-source",
            "kernel": "csr multi-source",
            "searches": 1,
            "seconds": multi_seconds,
            "speedup": pair_seconds / multi_seconds if multi_seconds > 0 else None,
            "identical": True,
        },
        {
            "comparison": "multi-source",
            "kernel": "frontier multi-source",
            "searches": 1,
            "seconds": frontier_seconds,
            "speedup": (
                pair_seconds / frontier_seconds if frontier_seconds > 0 else None
            ),
            "identical": True,
        },
        {
            "comparison": "full sweep",
            "kernel": "reference dijkstra",
            "searches": 1,
            "seconds": sweep_ref_seconds,
            "speedup": 1.0,
            "identical": True,
        },
        {
            "comparison": "full sweep",
            "kernel": "csr dijkstra",
            "searches": 1,
            "seconds": sweep_csr_seconds,
            "speedup": (
                sweep_ref_seconds / sweep_csr_seconds
                if sweep_csr_seconds > 0
                else None
            ),
            "identical": True,
        },
        {
            "comparison": "full sweep",
            "kernel": "frontier dijkstra",
            "searches": 1,
            "seconds": sweep_fro_seconds,
            "speedup": (
                sweep_ref_seconds / sweep_fro_seconds
                if sweep_fro_seconds > 0
                else None
            ),
            "identical": True,
        },
        {
            "comparison": "single target",
            "kernel": "reference dijkstra",
            "searches": 1,
            "seconds": astar_ref_seconds,
            "speedup": 1.0,
            "identical": True,
        },
        {
            "comparison": "single target",
            "kernel": "csr astar",
            "searches": 1,
            "seconds": astar_csr_seconds,
            "speedup": (
                astar_ref_seconds / astar_csr_seconds
                if astar_csr_seconds > 0
                else None
            ),
            "identical": True,
        },
        {
            "comparison": "single target",
            "kernel": "frontier astar",
            "searches": 1,
            "seconds": astar_fro_seconds,
            "speedup": (
                astar_ref_seconds / astar_fro_seconds
                if astar_fro_seconds > 0
                else None
            ),
            "identical": True,
        },
    ]

    # End-to-end: identical query sequence under both modes, answers
    # pinned identical.  Vertex queries run single-anchor; embedded
    # point queries add the multi-anchor ranking path the multi-source
    # kernel exists for.  CPU time, best of two passes on fresh
    # engines (no warm bound caches leak across modes or passes).
    e2e_size = 17 if quick else 25
    e2e_mesh = mesh_for("BH", e2e_size)
    qvs = query_vertices(e2e_mesh, num_queries, seed=9)
    rng = np.random.default_rng(17)
    bounds = e2e_mesh.xy_bounds()
    lo, hi = np.asarray(bounds.lo), np.asarray(bounds.hi)
    points = [
        tuple(lo + (hi - lo) * rng.uniform(0.25, 0.75, size=2))
        for _ in range(max(2, num_queries // 2))
    ]

    def run_mode() -> tuple[list, float]:
        best = float("inf")
        answers: list = []
        for _ in range(2):
            eng = SurfaceKNNEngine(e2e_mesh, density=density, seed=3)
            t0 = time.process_time()
            out = []
            for qv in qvs:
                result = eng.query(qv, 4, step_length=2)
                out.append(
                    (
                        tuple(result.object_ids),
                        tuple(result.intervals),
                        result.metrics.logical_reads,
                    )
                )
            for x, y in points:
                result = eng.query_point(float(x), float(y), 4)
                out.append(
                    (
                        tuple(result.object_ids),
                        tuple(result.intervals),
                        result.metrics.logical_reads,
                    )
                )
            best = min(best, time.process_time() - t0)
            answers = out
        return answers, best

    csr_answers, csr_wall = run_mode()
    with use_reference_kernels():
        ref_answers, ref_wall = run_mode()
    same_results = [a[0] == b[0] for a, b in zip(csr_answers, ref_answers)]
    same_intervals = [a[1] == b[1] for a, b in zip(csr_answers, ref_answers)]
    same_reads = [a[2] == b[2] for a, b in zip(csr_answers, ref_answers)]
    if not (all(same_results) and all(same_intervals) and all(same_reads)):
        raise AssertionError(
            "kernel divergence: end-to-end answers differ between modes"
        )
    num_e2e = len(qvs) + len(points)
    e2e_rows = [
        {
            "mode": "reference",
            "queries": num_e2e,
            "cpu_seconds": ref_wall,
            "speedup_vs_reference": 1.0,
            "identical_results": True,
            "identical_intervals": True,
            "identical_logical_reads": True,
        },
        {
            "mode": "csr",
            "queries": num_e2e,
            "cpu_seconds": csr_wall,
            "speedup_vs_reference": ref_wall / csr_wall if csr_wall > 0 else None,
            "identical_results": True,
            "identical_intervals": True,
            "identical_logical_reads": True,
        },
    ]

    # Frontier end-to-end: the fig10 k-sweep (the paper's headline
    # workload) under reference kernels with no landmarks vs frontier
    # kernels with lazily built landmarks.  The lazy landmark rows are
    # built *inside* the timed query phase (ensure_progress on the
    # ranking path), so the frontier side's wall clock already charges
    # the full amortized table-build cost — the ratio is what a cold
    # process gains end to end.  Neighbour sets and degraded flags are
    # asserted identical; intervals may tighten under landmark
    # pruning, so they are not pinned here.
    f_size = 33 if quick else 49
    f_ks = (3, 9, 15) if quick else tuple(range(3, 31, 3))
    f_qpk = 1 if quick else 2
    f_count = 8
    f_density = 4.0
    f_mesh = mesh_for("BH", f_size)
    f_qvs = query_vertices(f_mesh, f_qpk, seed=9)
    f_workload = [(qv, k) for k in f_ks for qv in f_qvs]

    def run_fig10(mode: str, lm=None, lazy: bool = False):
        with use_kernel_mode(mode):
            eng = SurfaceKNNEngine(
                f_mesh, density=f_density, seed=3,
                landmarks=lm, lazy_landmarks=lazy,
            )
            t0 = time.process_time()
            answers = []
            for qv, k in f_workload:
                result = eng.query(qv, k, step_length=2)
                answers.append(
                    (tuple(sorted(result.object_ids)), bool(result.degraded))
                )
            wall = time.process_time() - t0
        return answers, wall

    fro_answers, fro_wall = run_fig10("frontier", lm=f_count, lazy=True)
    frf_answers, frf_wall = run_fig10("reference")
    if fro_answers != frf_answers:
        raise AssertionError(
            "kernel divergence: frontier+landmark neighbour sets or "
            "degraded flags differ from reference kernels"
        )
    frontier_e2e_rows = [
        {
            "mode": "reference",
            "queries": len(f_workload),
            "cpu_seconds": frf_wall,
            "speedup_vs_reference": 1.0,
            "identical_results": True,
            "identical_degraded": True,
        },
        {
            "mode": f"frontier+landmarks-{f_count}",
            "queries": len(f_workload),
            "cpu_seconds": fro_wall,
            "speedup_vs_reference": frf_wall / fro_wall if fro_wall > 0 else None,
            "identical_results": True,
            "identical_degraded": True,
        },
    ]

    tables = [
        format_table(
            f"Kernels (micro) — pathnet network, BH {size}x{size}, "
            f"{len(sources)} anchors x {len(target_ids)} targets",
            ["comparison", "kernel", "searches", "seconds", "speedup", "identical"],
            kernel_rows,
        ),
        format_table(
            f"Kernels (end-to-end) — engine.query, BH {e2e_size}x{e2e_size}, "
            f"{len(qvs)} vertex + {len(points)} embedded queries (k=4, s=2)",
            [
                "mode", "queries", "cpu_seconds", "speedup_vs_reference",
                "identical_results", "identical_intervals",
                "identical_logical_reads",
            ],
            e2e_rows,
        ),
        format_table(
            f"Frontier (fig10 k-sweep) — BH {f_size}x{f_size}, "
            f"k in {list(f_ks)}, {f_qpk}/k (o={f_density:g}, s=2, "
            f"L={f_count} lazy)",
            [
                "mode", "queries", "cpu_seconds", "speedup_vs_reference",
                "identical_results", "identical_degraded",
            ],
            frontier_e2e_rows,
        ),
    ]
    rows = {
        "kernels": kernel_rows,
        "end_to_end": e2e_rows,
        "frontier_end_to_end": frontier_e2e_rows,
    }
    if out:
        document = _load_bench_document(out)
        document["figure"] = "kernels"
        document["generated_by"] = "python -m repro.bench kernels"
        document["params"].update(
            {
                "dataset": "BH",
                "micro_size": size,
                "e2e_size": e2e_size,
                "density": density,
                "num_anchors": len(sources),
                "num_targets": len(target_ids),
                "num_vertex_queries": len(qvs),
                "num_point_queries": len(points),
                "repeats": repeats,
                "quick": quick,
                "frontier_sweep": {
                    "size": f_size,
                    "ks": list(f_ks),
                    "queries_per_k": f_qpk,
                    "density": f_density,
                    "landmarks": f_count,
                },
            }
        )
        document["rows"].update(rows)
        _write_bench_document(out, document)
    return {"tables": tables, "rows": rows}


# ----------------------------------------------------------------------
# Landmark (ALT) lower bounds — pruned vs baseline ranking
# ----------------------------------------------------------------------


def _load_bench_document(path: str) -> dict:
    """Existing ``repro.bench/v1`` document at ``path``, or a fresh
    skeleton — drivers merge their own series into ``rows`` so the
    kernels and landmarks sweeps can share one checked-in file."""
    import json

    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError):
        document = {}
    document.setdefault("schema", "repro.bench/v1")
    document.setdefault("figure", "kernels")
    document.setdefault("generated_by", "python -m repro.bench")
    document.setdefault("params", {})
    document.setdefault("rows", {})
    return document


def _write_bench_document(path: str, document: dict) -> None:
    import json

    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def landmarks(
    quick: bool = False,
    size: int | None = None,
    density: float = 4.0,
    ks=None,
    queries_per_k: int | None = None,
    count: int = 8,
    out: str | None = None,
) -> dict:
    """Not a paper figure: ALT-style landmark lower bounds
    (:mod:`repro.geodesic.landmarks`) measured on the fig10 k-sweep
    workload — the same queries run landmarks-off and landmarks-on.

    The neighbour sets and degraded flags are *asserted* identical
    (the landmark contract); intervals may only tighten and pruned
    runs may touch fewer pages, so those identities are reported as
    booleans rather than pinned.  CPU time is best of two passes on
    fresh engines; the one-off landmark table build is reported
    separately (``build_seconds``) because warm runs amortize it
    through the shared bound cache.  When ``out`` is set the series
    is merged into the ``repro.bench/v1`` document (the checked-in
    ``BENCH_GEODESIC.json``), preserving the kernels rows.
    """
    from repro.core.engine import SurfaceKNNEngine
    from repro.geodesic.landmarks import LandmarkIndex
    from repro.obs.context import ObsContext

    if size is None:
        size = 33 if quick else 49
    if ks is None:
        ks = (3, 9, 15) if quick else (3, 6, 9, 12, 15, 18, 21, 24, 27, 30)
    if queries_per_k is None:
        queries_per_k = 1 if quick else 2

    mesh = mesh_for("BH", size)
    qvs = query_vertices(mesh, queries_per_k, seed=9)
    workload = [(qv, k) for k in ks for qv in qvs]

    t0 = time.process_time()
    index = LandmarkIndex.build(mesh, count=count, seed=0)
    build_seconds = time.process_time() - t0

    def run_mode(lm) -> tuple[list, float, dict]:
        best = float("inf")
        answers: list = []
        counters: dict = {}
        for _ in range(2):
            ctx = ObsContext("bench-landmarks")
            eng = SurfaceKNNEngine(
                mesh, density=density, seed=3, landmarks=lm, obs=ctx
            )
            t0 = time.process_time()
            fingerprints = []
            for qv, k in workload:
                result = eng.query(qv, k, step_length=2)
                fingerprints.append(
                    (
                        tuple(result.object_ids),
                        result.degraded,
                        tuple(result.intervals),
                        result.metrics.logical_reads,
                    )
                )
            best = min(best, time.process_time() - t0)
            answers = fingerprints
            snapshot = ctx.registry.collect()
            counters = {
                name: snapshot.get(name, {}).get("value", 0)
                for name in ("landmark.hits", "landmark.prunes")
            }
        return answers, best, counters

    off_answers, off_wall, _off = run_mode(None)
    on_answers, on_wall, counters = run_mode(index)
    if any(
        sorted(a[0]) != sorted(b[0]) or a[1] != b[1]
        for a, b in zip(off_answers, on_answers)
    ):
        raise AssertionError(
            "landmark divergence: neighbour sets or degraded flags "
            "differ from the landmarks-off run"
        )
    # Ordering of tied neighbours may legitimately swap when pruning
    # shifts polish targets; report it rather than gate on it.
    identical_order = all(
        a[0] == b[0] for a, b in zip(off_answers, on_answers)
    )
    identical_intervals = all(
        a[2] == b[2] for a, b in zip(off_answers, on_answers)
    )
    identical_reads = all(
        a[3] == b[3] for a, b in zip(off_answers, on_answers)
    )
    rows = [
        {
            "mode": "landmarks-off",
            "queries": len(workload),
            "cpu_seconds": off_wall,
            "speedup_vs_off": 1.0,
            "amortized_speedup": 1.0,
            "identical_results": True,
            "identical_order": True,
            "identical_intervals": True,
            "identical_logical_reads": True,
            "landmark_hits": 0,
            "landmark_prunes": 0,
            "build_seconds": 0.0,
        },
        {
            "mode": f"landmarks-{count}",
            "queries": len(workload),
            "cpu_seconds": on_wall,
            "speedup_vs_off": off_wall / on_wall if on_wall > 0 else None,
            # End-to-end ratio with the one-off table build charged to
            # the landmark side: what a cold process actually pays.
            "amortized_speedup": (
                off_wall / (on_wall + build_seconds)
                if on_wall + build_seconds > 0
                else None
            ),
            "identical_results": True,
            "identical_order": identical_order,
            "identical_intervals": identical_intervals,
            "identical_logical_reads": identical_reads,
            "landmark_hits": counters.get("landmark.hits", 0),
            "landmark_prunes": counters.get("landmark.prunes", 0),
            "build_seconds": build_seconds,
        },
    ]
    table = format_table(
        f"Landmark bounds — fig10 k-sweep, BH {size}x{size} "
        f"(o={density:g}, s=2, L={count})",
        [
            "mode", "queries", "cpu_seconds", "speedup_vs_off",
            "amortized_speedup",
            "identical_results", "identical_order", "identical_intervals",
            "identical_logical_reads", "landmark_hits", "landmark_prunes",
            "build_seconds",
        ],
        rows,
    )
    if out:
        document = _load_bench_document(out)
        document["params"]["landmarks"] = {
            "dataset": "BH",
            "size": size,
            "density": density,
            "ks": list(ks),
            "queries_per_k": queries_per_k,
            "count": count,
            "quick": quick,
        }
        document["rows"]["landmarks"] = rows
        _write_bench_document(out, document)
    return {"tables": [table], "rows": {"landmarks": rows}}


# ----------------------------------------------------------------------
# Tiled terrain sharding — identity, parallel builds, scale
# ----------------------------------------------------------------------


def shard(
    quick: bool = False,
    identity_size: int | None = None,
    build_size: int | None = None,
    scale_size: int | None = None,
    out: str | None = None,
) -> dict:
    """Not a paper figure: the tiled-sharding extension
    (:mod:`repro.shard`) measured three ways.

    Table 1 (identity) answers a spread of queries — including probes
    on the tile-cut cross, the ones sub-window certification finds
    hardest — through sharded engines of several grids on a DEM the
    monolithic engine also builds.  Neighbour sets and
    degraded/budget flags are *asserted* identical per query (the
    sharding contract); wall clock is cold end-to-end (engine build +
    queries) because lazy window builds are the whole point of the
    sharded path.

    Table 2 (build parallelism) warms every tile of a fresh engine on
    the thread pool vs serially and reports the wall-clock ratio.
    Today the per-tile DMTM build is CPython-bound, so the pool
    roughly breaks even (the ratio is a *measurement*, gated softly
    in CI) — the win arrives when tile builds block on real storage
    I/O or release the GIL.

    Table 3 (scale) builds a DEM the monolithic engine is never asked
    to mesh — 257x257 with 1e4 objects in full mode — and answers
    tile-interior queries entirely through the sharded path,
    reporting setup cost, per-query latency and how few windows the
    router needed.  When ``out`` is set all three series merge into
    the ``repro.bench/v1`` document (the checked-in
    ``BENCH_GEODESIC.json``), preserving the kernels and landmarks
    rows.
    """
    from repro.core.engine import SurfaceKNNEngine
    from repro.core.objects import ObjectSet
    from repro.shard import ShardedEngine, uniform_grid_objects
    from repro.terrain.mesh import TriangleMesh
    from repro.terrain.synthetic import fractal_dem

    if identity_size is None:
        identity_size = 17 if quick else 33
    if build_size is None:
        build_size = 33 if quick else 65
    if scale_size is None:
        scale_size = 129 if quick else 257

    # ---- Table 1: answer identity vs the monolithic engine ----------
    dem = fractal_dem(identity_size, 90.0, 500.0, 0.65, seed=7)
    vids = [int(v) for v in uniform_grid_objects(dem, 40, seed=2)]
    mid = dem.rows // 2
    probes = [
        (2, 2), (2, dem.cols - 3), (dem.rows - 3, 2),
        (dem.rows - 3, dem.cols - 3), (mid, mid), (mid, 2), (2, mid),
    ]
    queries = [r * dem.cols + c for r, c in probes]
    k = 3

    t0 = time.perf_counter()
    mesh = TriangleMesh.from_dem(dem)
    mono = SurfaceKNNEngine(mesh, objects=ObjectSet(mesh, vids))
    base = [mono.query(qv, k) for qv in queries]
    mono_wall = time.perf_counter() - t0
    identity_rows = [
        {
            "engine": "monolithic",
            "queries": len(queries),
            "wall_seconds": mono_wall,
            "speedup_vs_monolithic": 1.0,
            "identical_results": True,
            "identical_flags": True,
            "windows_built": 1,
        }
    ]
    grids = ((1, 1), (2, 2)) if quick else ((1, 1), (2, 2), (3, 3))
    for tiles in grids:
        t0 = time.perf_counter()
        eng = ShardedEngine(dem, objects=vids, grid=tiles)
        answers = [eng.query(qv, k) for qv in queries]
        wall = time.perf_counter() - t0
        same_sets = all(
            sorted(a.object_ids) == sorted(b.object_ids)
            for a, b in zip(base, answers)
        )
        same_flags = all(
            (a.degraded, a.degraded_reason, a.budget_reason, a.converged)
            == (b.degraded, b.degraded_reason, b.budget_reason, b.converged)
            for a, b in zip(base, answers)
        )
        if not (same_sets and same_flags):
            raise AssertionError(
                f"shard divergence: grid {tiles} disagrees with the "
                "monolithic engine"
            )
        identity_rows.append(
            {
                "engine": f"sharded-{tiles[0]}x{tiles[1]}",
                "queries": len(queries),
                "wall_seconds": wall,
                "speedup_vs_monolithic": mono_wall / wall if wall > 0 else None,
                "identical_results": same_sets,
                "identical_flags": same_flags,
                "windows_built": len(eng.windows_built),
            }
        )

    # ---- Table 2: parallel vs serial tile warm-up --------------------
    dem2 = fractal_dem(build_size, 90.0, 900.0, 0.65, seed=5)
    vids2 = [int(v) for v in uniform_grid_objects(dem2, 60, seed=3)]

    def warm_wall(parallel: bool):
        eng = ShardedEngine(dem2, objects=vids2, grid=(2, 2), max_workers=4)
        t0 = time.perf_counter()
        eng.warm(parallel=parallel)
        return eng, time.perf_counter() - t0

    serial_eng, serial_wall = warm_wall(False)
    parallel_eng, parallel_wall = warm_wall(True)
    probe2 = (dem2.rows // 2) * dem2.cols + dem2.cols // 2
    same_warm = sorted(serial_eng.query(probe2, 3).object_ids) == sorted(
        parallel_eng.query(probe2, 3).object_ids
    )
    build_rows = [
        {
            "mode": "serial",
            "tiles": 4,
            "wall_seconds": serial_wall,
            "speedup": 1.0,
            "identical_results": True,
        },
        {
            "mode": "parallel-4",
            "tiles": 4,
            "wall_seconds": parallel_wall,
            "speedup": (
                serial_wall / parallel_wall if parallel_wall > 0 else None
            ),
            "identical_results": same_warm,
        },
    ]

    # ---- Table 3: sharded-only scale ---------------------------------
    tiles3 = (4, 4) if quick else (8, 8)
    n_objects = 2_500 if quick else 10_000
    # Quick mode keeps the relief gentler: at 129x129 the full-mode
    # amplitude makes dE3d so loose that every probe escalates to a
    # near-full window, which is a stress test, not a CI smoke test.
    amplitude = 700.0 if quick else 2200.0
    dem3 = fractal_dem(scale_size, 90.0, amplitude, 0.7, seed=11)
    vids3 = [int(v) for v in uniform_grid_objects(dem3, n_objects, seed=3)]
    t0 = time.perf_counter()
    eng3 = ShardedEngine(dem3, objects=vids3, grid=tiles3)
    setup_wall = time.perf_counter() - t0
    picks = sorted({1, tiles3[0] // 2, tiles3[0] - 2})
    queries3 = []
    for ti in picks:
        r = (eng3.grid.row_cuts[ti] + eng3.grid.row_cuts[ti + 1]) // 2
        c = (eng3.grid.col_cuts[ti] + eng3.grid.col_cuts[ti + 1]) // 2
        queries3.append(r * dem3.cols + c)
    latencies = []
    all_converged = True
    for qv in queries3:
        t0 = time.perf_counter()
        result = eng3.query(qv, 5)
        latencies.append(time.perf_counter() - t0)
        all_converged = all_converged and result.converged
    scale_rows = [
        {
            "dem": f"{scale_size}x{scale_size}",
            "grid": f"{tiles3[0]}x{tiles3[1]}",
            "objects": len(vids3),
            "queries": len(queries3),
            "k": 5,
            "setup_seconds": setup_wall,
            "mean_query_seconds": sum(latencies) / len(latencies),
            "max_query_seconds": max(latencies),
            "windows_built": len(eng3.windows_built),
            "tiles_total": tiles3[0] * tiles3[1],
            "all_converged": all_converged,
        }
    ]

    tables = [
        format_table(
            f"Shard identity — BH {identity_size}x{identity_size}, "
            f"{len(queries)} queries (k={k}), cold engine + queries",
            [
                "engine", "queries", "wall_seconds",
                "speedup_vs_monolithic", "identical_results",
                "identical_flags", "windows_built",
            ],
            identity_rows,
        ),
        format_table(
            f"Shard build parallelism — BH {build_size}x{build_size}, "
            "2x2 grid, warm() all tiles",
            ["mode", "tiles", "wall_seconds", "speedup", "identical_results"],
            build_rows,
        ),
        format_table(
            f"Shard scale (sharded-only) — BH {scale_size}x{scale_size}, "
            f"{n_objects} objects, {tiles3[0]}x{tiles3[1]} grid",
            [
                "dem", "grid", "objects", "queries", "k", "setup_seconds",
                "mean_query_seconds", "max_query_seconds", "windows_built",
                "tiles_total", "all_converged",
            ],
            scale_rows,
        ),
    ]
    rows = {
        "shard_identity": identity_rows,
        "shard_build": build_rows,
        "shard_scale": scale_rows,
    }
    if out:
        document = _load_bench_document(out)
        document["params"]["shard"] = {
            "dataset": "BH",
            "identity_size": identity_size,
            "build_size": build_size,
            "scale_size": scale_size,
            "identity_grids": [list(g) for g in grids],
            "scale_grid": list(tiles3),
            "scale_objects": n_objects,
            "scale_amplitude": amplitude,
            "quick": quick,
        }
        document["rows"].update(rows)
        _write_bench_document(out, document)
    return {"tables": tables, "rows": rows}
