"""Workload construction shared by all experiments.

The paper evaluates on two real DEM datasets — Bearhead Mountain (BH,
rugged) and Eagle Peak (EP, smoother) — with uniformly distributed
objects of density 1-10/km² and randomly placed queries.  This module
builds the synthetic stand-ins at laptop scale and caches engines so
a sweep over k reuses one set of structures, exactly as the paper's
pre-created DMTM/MSDN are reused across queries.
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import SurfaceKNNEngine
from repro.errors import QueryError
from repro.terrain.dem import DemGrid
from repro.terrain.mesh import TriangleMesh
from repro.terrain.synthetic import bearhead_like, eagle_peak_like
from repro.testkit.generators import standard_engine, standard_mesh

_DATASETS = {
    "BH": bearhead_like,
    "EP": eagle_peak_like,
}


def dataset(name: str, size: int = 33) -> DemGrid:
    """One of the paper's datasets by name ("BH" or "EP")."""
    try:
        factory = _DATASETS[name]
    except KeyError:
        raise QueryError(f"unknown dataset {name!r}; use 'BH' or 'EP'") from None
    return factory(size=size)


def mesh_for(name: str, size: int = 33) -> TriangleMesh:
    """Cached triangulated mesh for a dataset (shared with the
    testkit's standard-mesh cache, so tests and benchmarks reuse one
    structure per (dataset, size))."""
    if name not in _DATASETS:
        raise QueryError(f"unknown dataset {name!r}; use 'BH' or 'EP'")
    return standard_mesh(name, size)


def build_engine(
    name: str,
    size: int = 33,
    density: float = 4.0,
    seed: int = 1,
    **kwargs,
) -> SurfaceKNNEngine:
    """Cached engine for (dataset, size, density) — backed by the
    testkit's shared engine cache."""
    if name not in _DATASETS:
        raise QueryError(f"unknown dataset {name!r}; use 'BH' or 'EP'")
    return standard_engine(name, size, density=density, seed=seed, **kwargs)


def query_vertices(mesh, count: int, seed: int = 7) -> list[int]:
    """Deterministic random query vertices, away from the boundary
    (boundary queries have clipped search regions and higher
    variance)."""
    rng = np.random.default_rng(seed)
    bounds = mesh.xy_bounds()
    margin = 0.15 * float(min(bounds.extents))
    inner_lo = np.asarray(bounds.lo) + margin
    inner_hi = np.asarray(bounds.hi) - margin
    chosen: list[int] = []
    attempts = 0
    while len(chosen) < count and attempts < count * 50:
        attempts += 1
        vid = int(rng.integers(0, mesh.num_vertices))
        xy = mesh.vertices[vid][:2]
        if np.all(xy >= inner_lo) and np.all(xy <= inner_hi) and vid not in chosen:
            chosen.append(vid)
    while len(chosen) < count:
        chosen.append(int(rng.integers(0, mesh.num_vertices)))
    return chosen


def vertex_pairs(mesh, count: int, seed: int = 11, min_separation: float = 0.3):
    """Deterministic random vertex pairs separated by at least
    ``min_separation`` of the terrain diagonal (used by Figs 7-8)."""
    rng = np.random.default_rng(seed)
    bounds = mesh.xy_bounds()
    diag = float(np.linalg.norm(bounds.extents))
    pairs: list[tuple[int, int]] = []
    attempts = 0
    while len(pairs) < count and attempts < count * 200:
        attempts += 1
        a, b = rng.integers(0, mesh.num_vertices, size=2)
        if a == b:
            continue
        d = float(np.linalg.norm(mesh.vertices[a][:2] - mesh.vertices[b][:2]))
        if d >= min_separation * diag:
            pairs.append((int(a), int(b)))
    if not pairs:
        raise QueryError("could not sample separated vertex pairs")
    return pairs
