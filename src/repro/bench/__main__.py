"""Command-line entry point: ``python -m repro.bench <figure> [--quick]``.

Figures: fig7, fig8, fig9, fig10, fig11, all.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import experiments
from repro.bench.runner import run_experiment

_FIGURES = {
    "fig7": experiments.fig7,
    "fig8": experiments.fig8,
    "fig9": experiments.fig9,
    "fig10": experiments.fig10,
    "fig11": experiments.fig11,
    "related": experiments.related,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation figures as tables.",
    )
    parser.add_argument(
        "figure", choices=sorted(_FIGURES) + ["all"], help="which figure to run"
    )
    parser.add_argument(
        "--quick", action="store_true", help="smaller sweeps (CI-sized)"
    )
    args = parser.parse_args(argv)
    names = sorted(_FIGURES) if args.figure == "all" else [args.figure]
    for name in names:
        run_experiment(_FIGURES[name], quick=args.quick)
    return 0


if __name__ == "__main__":
    sys.exit(main())
