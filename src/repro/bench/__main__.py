"""Command-line entry point: ``python -m repro.bench <figure> [--quick]``.

Figures: fig7, fig8, fig9, fig10, fig11, related, batch, faults,
chaos, kernels, landmarks, shard, all.  The ``batch`` mode takes ``--batch N
--workers W`` and reports throughput / latency percentiles of the
concurrent executor against the sequential baseline.  The ``faults``
mode sweeps injected storage fault rates and per-query page budgets,
reporting retry/corruption counters and degraded-answer rates
(``--workers`` applies here too).  The ``chaos`` mode sweeps
*persistent* dead-page fractions (kill-list faults that never
recover) and reports availability, storage-degraded rates, quarantine
activity and engine health — the degraded-mode execution contract.  The ``kernels`` mode compares the
dict reference kernels against the flat CSR kernels (micro +
end-to-end) and the ``landmarks`` mode runs the fig10 k-sweep with
ALT landmark pruning on vs off; the ``shard`` mode asserts the tiled
:class:`~repro.shard.ShardedEngine` answers identically to the
monolithic engine, times parallel-vs-serial tile warm-up and runs a
sharded-only scale sweep (257x257, 1e4 objects).  All three merge
their series into the ``repro.bench/v1`` document at ``--out``
(default ``BENCH_GEODESIC.json``).  ``--profile-out PATH`` additionally runs
every query under a profiling context and writes one
``repro.profile/v1`` record per query — two such files diff with
``python -m repro.obs.diff``.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import experiments
from repro.bench.runner import experiment_records, run_experiment

_FIGURES = {
    "fig7": experiments.fig7,
    "fig8": experiments.fig8,
    "fig9": experiments.fig9,
    "fig10": experiments.fig10,
    "fig11": experiments.fig11,
    "related": experiments.related,
    "batch": experiments.batch,
    "faults": experiments.faults,
    "chaos": experiments.chaos,
    "kernels": experiments.kernels,
    "landmarks": experiments.landmarks,
    "shard": experiments.shard,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation figures as tables.",
    )
    parser.add_argument(
        "figure", choices=sorted(_FIGURES) + ["all"], help="which figure to run"
    )
    parser.add_argument(
        "--quick", action="store_true", help="smaller sweeps (CI-sized)"
    )
    parser.add_argument(
        "--batch",
        type=int,
        metavar="N",
        default=None,
        help="batch mode: number of queries in the batch",
    )
    parser.add_argument(
        "--workers",
        type=int,
        metavar="W",
        default=4,
        help="batch mode: thread-pool size (default 4)",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default="BENCH_GEODESIC.json",
        help="kernels/landmarks modes: where to write (or merge into) "
        "the repro.bench/v1 JSON document (default BENCH_GEODESIC.json)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write one JSONL record per experiment point to PATH",
    )
    parser.add_argument(
        "--profile-out",
        metavar="PATH",
        default=None,
        help="run every query under a profiling ObsContext and write "
        "one repro.profile/v1 JSON record per query to PATH "
        "(feed two such files to python -m repro.obs.diff)",
    )
    args = parser.parse_args(argv)
    names = sorted(_FIGURES) if args.figure == "all" else [args.figure]
    if args.metrics_out or args.profile_out:
        from repro.obs.export import write_jsonl

        for path in (args.metrics_out, args.profile_out):
            if not path:
                continue
            try:  # fail on a bad path now, not after the sweep
                write_jsonl(path, [])
            except OSError as exc:
                parser.error(f"cannot write to {path!r}: {exc}")
    obs = None
    if args.profile_out:
        from repro.obs.context import ObsContext

        # One context for the whole run: the drivers reuse it (they
        # prefer an ambient profiling context over a local one), so
        # every finished query profile lands in obs.profiler.
        obs = ObsContext("bench", profiling=True)
    records = []
    for name in names:
        kwargs = {"quick": args.quick}
        if name == "batch":
            kwargs["workers"] = args.workers
            if args.batch is not None:
                kwargs["batch"] = args.batch
        elif name in ("faults", "chaos"):
            kwargs["workers"] = args.workers
        elif name in ("kernels", "landmarks", "shard"):
            kwargs["out"] = args.out
        if obs is not None:
            with obs.activate():
                result = run_experiment(_FIGURES[name], **kwargs)
        else:
            result = run_experiment(_FIGURES[name], **kwargs)
        if args.metrics_out:
            records.extend(experiment_records(name, result))
    if args.metrics_out:
        count = write_jsonl(args.metrics_out, records)
        print(f"[wrote {count} records to {args.metrics_out}]")
    if obs is not None:
        from repro.obs.export import write_jsonl
        from repro.obs.profile import profile_record

        profiles = obs.profiler.take()
        count = write_jsonl(
            args.profile_out, [profile_record(p) for p in profiles]
        )
        print(f"[wrote {count} profile records to {args.profile_out}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
