"""Experiment runner and plain-text table formatting.

The paper reports line charts; we print the same series as aligned
text tables (one row per x value, one column per series) so shapes —
who wins, by what factor, where crossovers happen — are readable in a
terminal and diffable in EXPERIMENTS.md.
"""

from __future__ import annotations

import time


def format_table(title: str, columns: list[str], rows: list[dict]) -> str:
    """Render rows (dicts keyed by column name) as an aligned table."""
    def fmt(value) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1000:
                return f"{value:,.0f}"
            if abs(value) >= 10:
                return f"{value:.1f}"
            return f"{value:.3f}"
        return str(value)

    table = [columns] + [[fmt(row.get(col)) for col in columns] for row in rows]
    widths = [max(len(line[i]) for line in table) for i in range(len(columns))]
    out = [title, "=" * len(title)]
    header = "  ".join(c.rjust(w) for c, w in zip(columns, widths))
    out.append(header)
    out.append("-" * len(header))
    for line in table[1:]:
        out.append("  ".join(v.rjust(w) for v, w in zip(line, widths)))
    return "\n".join(out)


def run_experiment(func, *args, verbose: bool = True, **kwargs):
    """Run an experiment driver and print its table(s)."""
    start = time.time()
    result = func(*args, **kwargs)
    elapsed = time.time() - start
    if verbose:
        for table in result.get("tables", []):
            print(table)
            print()
        print(f"[{func.__name__} completed in {elapsed:.1f}s]")
    return result


def experiment_records(figure: str, result: dict) -> list[dict]:
    """Flatten a driver's ``rows`` into JSONL-ready records, one per
    experiment point (``--metrics-out``).

    Drivers return ``rows`` either as a list of row dicts (fig7-9,
    related), as ``{dataset: {x: {series: metrics}}}`` (figs 10-11),
    or as ``{group: [row, ...]}`` (faults); all flatten to records
    carrying ``schema``/``figure``/``point``.
    """
    records: list[dict] = []
    rows = result.get("rows")
    if isinstance(rows, list):
        for index, row in enumerate(rows):
            records.append(
                {
                    "schema": "repro.bench/v1",
                    "figure": figure,
                    "index": index,
                    "point": row,
                }
            )
    elif isinstance(rows, dict):
        for dataset, per_x in rows.items():
            if isinstance(per_x, list):
                for index, row in enumerate(per_x):
                    records.append(
                        {
                            "schema": "repro.bench/v1",
                            "figure": figure,
                            "group": dataset,
                            "index": index,
                            "point": row,
                        }
                    )
                continue
            for x, series in per_x.items():
                records.append(
                    {
                        "schema": "repro.bench/v1",
                        "figure": figure,
                        "dataset": dataset,
                        "x": x,
                        "point": series,
                    }
                )
    return records
