"""The MSDN facade: SDNs at several resolutions + lower-bound queries.

Responsibilities:

* build crossing lines for both x- and y-plane families at terrain
  construction time (the paper pre-creates MSDN and stores it in the
  database);
* keep chunked SDNs per resolution, with plane *density* reduced at
  low resolutions as the paper prescribes ("for a request of low
  resolution SDN data, we reduce the density of crossing lines
  selected too");
* choose the plane family per query by the dominant direction of the
  (a, b) xy projection (the paper's 45° heuristic: use the family
  that actually separates the two points);
* answer lower-bound queries restricted to a region of interest, with
  optional *dummy lower bound* corridors (§4.2.2) for the CPU
  optimisation benches;
* when storage is attached, charge page I/O for the chunks fetched.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import QueryError
from repro.geometry.primitives import BoundingBox
from repro.msdn.crossing import (
    adaptive_plane_positions,
    crossing_line,
    plane_positions,
    supersample_polyline,
)
from repro.geodesic.csr import kernel_mode
from repro.msdn.sdn import (
    SdnChunk,
    _boxes_to_boxes,
    build_sdn_chunks,
    lower_bound_via_planes,
    lower_bound_via_planes_arrays,
)
from repro.storage.locator import LocatorStore
from repro.storage.pages import PageManager
from repro.storage.stats import PAGE_CLASS_MSDN

DEFAULT_RESOLUTIONS = (0.25, 0.375, 0.5, 0.75, 1.0)


@dataclass
class LowerBoundResult:
    """Outcome of one MSDN lower-bound estimation."""

    value: float
    path_keys: list
    resolution: float
    chunks_used: int


def _roi_list(roi):
    if roi is None:
        return None
    if isinstance(roi, BoundingBox):
        roi = [roi]
    return [box.xy() if box.dim == 3 else box for box in roi]


def _box_mask(xy: np.ndarray, boxes) -> np.ndarray:
    """Vectorized intersects-any-box mask over an (m, 4) xy-MBR array
    laid out as [lo_x, lo_y, hi_x, hi_y]."""
    mask = np.zeros(xy.shape[0], dtype=bool)
    for box in boxes:
        mask |= (
            (xy[:, 0] <= box.hi[0])
            & (xy[:, 2] >= box.lo[0])
            & (xy[:, 1] <= box.hi[1])
            & (xy[:, 3] >= box.lo[1])
        )
    return mask


class MSDN:
    """Multiresolution support distance network over a terrain mesh.

    Parameters
    ----------
    mesh:
        The original terrain mesh.
    spacing:
        Plane interval at full density; defaults to the mesh's mean
        edge length (the paper's highest-density recommendation).
    resolutions:
        SDN resolutions to materialize (fractions of crossing-line
        points kept).
    """

    def __init__(
        self,
        mesh,
        spacing: float | None = None,
        resolutions=DEFAULT_RESOLUTIONS,
        supersample: int = 8,
        adaptive_planes: float = 0.0,
    ):
        self.mesh = mesh
        if spacing is None:
            spacing = float(np.mean(mesh.edge_lengths))
        if spacing <= 0:
            raise QueryError("plane spacing must be positive")
        if supersample < 1:
            raise QueryError("supersample must be >= 1")
        self.spacing = spacing
        self.supersample = supersample
        self.adaptive_planes = float(adaptive_planes)
        self.resolutions = tuple(sorted(resolutions))
        bounds = mesh.xy_bounds()
        # Crossing lines per axis; the base (100 %) sampling is the
        # supersampled crossing line (see crossing.supersample_polyline).
        self._planes: dict[int, np.ndarray] = {}
        self._lines: dict[int, list] = {}
        for axis in (0, 1):
            if self.adaptive_planes > 0.0:
                values = adaptive_plane_positions(
                    mesh, spacing, axis, strength=self.adaptive_planes
                )
            else:
                values = plane_positions(bounds, spacing, axis)
            lines = []
            kept_values = []
            for value in values:
                line = crossing_line(mesh, axis, float(value))
                if line is not None:
                    lines.append(supersample_polyline(line, supersample))
                    kept_values.append(float(value))
            self._planes[axis] = np.asarray(kept_values)
            self._lines[axis] = lines
        # Chunked SDNs: (axis, resolution) -> list per plane, plus the
        # per-plane xy-MBR arrays [lo_x, lo_y, hi_x, hi_y] used for
        # vectorized ROI filtering.
        self._chunks: dict[tuple[int, float], list[list[SdnChunk]]] = {}
        self._chunk_xy: dict[tuple[int, float], list[np.ndarray]] = {}
        for axis in (0, 1):
            for res in self.resolutions:
                per_plane = [
                    build_sdn_chunks(line, axis, idx, float(self._planes[axis][idx]), res)
                    for idx, line in enumerate(self._lines[axis])
                ]
                self._chunks[(axis, res)] = per_plane
                self._chunk_xy[(axis, res)] = [
                    np.array(
                        [
                            (c.mbr.lo[0], c.mbr.lo[1], c.mbr.hi[0], c.mbr.hi[1])
                            for c in chunks
                        ]
                    ).reshape(-1, 4)
                    for chunks in per_plane
                ]
        self._store: LocatorStore | None = None
        # Lazy caches: per-(axis, resolution) 3D chunk-MBR arrays for
        # the frontier-mode array DP, the per-resolution key → chunk
        # index for corridor_from_path, per-plane page-id arrays for
        # vectorized I/O charging, and full plane-pair hop matrices
        # for the DP (entries are per-(row, col) independent, so a
        # sliced cached matrix is bit-identical to one computed on
        # the kept subsets).
        self._chunk_boxes3d: dict[tuple[int, float], list] = {}
        self._corridor_index: dict[float, dict[tuple, SdnChunk]] = {}
        self._chunk_pages: dict[tuple[int, float], list[np.ndarray]] = {}
        self._hop_cache: dict[tuple[int, float, int, int], np.ndarray] = {}

    # ------------------------------------------------------------------
    # storage
    # ------------------------------------------------------------------

    def attach_storage(self, pages: PageManager) -> None:
        """Page out every chunk record (clustered by plane, then
        position along the plane) for I/O accounting."""
        items = []
        for (axis, res), per_plane in self._chunks.items():
            for chunks in per_plane:
                for chunk in chunks:
                    cluster = (axis, round(res * 1000), chunk.plane_index, chunk.first)
                    items.append((cluster, ("chunk",) + cluster, chunk.encode()))
        self._store = LocatorStore(items, pages, page_class=PAGE_CLASS_MSDN)
        self._chunk_pages.clear()

    def _touch(self, chunks: list[SdnChunk], resolution: float) -> None:
        if self._store is None:
            return
        ids = [
            ("chunk", c.axis, round(resolution * 1000), c.plane_index, c.first)
            for c in chunks
        ]
        self._store.touch(ids)

    def _plane_pages(self, axis: int, resolution: float) -> list[np.ndarray]:
        """Per-plane arrays of the page id backing each chunk, aligned
        with ``self._chunks[(axis, resolution)]`` rows — resolves the
        record-id → page mapping once so the frontier-mode hot path
        charges I/O by page array instead of rebuilding record-id
        tuples per call."""
        key = (axis, resolution)
        cached = self._chunk_pages.get(key)
        if cached is None:
            store = self._store
            rk = round(resolution * 1000)
            cached = [
                np.array(
                    [
                        store.page_of(("chunk", c.axis, rk, c.plane_index, c.first))
                        for c in layer
                    ],
                    dtype=np.int64,
                )
                for layer in self._chunks[key]
            ]
            self._chunk_pages[key] = cached
        return cached

    # ------------------------------------------------------------------
    # resolution policy
    # ------------------------------------------------------------------

    def plane_stride(self, resolution: float) -> int:
        """Plane-density reduction at low resolution (paper §3.3)."""
        return max(1, int(round(0.5 / resolution)))

    def nearest_resolution(self, resolution: float) -> float:
        return min(self.resolutions, key=lambda r: abs(r - resolution))

    # ------------------------------------------------------------------
    # lower bounds
    # ------------------------------------------------------------------

    @staticmethod
    def choose_axis(point_a, point_b) -> int:
        """Plane family that separates the pair: x-planes (axis 0)
        when the pair is spread mostly along x, else y-planes.

        (The paper's §3.3 heuristic compares the projection angle with
        45°; a plane family parallel to the motion would contribute no
        separating planes.)
        """
        dx = abs(float(point_b[0]) - float(point_a[0]))
        dy = abs(float(point_b[1]) - float(point_a[1]))
        return 0 if dx >= dy else 1

    def _layers_between(
        self, axis: int, resolution: float, lo: float, hi: float, stride: int
    ) -> list[tuple[list[SdnChunk], np.ndarray]]:
        planes = self._planes[axis]
        # Vectorized strict-interval selection (same planes, same
        # order, same post-filter stride as the scalar loop it
        # replaces).
        idxs = np.nonzero((planes > lo) & (planes < hi))[0][:: max(1, stride)]
        per_plane = self._chunks[(axis, resolution)]
        bounds = self._chunk_xy[(axis, resolution)]
        return [(per_plane[int(i)], bounds[int(i)]) for i in idxs]

    def touch_region(self, resolution: float, roi=None, axes=(0, 1)) -> None:
        """Charge page I/O for the chunks a lower-bound estimation
        over ``roi`` would fetch (integrated I/O regions call this
        once per merged region, then estimate with
        ``charge_io=False``)."""
        resolution = self.nearest_resolution(resolution)
        roi = _roi_list(roi)
        if kernel_mode() == "frontier" and self._store is not None:
            # Page-array fast path: same distinct pages read per
            # plane, in the same ascending order, without building
            # per-chunk record-id tuples.
            store = self._store
            for axis in axes:
                bounds = self._chunk_xy[(axis, resolution)]
                pages = self._plane_pages(axis, resolution)
                for xy, page_arr in zip(bounds, pages):
                    if roi is None:
                        plane_pages = page_arr
                    else:
                        plane_pages = page_arr[_box_mask(xy, roi)]
                    if plane_pages.size:
                        store.touch_pages(plane_pages)
            return
        for axis in axes:
            layers = self._chunks[(axis, resolution)]
            bounds = self._chunk_xy[(axis, resolution)]
            for layer, xy in zip(layers, bounds):
                if roi is None:
                    chunks = layer
                else:
                    mask = _box_mask(xy, roi)
                    chunks = [layer[j] for j in np.nonzero(mask)[0]]
                if chunks:
                    self._touch(chunks, resolution)

    def lower_bound(
        self,
        point_a,
        point_b,
        resolution: float,
        roi=None,
        corridor=None,
        charge_io: bool = True,
    ) -> LowerBoundResult:
        """Estimate ``lb(a, b)`` at an SDN resolution.

        Parameters
        ----------
        point_a, point_b:
            3D surface points.
        resolution:
            One of the materialized SDN resolutions.
        roi:
            Optional region(s) restricting which chunks are used —
            safe because any path shorter than the current upper
            bound projects inside the ellipse region the caller
            supplies.
        corridor:
            Optional list of boxes forming a *dummy lower bound*
            envelope (§4.2.2): restrict chunks to the corridor; the
            result then *over*-estimates the true SDN lower bound and
            may only be used for the early-accept test.

        The result is always >= the Euclidean distance and always a
        valid lower bound of ``dS`` when ``corridor`` is None.
        """
        return self._lower_bound_at(
            np.asarray(point_a, dtype=float),
            np.asarray(point_b, dtype=float),
            self.nearest_resolution(resolution),
            _roi_list(roi),
            _roi_list(corridor),
            charge_io,
        )

    def lower_bound_batch(
        self,
        point_a,
        targets,
        resolution: float,
        rois=None,
        charge_io: bool = False,
    ) -> list[LowerBoundResult]:
        """Lower bounds from one source toward many targets in one
        call — the ranking loop's per-level batch.

        ``targets`` is a sequence of 3D points; ``rois`` (optional) a
        parallel sequence of per-target region arguments.  Each bound
        runs the exact computation of :meth:`lower_bound` (values are
        bit-identical); the batch only hoists the per-call setup —
        resolution snapping, source-point conversion, ROI
        normalization — out of the inner loop.
        """
        resolution = self.nearest_resolution(resolution)
        pa = np.asarray(point_a, dtype=float)
        if rois is None:
            rois = [None] * len(targets)
        return [
            self._lower_bound_at(
                pa,
                np.asarray(point_b, dtype=float),
                resolution,
                _roi_list(roi),
                None,
                charge_io,
            )
            for point_b, roi in zip(targets, rois)
        ]

    def _boxes3d(self, axis: int, resolution: float) -> list:
        """Cached per-plane 3D chunk-MBR ``(lo, hi)`` row arrays —
        the frontier-mode DP input, built once per (axis, resolution)
        instead of rebuilt from chunk objects on every estimation."""
        key = (axis, resolution)
        cached = self._chunk_boxes3d.get(key)
        if cached is None:
            cached = [
                (
                    np.array([c.mbr.lo for c in layer], dtype=float).reshape(-1, 3),
                    np.array([c.mbr.hi for c in layer], dtype=float).reshape(-1, 3),
                )
                for layer in self._chunks[key]
            ]
            self._chunk_boxes3d[key] = cached
        return cached

    def _lower_bound_at(
        self, pa, pb, resolution: float, roi, corridor_boxes, charge_io: bool
    ) -> LowerBoundResult:
        """Shared implementation: arguments already normalized."""
        axis = self.choose_axis(pa, pb)
        lo = min(pa[axis], pb[axis])
        hi = max(pa[axis], pb[axis])
        if pa[axis] > pb[axis]:
            pa, pb = pb, pa
        stride = self.plane_stride(resolution)
        layers = self._layers_between(axis, resolution, lo, hi, stride)
        if kernel_mode() == "frontier":
            return self._lower_bound_arrays(
                pa, pb, axis, resolution, layers, roi, corridor_boxes, charge_io
            )

        filtered: list[list[SdnChunk]] = []
        used = 0
        for layer, xy in layers:
            if roi is None and corridor_boxes is None:
                keep = layer
            else:
                mask = np.ones(xy.shape[0], dtype=bool)
                if roi is not None:
                    mask &= _box_mask(xy, roi)
                if corridor_boxes is not None:
                    mask &= _box_mask(xy, corridor_boxes)
                keep = [layer[j] for j in np.nonzero(mask)[0]]
            if keep:  # dropping an empty plane only loosens the bound
                filtered.append(keep)
                used += len(keep)
        if charge_io:
            for layer in filtered:
                self._touch(layer, resolution)
        value, path_keys = lower_bound_via_planes(pa, pb, filtered)
        return LowerBoundResult(
            value=value,
            path_keys=path_keys,
            resolution=resolution,
            chunks_used=used,
        )

    def _hops_for(
        self, axis, resolution, plane_indices, keep_idxs
    ) -> list[np.ndarray] | None:
        """Consecutive-layer hop matrices sliced from the per-plane-
        pair cache (full-plane matrices computed once, reused by every
        estimation that crosses the same pair)."""
        if len(plane_indices) < 2:
            return None
        boxes3d = self._boxes3d(axis, resolution)
        hops: list[np.ndarray] = []
        for (pi, ki), (pj, kj) in zip(
            zip(plane_indices, keep_idxs),
            zip(plane_indices[1:], keep_idxs[1:]),
        ):
            key = (axis, resolution, pi, pj)
            full = self._hop_cache.get(key)
            if full is None:
                lo_u, hi_u = boxes3d[pi]
                lo_l, hi_l = boxes3d[pj]
                full = _boxes_to_boxes(lo_u, hi_u, lo_l, hi_l)
                self._hop_cache[key] = full
            if ki is None and kj is None:
                hop = full
            elif ki is None:
                hop = full[:, kj]
            elif kj is None:
                hop = full[ki, :]
            else:
                hop = full[np.ix_(ki, kj)]
            hops.append(hop)
        return hops

    def _lower_bound_arrays(
        self, pa, pb, axis, resolution, layers, roi, corridor_boxes, charge_io
    ) -> LowerBoundResult:
        """Frontier-mode estimation over the cached 3D box arrays —
        index-filtered slices instead of per-call object walks; the
        DP is bit-identical to :func:`lower_bound_via_planes`."""
        boxes3d = self._boxes3d(axis, resolution)
        per_plane = self._chunks[(axis, resolution)]
        pages = (
            self._plane_pages(axis, resolution)
            if charge_io and self._store is not None
            else None
        )
        kept_layers: list = []  # (chunk_list, kept_row_indices)
        plane_indices: list[int] = []
        layer_boxes: list[tuple[np.ndarray, np.ndarray]] = []
        used = 0
        for layer, xy in layers:
            if not layer:
                continue
            # chunk.plane_index is the row in self._chunks[(axis, res)]
            # (planes are built in self._planes[axis] order).
            plane_index = layer[0].plane_index
            lo3, hi3 = boxes3d[plane_index]
            if roi is None and corridor_boxes is None:
                keep_idx = None
                kept_lo, kept_hi = lo3, hi3
                count = len(layer)
            else:
                mask = np.ones(xy.shape[0], dtype=bool)
                if roi is not None:
                    mask &= _box_mask(xy, roi)
                if corridor_boxes is not None:
                    mask &= _box_mask(xy, corridor_boxes)
                keep_idx = np.nonzero(mask)[0]
                count = int(keep_idx.size)
                if count == 0:
                    continue
                kept_lo = lo3[keep_idx]
                kept_hi = hi3[keep_idx]
            kept_layers.append((layer, keep_idx))
            plane_indices.append(plane_index)
            layer_boxes.append((kept_lo, kept_hi))
            used += count
            if charge_io:
                if pages is not None:
                    page_arr = pages[plane_index]
                    self._store.touch_pages(
                        page_arr if keep_idx is None else page_arr[keep_idx]
                    )
                else:
                    chunks = (
                        layer
                        if keep_idx is None
                        else [layer[j] for j in keep_idx]
                    )
                    self._touch(chunks, resolution)
        hops = self._hops_for(
            axis, resolution, plane_indices,
            [idx for _layer, idx in kept_layers],
        )
        value, picks = lower_bound_via_planes_arrays(
            pa, pb, layer_boxes, hops=hops
        )
        path_keys = []
        for (layer, keep_idx), row in zip(kept_layers, picks):
            chunk = layer[row] if keep_idx is None else layer[int(keep_idx[row])]
            path_keys.append(chunk.key)
        return LowerBoundResult(
            value=value,
            path_keys=path_keys,
            resolution=resolution,
            chunks_used=used,
        )

    def corridor_from_path(
        self, path_keys, resolution: float, thickness: float | None = None
    ) -> list[BoundingBox]:
        """Build the dummy-lower-bound envelope around a previous lb
        path: each path chunk's xy MBR thickened by ``thickness``
        (default: twice the plane spacing)."""
        if thickness is None:
            thickness = 2.0 * self.spacing
        resolution = self.nearest_resolution(resolution)
        # The key → chunk index is memoized per resolution: chunks are
        # immutable after construction and the ranking loop rebuilds a
        # corridor for every surviving candidate at every level.
        index = self._corridor_index.get(resolution)
        if index is None:
            index = {}
            for axis in (0, 1):
                for layer in self._chunks[(axis, resolution)]:
                    for chunk in layer:
                        index[chunk.key] = chunk
            self._corridor_index[resolution] = index
        boxes = []
        for key in path_keys:
            chunk = index.get(key)
            if chunk is not None:
                boxes.append(chunk.mbr.xy().expanded(thickness))
        return boxes

    def stats(self) -> dict:
        """Structure sizes (for DESIGN/EXPERIMENTS reporting)."""
        return {
            "spacing": self.spacing,
            "planes_x": int(len(self._planes[0])),
            "planes_y": int(len(self._planes[1])),
            "chunks": {
                f"axis{axis}@r{res}": sum(len(l) for l in per_plane)
                for (axis, res), per_plane in self._chunks.items()
            },
        }
