"""Support Distance Networks: chunked crossing lines and the
lower-bound Dijkstra over them.

"A network is constructed from the SDN by treating each line segment
as a node and there is an edge to link a node with each of the nodes
which are line segments from the neighboring crossing lines.  The
length of an edge is the minimum Euclidian distance between the MBRs
of the two line segments." (paper, §3.3)

The lower-bound argument: a surface path from ``a`` to ``b`` crosses
every selected plane between them at least once; chaining the
crossing points gives a sequence whose consecutive straight-line
distances are each at least the min-MBR-distance edge weight, so the
layered Dijkstra distance can never exceed the true path length.
Dropping planes or enlarging chunk MBRs only *lowers* the estimate —
which is exactly why coarse SDNs stay safe and finer ones are
monotonically tighter.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.errors import GeometryError
from repro.geometry.polyline import Polyline, simplify_with_enclosure
from repro.geometry.primitives import BoundingBox

_CHUNK_STRUCT = struct.Struct("<BIdHII6d")


@dataclass(frozen=True)
class SdnChunk:
    """One SDN node: a run of crossing-line segments with joint MBR."""

    axis: int
    plane_index: int
    plane_value: float
    resolution: float
    first: int
    last: int
    mbr: BoundingBox  # 3D

    @property
    def key(self) -> tuple:
        return ("c", self.axis, self.plane_index, self.first, self.last)

    def encode(self) -> bytes:
        return _CHUNK_STRUCT.pack(
            self.axis,
            self.plane_index,
            self.plane_value,
            int(round(self.resolution * 1000)),
            self.first,
            self.last,
            *self.mbr.lo,
            *self.mbr.hi,
        )

    @classmethod
    def decode(cls, blob: bytes) -> "SdnChunk":
        axis, plane_index, plane_value, res_pm, first, last, *coords = (
            _CHUNK_STRUCT.unpack(blob)
        )
        return cls(
            axis=axis,
            plane_index=plane_index,
            plane_value=plane_value,
            resolution=res_pm / 1000.0,
            first=first,
            last=last,
            mbr=BoundingBox(tuple(coords[:3]), tuple(coords[3:])),
        )


def build_sdn_chunks(
    line: Polyline,
    axis: int,
    plane_index: int,
    plane_value: float,
    resolution: float,
) -> list[SdnChunk]:
    """Chunk one crossing line at the given resolution.

    The chunk MBRs enclose the original segment MBRs by construction
    (see :func:`repro.geometry.polyline.simplify_with_enclosure`).
    """
    chunks = simplify_with_enclosure(line, resolution)
    return [
        SdnChunk(
            axis=axis,
            plane_index=plane_index,
            plane_value=plane_value,
            resolution=resolution,
            first=c.first,
            last=c.last,
            mbr=c.mbr,
        )
        for c in chunks
    ]


def _layer_boxes(layer: list[SdnChunk]) -> tuple[np.ndarray, np.ndarray]:
    lo = np.array([c.mbr.lo for c in layer], dtype=float)
    hi = np.array([c.mbr.hi for c in layer], dtype=float)
    return lo, hi


def _point_to_boxes(p: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    gap = np.maximum(lo - p, 0.0)
    gap = np.maximum(gap, p - hi)
    return np.sqrt(np.sum(gap * gap, axis=1))


def _boxes_to_boxes(
    lo1: np.ndarray, hi1: np.ndarray, lo2: np.ndarray, hi2: np.ndarray
) -> np.ndarray:
    """(m1, m2) matrix of min distances between two box families."""
    gap = np.maximum(lo2[np.newaxis, :, :] - hi1[:, np.newaxis, :], 0.0)
    gap = np.maximum(gap, lo1[:, np.newaxis, :] - hi2[np.newaxis, :, :])
    return np.sqrt(np.sum(gap * gap, axis=2))


def lower_bound_via_planes(
    point_a,
    point_b,
    chunk_layers: list[list[SdnChunk]],
) -> tuple[float, list[tuple]]:
    """Monotone-chain lower bound between two 3D points.

    ``chunk_layers`` holds the chunks of each selected plane, ordered
    from the plane nearest ``a`` to the plane nearest ``b``.  Empty
    layers must be removed by the caller (dropping a plane is safe).

    Any surface path crosses the planes *in order* (each plane
    separates ``a`` from the next), so its first-crossing points form
    a monotone chain whose consecutive straight-line distances are
    bounded below by min-MBR distances.  The minimum over all chains
    is computed as a min-plus dynamic program, vectorized layer by
    layer, which is both tighter than a free Dijkstra over the same
    graph (zigzags are excluded) and fast for dense layers.

    Returns ``(bound, path_chunk_keys)``; the bound is clamped from
    below by the straight-line distance, which is always itself a
    valid lower bound.
    """
    pa = np.asarray(point_a, dtype=float)
    pb = np.asarray(point_b, dtype=float)
    euclid = float(np.linalg.norm(pa - pb))
    if not chunk_layers:
        return euclid, []
    if any(not layer for layer in chunk_layers):
        raise GeometryError("empty chunk layer; caller must drop empty planes")

    boxes = [_layer_boxes(layer) for layer in chunk_layers]
    lo0, hi0 = boxes[0]
    dist = _point_to_boxes(pa, lo0, hi0)
    choices: list[np.ndarray] = []
    for (lo_u, hi_u), (lo_l, hi_l) in zip(boxes, boxes[1:]):
        hop = _boxes_to_boxes(lo_u, hi_u, lo_l, hi_l)
        total = dist[:, np.newaxis] + hop
        picks = np.argmin(total, axis=0)
        choices.append(picks)
        dist = total[picks, np.arange(hop.shape[1])]
    lo_n, hi_n = boxes[-1]
    final = dist + _point_to_boxes(pb, lo_n, hi_n)
    best = int(np.argmin(final))
    bound = float(final[best])

    # Backtrack one chunk per layer for the dummy-lb corridor.
    indices = [best]
    for picks in reversed(choices):
        indices.append(int(picks[indices[-1]]))
    indices.reverse()
    path_keys = [
        chunk_layers[layer][idx].key for layer, idx in enumerate(indices)
    ]
    return max(bound, euclid), path_keys


def lower_bound_via_planes_arrays(
    point_a,
    point_b,
    layer_boxes: list[tuple[np.ndarray, np.ndarray]],
    hops: list[np.ndarray] | None = None,
) -> tuple[float, list[int]]:
    """Array-input twin of :func:`lower_bound_via_planes`.

    ``layer_boxes`` holds each selected plane's chunk MBRs as
    ``(lo, hi)`` row arrays — pre-sliced from cached per-plane arrays
    instead of rebuilt from chunk objects per call (the frontier-mode
    hot path).  The min-plus dynamic program runs the exact float
    operations of the object-input twin, so the bound is
    bit-identical; the backtrack returns one *row index per layer*
    (into the given arrays) for the caller to map back to chunk keys.

    ``hops`` (optional) supplies the consecutive-layer min-distance
    matrices, one per layer pair, typically sliced from a per-plane-
    pair cache.  Each hop entry depends only on its own row/col boxes,
    so a sliced cached matrix is bit-identical to one computed on the
    kept subsets.
    """
    pa = np.asarray(point_a, dtype=float)
    pb = np.asarray(point_b, dtype=float)
    euclid = float(np.linalg.norm(pa - pb))
    if not layer_boxes:
        return euclid, []
    if any(lo.shape[0] == 0 for lo, _ in layer_boxes):
        raise GeometryError("empty chunk layer; caller must drop empty planes")

    lo0, hi0 = layer_boxes[0]
    dist = _point_to_boxes(pa, lo0, hi0)
    choices: list[np.ndarray] = []
    for li, ((lo_u, hi_u), (lo_l, hi_l)) in enumerate(
        zip(layer_boxes, layer_boxes[1:])
    ):
        if hops is not None:
            hop = hops[li]
        else:
            hop = _boxes_to_boxes(lo_u, hi_u, lo_l, hi_l)
        total = dist[:, np.newaxis] + hop
        picks = np.argmin(total, axis=0)
        choices.append(picks)
        dist = total[picks, np.arange(hop.shape[1])]
    lo_n, hi_n = layer_boxes[-1]
    final = dist + _point_to_boxes(pb, lo_n, hi_n)
    best = int(np.argmin(final))
    bound = float(final[best])

    indices = [best]
    for picks in reversed(choices):
        indices.append(int(picks[indices[-1]]))
    indices.reverse()
    return max(bound, euclid), indices
