"""Crossing lines: intersections of a terrain with vertical planes.

"Using a 2D plane y = y0 ... to cut through the terrain, a polyline l
(called a crossing line) can be obtained by intersecting the plane
with the terrain surface.  Then, any surface path from a to b must
pass l at least once." (paper, §3.3)

For a height-field terrain the crossing line of an axis-aligned plane
is monotone in the other horizontal axis, so collecting every
edge/plane intersection point and sorting along that axis recovers
the polyline exactly.  Plane positions are offset off the grid lines
so planes never pass through mesh vertices.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeometryError
from repro.geometry.polyline import Polyline


def plane_positions(bounds, spacing: float, axis: int) -> np.ndarray:
    """Positions of sweep planes ``axis = value`` across ``bounds``.

    Planes are placed every ``spacing`` metres starting half a spacing
    inside the terrain, mirroring the paper's guidance that the
    highest-density plane interval should equal the average original
    edge length.
    """
    if axis not in (0, 1):
        raise GeometryError("axis must be 0 (x-planes) or 1 (y-planes)")
    if spacing <= 0:
        raise GeometryError("spacing must be positive")
    lo = bounds.lo[axis]
    hi = bounds.hi[axis]
    first = lo + spacing / 2.0
    if first >= hi:
        return np.empty(0)
    return np.arange(first, hi, spacing)


def adaptive_plane_positions(
    mesh, base_spacing: float, axis: int, strength: float = 1.0
) -> np.ndarray:
    """Roughness-adaptive sweep-plane placement.

    "The planes used to generate MSDN can be placed strategically
    according to terrain roughness (i.e., more dense planes for more
    rugged region)." (paper, §3.3)

    The terrain is divided into strips of width ``base_spacing``
    along ``axis``; each strip's roughness is its crossing-line
    arc-length excess over the straight traverse.  Planes are then
    placed by inverse-CDF sampling of the roughness density: the same
    *total* number of planes as uniform placement, concentrated where
    the terrain is rough.  ``strength`` in [0, 1] blends uniform (0)
    and fully adaptive (1).

    Validity is free: the lower-bound argument holds for *any* plane
    set; only tightness changes.
    """
    if not 0.0 <= strength <= 1.0:
        raise GeometryError("strength must be in [0, 1]")
    bounds = mesh.xy_bounds()
    uniform = plane_positions(bounds, base_spacing, axis)
    if uniform.size < 2 or strength == 0.0:
        return uniform
    # Roughness per strip, probed at the uniform positions.
    weights = []
    for value in uniform:
        line = crossing_line(mesh, axis, float(value))
        if line is None:
            weights.append(1.0)
            continue
        straight = float(
            np.linalg.norm(line.points[-1, :2] - line.points[0, :2])
        )
        excess = line.length() / straight - 1.0 if straight > 0 else 0.0
        weights.append(1.0 + strength * 10.0 * max(excess, 0.0))
    weights = np.asarray(weights)
    # Inverse-CDF sampling: place len(uniform) planes so their local
    # density is proportional to the roughness weights.
    cdf = np.concatenate([[0.0], np.cumsum(weights)])
    cdf /= cdf[-1]
    # Strip boundaries along the axis.
    edges = np.concatenate(
        [
            [uniform[0] - base_spacing / 2.0],
            (uniform[:-1] + uniform[1:]) / 2.0,
            [uniform[-1] + base_spacing / 2.0],
        ]
    )
    targets = (np.arange(len(uniform)) + 0.5) / len(uniform)
    return np.interp(targets, cdf, edges)


def supersample_polyline(line: Polyline, factor: int) -> Polyline:
    """Subdivide every segment of a polyline into ``factor`` pieces.

    The base ("100 %") SDN is built from supersampled crossing lines
    so that individual chunk MBRs are small relative to the plane
    interval; this is what lets high-resolution SDNs tighten the
    lower bound well past the Euclidean baseline, while coarser
    resolutions fall back toward it.  Subdivision keeps every point
    on the original line, so the MBR-enclosure guarantee is intact.
    """
    if factor < 1:
        raise GeometryError("supersample factor must be >= 1")
    if factor == 1:
        return line
    pts = line.points
    steps = np.arange(1, factor + 1) / factor
    pieces = [pts[:1]]
    for i in range(len(pts) - 1):
        seg = pts[i] + steps[:, np.newaxis] * (pts[i + 1] - pts[i])
        pieces.append(seg)
    return Polyline(np.vstack(pieces))


def crossing_line(mesh, axis: int, value: float) -> Polyline | None:
    """Crossing line of the plane ``axis = value`` with the terrain.

    Returns None when the plane misses the mesh or yields fewer than
    two intersection points.
    """
    if axis not in (0, 1):
        raise GeometryError("axis must be 0 (x-planes) or 1 (y-planes)")
    coords = mesh.vertices[:, axis]
    ev = mesh.edge_vertices
    c0 = coords[ev[:, 0]]
    c1 = coords[ev[:, 1]]
    straddles = ((c0 < value) & (c1 > value)) | ((c1 < value) & (c0 > value))
    idx = np.nonzero(straddles)[0]
    if idx.size < 2:
        return None
    p0 = mesh.vertices[ev[idx, 0]]
    p1 = mesh.vertices[ev[idx, 1]]
    t = (value - p0[:, axis]) / (p1[:, axis] - p0[:, axis])
    points = p0 + t[:, np.newaxis] * (p1 - p0)
    other = 1 - axis
    order = np.argsort(points[:, other])
    return Polyline(points[order])
