"""MSDN — the Multiresolution Support Distance Network.

The paper's second core structure: a stack of *Support Distance
Networks* (SDNs) derived from plane-sweep **crossing lines** (terrain
∩ axis-aligned vertical planes).  Treating each (simplified) crossing
line segment as a node and weighting inter-plane links by the minimum
distance between segment MBRs yields Dijkstra distances that **lower
bound** the surface distance — tightening monotonically as more
planes / finer segments are used, because simplified-segment MBRs
always *enclose* the MBRs they replace.
"""

from repro.msdn.crossing import crossing_line, plane_positions
from repro.msdn.sdn import SdnChunk, build_sdn_chunks, lower_bound_via_planes
from repro.msdn.msdn import MSDN, LowerBoundResult

__all__ = [
    "crossing_line",
    "plane_positions",
    "SdnChunk",
    "build_sdn_chunks",
    "lower_bound_via_planes",
    "MSDN",
    "LowerBoundResult",
]
