"""repro.testkit — deterministic fuzzing with invariant oracles.

The correctness substrate for the MR3 stack: seeded scenario
generation (:mod:`~repro.testkit.generators`), a catalog of named
invariant oracles checked against exact ground truth
(:mod:`~repro.testkit.oracles`), a differential engine-matrix runner
asserting the documented identity/bound for every execution-mode pair
(:mod:`~repro.testkit.differential`), and a greedy case shrinker with
replayable JSON repro files (:mod:`~repro.testkit.shrink`).

Run it: ``python -m repro.testkit --seed-range 0:50``.
See ``docs/testing.md`` for the invariant catalog and replay guide.
"""

from repro.testkit.differential import (
    MUTATORS,
    Finding,
    ScenarioReport,
    run_scenario,
    scenario_fails,
)
from repro.testkit.generators import (
    FaultSpec,
    ObjectSpec,
    QuerySpec,
    ResolvedQuery,
    Scenario,
    TerrainSpec,
    build_dem,
    build_engine,
    build_mesh,
    build_objects,
    build_sharded_engine,
    generate_scenario,
    resolve_queries,
    standard_engine,
    standard_mesh,
    with_tiles,
)
from repro.testkit.oracles import (
    ORACLES,
    Oracle,
    OracleContext,
    Violation,
    run_oracles,
)
from repro.testkit.shrink import (
    ShrinkOutcome,
    load_case,
    replay_case,
    shrink_scenario,
    write_case,
)

__all__ = [
    "MUTATORS",
    "Finding",
    "ScenarioReport",
    "run_scenario",
    "scenario_fails",
    "FaultSpec",
    "ObjectSpec",
    "QuerySpec",
    "ResolvedQuery",
    "Scenario",
    "TerrainSpec",
    "build_dem",
    "build_engine",
    "build_mesh",
    "build_objects",
    "build_sharded_engine",
    "generate_scenario",
    "resolve_queries",
    "standard_engine",
    "standard_mesh",
    "with_tiles",
    "ORACLES",
    "Oracle",
    "OracleContext",
    "Violation",
    "run_oracles",
    "ShrinkOutcome",
    "load_case",
    "replay_case",
    "shrink_scenario",
    "write_case",
]
