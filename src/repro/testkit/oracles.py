"""Invariant oracles — named checks run against a finished query.

Each oracle inspects one :class:`OracleContext` (the scenario, the
query, the :class:`~repro.core.mr3.QueryResult` and brute-force exact
ground truth) and returns a list of human-readable violation messages
— empty when the invariant holds.  The catalog doubles as the
documentation table in ``docs/testing.md``: every entry names the
paper section that states the invariant and the module under test.

The checks mirror (and centralize) the repo's spot checks:

* the interval sandwich and top-k agreement of
  ``tests/test_differential_mr3.py``;
* the per-phase k-th-upper-bound monotonicity and interval-shrink
  properties of ``tests/test_properties_refinement.py``;
* the trace-sum == pages_accessed reconciliation of
  ``tests/test_obs.py``;
* the degraded ``max_error`` soundness property of
  ``tests/test_resilience_budget.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

EPS = 1e-6
TIE_TOLERANCE = 1.03  # the paper's 3 % surface-distance allowance


@dataclass(frozen=True)
class Violation:
    """One oracle failure on one query."""

    oracle: str
    message: str

    def __str__(self) -> str:
        return f"[{self.oracle}] {self.message}"


@dataclass
class OracleContext:
    """Everything an oracle may inspect for one query.

    ``truth`` is the full exact ranking ``[(object_id, dS), ...]``
    over every object (ascending), so oracles can check both the
    reported top-k and the k-th distance the result should bracket.
    ``exact_sets`` demands exact set agreement (flat terrain, where
    MR3 has no approximation allowance).

    ``landmarks`` optionally carries the
    :class:`repro.geodesic.landmarks.LandmarkIndex` the query ran
    with, ``object_vertices`` maps object id -> mesh vertex (so the
    admissibility oracle can look up landmark table bounds for the
    reported objects), and ``baseline`` is the same query's result
    from a landmarks-off run — the admissibility oracle then asserts
    the landmark run changed nothing observable about the answer.

    ``quarantine`` / ``fault_injector`` / ``retry_attempts``
    optionally carry the engine's live
    :class:`repro.storage.faults.PageQuarantine`, its
    :class:`~repro.storage.faults.FaultInjector` and the retry
    policy's attempt count, so the storage-degradation oracle can
    bound the disk attempts any quarantined page ever saw.

    ``shard_baseline`` carries the *monolithic* engine's result for
    the same query when ``result`` came from a
    :class:`~repro.shard.engine.ShardedEngine` — the shard-consistency
    oracle then asserts the tiled run changed nothing observable.
    """

    result: object
    truth: list
    k: int
    exact_sets: bool = False
    schedule_levels: list = field(default_factory=list)
    landmarks: object = None
    object_vertices: dict = None
    baseline: object = None
    quarantine: object = None
    fault_injector: object = None
    retry_attempts: int = 0
    shard_baseline: object = None

    @property
    def truth_dist(self) -> dict:
        return dict(self.truth)


@dataclass(frozen=True)
class Oracle:
    """A named invariant with its provenance metadata."""

    name: str
    check: object  # Callable[[OracleContext], list[str]]
    paper_section: str
    module: str
    description: str


def _traces(result):
    return [
        t
        for t in (result.filter_trace, result.ranking_trace)
        if t
    ]


# ----------------------------------------------------------------------
# the checks
# ----------------------------------------------------------------------


def check_result_shape(ctx: OracleContext) -> list[str]:
    result = ctx.result
    out = []
    if len(result.object_ids) != ctx.k:
        out.append(
            f"expected {ctx.k} results, got {len(result.object_ids)}"
        )
    if len(set(result.object_ids)) != len(result.object_ids):
        out.append(f"duplicate neighbours: {result.object_ids}")
    prev_ub = -math.inf
    for obj, (lb, ub) in zip(result.object_ids, result.intervals):
        if lb > ub + EPS:
            out.append(f"object {obj}: inverted interval [{lb}, {ub}]")
        if lb < -EPS:
            out.append(f"object {obj}: negative lower bound {lb}")
        if ub < prev_ub - EPS:
            out.append("winners not ascending by upper bound")
        prev_ub = ub
    return out


def check_interval_sandwich(ctx: OracleContext) -> list[str]:
    dist = ctx.truth_dist
    out = []
    for obj, (lb, ub) in zip(ctx.result.object_ids, ctx.result.intervals):
        ds = dist.get(obj)
        if ds is None:
            out.append(f"reported object {obj} does not exist")
            continue
        if lb > ds + EPS + 1e-9 * ds:
            out.append(
                f"object {obj}: lb {lb:.6f} exceeds true dS {ds:.6f}"
            )
        if ub < ds - EPS - 1e-9 * ds:
            out.append(
                f"object {obj}: ub {ub:.6f} below true dS {ds:.6f}"
            )
    return out


def check_topk_agreement(ctx: OracleContext) -> list[str]:
    """Reported set == exact top-k, modulo genuine ties.

    On flat terrain the allowance is numerical only; on rough terrain
    extras must be 3 %-ties of the true k-th (Kanai–Suzuki polishing
    is allowed that error by the paper).  The guarantee only exists
    for *converged* answers: a query that exhausted its schedule
    (``converged=False``) or its budget (``degraded=True``) reports
    the best-known top-k by upper bound, whose soundness is covered by
    the sandwich and degraded-soundness oracles instead.
    """
    if ctx.result.degraded or not ctx.result.converged:
        return []
    dist = ctx.truth_dist
    got = set(ctx.result.object_ids)
    want = {obj for obj, _d in ctx.truth[: ctx.k]}
    if got == want or not ctx.truth:
        return []
    kth = ctx.truth[min(ctx.k, len(ctx.truth)) - 1][1]
    allowance = (
        kth + EPS + 1e-9 * kth
        if ctx.exact_sets
        else kth * TIE_TOLERANCE + EPS
    )
    out = []
    for obj in got - want:
        ds = dist.get(obj)
        if ds is None or ds > allowance:
            out.append(
                f"object {obj} at dS={ds if ds is not None else '?'} "
                f"is no tie of the true kth={kth:.6f}"
            )
    return out


def check_kth_ub_monotone(ctx: OracleContext) -> list[str]:
    out = []
    for trace in _traces(ctx.result):
        ubs = [e.kth_ub for e in trace]
        for coarse, fine in zip(ubs, ubs[1:]):
            if fine > coarse + EPS + 1e-9 * min(coarse, 1e12):
                out.append(
                    f"{trace[0].phase}: kth ub rose {coarse:.6f} -> "
                    f"{fine:.6f}"
                )
    return out


def check_kth_interval_valid(ctx: OracleContext) -> list[str]:
    """The tracked k-th interval is well-formed at every level.

    ``kth_lb`` is the lower bound of the candidate that is k-th *by
    upper bound* — its identity changes as other candidates are
    rejected, so the interval's width is deliberately NOT required to
    shrink monotonically (fuzzing finds genuine identity-shift
    widenings).  What must always hold: ``0 <= kth_lb <= kth_ub`` per
    level, and a converged phase ends with a finite k-th upper bound.
    """
    out = []
    for trace in _traces(ctx.result):
        for event in trace:
            if event.kth_lb < -EPS:
                out.append(
                    f"{event.phase} level {event.level}: negative kth lb "
                    f"{event.kth_lb:.6f}"
                )
            if math.isfinite(event.kth_ub) and (
                event.kth_lb > event.kth_ub + EPS + 1e-9 * event.kth_ub
            ):
                out.append(
                    f"{event.phase} level {event.level}: inverted kth "
                    f"interval [{event.kth_lb:.6f}, {event.kth_ub:.6f}]"
                )
        if trace[-1].done and not math.isfinite(trace[-1].kth_ub):
            out.append(
                f"{trace[0].phase}: converged with an infinite kth ub"
            )
    return out


def check_levels_ascend(ctx: OracleContext) -> list[str]:
    """Refinement levels are visited in ascending order and the
    resolutions they report are monotone (DMTM up, MSDN up)."""
    out = []
    for trace in _traces(ctx.result):
        levels = [e.level for e in trace]
        if levels != sorted(levels):
            out.append(f"{trace[0].phase}: levels out of order {levels}")
        for prev, event in zip(trace, trace[1:]):
            if event.dmtm_resolution < prev.dmtm_resolution - EPS:
                out.append(
                    f"{trace[0].phase}: DMTM resolution fell "
                    f"{prev.dmtm_resolution} -> {event.dmtm_resolution}"
                )
            if event.msdn_resolution < prev.msdn_resolution - EPS:
                out.append(
                    f"{trace[0].phase}: MSDN resolution fell "
                    f"{prev.msdn_resolution} -> {event.msdn_resolution}"
                )
    return out


def check_trace_io_reconciles(ctx: OracleContext) -> list[str]:
    result = ctx.result
    events = list(result.filter_trace) + list(result.ranking_trace)
    if not events:
        return []
    total_physical = sum(e.physical_reads for e in events)
    out = []
    if total_physical != result.metrics.pages_accessed:
        out.append(
            f"per-level physical reads sum to {total_physical} but "
            f"metrics report pages_accessed={result.metrics.pages_accessed}"
        )
    total_logical = sum(e.logical_reads for e in events)
    if total_logical > result.metrics.logical_reads:
        out.append(
            f"per-level logical reads sum to {total_logical} > "
            f"metrics logical_reads={result.metrics.logical_reads}"
        )
    if result.metrics.logical_reads < result.metrics.pages_accessed:
        out.append(
            f"logical_reads {result.metrics.logical_reads} < physical "
            f"pages_accessed {result.metrics.pages_accessed}"
        )
    return out


def check_degraded_soundness(ctx: OracleContext) -> list[str]:
    """Anytime contract: a degraded answer's reported k-th upper bound
    overshoots the true k-th distance by at most ``max_error``; exact
    answers carry ``max_error == 0``."""
    result = ctx.result
    out = []
    if not result.degraded:
        if result.max_error != 0.0:
            out.append(
                f"non-degraded result carries max_error={result.max_error}"
            )
        return out
    if result.max_error < 0.0:
        out.append(f"negative max_error {result.max_error}")
    if not result.intervals or len(ctx.truth) < ctx.k:
        return out
    reported_kth_ub = result.intervals[-1][1]
    true_kth = ctx.truth[ctx.k - 1][1]
    if reported_kth_ub - true_kth > result.max_error + EPS:
        out.append(
            f"reported kth ub {reported_kth_ub:.6f} exceeds true kth "
            f"{true_kth:.6f} by more than max_error {result.max_error:.6f}"
        )
    return out


def check_landmark_admissible(ctx: OracleContext) -> list[str]:
    """Landmark (ALT) lower bounds are admissible, and enabling them
    changes nothing observable about the answer.

    Three legs, each active only when its inputs are present:

    1. **Table admissibility** — for every reported object whose mesh
       vertex is known, the landmark triangle-inequality bound
       ``max_l |dS(l,q) - dS(l,p)|`` must not exceed the exact
       surface distance (brute-force ``exact_knn`` machinery supplies
       the truth).
    2. **Reported bounds admissible** — every reported lower bound
       (landmark-tightened or not) stays below the true ``dS``; this
       leg runs in *every* mode, so an inadmissible injected bound
       (``weaken_landmark_bound``) is caught even on baseline runs.
    3. **Answer identity** — against a landmarks-off baseline of the
       same query: identical neighbour *set*, identical ``degraded``
       flag and ``budget_reason``.  Landmark bounds only *tighten*
       intervals and *skip* work, so the decided set and the
       degraded/error reporting must match.  The within-set *order*
       is not pinned: results sort by their current upper bounds, and
       skipped MSDN passes legitimately shift which candidates get
       polished — ``result_shape`` still asserts each run's own order
       is ascending by ub, and ``topk_agreement`` pins the set against
       ground truth.
    """
    dist = ctx.truth_dist
    out = []
    if ctx.landmarks is not None and ctx.object_vertices:
        query_vertex = ctx.result.query_vertex
        if isinstance(query_vertex, int):
            for obj in ctx.result.object_ids:
                ds = dist.get(obj)
                vertex = ctx.object_vertices.get(obj)
                if ds is None or vertex is None:
                    continue
                bound = ctx.landmarks.lower_bound(query_vertex, vertex)
                if bound > ds + EPS + 1e-9 * ds:
                    out.append(
                        f"object {obj}: landmark bound {bound:.6f} exceeds "
                        f"true dS {ds:.6f} (inadmissible table)"
                    )
    for obj, (lb, _ub) in zip(ctx.result.object_ids, ctx.result.intervals):
        ds = dist.get(obj)
        if ds is not None and lb > ds + EPS + 1e-9 * ds:
            out.append(
                f"object {obj}: reported lb {lb:.6f} exceeds true dS "
                f"{ds:.6f} (inadmissible bound reached the answer)"
            )
    base = ctx.baseline
    if base is not None:
        if sorted(base.object_ids) != sorted(ctx.result.object_ids):
            out.append(
                f"landmark run changed the answer set: "
                f"{ctx.result.object_ids} vs baseline {base.object_ids}"
            )
        if base.degraded != ctx.result.degraded:
            out.append(
                f"landmark run changed degraded: {ctx.result.degraded} "
                f"vs baseline {base.degraded}"
            )
        if base.budget_reason != ctx.result.budget_reason:
            out.append(
                f"landmark run changed budget_reason: "
                f"{ctx.result.budget_reason!r} vs baseline "
                f"{base.budget_reason!r}"
            )
    return out


def check_storage_degradation_sound(ctx: OracleContext) -> list[str]:
    """Degraded-mode contract under persistent storage faults.

    Four legs:

    1. ``degraded_reason`` is coherent: degraded results carry
       ``"storage"`` or ``"budget"``, exact results carry ``None``.
    2. Storage-degraded answers keep the interval sandwich — every
       reported ``[lb, ub]`` still brackets the exact ``dS`` (the
       redundant bound fallback may only substitute *sound* sources).
    3. A storage-degraded result still has the right shape (k distinct
       neighbours, ordered, valid intervals).
    4. Quarantined pages are never hammered: the injector's dead-page
       events on any page the quarantine ever held are bounded by
       ``retry_attempts x (admissions + probes)`` — fast-fails must
       not touch the disk.
    """
    result = ctx.result
    out = []
    reason = getattr(result, "degraded_reason", None)
    if result.degraded:
        if reason not in ("storage", "budget"):
            out.append(
                f"degraded result carries invalid degraded_reason {reason!r}"
            )
    elif reason is not None:
        out.append(
            f"non-degraded result carries degraded_reason {reason!r}"
        )
    if result.degraded and reason == "storage":
        out.extend(check_interval_sandwich(ctx))
        out.extend(check_result_shape(ctx))
    if (
        ctx.quarantine is not None
        and ctx.fault_injector is not None
        and ctx.retry_attempts > 0
    ):
        from repro.storage.faults import FAULT_DEAD

        dead_attempts: dict[int, int] = {}
        for event in ctx.fault_injector.log:
            if event.kind == FAULT_DEAD:
                dead_attempts[event.page_id] = (
                    dead_attempts.get(event.page_id, 0) + 1
                )
        for (_owner, page_id), hist in ctx.quarantine.history().items():
            cap = ctx.retry_attempts * (
                hist["admissions"] + hist["probes"]
            )
            seen = dead_attempts.get(page_id, 0)
            if seen > cap:
                out.append(
                    f"page {page_id}: {seen} dead-page disk attempts "
                    f"exceed the quarantine cap {cap} "
                    f"({hist['admissions']} admissions, "
                    f"{hist['probes']} probes x {ctx.retry_attempts} "
                    "attempts) — fast-fails leaked to the disk"
                )
    return out


def check_shard_consistency(ctx: OracleContext) -> list[str]:
    """Sharded execution is observably identical to monolithic.

    Active only when ``shard_baseline`` (the monolithic engine's
    result for the same query) is present.  Three legs:

    1. **Answer identity** — the sharded neighbour set equals the
       monolithic set exactly (no tie allowance: the sharded engine's
       separation test only accepts a sub-window answer it can prove
       is the unique monolithic top-k, and the full-window fallback is
       byte-identical by construction).
    2. **Flag identity** — ``degraded``, ``degraded_reason``,
       ``budget_reason`` and ``converged`` all match: sharding may
       not manufacture or hide degradation.
    3. **Interval soundness** — the sharded result's own intervals
       still sandwich the exact surface distances.  Certified
       sub-window answers rewrite their lower bounds to globally
       sound compositions (window bound vs border detour vs straight
       line); an unsound rewrite shows up here even though the
       neighbour ids agree.
    """
    base = ctx.shard_baseline
    if base is None:
        return []
    result = ctx.result
    out = []
    if sorted(base.object_ids) != sorted(result.object_ids):
        out.append(
            f"sharded answer set {sorted(result.object_ids)} != "
            f"monolithic {sorted(base.object_ids)}"
        )
    for flag in ("degraded", "degraded_reason", "budget_reason",
                 "converged"):
        got = getattr(result, flag, None)
        want = getattr(base, flag, None)
        if got != want:
            out.append(
                f"sharded run changed {flag}: {got!r} vs monolithic "
                f"{want!r}"
            )
    out.extend(check_interval_sandwich(ctx))
    return out


# ----------------------------------------------------------------------
# catalog
# ----------------------------------------------------------------------

ORACLES: dict[str, Oracle] = {
    oracle.name: oracle
    for oracle in (
        Oracle(
            "result_shape",
            check_result_shape,
            "§4.1",
            "repro.core.mr3",
            "k distinct results, valid ordered intervals",
        ),
        Oracle(
            "interval_sandwich",
            check_interval_sandwich,
            "§3.3",
            "repro.multires.dmtm / repro.msdn",
            "lb_r(q,p) <= dS(q,p) <= ub_r(q,p) vs exact geodesics",
        ),
        Oracle(
            "topk_agreement",
            check_topk_agreement,
            "§5",
            "repro.core.mr3",
            "reported set matches exact_knn modulo 3% ties",
        ),
        Oracle(
            "kth_ub_monotone",
            check_kth_ub_monotone,
            "§3.3/§4.2",
            "repro.core.ranking",
            "tracked k-th upper bound never rises within a phase",
        ),
        Oracle(
            "kth_interval_valid",
            check_kth_interval_valid,
            "§4.2",
            "repro.core.ranking",
            "tracked k-th interval well-formed; converged => finite",
        ),
        Oracle(
            "levels_ascend",
            check_levels_ascend,
            "§3.3",
            "repro.core.schedule",
            "refinement visits resolutions in ascending order",
        ),
        Oracle(
            "trace_io_reconciles",
            check_trace_io_reconciles,
            "§5 (I/O accounting)",
            "repro.obs / repro.storage.pages",
            "per-level page deltas sum to the query totals",
        ),
        Oracle(
            "degraded_soundness",
            check_degraded_soundness,
            "anytime extension",
            "repro.core.budget",
            "degraded kth ub overshoots true kth by <= max_error",
        ),
        Oracle(
            "landmark_admissible",
            check_landmark_admissible,
            "ALT extension (Goldberg & Harrelson)",
            "repro.geodesic.landmarks / repro.core.ranking",
            "landmark bounds <= true dS; answer set and degraded "
            "reporting identical to landmarks-off",
        ),
        Oracle(
            "storage_degradation_sound",
            check_storage_degradation_sound,
            "degraded-mode extension",
            "repro.storage.faults / repro.core.ranking",
            "storage-degraded answers stay sound; quarantined pages "
            "are never re-read past the probe cap",
        ),
        Oracle(
            "shard_consistency",
            check_shard_consistency,
            "sharding extension",
            "repro.shard.engine / repro.shard.stitch",
            "sharded answer sets and degraded/budget flags identical "
            "to monolithic; rewritten intervals stay sound",
        ),
    )
}


def run_oracles(
    ctx: OracleContext, names=None
) -> list[Violation]:
    """Run the named oracles (default: all) against one context."""
    chosen = names if names is not None else list(ORACLES)
    violations: list[Violation] = []
    for name in chosen:
        oracle = ORACLES[name]
        for message in oracle.check(ctx):
            violations.append(Violation(oracle=name, message=message))
    return violations
