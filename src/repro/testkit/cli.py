"""``python -m repro.testkit`` — the deterministic fuzzing driver.

Usage patterns:

* PR-time smoke (fixed seeds, fails fast)::

      python -m repro.testkit --seed-range 0:10

* nightly sweep (rotated seed window under a wall-clock budget;
  failures are shrunk and written to ``tests/cases/``)::

      python -m repro.testkit --seed-range 500:1000 --budget-seconds 300

* replay a shrunk repro case::

      python -m repro.testkit --replay tests/cases/case_seed42.json

* self-check that the oracles can actually fail (injects a known bug
  and requires it to be caught)::

      python -m repro.testkit --seed-range 0:3 --inject shrink_ub --expect-fail

Exit status: 0 when every scenario passed (or, with ``--expect-fail``,
when every scenario was caught), 1 otherwise.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.testkit.differential import MUTATORS, run_scenario
from repro.testkit.generators import generate_scenario
from repro.testkit.oracles import ORACLES
from repro.testkit.shrink import replay_case, shrink_scenario, write_case


def _parse_seed_range(text: str) -> tuple[int, int]:
    try:
        lo, hi = text.split(":")
        lo, hi = int(lo), int(hi)
    except ValueError:
        raise SystemExit(f"--seed-range wants A:B, got {text!r}")
    if hi <= lo:
        raise SystemExit(f"--seed-range {text!r} is empty")
    return lo, hi


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testkit",
        description="seeded differential fuzzing of the MR3 stack",
    )
    parser.add_argument(
        "--seed-range", default="0:10", metavar="A:B",
        help="half-open scenario seed range (default 0:10)",
    )
    parser.add_argument(
        "--budget-seconds", type=float, default=None, metavar="S",
        help="stop drawing new seeds once S wall seconds have passed",
    )
    parser.add_argument(
        "--cases-dir", default="tests/cases",
        help="where shrunk repro cases are written (default tests/cases)",
    )
    parser.add_argument(
        "--inject", default=None, choices=sorted(MUTATORS),
        help="apply a named result mutator (oracle self-check)",
    )
    parser.add_argument(
        "--expect-fail", action="store_true",
        help="invert the verdict: every scenario must be caught "
             "(used with --inject to prove the oracles can fail)",
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="report failures without minimizing them",
    )
    parser.add_argument(
        "--max-shrink-attempts", type=int, default=60,
        help="cap on failure-predicate evaluations per shrink",
    )
    parser.add_argument(
        "--replay", default=None, metavar="CASE.json",
        help="re-run one repro case instead of fuzzing",
    )
    parser.add_argument(
        "--list-oracles", action="store_true",
        help="print the invariant catalog and exit",
    )
    return parser


def _print_catalog() -> None:
    width = max(len(name) for name in ORACLES)
    for name, oracle in ORACLES.items():
        print(f"{name:<{width}}  {oracle.paper_section:<22} "
              f"{oracle.module:<34} {oracle.description}")


def _run_replay(path: str) -> int:
    report = replay_case(path)
    print(report.summary())
    for finding in report.findings:
        print(f"  {finding}")
    return 0 if report.ok else 1


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_oracles:
        _print_catalog()
        return 0
    if args.replay:
        return _run_replay(args.replay)

    lo, hi = _parse_seed_range(args.seed_range)
    start = time.monotonic()
    ran = caught = passed = 0
    failures = []
    for seed in range(lo, hi):
        if (
            args.budget_seconds is not None
            and time.monotonic() - start >= args.budget_seconds
        ):
            print(
                f"budget of {args.budget_seconds:.0f}s reached after "
                f"{ran} scenarios (seeds {lo}:{seed})"
            )
            break
        scenario = generate_scenario(seed)
        report = run_scenario(scenario, mutator=args.inject)
        ran += 1
        print(report.summary())
        if report.ok:
            passed += 1
            continue
        caught += 1
        for finding in report.findings[:8]:
            print(f"  {finding}")
        if len(report.findings) > 8:
            print(f"  ... and {len(report.findings) - 8} more")
        if args.expect_fail:
            continue
        case_scenario = scenario
        if not args.no_shrink:
            failing_modes = {"baseline"} | {
                f.mode for f in report.findings
            }
            outcome = shrink_scenario(
                scenario,
                lambda s: not run_scenario(
                    s, mutator=args.inject, modes=failing_modes
                ).ok,
                max_attempts=args.max_shrink_attempts,
            )
            case_scenario = outcome.scenario
            print(
                f"  shrunk in {outcome.steps} steps "
                f"({outcome.attempts} evaluations): "
                f"{case_scenario.describe()}"
            )
        path = write_case(
            case_scenario,
            args.cases_dir,
            findings=report.findings,
            mutator=args.inject,
        )
        failures.append(path)
        print(f"  repro case written: {path}")

    elapsed = time.monotonic() - start
    if args.expect_fail:
        missed = ran - caught
        print(
            f"self-check: {caught}/{ran} scenarios caught the injected "
            f"bug in {elapsed:.1f}s"
        )
        return 0 if ran and missed == 0 else 1
    print(
        f"{passed}/{ran} scenarios passed all oracles in {elapsed:.1f}s"
    )
    if failures:
        print("repro cases:")
        for path in failures:
            print(f"  {path}")
    return 0 if ran and caught == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
