"""Differential engine-matrix runner.

One :class:`~repro.testkit.generators.Scenario` is executed under
every execution-mode pair the repo documents a contract for, and each
pair's identity (or bound) is asserted:

==================  =================================================
pair                contract
==================  =================================================
CSR vs reference    bit-identical results, intervals and logical
kernels             page reads (PR 4's kernel transparency)
frontier vs CSR     the bucketed numpy kernels carry the same
kernels             bit-identity contract, logical reads included
batch w=N vs        bit-identical per-query results, intervals and
sequential          logical reads (PR 2's bound-cache transparency)
faulted + retry     identical answers to the clean engine; fault
vs clean            counters reconcile (``retries_total ==
                    injected_total - reads_failed_total``, PR 3)
budgeted vs         a budget that never tripped is bit-identical;
exhaustive          a tripped budget still satisfies every oracle
                    and carries a sound ``max_error`` (PR 3)
landmarks on vs     identical neighbour ids and degraded reporting,
off                 landmark bounds admissible vs exact geodesics
                    (``landmark_admissible``); the landmarks-on run
                    itself stays bit-identical across the kernel and
                    batch axes (PR 7)
persistent          queries never crash: every answer is exact or
(kill-list) vs      ``degraded=True`` with ``degraded_reason=
clean               "storage"`` and sound intervals; quarantined
                    pages are never re-read past the probe cap
                    (``storage_degradation_sound``)
sharded vs          identical answer sets and degraded/budget flags,
monolithic          rewritten intervals stay sound
                    (``shard_consistency``); the sharded run itself
                    keeps its identity across the kernel, frontier,
                    batch and transient-fault axes (tentpole PR)
==================  =================================================

Every mode's results additionally run the full invariant-oracle
catalog (:mod:`repro.testkit.oracles`) against brute-force exact
ground truth.

``mutator`` is the injected-bug seam: a named transform applied to
every produced :class:`~repro.core.mr3.QueryResult` before checking,
simulating a deterministic implementation bug (e.g. an unsound upper
bound).  The self-check in the CLI and the demonstration test use it
to prove the oracles actually catch mutations — a harness that can't
fail is not a harness.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field, replace

from repro.core.baseline import exact_knn
from repro.core.batch import BatchQueryExecutor
from repro.core.budget import QueryBudget
from repro.errors import QueryError
from repro.geodesic import use_kernel_mode
from repro.geodesic.csr import use_reference_kernels
from repro.testkit.generators import (
    Scenario,
    build_engine,
    build_mesh,
    build_sharded_engine,
    resolve_queries,
)
from repro.testkit.oracles import OracleContext, Violation, run_oracles

EPS = 1e-6


# ----------------------------------------------------------------------
# injected-bug mutators
# ----------------------------------------------------------------------


def _mutate_shrink_ub(result):
    """Simulate an unsound upper bound: every reported ub is cut by
    10 % — a converged interval then sits below the true distance."""
    return replace(
        result,
        intervals=[(lb, 0.9 * ub) for lb, ub in result.intervals],
    )


def _mutate_inflate_lb(result):
    """Simulate an unsound lower bound (lb above the true dS)."""
    return replace(
        result,
        intervals=[(1.1 * lb + 1.0, ub) for lb, ub in result.intervals],
    )


def _mutate_drop_worst(result):
    """Simulate a truncated answer: the k-th neighbour is lost."""
    if len(result.object_ids) < 2:
        return result
    return replace(
        result,
        object_ids=result.object_ids[:-1],
        intervals=result.intervals[:-1],
    )


def _mutate_weaken_landmark_bound(result):
    """Simulate an inadmissible landmark lower bound: the last
    reported neighbour's interval is replaced by a point above any
    true surface distance (``ub >= dS``, so ``1.05*ub + 1 > dS``
    always) — exactly what a buggy landmark table that *over*-bounds
    would produce after the lb is folded into the interval."""
    if not result.intervals:
        return result
    _lb, ub = result.intervals[-1]
    if not math.isfinite(ub):
        return result
    bad = 1.05 * ub + 1.0
    return replace(
        result,
        intervals=list(result.intervals[:-1]) + [(bad, bad)],
    )


#: Named result mutators usable from the CLI (``--inject``), the
#: shrinker's repro cases and the demonstration tests.
MUTATORS = {
    "shrink_ub": _mutate_shrink_ub,
    "inflate_lb": _mutate_inflate_lb,
    "drop_worst": _mutate_drop_worst,
    "weaken_landmark_bound": _mutate_weaken_landmark_bound,
}


def get_mutator(name: str | None):
    if name is None:
        return None
    try:
        return MUTATORS[name]
    except KeyError:
        raise QueryError(
            f"unknown mutator {name!r}; use one of {sorted(MUTATORS)}"
        ) from None


# ----------------------------------------------------------------------
# report
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Finding:
    """One violation with its execution-mode and query context."""

    mode: str
    query_index: int
    violation: Violation

    def __str__(self) -> str:
        return f"{self.mode} query#{self.query_index} {self.violation}"


@dataclass
class ScenarioReport:
    """Outcome of one scenario's full differential matrix."""

    scenario: Scenario
    findings: list[Finding] = field(default_factory=list)
    modes_run: list[str] = field(default_factory=list)
    queries_run: int = 0
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.findings

    def summary(self) -> str:
        state = "OK" if self.ok else f"FAIL ({len(self.findings)})"
        return (
            f"{state:<9} {self.scenario.describe()} "
            f"modes={','.join(self.modes_run)} {self.seconds:.1f}s"
        )


def _fingerprint(result):
    return (
        tuple(result.object_ids),
        tuple(tuple(iv) for iv in result.intervals),
        result.metrics.logical_reads,
    )


def _compare(mode, index, base, other, findings, *, logical=True) -> None:
    b, o = _fingerprint(base), _fingerprint(other)
    labels = ("object ids", "intervals", "logical reads")
    for which, (lhs, rhs) in enumerate(zip(b, o)):
        if which == 2 and not logical:
            continue
        if lhs != rhs:
            findings.append(
                Finding(
                    mode=mode,
                    query_index=index,
                    violation=Violation(
                        oracle="mode_identity",
                        message=(
                            f"{labels[which]} diverged from the "
                            f"sequential baseline: {rhs!r} != {lhs!r}"
                        ),
                    ),
                )
            )


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------


def run_scenario(
    scenario: Scenario,
    oracle_names=None,
    mutator=None,
    modes=None,
) -> ScenarioReport:
    """Execute one scenario under the full mode matrix.

    ``modes`` restricts the matrix (default: every applicable mode);
    ``mutator`` is a named key into :data:`MUTATORS` or a callable
    applied to every produced result before checking.
    """
    if isinstance(mutator, str):
        mutator = get_mutator(mutator)
    mutate = mutator if mutator is not None else (lambda r: r)
    wanted = set(modes) if modes is not None else None

    def active(mode: str) -> bool:
        return wanted is None or mode in wanted

    start = time.perf_counter()
    report = ScenarioReport(scenario=scenario)
    mesh = build_mesh(scenario.terrain)
    engine = build_engine(scenario, mesh)
    queries = resolve_queries(scenario, mesh, engine.objects)
    report.queries_run = len(queries)

    # Exact ground truth: the full ranking per query (ascending dS).
    truths = [
        exact_knn(mesh, engine.objects, q.vertex, len(engine.objects))
        for q in queries
    ]

    def check(mode: str, index: int, result, **extra) -> None:
        ctx = OracleContext(
            result=result,
            truth=truths[index],
            k=queries[index].k,
            exact_sets=scenario.terrain.flat,
            **extra,
        )
        for violation in run_oracles(ctx, oracle_names):
            report.findings.append(
                Finding(mode=mode, query_index=index, violation=violation)
            )

    # ------------------------------------------------------------------
    # baseline: sequential, CSR kernels, clean storage, unbudgeted
    # ------------------------------------------------------------------
    baseline = []
    report.modes_run.append("baseline")
    for index, q in enumerate(queries):
        result = mutate(
            engine.query(q.vertex, q.k, step_length=q.step_length)
        )
        baseline.append(result)
        check("baseline", index, result)

    # ------------------------------------------------------------------
    # CSR vs reference kernels: bit-identity on the same engine
    # ------------------------------------------------------------------
    if active("kernel"):
        report.modes_run.append("kernel")
        with use_reference_kernels():
            for index, q in enumerate(queries):
                result = mutate(
                    engine.query(q.vertex, q.k, step_length=q.step_length)
                )
                check("kernel", index, result)
                _compare("kernel", index, baseline[index], result,
                         report.findings)

    # ------------------------------------------------------------------
    # frontier vs CSR kernels: bit-identity on the same engine (the
    # bucketed numpy kernels share the CSR kernels' full contract,
    # logical page reads included)
    # ------------------------------------------------------------------
    if active("frontier"):
        report.modes_run.append("frontier")
        with use_kernel_mode("frontier"):
            for index, q in enumerate(queries):
                result = mutate(
                    engine.query(q.vertex, q.k, step_length=q.step_length)
                )
                check("frontier", index, result)
                _compare("frontier", index, baseline[index], result,
                         report.findings)

    # ------------------------------------------------------------------
    # batch w=N vs sequential: bit-identity through the executor
    # ------------------------------------------------------------------
    if active("batch") and len(queries) > 0:
        report.modes_run.append("batch")
        executor = BatchQueryExecutor(
            engine, workers=max(1, scenario.batch_workers)
        )
        batch_report = executor.run(
            [
                {"vertex": q.vertex, "k": q.k, "step_length": q.step_length}
                for q in queries
            ]
        )
        for error in batch_report.errors:
            report.findings.append(
                Finding(
                    mode="batch",
                    query_index=error.index,
                    violation=Violation(
                        oracle="mode_identity",
                        message=f"batch query failed: {error.kind}: "
                                f"{error.message}",
                    ),
                )
            )
        for index, result in enumerate(batch_report.results):
            if result is None:
                continue
            result = mutate(result)
            check("batch", index, result)
            _compare("batch", index, baseline[index], result,
                     report.findings)

    # ------------------------------------------------------------------
    # landmarks on vs off: same answers, admissible bounds — and the
    # landmark run must itself stay bit-identical across the kernel
    # and batch axes (the landmarks-on/off axis composes with both)
    # ------------------------------------------------------------------
    if active("landmarks"):
        report.modes_run.append("landmarks")
        lm_engine = engine.with_landmarks(4)
        object_vertices = {
            int(obj): engine.objects.vertex_of(int(obj))
            for obj, _d in (truths[0] if truths else [])
        }
        lm_results = []
        for index, q in enumerate(queries):
            result = mutate(
                lm_engine.query(q.vertex, q.k, step_length=q.step_length)
            )
            lm_results.append(result)
            check(
                "landmarks", index, result,
                landmarks=lm_engine.landmarks,
                object_vertices=object_vertices,
                baseline=baseline[index],
            )
        with use_reference_kernels():
            for index, q in enumerate(queries):
                result = mutate(
                    lm_engine.query(q.vertex, q.k, step_length=q.step_length)
                )
                _compare("landmarks+kernel", index, lm_results[index],
                         result, report.findings)
        executor = BatchQueryExecutor(
            lm_engine, workers=max(1, scenario.batch_workers)
        )
        batch_report = executor.run(
            [
                {"vertex": q.vertex, "k": q.k, "step_length": q.step_length}
                for q in queries
            ]
        )
        for error in batch_report.errors:
            report.findings.append(
                Finding(
                    mode="landmarks+batch",
                    query_index=error.index,
                    violation=Violation(
                        oracle="mode_identity",
                        message=f"batch query failed: {error.kind}: "
                                f"{error.message}",
                    ),
                )
            )
        for index, result in enumerate(batch_report.results):
            if result is None:
                continue
            _compare("landmarks+batch", index, lm_results[index],
                     mutate(result), report.findings)

    # ------------------------------------------------------------------
    # budgeted vs exhaustive: identity when untripped, bound otherwise
    # ------------------------------------------------------------------
    if active("budget") and scenario.budget_pages is not None:
        report.modes_run.append("budget")
        budget = QueryBudget(max_pages=scenario.budget_pages)
        for index, q in enumerate(queries):
            result = mutate(
                engine.query(
                    q.vertex, q.k, step_length=q.step_length, budget=budget
                )
            )
            check("budget", index, result)
            if result.budget_reason is None:
                # The budget never tripped: the documented identity.
                _compare("budget", index, baseline[index], result,
                         report.findings)

    # ------------------------------------------------------------------
    # faulted + retry vs clean: identical answers, counters reconcile
    # ------------------------------------------------------------------
    if active("faults") and scenario.fault is not None:
        report.modes_run.append("faults")
        faulted = build_engine(scenario, mesh, with_faults=True)
        for index, q in enumerate(queries):
            result = mutate(
                faulted.query(q.vertex, q.k, step_length=q.step_length)
            )
            check("faults", index, result)
            _compare("faults", index, baseline[index], result,
                     report.findings)
        stats = faulted.pages.fault_stats
        injector = faulted.pages.fault_injector
        if stats.reads_failed_total:
            report.findings.append(
                Finding(
                    mode="faults", query_index=-1,
                    violation=Violation(
                        oracle="fault_recovery",
                        message=(
                            f"{stats.reads_failed_total} reads exhausted "
                            f"the {scenario.fault.retry_attempts}-attempt "
                            "retry policy"
                        ),
                    ),
                )
            )
        expected = injector.injected_total - stats.reads_failed_total
        if stats.retries_total != expected:
            report.findings.append(
                Finding(
                    mode="faults", query_index=-1,
                    violation=Violation(
                        oracle="fault_recovery",
                        message=(
                            f"retries_total={stats.retries_total} != "
                            f"injected_total-"
                            f"reads_failed_total={expected}"
                        ),
                    ),
                )
            )

    # ------------------------------------------------------------------
    # persistent faults (kill-list): no crash, answers exact or
    # storage-degraded-and-sound, quarantined pages never hammered
    # ------------------------------------------------------------------
    if (
        active("persistent")
        and scenario.fault is not None
        and scenario.fault.dead_page_fraction > 0.0
    ):
        from repro.errors import SurfKnnError

        report.modes_run.append("persistent")
        dead_engine = build_engine(
            scenario, mesh, with_faults=True, persistent=True
        )
        for index, q in enumerate(queries):
            try:
                result = mutate(
                    dead_engine.query(q.vertex, q.k, step_length=q.step_length)
                )
            except SurfKnnError as exc:
                report.findings.append(
                    Finding(
                        mode="persistent", query_index=index,
                        violation=Violation(
                            oracle="storage_degradation_sound",
                            message=(
                                "degraded-mode query crashed instead of "
                                f"degrading: {type(exc).__name__}: {exc}"
                            ),
                        ),
                    )
                )
                continue
            if result.degraded and result.degraded_reason != "storage":
                report.findings.append(
                    Finding(
                        mode="persistent", query_index=index,
                        violation=Violation(
                            oracle="storage_degradation_sound",
                            message=(
                                "unbudgeted kill-list query degraded with "
                                f"reason {result.degraded_reason!r}, "
                                "expected 'storage'"
                            ),
                        ),
                    )
                )
            check(
                "persistent", index, result,
                quarantine=dead_engine.pages.quarantine,
                fault_injector=dead_engine.pages.fault_injector,
                retry_attempts=scenario.fault.retry_attempts,
            )

    # ------------------------------------------------------------------
    # sharded vs monolithic: identical answer sets and flags, sound
    # rewritten intervals — composed with the kernel, frontier, batch
    # and transient-fault axes (budget and kill-list legs stay
    # monolithic: budget accounting and dead-page schedules are
    # whole-store properties a tile split deliberately changes)
    # ------------------------------------------------------------------
    if active("shards") and scenario.terrain.tiles > 1:
        report.modes_run.append("shards")
        sharded = build_sharded_engine(scenario)
        shard_results = []
        for index, q in enumerate(queries):
            result = mutate(
                sharded.query(q.vertex, q.k, step_length=q.step_length)
            )
            shard_results.append(result)
            check(
                "shards", index, result, shard_baseline=baseline[index]
            )
        with use_reference_kernels():
            for index, q in enumerate(queries):
                result = mutate(
                    sharded.query(q.vertex, q.k, step_length=q.step_length)
                )
                check(
                    "shards+kernel", index, result,
                    shard_baseline=baseline[index],
                )
        with use_kernel_mode("frontier"):
            for index, q in enumerate(queries):
                result = mutate(
                    sharded.query(q.vertex, q.k, step_length=q.step_length)
                )
                check(
                    "shards+frontier", index, result,
                    shard_baseline=baseline[index],
                )
        executor = BatchQueryExecutor(
            sharded, workers=max(1, scenario.batch_workers)
        )
        batch_report = executor.run(
            [
                {"vertex": q.vertex, "k": q.k, "step_length": q.step_length}
                for q in queries
            ]
        )
        for error in batch_report.errors:
            report.findings.append(
                Finding(
                    mode="shards+batch",
                    query_index=error.index,
                    violation=Violation(
                        oracle="shard_consistency",
                        message=f"batch query failed: {error.kind}: "
                                f"{error.message}",
                    ),
                )
            )
        for index, result in enumerate(batch_report.results):
            if result is None:
                continue
            check(
                "shards+batch", index, mutate(result),
                shard_baseline=baseline[index],
            )
        if (
            scenario.fault is not None
            and scenario.fault.dead_page_fraction == 0.0
        ):
            faulted_sharded = build_sharded_engine(
                scenario, with_faults=True
            )
            for index, q in enumerate(queries):
                result = mutate(
                    faulted_sharded.query(
                        q.vertex, q.k, step_length=q.step_length
                    )
                )
                check(
                    "shards+faults", index, result,
                    shard_baseline=baseline[index],
                )

    report.seconds = time.perf_counter() - start
    return report


def scenario_fails(scenario: Scenario, **kwargs) -> bool:
    """Failure predicate used by the shrinker."""
    return not run_scenario(scenario, **kwargs).ok
