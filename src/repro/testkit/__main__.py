"""Entry point: ``python -m repro.testkit``."""

import sys

from repro.testkit.cli import main

sys.exit(main())
