"""Seeded scenario generation — the single source of truth for test
terrain, object and query construction.

Two layers live here:

* **standard builders** — the named deterministic meshes and engines
  the test suite and benchmarks share (``standard_mesh`` /
  ``standard_engine``).  These used to be re-implemented ad hoc in
  ``tests/conftest.py``, ``tests/test_differential_mr3.py``,
  ``tests/test_geodesic_csr.py`` and ``benchmarks/conftest.py``;
  promoting them keeps every suite querying byte-identical structures.
* **fuzzing scenarios** — :class:`Scenario`, a fully-seeded
  description of one end-to-end test case (terrain parameters, object
  placement pattern, query specs, fault schedule, budget) with a
  stable ``to_json``/``from_json`` round trip so a failing case can be
  written to disk and replayed bit-for-bit.

Everything is a pure function of the seeds inside the spec: the same
``Scenario`` always builds the same mesh, objects and queries.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, field, replace

import numpy as np

from repro.core.engine import SurfaceKNNEngine
from repro.core.objects import ObjectSet
from repro.errors import QueryError
from repro.terrain.dem import DemGrid
from repro.terrain.mesh import TriangleMesh
from repro.terrain.synthetic import (
    bearhead_like,
    eagle_peak_like,
    fractal_dem,
    gaussian_hills_dem,
)

SCENARIO_SCHEMA = "repro.testkit.scenario/v1"

# ----------------------------------------------------------------------
# standard builders (promoted from tests/ and benchmarks/)
# ----------------------------------------------------------------------

_mesh_cache: dict[tuple, TriangleMesh] = {}
_engine_cache: dict[tuple, SurfaceKNNEngine] = {}


def _dem_for(kind: str, size: int, **overrides) -> DemGrid:
    if kind == "bearhead":
        return bearhead_like(size=size, **overrides)
    if kind == "eagle_peak":
        return eagle_peak_like(size=size, **overrides)
    if kind == "fractal":
        return fractal_dem(size=size, **overrides)
    if kind == "gaussian":
        return gaussian_hills_dem(size=size, **overrides)
    raise QueryError(
        f"unknown terrain kind {kind!r}; use 'bearhead', 'eagle_peak', "
        "'fractal' or 'gaussian'"
    )


def standard_mesh(name: str, size: int = 17) -> TriangleMesh:
    """Cached named mesh shared across test modules.

    Names:

    * ``"flat"`` — zero-relief grid (geodesics equal Euclidean);
    * ``"rough"`` — the rugged 17x17 fractal the differential suite
      uses (``relief=700, roughness=0.75, seed=5``);
    * ``"tilted"`` — planar but tilted (developable: dS == dE);
    * ``"BH"`` / ``"EP"`` — Bearhead-like / Eagle-Peak-like stand-ins.
    """
    key = (name, size)
    mesh = _mesh_cache.get(key)
    if mesh is not None:
        return mesh
    if name == "flat":
        dem = fractal_dem(size=size, relief=0.0, seed=1)
    elif name == "rough":
        dem = fractal_dem(size=size, relief=700.0, roughness=0.75, seed=5)
    elif name == "tilted":
        heights = np.add.outer(np.arange(size), np.arange(size)) * 30.0
        dem = DemGrid(heights, cell_size=90.0)
    elif name == "BH":
        dem = bearhead_like(size=size)
    elif name == "EP":
        dem = eagle_peak_like(size=size)
    else:
        raise QueryError(
            f"unknown standard mesh {name!r}; use 'flat', 'rough', "
            "'tilted', 'BH' or 'EP'"
        )
    mesh = TriangleMesh.from_dem(dem)
    _mesh_cache[key] = mesh
    return mesh


def standard_engine(
    name: str,
    size: int = 17,
    density: float = 10.0,
    seed: int = 3,
    fresh: bool = False,
    **kwargs,
) -> SurfaceKNNEngine:
    """Cached engine over a :func:`standard_mesh` terrain.

    ``fresh=True`` bypasses the engine cache (the mesh stays shared) —
    use it for suites that mutate engine state (``set_objects``
    sweeps), so the mutation cannot leak into other modules.

    A ``landmarks=`` kwarg is handled specially: the landmark-free
    base engine is built (or fetched) under its own cache key first,
    then cloned with :meth:`SurfaceKNNEngine.with_landmarks` — DMTM,
    MSDN and storage are never rebuilt just to attach landmark
    tables, and the landmark variant gets its own cache slot.
    """
    landmarks = kwargs.pop("landmarks", None)
    key = (name, size, density, seed, tuple(sorted(kwargs.items())))
    if landmarks is not None:
        base = standard_engine(
            name, size=size, density=density, seed=seed, fresh=fresh,
            **kwargs,
        )
        lm_key = key + (("landmarks", landmarks),)
        if not fresh:
            engine = _engine_cache.get(lm_key)
            if engine is not None:
                return engine
        engine = base.with_landmarks(landmarks)
        if not fresh:
            _engine_cache[lm_key] = engine
        return engine
    if not fresh:
        engine = _engine_cache.get(key)
        if engine is not None:
            return engine
    engine = SurfaceKNNEngine(
        standard_mesh(name, size), density=density, seed=seed, **kwargs
    )
    if not fresh:
        _engine_cache[key] = engine
    return engine


# ----------------------------------------------------------------------
# fuzzing scenarios
# ----------------------------------------------------------------------

TERRAIN_KINDS = ("fractal", "bearhead", "eagle_peak", "gaussian")
OBJECT_PATTERNS = ("uniform", "clustered", "colocated", "collinear")


@dataclass(frozen=True)
class TerrainSpec:
    """Seeded DEM parameters for one scenario.

    ``tiles > 1`` adds a sharding axis: the differential matrix runs
    a :class:`~repro.shard.engine.ShardedEngine` over a
    ``tiles x tiles`` grid of the same DEM next to the monolithic
    engine (``tiles = 1`` keeps the scenario shard-free).
    """

    kind: str = "fractal"
    size: int = 13
    cell_size: float = 90.0
    relief: float = 500.0
    roughness: float = 0.6
    ridged: bool = False
    seed: int = 0
    tiles: int = 1

    @property
    def flat(self) -> bool:
        """Zero-relief terrain: surface distances equal Euclidean, so
        oracle set comparisons may demand exact answers."""
        return self.relief == 0.0


@dataclass(frozen=True)
class ObjectSpec:
    """Seeded object placement.

    Patterns stress different parts of the 2D filter and the ranking
    loop: ``uniform`` is the paper's workload; ``clustered`` packs
    objects around a few centres (dense tie regions); ``colocated``
    packs *all* objects around one centre (maximal ties, degenerate
    2D filter circles); ``collinear`` places them on a straight line
    (degenerate R-tree boxes).

    ``border_tiles > 1`` overlays border pressure on any pattern: a
    fraction of the objects is re-aimed at the interior cut lines of a
    ``border_tiles x border_tiles`` tile grid (on the line and
    straddling it by about one cell) — the placement the sharded
    engine's stitching logic finds hardest.  ``0`` leaves the pattern
    and its RNG stream untouched.
    """

    pattern: str = "uniform"
    count: int = 12
    seed: int = 0
    clusters: int = 3
    spread: float = 0.08  # cluster sigma, fraction of terrain extent
    border_tiles: int = 0


@dataclass(frozen=True)
class QuerySpec:
    """One query: a relative position in the unit square (snapped to
    the nearest mesh vertex at build time) plus k and the schedule."""

    fx: float
    fy: float
    k: int = 3
    step_length: int = 1


@dataclass(frozen=True)
class FaultSpec:
    """Seeded fault schedule for the faulted differential leg.

    ``dead_page_fraction > 0`` adds a *persistent* component: that
    fraction of the DMTM/MSDN pages is put on the injector's
    kill-list (every read fails, retries never help) — the
    degraded-mode leg of the differential matrix runs against it.
    """

    seed: int = 0
    transient_rate: float = 0.05
    corrupt_rate: float = 0.05
    latency_rate: float = 0.0
    max_faults: int = 64
    retry_attempts: int = 8
    dead_page_fraction: float = 0.0
    dead_page_seed: int = 0


@dataclass(frozen=True)
class Scenario:
    """A complete, replayable fuzzing case.

    Every field is either a literal or a seed, so the scenario is a
    pure recipe: building it twice gives byte-identical meshes,
    object sets, fault schedules and query answers.
    """

    seed: int
    terrain: TerrainSpec = field(default_factory=TerrainSpec)
    objects: ObjectSpec = field(default_factory=ObjectSpec)
    queries: tuple[QuerySpec, ...] = ()
    fault: FaultSpec | None = None
    budget_pages: int | None = None
    batch_workers: int = 4

    # ------------------------------------------------------------------
    # stable JSON round trip
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        out = asdict(self)
        out["queries"] = [asdict(q) for q in self.queries]
        out["schema"] = SCENARIO_SCHEMA
        return out

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, no whitespace drift)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        schema = data.get("schema", SCENARIO_SCHEMA)
        if schema != SCENARIO_SCHEMA:
            raise QueryError(f"unknown scenario schema {schema!r}")
        return cls(
            seed=int(data["seed"]),
            terrain=TerrainSpec(**data["terrain"]),
            objects=ObjectSpec(**data["objects"]),
            queries=tuple(QuerySpec(**q) for q in data["queries"]),
            fault=FaultSpec(**data["fault"]) if data.get("fault") else None,
            budget_pages=data.get("budget_pages"),
            batch_workers=int(data.get("batch_workers", 1)),
        )

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------

    def max_k(self) -> int:
        return max((q.k for q in self.queries), default=1)

    def describe(self) -> str:
        """One-line summary for CLI output."""
        fault = "faults" if self.fault else "clean"
        budget = (
            f"budget={self.budget_pages}p"
            if self.budget_pages is not None
            else "unbudgeted"
        )
        tiled = (
            f" tiles={self.terrain.tiles}x{self.terrain.tiles}"
            if self.terrain.tiles > 1
            else ""
        )
        return (
            f"seed={self.seed} {self.terrain.kind}[{self.terrain.size}] "
            f"{self.objects.pattern} x{self.objects.count} "
            f"queries={len(self.queries)} kmax={self.max_k()} "
            f"{fault} {budget} w={self.batch_workers}{tiled}"
        )


def generate_scenario(seed: int) -> Scenario:
    """Draw one scenario from the seeded distribution.

    Sizes are deliberately small (9–17 samples per side) so a
    scenario's full differential matrix — including brute-force exact
    ground truth — runs in a couple of seconds.
    """
    rng = random.Random(seed)
    kind = rng.choice(TERRAIN_KINDS)
    size = rng.choice((9, 9, 11, 13, 13, 17))
    flat = kind == "fractal" and rng.random() < 0.2
    terrain = TerrainSpec(
        kind=kind,
        size=size,
        relief=0.0 if flat else round(rng.uniform(150.0, 900.0), 1),
        roughness=round(rng.uniform(0.45, 0.8), 2),
        ridged=rng.random() < 0.3,
        seed=rng.randrange(10_000),
    )
    pattern = rng.choice(OBJECT_PATTERNS)
    # Enough objects that k-NN plus the degraded-kth oracle are
    # meaningful, few enough that exact_knn stays instant.
    count = rng.randint(6, min(28, size * size // 5))
    objects = ObjectSpec(
        pattern=pattern,
        count=count,
        seed=rng.randrange(10_000),
        clusters=rng.randint(2, 4),
        spread=round(rng.uniform(0.04, 0.15), 3),
    )
    queries = []
    for _ in range(rng.randint(1, 3)):
        queries.append(
            QuerySpec(
                fx=round(rng.uniform(0.1, 0.9), 3),
                fy=round(rng.uniform(0.1, 0.9), 3),
                k=rng.randint(1, max(1, min(6, count - 1))),
                step_length=rng.choice((1, 2, 3)),
            )
        )
    fault = None
    if rng.random() < 0.6:
        fault = FaultSpec(
            seed=rng.randrange(10_000),
            transient_rate=round(rng.uniform(0.0, 0.12), 3),
            corrupt_rate=round(rng.uniform(0.0, 0.12), 3),
            latency_rate=round(rng.choice((0.0, 0.05)), 3),
            max_faults=rng.choice((16, 64, 256)),
        )
    budget_pages = rng.choice((None, None, 4, 12, 40))
    batch_workers = rng.choice((2, 4))
    # Persistent-fault component, drawn last so every draw above sees
    # the exact stream position it saw before this field existed —
    # pre-existing seeds keep producing byte-identical scenarios.
    if fault is not None and rng.random() < 0.35:
        fault = replace(
            fault,
            dead_page_fraction=round(rng.uniform(0.02, 0.10), 3),
            dead_page_seed=rng.randrange(10_000),
        )
    # Sharding component, also drawn after every pre-existing field so
    # old seeds keep their byte-identical scenarios.  Half the tiled
    # scenarios add border-straddling object pressure.
    tiles = rng.choice((1, 1, 1, 2, 2, 3))
    if tiles > 1:
        terrain = replace(terrain, tiles=tiles)
        if rng.random() < 0.5:
            objects = replace(objects, border_tiles=tiles)
    return Scenario(
        seed=seed,
        terrain=terrain,
        objects=objects,
        queries=tuple(queries),
        fault=fault,
        budget_pages=budget_pages,
        batch_workers=batch_workers,
    )


# ----------------------------------------------------------------------
# building a scenario
# ----------------------------------------------------------------------


def build_dem(terrain: TerrainSpec) -> DemGrid:
    """DEM for a terrain spec (uncached — scenarios are throwaway).

    The sharded engine consumes the DEM directly; :func:`build_mesh`
    triangulates the very same grid, so monolithic and sharded legs
    of a scenario always see one terrain.
    """
    if terrain.kind == "fractal":
        return fractal_dem(
            size=terrain.size,
            cell_size=terrain.cell_size,
            relief=terrain.relief,
            roughness=terrain.roughness,
            seed=terrain.seed,
            ridged=terrain.ridged,
        )
    if terrain.kind == "gaussian":
        return gaussian_hills_dem(
            size=terrain.size,
            cell_size=terrain.cell_size,
            relief=max(terrain.relief, 1.0),
            seed=terrain.seed,
        )
    return _dem_for(terrain.kind, terrain.size, seed=terrain.seed)


def build_mesh(terrain: TerrainSpec) -> TriangleMesh:
    """Mesh for a terrain spec (uncached — scenarios are throwaway)."""
    return TriangleMesh.from_dem(build_dem(terrain))


def build_objects(mesh: TriangleMesh, spec: ObjectSpec) -> ObjectSet:
    """Place objects on the mesh following the spec's pattern.

    All patterns snap to distinct mesh vertices (the ObjectSet
    contract); ``colocated`` therefore degenerates to the tight ring
    of vertices around one centre — maximal surface-distance ties.
    """
    if spec.pattern not in OBJECT_PATTERNS:
        raise QueryError(
            f"unknown object pattern {spec.pattern!r}; "
            f"use one of {OBJECT_PATTERNS}"
        )
    count = min(spec.count, mesh.num_vertices)
    rng = np.random.default_rng(spec.seed)
    bounds = mesh.xy_bounds()
    lo = np.asarray(bounds.lo, dtype=float)
    hi = np.asarray(bounds.hi, dtype=float)
    extent = float(np.linalg.norm(hi - lo))
    span = hi - lo
    # Interior tile-cut lines for border-pressure placement.  Computed
    # only when requested: border_tiles == 0 must leave every RNG draw
    # below at the stream position it had before this field existed.
    cut_lines: tuple[int, ...] = ()
    cell_xy = span  # placeholder; overwritten when cut_lines is set
    if spec.border_tiles > 1:
        from repro.shard.tiles import tile_cuts

        side = max(int(round(np.sqrt(mesh.num_vertices))), 2)
        cell_xy = span / (side - 1)
        cut_lines = tile_cuts(side, spec.border_tiles)[1:-1]

    def sample_xy() -> np.ndarray:
        if cut_lines and rng.random() < 0.6:
            # On or straddling a tile border: pick a cut line, walk
            # uniformly along it, jitter across by about one cell.
            axis = int(rng.integers(2))
            cut = cut_lines[int(rng.integers(len(cut_lines)))]
            xy = np.empty(2)
            xy[1 - axis] = rng.uniform(lo[1 - axis], hi[1 - axis])
            xy[axis] = (
                lo[axis]
                + cut * cell_xy[axis]
                + rng.normal(0.0, 0.8) * cell_xy[axis]
            )
            return xy
        if spec.pattern == "uniform":
            return rng.uniform(lo, hi)
        if spec.pattern == "clustered":
            centers = _pattern_centers(rng, lo, hi, spec.clusters)
            center = centers[int(rng.integers(len(centers)))]
            return center + rng.normal(0.0, spec.spread * extent, size=2)
        if spec.pattern == "colocated":
            center = _pattern_centers(rng, lo, hi, 1)[0]
            return center + rng.normal(0.0, 0.02 * extent, size=2)
        # collinear: points along a fixed diagonal line with jitter.
        t = rng.uniform(0.05, 0.95)
        point = lo + t * (hi - lo)
        return point + rng.normal(0.0, 0.01 * extent, size=2)

    taken: set[int] = set()
    chosen: list[int] = []
    attempts = 0
    while len(chosen) < count and attempts < count * 60:
        attempts += 1
        xy = np.clip(sample_xy(), lo, hi)
        vid = mesh.nearest_vertex(tuple(xy))
        if vid not in taken:
            taken.add(vid)
            chosen.append(vid)
    # Snapping a tight cluster saturates the nearby vertices quickly;
    # fill deterministically so the set always reaches ``count``.
    for vid in range(mesh.num_vertices):
        if len(chosen) >= count:
            break
        if vid not in taken:
            taken.add(vid)
            chosen.append(vid)
    return ObjectSet(mesh, chosen)


def _pattern_centers(rng, lo, hi, n: int) -> list[np.ndarray]:
    """Deterministic cluster centres (drawn first, so the per-object
    draws that follow see a fixed stream position)."""
    span = hi - lo
    return [lo + rng.uniform(0.15, 0.85, size=2) * span for _ in range(n)]


@dataclass(frozen=True)
class ResolvedQuery:
    """A QuerySpec snapped onto a concrete mesh."""

    vertex: int
    k: int
    step_length: int


def resolve_queries(
    scenario: Scenario, mesh: TriangleMesh, objects: ObjectSet
) -> list[ResolvedQuery]:
    """Snap each query spec to a vertex and clamp k to the object
    count (generation keeps k < count, but shrinking may not)."""
    bounds = mesh.xy_bounds()
    lo = np.asarray(bounds.lo, dtype=float)
    hi = np.asarray(bounds.hi, dtype=float)
    out = []
    for spec in scenario.queries:
        xy = lo + np.array([spec.fx, spec.fy]) * (hi - lo)
        out.append(
            ResolvedQuery(
                vertex=mesh.nearest_vertex(tuple(xy)),
                k=max(1, min(spec.k, len(objects))),
                step_length=spec.step_length,
            )
        )
    return out


def build_engine(
    scenario: Scenario,
    mesh: TriangleMesh | None = None,
    with_faults: bool = False,
    persistent: bool = False,
):
    """Fresh engine for a scenario.

    ``with_faults=True`` attaches the scenario's seeded
    :class:`~repro.storage.faults.FaultInjector` and a retry policy
    generous enough that the schedule's fault storms always recover
    (``retry_attempts`` attempts per read).  ``persistent=True``
    additionally applies the spec's kill-list
    (``dead_page_fraction`` of the DMTM/MSDN pages fail every read) —
    those reads can *never* recover, so this leg exercises the
    quarantine + redundant-bound degraded mode rather than the retry
    path.
    """
    from repro.storage.faults import FaultInjector, RetryPolicy, kill_random_pages

    mesh = mesh if mesh is not None else build_mesh(scenario.terrain)
    objects = build_objects(mesh, scenario.objects)
    kwargs = {}
    if with_faults:
        if scenario.fault is None:
            raise QueryError("scenario has no fault spec")
        fault = scenario.fault
        kwargs["fault_injector"] = FaultInjector(
            seed=fault.seed,
            transient_rate=fault.transient_rate,
            corrupt_rate=fault.corrupt_rate,
            latency_rate=fault.latency_rate,
            max_faults=fault.max_faults,
        )
        kwargs["retry_policy"] = RetryPolicy(max_attempts=fault.retry_attempts)
    engine = SurfaceKNNEngine(mesh, objects=objects, **kwargs)
    if persistent:
        if scenario.fault is None or scenario.fault.dead_page_fraction <= 0.0:
            raise QueryError("scenario has no persistent-fault component")
        kill_random_pages(
            engine.pages,
            scenario.fault.dead_page_fraction,
            seed=scenario.fault.dead_page_seed,
        )
    return engine


def build_sharded_engine(
    scenario: Scenario,
    grid: int | tuple[int, int] | None = None,
    with_faults: bool = False,
    max_workers: int = 2,
):
    """Fresh :class:`~repro.shard.engine.ShardedEngine` twin of
    :func:`build_engine` over the same scenario.

    The DEM, the object vertex ids and their ordering are exactly the
    monolithic engine's (the object set is built on the monolithic
    mesh and handed over as global vertex ids), so result object ids
    compare directly.  ``grid`` defaults to the scenario's
    ``terrain.tiles``.  ``with_faults=True`` gives every tile store
    its own seeded injector (same rates and retry budget as the
    monolithic faulted leg; per-span seeds, because one shared
    injector is not thread-safe under parallel tile builds).
    """
    from repro.shard import ShardedEngine
    from repro.storage.faults import FaultInjector, RetryPolicy

    dem = build_dem(scenario.terrain)
    mesh = TriangleMesh.from_dem(dem)
    objects = build_objects(mesh, scenario.objects)
    tiles = grid if grid is not None else scenario.terrain.tiles
    kwargs = {}
    if with_faults:
        if scenario.fault is None:
            raise QueryError("scenario has no fault spec")
        fault = scenario.fault

        def factory(span, _f=fault):
            derived = _f.seed + 17 * (
                1 + span.t_r0 + 5 * span.t_r1
                + 11 * span.t_c0 + 23 * span.t_c1
            )
            return FaultInjector(
                seed=derived,
                transient_rate=_f.transient_rate,
                corrupt_rate=_f.corrupt_rate,
                latency_rate=_f.latency_rate,
                max_faults=_f.max_faults,
            )

        kwargs["fault_injector_factory"] = factory
        kwargs["retry_policy"] = RetryPolicy(max_attempts=fault.retry_attempts)
    return ShardedEngine(
        dem,
        objects=[int(v) for v in objects.vertex_ids],
        grid=tiles,
        max_workers=max_workers,
        **kwargs,
    )


def with_fewer_objects(scenario: Scenario, count: int) -> Scenario:
    """Scenario copy with the object count lowered (shrinker helper;
    k values are clamped at resolve time)."""
    return replace(scenario, objects=replace(scenario.objects, count=count))


def with_tiles(scenario: Scenario, tiles: int) -> Scenario:
    """Scenario copy with the tile grid collapsed or shrunk (shrinker
    helper; border placement follows the grid down and disappears
    with it)."""
    border = scenario.objects.border_tiles
    return replace(
        scenario,
        terrain=replace(scenario.terrain, tiles=tiles),
        objects=replace(
            scenario.objects,
            border_tiles=0 if tiles <= 1 else min(border, tiles),
        ),
    )
