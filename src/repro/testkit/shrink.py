"""Greedy scenario minimizer and replayable repro cases.

When the differential runner finds a violation, the triggering
:class:`~repro.testkit.generators.Scenario` is often far bigger than
the bug needs.  :func:`shrink_scenario` walks a fixed ladder of
reductions — fewer queries, no faults/budget, fewer objects, fewer
tiles, smaller DEM, lower k, shorter fault schedule — accepting every
reduction that
*still fails* the caller's predicate, until a full pass accepts
nothing.  The result is written as a ``repro.testkit.case/v1`` JSON
file under ``tests/cases/`` that replays bit-for-bit:

    python -m repro.testkit --replay tests/cases/<case>.json

Reduction candidates are pure functions of the scenario (no RNG), so
shrinking is deterministic: the same failure always minimizes to the
same case.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path

from repro.errors import QueryError
from repro.testkit.generators import Scenario, with_fewer_objects, with_tiles

CASE_SCHEMA = "repro.testkit.case/v1"

_SIZES = (17, 13, 11, 9, 7, 5)


def _reductions(scenario: Scenario):
    """Candidate smaller scenarios, most aggressive first."""
    # 1. keep a single query (bugs rarely need more than one).
    if len(scenario.queries) > 1:
        for index in range(len(scenario.queries)):
            yield replace(scenario, queries=(scenario.queries[index],))
    # 2. drop whole dimensions of the matrix.
    if scenario.fault is not None:
        yield replace(scenario, fault=None)
    if scenario.budget_pages is not None:
        yield replace(scenario, budget_pages=None)
    if scenario.batch_workers > 1:
        yield replace(scenario, batch_workers=1)
    # 3. fewer objects (never below what the largest k needs).
    floor = max(2, scenario.max_k())
    count = scenario.objects.count
    if count // 2 >= floor and count // 2 < count:
        yield with_fewer_objects(scenario, count // 2)
    if count - 1 >= floor:
        yield with_fewer_objects(scenario, count - 1)
    # 4. collapse the tile grid *before* shrinking the DEM: a sharding
    # bug that survives on one tile is no sharding bug at all, and a
    # smaller DEM would silently re-clamp the grid anyway.
    tiles = scenario.terrain.tiles
    if tiles > 1:
        yield with_tiles(scenario, 1)
        if tiles > 2:
            yield with_tiles(scenario, tiles - 1)
    # 5. smaller terrain.
    for size in _SIZES:
        if size < scenario.terrain.size:
            yield replace(
                scenario, terrain=replace(scenario.terrain, size=size)
            )
            break
    # 6. lower k / simpler schedule per query.
    for index, q in enumerate(scenario.queries):
        smaller = []
        if q.k > 1:
            smaller.append(replace(q, k=q.k - 1))
        if q.step_length != 1:
            smaller.append(replace(q, step_length=1))
        for candidate in smaller:
            queries = list(scenario.queries)
            queries[index] = candidate
            yield replace(scenario, queries=tuple(queries))
    # 7. shorter/milder fault schedule.
    fault = scenario.fault
    if fault is not None and fault.max_faults > 4:
        yield replace(
            scenario, fault=replace(fault, max_faults=fault.max_faults // 2)
        )


@dataclass
class ShrinkOutcome:
    """Result of one shrink run."""

    scenario: Scenario  # the minimized, still-failing scenario
    steps: int  # accepted reductions
    attempts: int  # failure-predicate evaluations


def shrink_scenario(
    scenario: Scenario, fails, max_attempts: int = 120
) -> ShrinkOutcome:
    """Greedily minimize ``scenario`` while ``fails(candidate)`` holds.

    ``fails`` must be deterministic (run the differential matrix, a
    single oracle, anything) and must hold for the input scenario.
    ``max_attempts`` caps predicate evaluations, bounding shrink cost
    on slow failures.
    """
    if not fails(scenario):
        raise QueryError("shrink_scenario needs an initially failing scenario")
    current = scenario
    steps = 0
    attempts = 0
    progress = True
    while progress and attempts < max_attempts:
        progress = False
        for candidate in _reductions(current):
            if attempts >= max_attempts:
                break
            attempts += 1
            if fails(candidate):
                current = candidate
                steps += 1
                progress = True
                break  # restart the ladder from the smaller scenario
    return ShrinkOutcome(scenario=current, steps=steps, attempts=attempts)


# ----------------------------------------------------------------------
# repro cases
# ----------------------------------------------------------------------


def case_dict(
    scenario: Scenario,
    findings=(),
    mutator: str | None = None,
    oracles=None,
) -> dict:
    """JSON-ready repro case (no timestamps: replays must be stable)."""
    return {
        "schema": CASE_SCHEMA,
        "scenario": scenario.to_dict(),
        "mutator": mutator,
        "oracles": list(oracles) if oracles is not None else None,
        "findings": [str(f) for f in findings],
    }


def write_case(
    scenario: Scenario,
    cases_dir,
    findings=(),
    mutator: str | None = None,
    oracles=None,
    name: str | None = None,
) -> Path:
    """Write a replayable case file; returns its path."""
    cases_dir = Path(cases_dir)
    cases_dir.mkdir(parents=True, exist_ok=True)
    if name is None:
        suffix = f"_{mutator}" if mutator else ""
        name = f"case_seed{scenario.seed}{suffix}"
    path = cases_dir / f"{name}.json"
    payload = case_dict(
        scenario, findings=findings, mutator=mutator, oracles=oracles
    )
    path.write_text(
        json.dumps(payload, sort_keys=True, indent=2) + "\n",
        encoding="utf-8",
    )
    return path


def load_case(path) -> dict:
    """Parse a case file into ``{scenario, mutator, oracles, ...}``."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if data.get("schema") != CASE_SCHEMA:
        raise QueryError(
            f"{path}: not a testkit case (schema {data.get('schema')!r})"
        )
    return {
        "scenario": Scenario.from_dict(data["scenario"]),
        "mutator": data.get("mutator"),
        "oracles": data.get("oracles"),
        "findings": data.get("findings", []),
    }


def replay_case(path):
    """Re-run a case file's scenario under its recorded mutator and
    oracle set; returns the fresh
    :class:`~repro.testkit.differential.ScenarioReport`."""
    from repro.testkit.differential import run_scenario

    case = load_case(path)
    return run_scenario(
        case["scenario"],
        oracle_names=case["oracles"],
        mutator=case["mutator"],
    )
