"""Boundary-anchor stitching and border detour bounds.

Two bound families make cross-tile reasoning sound without ever
building a global DMTM:

* **Stitched upper bounds** — genuine concatenated path lengths.  The
  home window's DMTM bounds the query to each shared border vertex
  (:func:`border_offsets`); those ``(vertex, offset)`` pairs then seed
  a *multi-source* search over the neighbouring tile's DMTM
  (:func:`stitch_into`, the same composition
  :meth:`~repro.multires.dmtm.DMTM.upper_bounds_multi` uses on the
  ranking hot path).  Every stitched value is ``ub_home(q, b) +
  ub_neighbour(b, t)`` for some shared border vertex ``b`` — a real
  q→b→t surface path, hence an upper bound on the global distance.

* **Detour lower bounds** — :func:`detour_lower_bounds`.  Any surface
  path that leaves a window must cross the vertical wall over the
  window's interior border; its xy projection passes through a border
  point ``p``, so its length is at least ``|q'p| + |p t'|``.  The
  border is sampled at grid spacing, and the continuous minimiser
  lies within half a ``cell_size`` of a sample along the border
  polyline, so subtracting one ``cell_size`` keeps the bound
  admissible.
"""

from __future__ import annotations

import numpy as np

from repro.multires.dmtm import RESOLUTION_PATHNET


def detour_lower_bounds(q_xy, border_xy, target_xy, cell_size: float):
    """Admissible lower bounds on border-crossing paths.

    ``q_xy`` is the query projection, ``border_xy`` an ``(B, 2)``
    array of border samples spaced at most ``cell_size`` apart along
    the border polyline, ``target_xy`` a ``(T, 2)`` array of target
    projections.  Returns a ``(T,)`` array: for each target, a sound
    lower bound on the length of *any* surface path from the query
    that crosses the sampled border before reaching that target.
    Infinite when the border is empty (no crossing is possible).
    """
    target_xy = np.asarray(target_xy, dtype=float).reshape(-1, 2)
    if len(border_xy) == 0:
        return np.full(len(target_xy), np.inf)
    q = np.asarray(q_xy, dtype=float)[:2]
    dq = np.linalg.norm(border_xy - q[None, :], axis=1)
    diff = target_xy[:, None, :] - border_xy[None, :, :]
    dt = np.sqrt((diff**2).sum(axis=2))
    best = (dq[None, :] + dt).min(axis=1) - float(cell_size)
    return np.maximum(best, 0.0)


def border_offsets(engine, source_vertex: int, border_vertices) -> dict[int, float]:
    """Upper bounds from a query vertex to each border vertex of its
    own window — the anchor offsets of a stitched search.

    Each value is a genuine surface-path length through the window's
    pathnet DMTM level; unreachable border vertices are omitted.
    """
    if not border_vertices:
        return {}
    network = engine.dmtm.extract_network(RESOLUTION_PATHNET, charge_io=False)
    results = engine.dmtm.upper_bounds_from(
        int(source_vertex), [int(v) for v in border_vertices], network
    )
    return {
        int(v): float(r.value) for v, r in results.items() if r is not None
    }


def stitch_into(engine, anchors, target_vertices) -> dict[int, float]:
    """Stitched upper bounds into a neighbouring tile.

    ``anchors`` are ``(local_border_vertex, offset)`` pairs in the
    neighbour's vertex numbering, where each offset is the home-side
    path length to that border vertex (:func:`border_offsets`);
    ``target_vertices`` are local vertex ids in the neighbour.
    Returns ``{target_vertex: value}`` with each value realised by a
    concatenated q→border→target path; unreachable targets are
    omitted.
    """
    anchors = [(int(v), float(off)) for v, off in anchors]
    target_vertices = [int(v) for v in target_vertices]
    if not anchors or not target_vertices:
        return {}
    network = engine.dmtm.extract_network(RESOLUTION_PATHNET, charge_io=False)
    found = engine.dmtm.upper_bounds_multi(anchors, target_vertices, network)
    return {int(v): float(value) for v, (value, _path) in found.items()}
