"""repro.shard — tiled terrain sharding with boundary-anchor stitching.

Partitions a DEM into a grid of overlapping tiles, each with its own
DMTM/MSDN, paged store and spatial-index slice, and answers sk-NN
queries through the smallest tile window it can certify against the
monolithic answer (:mod:`~repro.shard.engine`).  Cross-tile distances
stitch through shared border vertices with the same multi-source
composition the ranking hot path uses (:mod:`~repro.shard.stitch`).
See ``docs/sharding.md`` for the layout, the border-anchor contract
and the identity guarantees.
"""

from repro.shard.engine import ShardedEngine, uniform_grid_objects
from repro.shard.stitch import border_offsets, detour_lower_bounds, stitch_into
from repro.shard.tiles import TileGrid, TileSpan, tile_cuts

__all__ = [
    "ShardedEngine",
    "uniform_grid_objects",
    "border_offsets",
    "detour_lower_bounds",
    "stitch_into",
    "TileGrid",
    "TileSpan",
    "tile_cuts",
]
