"""Tile decomposition of a DEM for sharded query processing.

A :class:`TileGrid` cuts a DEM into a small grid of overlapping tiles
(adjacent tiles share their border row/column of grid points) and
routes horizontal positions to their owning tile through an R-tree of
tile rectangles.  Any rectangular *span* of tiles defines a window —
a contiguous sub-DEM — which is what :class:`~repro.shard.engine.ShardedEngine`
builds per-tile engines over.

Geometry contract (the reason every cut index is even):
:meth:`repro.terrain.mesh.TriangleMesh.from_dem` picks each cell's
diagonal by the parity of its *local* indices, ``(r + c) % 2``.  A
window whose origin ``(r0, c0)`` has ``r0 + c0`` even therefore
triangulates exactly like the corresponding region of the full mesh:
the window mesh is a true submesh, every window path exists on the
global surface, and the full-tile-span window is *byte-identical* to
the monolithic mesh.  Keeping all cut indices even makes every span
origin even.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

import numpy as np

from repro.errors import TerrainError
from repro.geometry.primitives import BoundingBox
from repro.spatial.rtree import RTree
from repro.terrain.dem import DemGrid


def tile_cuts(extent: int, tiles: int) -> tuple[int, ...]:
    """Even cut indices splitting ``[0, extent - 1]`` into ``tiles``
    spans.

    ``tiles`` is clamped to what the extent supports (every span needs
    at least two grid intervals so each tile is a valid >= 3x3 window
    after the parity rounding).  The result always starts at 0 and
    ends at ``extent - 1``; interior entries are even and strictly
    increasing.
    """
    if extent < 2:
        raise TerrainError(f"cannot tile an extent of {extent} grid points")
    last = extent - 1
    tiles = max(1, min(int(tiles), last // 2))
    cuts = [0]
    for i in range(1, tiles):
        cut = int(round(last * i / tiles))
        cut -= cut % 2
        cut = max(cut, cuts[-1] + 2)
        cuts.append(cut)
    cuts.append(last)
    return tuple(cuts)


@dataclass(frozen=True, order=True)
class TileSpan:
    """A rectangular union of tiles: inclusive tile-index ranges."""

    t_r0: int
    t_r1: int
    t_c0: int
    t_c1: int

    def __post_init__(self):
        if self.t_r0 > self.t_r1 or self.t_c0 > self.t_c1:
            raise TerrainError(f"inverted tile span {self}")

    def contains(self, other: "TileSpan") -> bool:
        return (
            self.t_r0 <= other.t_r0
            and self.t_r1 >= other.t_r1
            and self.t_c0 <= other.t_c0
            and self.t_c1 >= other.t_c1
        )

    @property
    def tile_count(self) -> int:
        return (self.t_r1 - self.t_r0 + 1) * (self.t_c1 - self.t_c0 + 1)


class TileGrid:
    """The tile layout of one DEM plus the routing index over it."""

    def __init__(self, dem: DemGrid, tiles=(2, 2)):
        self.dem = dem
        if isinstance(tiles, int):
            tiles = (tiles, tiles)
        self.row_cuts = tile_cuts(dem.rows, tiles[0])
        self.col_cuts = tile_cuts(dem.cols, tiles[1])
        self.tiles_rows = len(self.row_cuts) - 1
        self.tiles_cols = len(self.col_cuts) - 1
        # The router: an R-tree of tile xy rectangles.  Positions on a
        # shared border hit several rectangles; the lowest (row, col)
        # wins so routing is deterministic.
        self._index = RTree(max_entries=8)
        cell = dem.cell_size
        ox, oy = dem.origin
        for i in range(self.tiles_rows):
            for j in range(self.tiles_cols):
                box = BoundingBox(
                    (ox + self.col_cuts[j] * cell, oy + self.row_cuts[i] * cell),
                    (
                        ox + self.col_cuts[j + 1] * cell,
                        oy + self.row_cuts[i + 1] * cell,
                    ),
                )
                self._index.insert(box, (i, j))

    # -- routing --------------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        return (self.tiles_rows, self.tiles_cols)

    def home_tile(self, x: float, y: float) -> tuple[int, int]:
        """The owning ``(tile_row, tile_col)`` of an xy position."""
        probe = BoundingBox((float(x), float(y)), (float(x), float(y)))
        hits = self._index.range_query(probe)
        if hits:
            return min(hits)
        # Numerical edge (position marginally outside every
        # rectangle): fall back to cut arithmetic on clamped indices.
        cell = self.dem.cell_size
        r = (float(y) - self.dem.origin[1]) / cell
        c = (float(x) - self.dem.origin[0]) / cell
        i = min(bisect_right(self.row_cuts, r) - 1, self.tiles_rows - 1)
        j = min(bisect_right(self.col_cuts, c) - 1, self.tiles_cols - 1)
        return (max(i, 0), max(j, 0))

    def tile_span(self, tile: tuple[int, int]) -> TileSpan:
        return TileSpan(tile[0], tile[0], tile[1], tile[1])

    def full_span(self) -> TileSpan:
        return TileSpan(0, self.tiles_rows - 1, 0, self.tiles_cols - 1)

    def all_tile_spans(self) -> list[TileSpan]:
        return [
            self.tile_span((i, j))
            for i in range(self.tiles_rows)
            for j in range(self.tiles_cols)
        ]

    def expand(self, span: TileSpan) -> TileSpan:
        """One ring of neighbouring tiles, clipped to the grid."""
        return TileSpan(
            max(span.t_r0 - 1, 0),
            min(span.t_r1 + 1, self.tiles_rows - 1),
            max(span.t_c0 - 1, 0),
            min(span.t_c1 + 1, self.tiles_cols - 1),
        )

    def union(self, a: TileSpan, b: TileSpan) -> TileSpan:
        return TileSpan(
            min(a.t_r0, b.t_r0),
            max(a.t_r1, b.t_r1),
            min(a.t_c0, b.t_c0),
            max(a.t_c1, b.t_c1),
        )

    def span_for_disk(self, x: float, y: float, radius: float) -> TileSpan:
        """The smallest tile span whose window covers the xy disk
        ``(x, y, radius)`` (clipped to the terrain)."""
        cell = self.dem.cell_size
        r_lo = (float(y) - radius - self.dem.origin[1]) / cell
        r_hi = (float(y) + radius - self.dem.origin[1]) / cell
        c_lo = (float(x) - radius - self.dem.origin[0]) / cell
        c_hi = (float(x) + radius - self.dem.origin[0]) / cell
        i0 = max(min(bisect_right(self.row_cuts, r_lo) - 1, self.tiles_rows - 1), 0)
        i1 = max(min(bisect_right(self.row_cuts, r_hi) - 1, self.tiles_rows - 1), 0)
        j0 = max(min(bisect_right(self.col_cuts, c_lo) - 1, self.tiles_cols - 1), 0)
        j1 = max(min(bisect_right(self.col_cuts, c_hi) - 1, self.tiles_cols - 1), 0)
        return TileSpan(i0, i1, j0, j1)

    def neighbours(self, span: TileSpan) -> list[tuple[int, int]]:
        """Tiles sharing a border row/column with the span (the
        4-neighbourhood of the rectangle, no diagonals)."""
        out = []
        if span.t_r0 > 0:
            out += [(span.t_r0 - 1, j) for j in range(span.t_c0, span.t_c1 + 1)]
        if span.t_r1 < self.tiles_rows - 1:
            out += [(span.t_r1 + 1, j) for j in range(span.t_c0, span.t_c1 + 1)]
        if span.t_c0 > 0:
            out += [(i, span.t_c0 - 1) for i in range(span.t_r0, span.t_r1 + 1)]
        if span.t_c1 < self.tiles_cols - 1:
            out += [(i, span.t_c1 + 1) for i in range(span.t_r0, span.t_r1 + 1)]
        return out

    # -- window geometry ------------------------------------------------

    def span_window(self, span: TileSpan) -> tuple[int, int, int, int]:
        """Inclusive DEM index window ``(r0, r1, c0, c1)`` of a span."""
        return (
            self.row_cuts[span.t_r0],
            self.row_cuts[span.t_r1 + 1],
            self.col_cuts[span.t_c0],
            self.col_cuts[span.t_c1 + 1],
        )

    def window_dem(self, span: TileSpan) -> DemGrid:
        """The sub-DEM of a span (shares the parent height array)."""
        r0, r1, c0, c1 = self.span_window(span)
        cell = self.dem.cell_size
        return DemGrid(
            self.dem.heights[r0 : r1 + 1, c0 : c1 + 1],
            cell,
            (
                self.dem.origin[0] + c0 * cell,
                self.dem.origin[1] + r0 * cell,
            ),
        )

    def window_border_xy(self, span: TileSpan) -> np.ndarray:
        """xy coordinates of the grid points along the window's
        *interior* border — the sides not on the global DEM boundary.

        Any surface path that leaves the window crosses the vertical
        wall over one of these sides; the returned samples are spaced
        one ``cell_size`` apart along it, which is the slack term in
        :func:`repro.shard.stitch.detour_lower_bounds`.  Empty for the
        full span.
        """
        r0, r1, c0, c1 = self.span_window(span)
        cell = self.dem.cell_size
        ox, oy = self.dem.origin
        rows = np.arange(r0, r1 + 1)
        cols = np.arange(c0, c1 + 1)
        pts = []
        if r0 > 0:
            pts.append(np.stack([ox + cols * cell, np.full(len(cols), oy + r0 * cell)], axis=1))
        if r1 < self.dem.rows - 1:
            pts.append(np.stack([ox + cols * cell, np.full(len(cols), oy + r1 * cell)], axis=1))
        if c0 > 0:
            pts.append(np.stack([np.full(len(rows), ox + c0 * cell), oy + rows * cell], axis=1))
        if c1 < self.dem.cols - 1:
            pts.append(np.stack([np.full(len(rows), ox + c1 * cell), oy + rows * cell], axis=1))
        if not pts:
            return np.empty((0, 2), dtype=float)
        return np.concatenate(pts, axis=0)

    def shared_border_vertices(
        self, span: TileSpan, neighbour: tuple[int, int]
    ) -> list[tuple[int, int]]:
        """Global ``(row, col)`` grid indices shared by a span's
        window and a neighbouring tile's window — the boundary-anchor
        set for cross-tile stitching."""
        r0, r1, c0, c1 = self.span_window(span)
        n0, n1, m0, m1 = self.span_window(self.tile_span(neighbour))
        rr0, rr1 = max(r0, n0), min(r1, n1)
        cc0, cc1 = max(c0, m0), min(c1, m1)
        if rr0 > rr1 or cc0 > cc1:
            return []
        return [
            (r, c) for r in range(rr0, rr1 + 1) for c in range(cc0, cc1 + 1)
        ]
