"""A sharded surface k-NN engine over tiled terrain.

:class:`ShardedEngine` partitions one DEM into a grid of overlapping
tiles (:class:`~repro.shard.tiles.TileGrid`), builds a full
:class:`~repro.core.engine.SurfaceKNNEngine` — DMTM, MSDN, paged
store, object-index slice — per rectangular *tile span* it actually
needs, and answers queries through the smallest window it can
*certify*:

1. route the query to its home tile through the tile R-tree;
2. answer inside the window engine and run the **separation test**:
   the answer is accepted iff every object outside the answer set has
   a globally sound lower bound strictly above the k-th upper bound.
   Global soundness composes three admissible sources per object:
   the 3D straight-line distance, the window engine's own lower bound
   (valid for paths that stay inside the window), and the border
   **detour bound** (valid for paths that leave it) — see
   :mod:`repro.shard.stitch`;
3. on rejection, expand: first by **boundary-anchor stitching**
   (cross-tile upper bounds through shared border vertices pick the
   window that covers the certified k-th disk in one step), then by
   tile rings, and finally to the full span — whose engine is
   *byte-identical* to the monolithic engine over the same DEM, so
   termination with the monolithic answer is unconditional.

Accepted sub-window answers report the same neighbour set (and
degraded/budget flags) a monolithic engine would: the separation test
proves the answer set is the unique true top-k.  Ties, degraded
results, unconverged rankings and budgeted queries always escalate to
the full window.  Reported intervals are adjusted to globally sound
bounds before a sub-window answer is returned.

Shard routing shows up in observability as the ``shard-routing``
profiler phase, ``shard.*`` metrics counters and a ``shard.query``
tracing span carrying the expansion count.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import replace

import numpy as np

from repro.core.engine import SurfaceKNNEngine
from repro.core.mr3 import QueryResult
from repro.core.objects import ObjectSet
from repro.errors import QueryError, SurfKnnError
from repro.obs.context import ObsContext, current
from repro.obs.metrics import get_registry
from repro.obs.tracing import NULL_TRACER
from repro.shard.stitch import border_offsets, detour_lower_bounds, stitch_into
from repro.shard.tiles import TileGrid, TileSpan
from repro.storage.pages import BufferPool
from repro.storage.stats import IOStatistics, ThreadLocalIOStatistics
from repro.terrain.mesh import TriangleMesh


class _Window:
    """One built tile span: engine plus global<->local id maps."""

    __slots__ = (
        "span", "engine", "r0", "c0", "wcols",
        "object_gids", "in_window", "border_xy",
    )

    def __init__(self, span, engine, r0, c0, wcols, object_gids, in_window,
                 border_xy):
        self.span = span
        self.engine = engine
        self.r0 = r0
        self.c0 = c0
        self.wcols = wcols
        # Global object id per local object id (ascending, so the
        # full span maps every id to itself).
        self.object_gids = object_gids
        self.in_window = in_window  # bool mask over global object ids
        self.border_xy = border_xy  # interior border samples (B, 2)

    def local_vertex(self, r: int, c: int) -> int:
        return (r - self.r0) * self.wcols + (c - self.c0)


def uniform_grid_objects(dem, count: int, seed: int = 0) -> list[int]:
    """``count`` distinct global vertex ids sampled uniformly over the
    DEM grid — object placement for terrains too large to mesh
    monolithically (no ``nearest_vertex`` snap needed: every grid
    point *is* a vertex)."""
    total = dem.rows * dem.cols
    if count < 1 or count > total:
        raise QueryError(
            f"cannot place {count} objects on {total} grid points"
        )
    rng = np.random.default_rng(seed)
    return [int(v) for v in rng.choice(total, size=count, replace=False)]


class ShardedEngine:
    """Tile-sharded sk-NN engine with the monolithic answer contract.

    Parameters
    ----------
    dem:
        The :class:`~repro.terrain.dem.DemGrid` to shard.  The global
        mesh is *never* built; every structure lives per tile span.
    objects:
        Global vertex ids of the objects (``vertex = row * cols +
        col``).  Object id ``i`` is the i-th entry, exactly as an
        :class:`~repro.core.objects.ObjectSet` over the monolithic
        mesh would number the same list.
    grid:
        Tile grid shape, ``(tile_rows, tile_cols)`` or a single int
        for a square grid.  Clamped to what the DEM extent supports.
    buffer_pages:
        Capacity of the one :class:`~repro.storage.pages.BufferPool`
        all tile stores share (owner tokens keep their page ids from
        aliasing).
    engine_kwargs:
        Extra keyword arguments forwarded to every per-window
        :class:`~repro.core.engine.SurfaceKNNEngine` (``page_size``,
        ``steiner_per_edge``, ...).
    fault_injector_factory:
        Optional ``span -> FaultInjector`` callable giving each tile
        store its own injector (a shared injector is not thread-safe
        under parallel tile builds).
    max_workers:
        Thread-pool width for parallel tile builds (:meth:`warm` and
        stitched neighbour builds).
    """

    def __init__(
        self,
        dem,
        objects=None,
        grid=(2, 2),
        density: float = 4.0,
        seed: int = 0,
        buffer_pages: int = 1024,
        engine_kwargs: dict | None = None,
        fault_injector_factory=None,
        retry_policy=None,
        tracer=None,
        obs: ObsContext | None = None,
        max_workers: int = 4,
    ):
        self.dem = dem
        self.grid = TileGrid(dem, grid)
        self.obs = obs
        if tracer is not None:
            self.tracer = tracer
        elif obs is not None:
            self.tracer = obs.tracer
        else:
            self.tracer = NULL_TRACER
        if objects is None:
            area_km2 = dem.area_km2
            count = max(1, int(round(density * area_km2)))
            objects = uniform_grid_objects(dem, count, seed)
        vids = np.asarray([int(v) for v in objects], dtype=np.int64)
        total = dem.rows * dem.cols
        if len(vids) == 0:
            raise QueryError("an object set needs at least one object")
        if len(np.unique(vids)) != len(vids):
            raise QueryError("object vertex ids must be distinct")
        if vids.min() < 0 or vids.max() >= total:
            raise QueryError("object vertex id out of range")
        self._obj_vids = vids
        self._obj_r, self._obj_c = np.divmod(vids, dem.cols)
        cell = dem.cell_size
        ox, oy = dem.origin
        xs = ox + self._obj_c * cell
        ys = oy + self._obj_r * cell
        zs = np.asarray(dem.heights, dtype=float)[self._obj_r, self._obj_c]
        self._obj_xyz = np.stack([xs, ys, zs], axis=1)
        self._engine_kwargs = dict(engine_kwargs or {})
        self._fault_injector_factory = fault_injector_factory
        self._retry_policy = retry_policy
        self._buffer = BufferPool(buffer_pages)
        self._windows: dict[TileSpan, _Window] = {}
        self._build_locks: dict[TileSpan, threading.Lock] = {}
        self._lock = threading.Lock()
        self._max_workers = max(1, int(max_workers))
        # Duck-type contract of the batch executor: per-query stats
        # live on the window engines (thread-local), there is no
        # engine-level page store, and health is per tile.
        self.stats = IOStatistics()
        self.pages = None
        self.health = None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def num_objects(self) -> int:
        return len(self._obj_vids)

    @property
    def object_vertices(self) -> np.ndarray:
        """Global mesh vertex id per object id."""
        return self._obj_vids

    @property
    def windows_built(self) -> list[TileSpan]:
        with self._lock:
            return sorted(self._windows)

    def window_engine(self, span: TileSpan) -> SurfaceKNNEngine:
        """The (lazily built) engine of one tile span."""
        return self._window(span).engine

    # ------------------------------------------------------------------
    # tile builds
    # ------------------------------------------------------------------

    def warm(self, spans=None, parallel: bool = True) -> list[TileSpan]:
        """Build tile engines up front — in parallel by default.

        ``spans`` defaults to every single-tile span.  Returns the
        spans built (including ones that already existed)."""
        spans = list(spans) if spans is not None else self.grid.all_tile_spans()
        if parallel and len(spans) > 1:
            with ThreadPoolExecutor(max_workers=self._max_workers) as pool:
                list(pool.map(self._window, spans))
        else:
            for span in spans:
                self._window(span)
        return spans

    def _window(self, span: TileSpan) -> _Window:
        with self._lock:
            win = self._windows.get(span)
            if win is not None:
                return win
            lock = self._build_locks.setdefault(span, threading.Lock())
        with lock:
            with self._lock:
                win = self._windows.get(span)
                if win is not None:
                    return win
            win = self._build_window(span)
            with self._lock:
                self._windows[span] = win
            return win

    def _build_window(self, span: TileSpan) -> _Window:
        r0, r1, c0, c1 = self.grid.span_window(span)
        with self.tracer.span(
            "shard.build_window",
            span=(span.t_r0, span.t_r1, span.t_c0, span.t_c1),
        ):
            dem_w = self.grid.window_dem(span)
            mesh_w = TriangleMesh.from_dem(dem_w)
            in_window = (
                (self._obj_r >= r0) & (self._obj_r <= r1)
                & (self._obj_c >= c0) & (self._obj_c <= c1)
            )
            gids = np.nonzero(in_window)[0]
            if len(gids) == 0:
                raise QueryError(
                    f"tile span {span} holds no objects; the router "
                    "must expand before building it"
                )
            wcols = c1 - c0 + 1
            local_vids = (
                (self._obj_r[gids] - r0) * wcols + (self._obj_c[gids] - c0)
            )
            objset = ObjectSet(mesh_w, [int(v) for v in local_vids])
            injector = (
                self._fault_injector_factory(span)
                if self._fault_injector_factory is not None
                else None
            )
            engine = SurfaceKNNEngine(
                mesh_w,
                objects=objset,
                buffer_pool=self._buffer,
                fault_injector=injector,
                retry_policy=self._retry_policy,
                **self._engine_kwargs,
            )
            # Window engines serve batch workers concurrently; the
            # executor only swaps the *sharded* engine's stats, so the
            # per-thread router is installed here instead.
            router = ThreadLocalIOStatistics()
            engine.stats = router
            if engine.pages is not None:
                engine.pages.stats = router
            get_registry().counter("shard.windows_built_total").add(1)
        return _Window(
            span, engine, r0, c0, wcols, gids, in_window,
            self.grid.window_border_xy(span),
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def query(
        self,
        query_vertex: int,
        k: int,
        method: str = "mr3",
        step_length: int = 1,
        cold_cache: bool = True,
        tracer=None,
        obs: ObsContext | None = None,
        bound_cache=None,
        budget=None,
    ) -> QueryResult:
        """Answer an sk-NN query at a *global* mesh vertex.

        Same signature contract as
        :meth:`repro.core.engine.SurfaceKNNEngine.query`, so the batch
        executor drives either engine unchanged.  Ids in the result
        (query vertex, object ids, ``rest``) are global.
        """
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        if k > len(self._obj_vids):
            raise QueryError(
                f"k={k} exceeds the {len(self._obj_vids)} stored objects"
            )
        vertex = int(query_vertex)
        total = self.dem.rows * self.dem.cols
        if not 0 <= vertex < total:
            raise QueryError(
                f"query vertex {vertex} out of range [0, {total})"
            )
        ctx = obs if obs is not None else self.obs
        if tracer is None:
            tracer = ctx.tracer if ctx is not None else self.tracer
        scope = ctx.activate() if ctx is not None else nullcontext()
        with scope:
            active = ctx if ctx is not None else current()
            profiler = active.profiler
            registry = active.registry
            qr, qc = divmod(vertex, self.dem.cols)
            cell = self.dem.cell_size
            q_xy = (
                self.dem.origin[0] + qc * cell,
                self.dem.origin[1] + qr * cell,
            )
            q_xyz = np.array(
                [q_xy[0], q_xy[1], float(self.dem.heights[qr, qc])]
            )
            full_span = self.grid.full_span()
            d3 = np.linalg.norm(self._obj_xyz - q_xyz[None, :], axis=1)
            with tracer.span(
                "shard.query", query_vertex=vertex, k=k
            ) as root:
                with profiler.phase("shard-routing"):
                    span = self.grid.tile_span(self.grid.home_tile(*q_xy))
                    if budget is not None:
                        # Budget accounting spans the whole monolithic
                        # run; only the full window reproduces its
                        # exhaustion point and flags.
                        span = full_span
                    else:
                        # Seed the window from the k-th straight-line
                        # distance: the certified window must reach
                        # past the k-th surface distance with margin,
                        # and a query near a tile border would
                        # otherwise burn one doomed attempt on its
                        # home tile.
                        kth_d3 = float(np.partition(d3, k - 1)[k - 1])
                        radius = 2.0 * kth_d3 + 2.0 * cell
                        span = self.grid.union(
                            span,
                            self.grid.span_for_disk(q_xy[0], q_xy[1], radius),
                        )
                    span = self._grow_for_objects(span, k)
                expansions = 0
                stitched = False
                while True:
                    window = self._window(span)
                    local_q = window.local_vertex(qr, qc)
                    result = window.engine.query(
                        local_q,
                        k,
                        method=method,
                        step_length=step_length,
                        cold_cache=cold_cache,
                        tracer=tracer,
                        bound_cache=bound_cache,
                        budget=budget,
                    )
                    if span == full_span:
                        # Local ids == global ids: the monolithic
                        # answer, byte for byte.
                        final = result
                        break
                    final = None
                    if result.converged and not result.degraded:
                        with profiler.phase("shard-routing"):
                            final = self._certify(
                                window, result, d3, q_xy, k
                            )
                    if final is not None:
                        break
                    expansions += 1
                    with profiler.phase("shard-routing"):
                        nxt = None
                        if not stitched:
                            stitched = True
                            nxt = self._stitched_span(
                                window, result, local_q, q_xy, k, span
                            )
                            if nxt is not None:
                                registry.counter(
                                    "shard.stitched_expansions_total"
                                ).add(1)
                        if nxt is None or not (
                            nxt != span and nxt.contains(span)
                        ):
                            nxt = self.grid.expand(span)
                        if nxt == span:
                            nxt = full_span
                        span = self._grow_for_objects(nxt, k)
                registry.counter("shard.queries_total").add(1)
                if expansions:
                    registry.counter("shard.expansions_total").add(expansions)
                if span == full_span and full_span.tile_count > 1:
                    registry.counter("shard.full_window_total").add(1)
                root.set_attribute("expansions", expansions)
                root.set_attribute(
                    "span", (span.t_r0, span.t_r1, span.t_c0, span.t_c1)
                )
                root.set_attribute("tiles", span.tile_count)
        return final

    def _grow_for_objects(self, span: TileSpan, k: int) -> TileSpan:
        """Smallest ring-expansion of the span holding >= k objects."""
        while True:
            r0, r1, c0, c1 = self.grid.span_window(span)
            count = int(
                (
                    (self._obj_r >= r0) & (self._obj_r <= r1)
                    & (self._obj_c >= c0) & (self._obj_c <= c1)
                ).sum()
            )
            if count >= k:
                return span
            grown = self.grid.expand(span)
            if grown == span:
                return span
            span = grown

    # ------------------------------------------------------------------
    # acceptance
    # ------------------------------------------------------------------

    def _certify(self, window, result, d3, q_xy, k):
        """The separation test: a sub-window answer is returned only
        when every non-answer object provably sits strictly beyond
        the k-th upper bound.

        For each non-winner object the globally sound lower bound is
        ``max(dE3d, min(window_lb, detour_lb))``: the straight line is
        always admissible; a global shortest path either stays inside
        the window (so the window engine's lower bound applies) or
        crosses the border (so the detour bound applies).  Strict
        separation makes the winner set the *unique* true top-k —
        exactly what a converged monolithic run returns.  Ties fail
        the strict test and escalate.  Returns the remapped global
        result on success, None on rejection.
        """
        intervals = result.intervals
        kth_ub = max(ub for _lb, ub in intervals)
        winners_global = [
            int(window.object_gids[lid]) for lid in result.object_ids
        ]
        n = len(self._obj_vids)
        winner_mask = np.zeros(n, dtype=bool)
        winner_mask[winners_global] = True
        contender_mask = (~winner_mask) & (d3 <= kth_ub)
        need = np.nonzero(contender_mask | winner_mask)[0]
        detour = detour_lower_bounds(
            q_xy, window.border_xy, self._obj_xyz[need, :2],
            self.dem.cell_size,
        )
        detour_of = dict(zip(need.tolist(), detour.tolist()))
        window_lb = {
            int(window.object_gids[lid]): float(lb)
            for lid, lb in result.rest
        }
        for gid in np.nonzero(contender_mask)[0]:
            gid = int(gid)
            inside = (
                window_lb.get(gid, np.inf)
                if window.in_window[gid]
                else np.inf
            )
            glb = max(d3[gid], min(inside, detour_of[gid]))
            if not glb > kth_ub:
                return None
        new_intervals = []
        for gid, (lb, ub) in zip(winners_global, intervals):
            glb = max(float(d3[gid]), min(float(lb), detour_of[gid]))
            new_intervals.append((min(glb, ub), ub))
        return replace(
            result,
            query_vertex=self._global_vertex_of(window, result.query_vertex),
            object_ids=winners_global,
            intervals=new_intervals,
            rest=tuple(
                (int(window.object_gids[lid]), lb) for lid, lb in result.rest
            ),
        )

    def _global_vertex_of(self, window, local_vertex: int) -> int:
        lr, lc = divmod(int(local_vertex), window.wcols)
        return (lr + window.r0) * self.dem.cols + (lc + window.c0)

    # ------------------------------------------------------------------
    # stitched expansion
    # ------------------------------------------------------------------

    def _stitched_span(self, window, result, local_q, q_xy, k, span):
        """Pick the next window by boundary-anchor stitching.

        Builds the adjacent tiles (in parallel), stitches genuine
        cross-tile upper bounds through the shared border vertices,
        takes the k-th smallest known upper bound U*, and returns the
        span covering the xy disk of radius U* — the one-shot window
        that usually certifies immediately.  None when stitching
        cannot improve on ring expansion.
        """
        neighbours = self.grid.neighbours(span)
        if not neighbours:
            return None
        # Only neighbours that hold objects can contribute bounds
        # (and only they can be built — an engine needs objects).
        populated = []
        for nb in neighbours:
            r0, r1, c0, c1 = self.grid.span_window(self.grid.tile_span(nb))
            has = (
                (self._obj_r >= r0) & (self._obj_r <= r1)
                & (self._obj_c >= c0) & (self._obj_c <= c1)
            ).any()
            if has:
                populated.append(nb)
        if not populated:
            return None
        try:
            if len(populated) > 1:
                with ThreadPoolExecutor(
                    max_workers=self._max_workers
                ) as pool:
                    nb_windows = list(
                        pool.map(
                            lambda nb: self._window(self.grid.tile_span(nb)),
                            populated,
                        )
                    )
            else:
                nb_windows = [
                    self._window(self.grid.tile_span(populated[0]))
                ]
            best_ub: dict[int, float] = {}
            for lid, (_lb, ub) in zip(result.object_ids, result.intervals):
                best_ub[int(window.object_gids[lid])] = float(ub)
            for nb, nbw in zip(populated, nb_windows):
                shared = self.grid.shared_border_vertices(span, nb)
                if not shared:
                    continue
                home_vids = [window.local_vertex(r, c) for r, c in shared]
                offsets = border_offsets(window.engine, local_q, home_vids)
                anchors = []
                for (r, c), hv in zip(shared, home_vids):
                    off = offsets.get(hv)
                    if off is not None:
                        anchors.append((nbw.local_vertex(r, c), off))
                if not anchors:
                    continue
                targets = nbw.engine.objects.vertex_ids
                values = stitch_into(nbw.engine, anchors, targets)
                for lid, vid in enumerate(targets):
                    value = values.get(int(vid))
                    if value is None:
                        continue
                    gid = int(nbw.object_gids[lid])
                    if gid not in best_ub or value < best_ub[gid]:
                        best_ub[gid] = value
        except SurfKnnError:
            return None
        if len(best_ub) < k:
            return None
        u_star = sorted(best_ub.values())[k - 1]
        if not np.isfinite(u_star):
            return None
        radius = 1.05 * u_star + 3.0 * self.dem.cell_size
        disk = self.grid.span_for_disk(q_xy[0], q_xy[1], radius)
        return self.grid.union(span, disk)
