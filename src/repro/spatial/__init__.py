"""Spatial indexing substrate.

MR3's steps 1 and 3 are plain 2D spatial queries over the object
projections ``Dxy`` — a k-NN query and a range query — which the
paper serves from a conventional spatial index.  This package
provides the indexes used throughout:

* :class:`RTree` — dynamic R-tree with range and best-first k-NN
  search (used for ``Dxy`` and MSDN segment retrieval);
* :class:`UniformGrid` — a flat bucket grid for dense uniform data;
* :class:`BPlusTree` — the clustering B+-tree that orders DMTM node
  records on disk pages;
* :mod:`repro.spatial.zorder` — Z-order (Morton) keys used as the
  clustering dimension.
"""

from repro.spatial.rtree import RTree
from repro.spatial.grid import UniformGrid
from repro.spatial.bplustree import BPlusTree
from repro.spatial.zorder import zorder_key, zorder_key_normalized

__all__ = [
    "RTree",
    "UniformGrid",
    "BPlusTree",
    "zorder_key",
    "zorder_key_normalized",
]
