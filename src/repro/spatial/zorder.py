"""Z-order (Morton) space-filling curve keys.

Interleaving the bits of quantized x and y coordinates yields a 1D
key under which spatially close points usually get close keys — the
standard trick for *clustering* spatial records in a B+-tree, which
is how the paper stores DMTM nodes ("a clustering B+ tree index is
used").  Fetching an I/O region then touches a small number of
contiguous key ranges, i.e. few disk pages.
"""

from __future__ import annotations

from repro.errors import SpatialIndexError

_BITS = 21  # 21 + 21 interleaved bits fit comfortably in a Python int.


def _part1by1(n: int) -> int:
    """Spread the low 21 bits of n so there is a zero between each."""
    n &= (1 << _BITS) - 1
    n = (n | (n << 16)) & 0x0000FFFF0000FFFF
    n = (n | (n << 8)) & 0x00FF00FF00FF00FF
    n = (n | (n << 4)) & 0x0F0F0F0F0F0F0F0F
    n = (n | (n << 2)) & 0x3333333333333333
    n = (n | (n << 1)) & 0x5555555555555555
    return n


def zorder_key(ix: int, iy: int) -> int:
    """Morton key of non-negative integer cell coordinates."""
    if ix < 0 or iy < 0:
        raise SpatialIndexError("z-order cells must be non-negative")
    return _part1by1(ix) | (_part1by1(iy) << 1)


def zorder_key_normalized(x: float, y: float, bounds, bits: int = 16) -> int:
    """Morton key of a point quantized to ``2**bits`` cells per axis
    within the 2D bounding box ``bounds``."""
    if not 1 <= bits <= _BITS:
        raise SpatialIndexError(f"bits must be in [1, {_BITS}]")
    lo_x, lo_y = bounds.lo[0], bounds.lo[1]
    hi_x, hi_y = bounds.hi[0], bounds.hi[1]
    span_x = max(hi_x - lo_x, 1e-12)
    span_y = max(hi_y - lo_y, 1e-12)
    cells = (1 << bits) - 1
    ix = int(min(max((x - lo_x) / span_x, 0.0), 1.0) * cells)
    iy = int(min(max((y - lo_y) / span_y, 0.0), 1.0) * cells)
    return zorder_key(ix, iy)
