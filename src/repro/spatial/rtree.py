"""A dynamic R-tree (Guttman) with range and best-first k-NN search.

Serves two roles in the reproduction:

* the index over ``Dxy`` (xy-projections of the object points) used
  by MR3's 2D k-NN filter (step 1) and 2D range query (step 3);
* the spatial index over MSDN crossing-line segments, which the paper
  stores "in a spatial database ... efficiently supported by most
  commercial spatial database systems (using a conventional spatial
  index)".

k-NN uses the classic Hjaltason–Samet best-first traversal with a
priority queue ordered by MBR min-distance, which the paper cites as
one of the standard constraint-free k-NN methods.
"""

from __future__ import annotations

import heapq
import itertools

from repro.errors import SpatialIndexError
from repro.geometry.primitives import BoundingBox


class _Node:
    __slots__ = ("leaf", "entries", "box")

    def __init__(self, leaf: bool):
        self.leaf = leaf
        # Leaf entries: (BoundingBox, payload); internal: (BoundingBox, _Node).
        self.entries: list[tuple[BoundingBox, object]] = []
        self.box: BoundingBox | None = None

    def recompute_box(self) -> None:
        box = self.entries[0][0]
        for b, _child in self.entries[1:]:
            box = box.union(b)
        self.box = box


class RTree:
    """R-tree over (box, payload) entries.

    Parameters
    ----------
    max_entries:
        Node capacity (Guttman's M); nodes split when they exceed it.
    min_entries:
        Minimum fill (m) used by the quadratic split.
    """

    def __init__(self, max_entries: int = 8, min_entries: int | None = None):
        if max_entries < 2:
            raise SpatialIndexError("max_entries must be >= 2")
        self.max_entries = max_entries
        self.min_entries = min_entries if min_entries is not None else max(
            2, max_entries // 3
        )
        if self.min_entries * 2 > max_entries:
            raise SpatialIndexError("min_entries must be at most max_entries / 2")
        self._root = _Node(leaf=True)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------

    def insert(self, box: BoundingBox, payload) -> None:
        """Insert a payload under its bounding box."""
        self._size += 1
        split = self._insert(self._root, box, payload)
        if split is not None:
            old_root = self._root
            self._root = _Node(leaf=False)
            old_root.recompute_box()
            split.recompute_box()
            self._root.entries = [(old_root.box, old_root), (split.box, split)]
            self._root.recompute_box()

    def insert_point(self, point, payload) -> None:
        """Insert a point payload (degenerate box)."""
        p = tuple(float(c) for c in point)
        self.insert(BoundingBox(p, p), payload)

    def _insert(self, node: _Node, box: BoundingBox, payload) -> "_Node | None":
        if node.leaf:
            node.entries.append((box, payload))
        else:
            idx = self._choose_subtree(node, box)
            child_box, child = node.entries[idx]
            split = self._insert(child, box, payload)
            node.entries[idx] = (child_box.union(box), child)
            if split is not None:
                split.recompute_box()
                node.entries.append((split.box, split))
        node.box = box if node.box is None else node.box.union(box)
        if len(node.entries) > self.max_entries:
            return self._split(node)
        return None

    @staticmethod
    def _enlargement(box: BoundingBox, extra: BoundingBox) -> float:
        return box.union(extra).measure() - box.measure()

    def _choose_subtree(self, node: _Node, box: BoundingBox) -> int:
        best = 0
        best_cost = None
        for i, (child_box, _child) in enumerate(node.entries):
            cost = (self._enlargement(child_box, box), child_box.measure())
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best = i
        return best

    def _split(self, node: _Node) -> _Node:
        """Guttman's quadratic split; mutates ``node`` into one group
        and returns a new sibling holding the other."""
        entries = node.entries
        # Pick the pair wasting the most area as seeds.
        worst = None
        seeds = (0, 1)
        for i, j in itertools.combinations(range(len(entries)), 2):
            waste = (
                entries[i][0].union(entries[j][0]).measure()
                - entries[i][0].measure()
                - entries[j][0].measure()
            )
            if worst is None or waste > worst:
                worst = waste
                seeds = (i, j)
        group_a = [entries[seeds[0]]]
        group_b = [entries[seeds[1]]]
        box_a = group_a[0][0]
        box_b = group_b[0][0]
        rest = [e for idx, e in enumerate(entries) if idx not in seeds]
        while rest:
            # Honour minimum fill.
            if len(group_a) + len(rest) == self.min_entries:
                group_a.extend(rest)
                for b, _p in rest:
                    box_a = box_a.union(b)
                break
            if len(group_b) + len(rest) == self.min_entries:
                group_b.extend(rest)
                for b, _p in rest:
                    box_b = box_b.union(b)
                break
            # Assign the entry with the strongest preference.
            best_idx = 0
            best_diff = -1.0
            for idx, (b, _p) in enumerate(rest):
                diff = abs(
                    self._enlargement(box_a, b) - self._enlargement(box_b, b)
                )
                if diff > best_diff:
                    best_diff = diff
                    best_idx = idx
            entry = rest.pop(best_idx)
            grow_a = self._enlargement(box_a, entry[0])
            grow_b = self._enlargement(box_b, entry[0])
            if (grow_a, box_a.measure(), len(group_a)) <= (
                grow_b,
                box_b.measure(),
                len(group_b),
            ):
                group_a.append(entry)
                box_a = box_a.union(entry[0])
            else:
                group_b.append(entry)
                box_b = box_b.union(entry[0])
        node.entries = group_a
        node.box = box_a
        sibling = _Node(leaf=node.leaf)
        sibling.entries = group_b
        sibling.box = box_b
        return sibling

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def range_query(self, region: BoundingBox) -> list:
        """Payloads whose boxes intersect ``region``."""
        if self._size == 0:
            return []
        result: list = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.box is not None and not node.box.intersects(region):
                continue
            for box, item in node.entries:
                if not box.intersects(region):
                    continue
                if node.leaf:
                    result.append(item)
                else:
                    stack.append(item)
        return result

    def circle_query(self, center, radius: float) -> list:
        """Payloads whose boxes come within ``radius`` of ``center``.

        This is the step-3 range query of MR3 (centre q', radius
        ub(q, b)); the box filter is refined with an exact min-dist
        check so no false positives leak through.
        """
        if radius < 0:
            raise SpatialIndexError("radius must be non-negative")
        c = tuple(float(v) for v in center)
        region = BoundingBox.around(c, radius)
        result = []
        stack = [self._root] if self._size else []
        while stack:
            node = stack.pop()
            if node.box is not None and node.box.min_dist_point(c) > radius:
                continue
            for box, item in node.entries:
                if box.min_dist_point(c) > radius:
                    continue
                if node.leaf:
                    result.append(item)
                else:
                    stack.append(item)
        # region kept for clarity of intent; exact filter already applied
        del region
        return result

    def knn(self, point, k: int) -> list:
        """The k payloads nearest to ``point`` (best-first search).

        Returns ``(distance, payload)`` pairs in ascending distance
        order; fewer than k when the tree is smaller.
        """
        if k < 1:
            raise SpatialIndexError("k must be >= 1")
        return list(itertools.islice(self.nearest_iter(point), k))

    def nearest_iter(self, point):
        """Incremental nearest-neighbour iterator (Hjaltason-Samet).

        Yields ``(distance, payload)`` in ascending distance order,
        lazily — the "distance browsing" primitive that IER-style
        algorithms consume one neighbour at a time.
        """
        if self._size == 0:
            return
        p = tuple(float(c) for c in point)
        counter = itertools.count()
        heap: list[tuple[float, int, bool, object]] = [
            (0.0 if self._root.box is None else self._root.box.min_dist_point(p),
             next(counter), False, self._root)
        ]
        while heap:
            dist, _tie, is_payload, item = heapq.heappop(heap)
            if is_payload:
                yield (dist, item)
                continue
            node = item
            for box, child in node.entries:
                d = box.min_dist_point(p)
                heapq.heappush(heap, (d, next(counter), node.leaf, child))
