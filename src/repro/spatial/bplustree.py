"""A B+-tree with leaf chaining and range scans.

The paper stores the DMTM in Oracle under a *clustering* B+-tree
index; queries then fetch contiguous key ranges, which is what keeps
the page counts of integrated I/O regions low.  This implementation
is the in-memory index half of that design: keys map to record
locators, leaves are chained for range scans, and
:mod:`repro.storage.nodestore` pairs it with the paged record store.
"""

from __future__ import annotations

import bisect

from repro.errors import SpatialIndexError


class _LeafNode:
    __slots__ = ("keys", "values", "next")

    def __init__(self):
        self.keys: list = []
        self.values: list = []
        self.next: "_LeafNode | None" = None


class _InnerNode:
    __slots__ = ("keys", "children")

    def __init__(self):
        self.keys: list = []  # separator keys; len(children) == len(keys)+1
        self.children: list = []


class BPlusTree:
    """Order-``order`` B+-tree mapping comparable keys to values.

    Duplicate keys are allowed; lookups and scans return every value
    stored under a key.
    """

    def __init__(self, order: int = 32):
        if order < 4:
            raise SpatialIndexError("order must be >= 4")
        self.order = order
        self._root: _LeafNode | _InnerNode = _LeafNode()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------

    def insert(self, key, value) -> None:
        split = self._insert(self._root, key, value)
        if split is not None:
            sep, right = split
            new_root = _InnerNode()
            new_root.keys = [sep]
            new_root.children = [self._root, right]
            self._root = new_root
        self._size += 1

    def _insert(self, node, key, value):
        if isinstance(node, _LeafNode):
            idx = bisect.bisect_right(node.keys, key)
            node.keys.insert(idx, key)
            node.values.insert(idx, value)
            if len(node.keys) > self.order:
                return self._split_leaf(node)
            return None
        idx = bisect.bisect_right(node.keys, key)
        split = self._insert(node.children[idx], key, value)
        if split is not None:
            sep, right = split
            node.keys.insert(idx, sep)
            node.children.insert(idx + 1, right)
            if len(node.children) > self.order:
                return self._split_inner(node)
        return None

    def _split_leaf(self, node: _LeafNode):
        mid = len(node.keys) // 2
        right = _LeafNode()
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        right.next = node.next
        node.next = right
        return right.keys[0], right

    def _split_inner(self, node: _InnerNode):
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _InnerNode()
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return sep, right

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def _leftmost_leaf_for(self, key) -> _LeafNode:
        """The leftmost leaf that could hold ``key`` (duplicates may
        span several leaves, so lookups descend left and scan right)."""
        node = self._root
        while isinstance(node, _InnerNode):
            idx = bisect.bisect_left(node.keys, key)
            node = node.children[idx]
        return node

    def get(self, key) -> list:
        """All values stored under ``key`` (empty list when absent)."""
        leaf = self._leftmost_leaf_for(key)
        out = []
        while leaf is not None:
            idx = bisect.bisect_left(leaf.keys, key)
            while idx < len(leaf.keys):
                if leaf.keys[idx] != key:
                    return out
                out.append(leaf.values[idx])
                idx += 1
            leaf = leaf.next
        return out

    def range_scan(self, lo, hi):
        """Yield (key, value) pairs with lo <= key <= hi in key order."""
        leaf = self._leftmost_leaf_for(lo)
        idx = bisect.bisect_left(leaf.keys, lo)
        while leaf is not None:
            while idx < len(leaf.keys):
                key = leaf.keys[idx]
                if key > hi:
                    return
                yield key, leaf.values[idx]
                idx += 1
            leaf = leaf.next
            idx = 0

    def items(self):
        """Yield every (key, value) pair in key order."""
        node = self._root
        while isinstance(node, _InnerNode):
            node = node.children[0]
        while node is not None:
            yield from zip(node.keys, node.values)
            node = node.next

    def depth(self) -> int:
        """Tree height (1 for a lone leaf)."""
        node = self._root
        d = 1
        while isinstance(node, _InnerNode):
            node = node.children[0]
            d += 1
        return d
