"""A uniform bucket-grid index for 2D points.

For uniformly distributed object sets (exactly the paper's workload:
"object points are uniformly distributed on the surface with varying
object density"), a flat grid answers k-NN and range queries with
excellent constants.  It is offered alongside the R-tree so the
engine can pick either; tests cross-check the two against brute
force.
"""

from __future__ import annotations

import math

from repro.errors import SpatialIndexError
from repro.geometry.primitives import BoundingBox


class UniformGrid:
    """Bucket grid over 2D points built once from a point set."""

    def __init__(self, points, payloads=None, target_per_cell: float = 4.0):
        pts = [(float(p[0]), float(p[1])) for p in points]
        if not pts:
            raise SpatialIndexError("UniformGrid needs at least one point")
        if payloads is None:
            payloads = list(range(len(pts)))
        payloads = list(payloads)
        if len(payloads) != len(pts):
            raise SpatialIndexError("payloads length must match points length")
        self._points = pts
        self._payloads = payloads
        xs = [p[0] for p in pts]
        ys = [p[1] for p in pts]
        self._lo = (min(xs), min(ys))
        hi = (max(xs), max(ys))
        span = max(hi[0] - self._lo[0], hi[1] - self._lo[1], 1e-9)
        n_cells = max(1, int(math.sqrt(len(pts) / target_per_cell)))
        self._cell = span / n_cells
        self._buckets: dict[tuple[int, int], list[int]] = {}
        for idx, (x, y) in enumerate(pts):
            self._buckets.setdefault(self._cell_of(x, y), []).append(idx)

    def __len__(self) -> int:
        return len(self._points)

    def _cell_of(self, x: float, y: float) -> tuple[int, int]:
        return (
            int(math.floor((x - self._lo[0]) / self._cell)),
            int(math.floor((y - self._lo[1]) / self._cell)),
        )

    def range_query(self, region: BoundingBox) -> list:
        """Payloads of points inside the (2D) box ``region``."""
        c_lo = self._cell_of(region.lo[0], region.lo[1])
        c_hi = self._cell_of(region.hi[0], region.hi[1])
        out = []
        for cx in range(c_lo[0], c_hi[0] + 1):
            for cy in range(c_lo[1], c_hi[1] + 1):
                for idx in self._buckets.get((cx, cy), ()):
                    if region.contains_point(self._points[idx]):
                        out.append(self._payloads[idx])
        return out

    def circle_query(self, center, radius: float) -> list:
        """Payloads of points within ``radius`` of ``center``."""
        if radius < 0:
            raise SpatialIndexError("radius must be non-negative")
        cx, cy = float(center[0]), float(center[1])
        region = BoundingBox.around((cx, cy), radius)
        c_lo = self._cell_of(region.lo[0], region.lo[1])
        c_hi = self._cell_of(region.hi[0], region.hi[1])
        r2 = radius * radius
        out = []
        for gx in range(c_lo[0], c_hi[0] + 1):
            for gy in range(c_lo[1], c_hi[1] + 1):
                for idx in self._buckets.get((gx, gy), ()):
                    px, py = self._points[idx]
                    if (px - cx) ** 2 + (py - cy) ** 2 <= r2:
                        out.append(self._payloads[idx])
        return out

    def knn(self, point, k: int) -> list:
        """(distance, payload) of the k nearest points, ascending.

        Expands ring-by-ring from the query cell; terminates once the
        k-th best distance is closer than the next unexplored ring.
        """
        if k < 1:
            raise SpatialIndexError("k must be >= 1")
        qx, qy = float(point[0]), float(point[1])
        center = self._cell_of(qx, qy)
        found: list[tuple[float, object]] = []
        # Once every populated cell index fits inside this many rings
        # around any query cell, further expansion cannot find points.
        if self._buckets:
            max_ring = max(
                max(abs(cx - center[0]), abs(cy - center[1]))
                for cx, cy in self._buckets
            )
        else:
            max_ring = 0
        ring = 0
        while ring <= max_ring:
            for cell in self._ring_cells(center, ring):
                for idx in self._buckets.get(cell, ()):
                    px, py = self._points[idx]
                    d = math.hypot(px - qx, py - qy)
                    found.append((d, self._payloads[idx]))
            found.sort(key=lambda t: t[0])
            del found[k * 4 :]  # keep a cushion, trim runaway memory
            if len(found) >= k and found[k - 1][0] <= ring * self._cell:
                break
            ring += 1
        return found[:k]

    @staticmethod
    def _ring_cells(center: tuple[int, int], ring: int):
        cx, cy = center
        if ring == 0:
            return [(cx, cy)]
        cells = []
        for dx in range(-ring, ring + 1):
            cells.append((cx + dx, cy - ring))
            cells.append((cx + dx, cy + ring))
        for dy in range(-ring + 1, ring):
            cells.append((cx - ring, cy + dy))
            cells.append((cx + ring, cy + dy))
        return cells
