"""Exception hierarchy for the surfknn library.

Every error raised by this package derives from :class:`SurfKnnError`
so that callers can catch library failures with a single handler while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class SurfKnnError(Exception):
    """Base class for all errors raised by the surfknn library."""


class GeometryError(SurfKnnError):
    """A geometric computation received degenerate or invalid input."""


class MeshError(SurfKnnError):
    """A mesh is malformed (non-manifold, empty, inconsistent indices)."""


class TerrainError(SurfKnnError):
    """A DEM or terrain model is malformed or out of range."""


class IndexError_(SurfKnnError):
    """A spatial index was used incorrectly (named with a trailing
    underscore to avoid shadowing the builtin)."""


class StorageError(SurfKnnError):
    """The paged storage layer detected an inconsistency."""


class SimplificationError(SurfKnnError):
    """Mesh simplification could not make progress."""


class MultiresError(SurfKnnError):
    """A multiresolution structure (DM/DDM/DMTM) is inconsistent."""


class QueryError(SurfKnnError):
    """A query was malformed (bad k, query point off the terrain...)."""


class GeodesicError(SurfKnnError):
    """A shortest-path computation failed (disconnected, degenerate)."""
