"""Exception hierarchy for the surfknn library.

Every error raised by this package derives from :class:`SurfKnnError`
so that callers can catch library failures with a single handler while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class SurfKnnError(Exception):
    """Base class for all errors raised by the surfknn library."""


class GeometryError(SurfKnnError):
    """A geometric computation received degenerate or invalid input."""


class MeshError(SurfKnnError):
    """A mesh is malformed (non-manifold, empty, inconsistent indices)."""


class TerrainError(SurfKnnError):
    """A DEM or terrain model is malformed or out of range."""


class SpatialIndexError(SurfKnnError):
    """A spatial index was used incorrectly."""


#: Deprecated alias — the class was originally named with a trailing
#: underscore to avoid shadowing the builtin; existing imports keep
#: working.  New code should catch :class:`SpatialIndexError`.
IndexError_ = SpatialIndexError


class StorageError(SurfKnnError):
    """The paged storage layer detected an inconsistency."""


class PageReadError(StorageError):
    """A page read failed after exhausting the retry policy (the
    simulated disk kept returning transient faults)."""


class PageCorruptionError(StorageError):
    """A page's payload failed its CRC check on every retry — the
    stored data no longer matches what was written."""


class QuarantinedPageError(StorageError):
    """A read was refused without touching the disk because the page
    is quarantined (a previous read exhausted the retry policy and the
    page has not yet been readmitted through probation)."""


class SimplificationError(SurfKnnError):
    """Mesh simplification could not make progress."""


class MultiresError(SurfKnnError):
    """A multiresolution structure (DM/DDM/DMTM) is inconsistent."""


class QueryError(SurfKnnError):
    """A query was malformed (bad k, query point off the terrain...)."""


class GeodesicError(SurfKnnError):
    """A shortest-path computation failed (disconnected, degenerate)."""
