"""Deterministic synthetic terrain generators.

The paper evaluates on two real USGS DEMs: **Bearhead Mountain** (BH,
Washington — rugged, surface distances up to 2–3x the Euclidean
distance) and **Eagle Peak** (EP, Wyoming — smoother, 20–40 % longer
than Euclidean).  We cannot ship those files, so this module builds
stand-ins with the same *roughness contrast*:

* :func:`fractal_dem` — diamond–square fractal relief whose roughness
  is controlled by the Hurst-like ``roughness`` exponent and a
  vertical ``relief`` scale; and
* :func:`gaussian_hills_dem` — a smooth sum of Gaussian bumps for
  gentle terrain.

:func:`bearhead_like` / :func:`eagle_peak_like` pin down calibrated
parameter sets; every generator is seeded, so all experiments are
reproducible bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TerrainError
from repro.terrain.dem import DemGrid


def _diamond_square(size: int, roughness: float, rng: np.random.Generator) -> np.ndarray:
    """Classic diamond–square fractal heightfield of shape (size, size).

    ``size`` must be 2**k + 1.  ``roughness`` in (0, 1]: the per-level
    amplitude decay factor — higher means more rugged at fine scales.
    """
    if size < 3 or (size - 1) & (size - 2) != 0:
        raise TerrainError(f"diamond-square size must be 2**k + 1, got {size}")
    grid = np.zeros((size, size), dtype=float)
    corners = rng.uniform(-1.0, 1.0, size=4)
    grid[0, 0], grid[0, -1], grid[-1, 0], grid[-1, -1] = corners
    step = size - 1
    amplitude = 1.0
    while step > 1:
        half = step // 2
        # Diamond step: centre of each square.
        for r in range(half, size, step):
            for c in range(half, size, step):
                avg = (
                    grid[r - half, c - half]
                    + grid[r - half, c + half]
                    + grid[r + half, c - half]
                    + grid[r + half, c + half]
                ) / 4.0
                grid[r, c] = avg + amplitude * rng.uniform(-1.0, 1.0)
        # Square step: midpoints of square edges.
        for r in range(0, size, half):
            start = half if (r // half) % 2 == 0 else 0
            for c in range(start, size, step):
                total = 0.0
                count = 0
                for dr, dc in ((-half, 0), (half, 0), (0, -half), (0, half)):
                    rr, cc = r + dr, c + dc
                    if 0 <= rr < size and 0 <= cc < size:
                        total += grid[rr, cc]
                        count += 1
                grid[r, c] = total / count + amplitude * rng.uniform(-1.0, 1.0)
        step = half
        amplitude *= roughness
    return grid


def fractal_dem(
    size: int = 65,
    cell_size: float = 90.0,
    relief: float = 900.0,
    roughness: float = 0.62,
    seed: int = 7,
    ridged: bool = False,
) -> DemGrid:
    """Fractal DEM with controllable ruggedness.

    Parameters
    ----------
    size:
        Samples per side (must be 2**k + 1, e.g. 33, 65, 129).
    cell_size:
        Sample spacing in metres (90 m mimics 3-arc-second USGS data).
    relief:
        Peak-to-valley elevation range in metres.
    roughness:
        Per-octave amplitude decay in (0, 1]; larger = more rugged.
    seed:
        RNG seed; identical seeds give identical terrain.
    ridged:
        Apply a ridged transform (sharp crests, like glacial terrain).
    """
    if size < 3:
        raise TerrainError(f"size must be >= 3, got {size}")
    rng = np.random.default_rng(seed)
    # Diamond-square needs 2**k + 1 samples; generate the next such
    # grid and crop, so callers may request any size.
    gen_size = 3
    while gen_size < size:
        gen_size = (gen_size - 1) * 2 + 1
    field = _diamond_square(gen_size, roughness, rng)[:size, :size]
    if ridged:
        field = 1.0 - np.abs(field)
    lo, hi = float(field.min()), float(field.max())
    if hi > lo:
        field = (field - lo) / (hi - lo)
    return DemGrid(field * relief, cell_size)


def gaussian_hills_dem(
    size: int = 65,
    cell_size: float = 90.0,
    relief: float = 300.0,
    num_hills: int = 10,
    seed: int = 11,
) -> DemGrid:
    """Smooth DEM: a sum of random broad Gaussian hills."""
    if size < 2:
        raise TerrainError("size must be >= 2")
    rng = np.random.default_rng(seed)
    xs = np.arange(size) * cell_size
    gx, gy = np.meshgrid(xs, xs)
    field = np.zeros((size, size), dtype=float)
    extent = (size - 1) * cell_size
    for _ in range(num_hills):
        cx, cy = rng.uniform(0.0, extent, size=2)
        sigma = rng.uniform(0.15, 0.35) * extent
        height = rng.uniform(0.3, 1.0)
        field += height * np.exp(-((gx - cx) ** 2 + (gy - cy) ** 2) / (2 * sigma**2))
    lo, hi = float(field.min()), float(field.max())
    if hi > lo:
        field = (field - lo) / (hi - lo)
    return DemGrid(field * relief, cell_size)


def bearhead_like(size: int = 65, cell_size: float = 90.0, seed: int = 2006) -> DemGrid:
    """Rugged dataset standing in for the paper's Bearhead Mountain DEM.

    High fractal roughness + ridged crests + strong relief: surface
    distances come out well above Euclidean distances, matching the
    paper's description of BH as the rougher dataset.
    """
    return fractal_dem(
        size=size,
        cell_size=cell_size,
        relief=0.45 * (size - 1) * cell_size,
        roughness=0.72,
        seed=seed,
        ridged=True,
    )


def eagle_peak_like(size: int = 65, cell_size: float = 90.0, seed: int = 1959) -> DemGrid:
    """Gentler dataset standing in for the paper's Eagle Peak DEM."""
    return fractal_dem(
        size=size,
        cell_size=cell_size,
        relief=0.12 * (size - 1) * cell_size,
        roughness=0.5,
        seed=seed,
        ridged=False,
    )
