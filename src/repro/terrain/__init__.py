"""Terrain substrate: DEM grids, synthetic terrain generators,
triangulated surface meshes and roughness statistics.

The paper evaluates on two USGS DEM datasets (Bearhead Mountain — a
rugged area — and Eagle Peak — a smoother one).  Those files are not
shipped here; :mod:`repro.terrain.synthetic` builds deterministic
fractal stand-ins with the same roughness contrast (see DESIGN.md,
"Substitutions").
"""

from repro.terrain.dem import DemGrid
from repro.terrain.mesh import TriangleMesh
from repro.terrain.synthetic import (
    bearhead_like,
    eagle_peak_like,
    fractal_dem,
    gaussian_hills_dem,
)
from repro.terrain.roughness import (
    surface_to_euclid_ratio,
    slope_statistics,
    RoughnessReport,
    roughness_report,
)

__all__ = [
    "DemGrid",
    "TriangleMesh",
    "bearhead_like",
    "eagle_peak_like",
    "fractal_dem",
    "gaussian_hills_dem",
    "surface_to_euclid_ratio",
    "slope_statistics",
    "RoughnessReport",
    "roughness_report",
]
