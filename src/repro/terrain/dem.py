"""Digital elevation models on regular grids.

A :class:`DemGrid` is the raw input of the pipeline: a rectangular
array of elevation samples with a physical cell size, exactly like the
USGS DEM files the paper reads.  It knows how to interpolate
elevations, save/load itself in the plain-text ESRI ASCII grid format
(so users can bring their own data without any GIS dependency), and
hand itself to :meth:`repro.terrain.mesh.TriangleMesh.from_dem` for
triangulation.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from repro.errors import TerrainError


class DemGrid:
    """A regular-grid DEM.

    Parameters
    ----------
    heights:
        (rows, cols) array of elevations (metres).
    cell_size:
        Physical spacing between adjacent samples (metres).
    origin:
        (x, y) of the lower-left sample; defaults to (0, 0).
    """

    def __init__(self, heights, cell_size: float, origin=(0.0, 0.0)):
        h = np.asarray(heights, dtype=float)
        if h.ndim != 2 or h.shape[0] < 2 or h.shape[1] < 2:
            raise TerrainError(
                f"DEM needs a 2D grid of at least 2x2 samples, got {h.shape}"
            )
        if not np.all(np.isfinite(h)):
            raise TerrainError("DEM contains non-finite elevations")
        if cell_size <= 0:
            raise TerrainError(f"cell_size must be positive, got {cell_size}")
        self.heights = h
        self.cell_size = float(cell_size)
        self.origin = (float(origin[0]), float(origin[1]))

    # -- basic properties -------------------------------------------------

    @property
    def rows(self) -> int:
        return int(self.heights.shape[0])

    @property
    def cols(self) -> int:
        return int(self.heights.shape[1])

    @property
    def num_samples(self) -> int:
        return self.rows * self.cols

    @property
    def width(self) -> float:
        """Physical east-west extent (metres)."""
        return (self.cols - 1) * self.cell_size

    @property
    def height(self) -> float:
        """Physical north-south extent (metres)."""
        return (self.rows - 1) * self.cell_size

    @property
    def area_km2(self) -> float:
        """Covered area in square kilometres (the paper's density unit)."""
        return self.width * self.height / 1e6

    def sample_xy(self, row: int, col: int) -> tuple[float, float]:
        """Physical (x, y) of a grid sample."""
        return (
            self.origin[0] + col * self.cell_size,
            self.origin[1] + row * self.cell_size,
        )

    # -- interpolation -----------------------------------------------------

    def elevation_at(self, x: float, y: float) -> float:
        """Bilinear elevation at a physical (x, y) inside the grid."""
        fx = (x - self.origin[0]) / self.cell_size
        fy = (y - self.origin[1]) / self.cell_size
        if not (0.0 <= fx <= self.cols - 1 and 0.0 <= fy <= self.rows - 1):
            raise TerrainError(f"point ({x}, {y}) outside DEM extent")
        c0 = min(int(fx), self.cols - 2)
        r0 = min(int(fy), self.rows - 2)
        tx = fx - c0
        ty = fy - r0
        h = self.heights
        return float(
            h[r0, c0] * (1 - tx) * (1 - ty)
            + h[r0, c0 + 1] * tx * (1 - ty)
            + h[r0 + 1, c0] * (1 - tx) * ty
            + h[r0 + 1, c0 + 1] * tx * ty
        )

    # -- resampling ---------------------------------------------------------

    def downsample(self, step: int) -> "DemGrid":
        """Keep every ``step``-th sample in each direction."""
        if step < 1:
            raise TerrainError("step must be >= 1")
        return DemGrid(
            self.heights[::step, ::step],
            self.cell_size * step,
            self.origin,
        )

    # -- serialization (ESRI ASCII grid) ------------------------------------

    def to_ascii(self) -> str:
        """Serialize to the ESRI ASCII grid format."""
        buf = io.StringIO()
        buf.write(f"ncols {self.cols}\n")
        buf.write(f"nrows {self.rows}\n")
        buf.write(f"xllcorner {self.origin[0]}\n")
        buf.write(f"yllcorner {self.origin[1]}\n")
        buf.write(f"cellsize {self.cell_size}\n")
        buf.write("NODATA_value -9999\n")
        # ESRI grids store the top row first.
        for row in self.heights[::-1]:
            buf.write(" ".join(f"{v:.6g}" for v in row))
            buf.write("\n")
        return buf.getvalue()

    def save(self, path) -> None:
        Path(path).write_text(self.to_ascii())

    @classmethod
    def from_ascii(cls, text: str) -> "DemGrid":
        """Parse an ESRI ASCII grid."""
        lines = [ln for ln in text.strip().splitlines() if ln.strip()]
        header: dict[str, float] = {}
        data_start = 0
        for i, ln in enumerate(lines):
            parts = ln.split()
            key = parts[0].lower()
            if key in (
                "ncols",
                "nrows",
                "xllcorner",
                "yllcorner",
                "cellsize",
                "nodata_value",
            ):
                header[key] = float(parts[1])
                data_start = i + 1
            else:
                break
        for required in ("ncols", "nrows", "cellsize"):
            if required not in header:
                raise TerrainError(f"ASCII grid missing header field {required}")
        rows = int(header["nrows"])
        cols = int(header["ncols"])
        values: list[float] = []
        for ln in lines[data_start:]:
            values.extend(float(tok) for tok in ln.split())
        if len(values) != rows * cols:
            raise TerrainError(
                f"ASCII grid body has {len(values)} values, expected {rows * cols}"
            )
        heights = np.asarray(values, dtype=float).reshape(rows, cols)[::-1]
        origin = (header.get("xllcorner", 0.0), header.get("yllcorner", 0.0))
        return cls(heights, header["cellsize"], origin)

    @classmethod
    def load(cls, path) -> "DemGrid":
        return cls.from_ascii(Path(path).read_text())

    # -- SRTM .hgt (raw big-endian int16 grids) ------------------------------

    @classmethod
    def from_hgt(
        cls,
        data: bytes,
        cell_size: float = 90.0,
        void_fill: float = 0.0,
    ) -> "DemGrid":
        """Parse an SRTM ``.hgt`` tile (raw big-endian int16 samples,
        square grid, north row first; 1201² for SRTM3, 3601² for
        SRTM1).  Void samples (-32768) are replaced by ``void_fill``.
        """
        import math as _math

        if len(data) % 2 != 0:
            raise TerrainError(".hgt payload must be an even byte count")
        count = len(data) // 2
        side = int(_math.isqrt(count))
        if side * side != count or side < 2:
            raise TerrainError(
                f".hgt payload of {count} samples is not a square grid"
            )
        heights = (
            np.frombuffer(data, dtype=">i2").astype(float).reshape(side, side)
        )
        heights = np.where(heights == -32768, void_fill, heights)
        # SRTM stores the northernmost row first; our row 0 is south.
        return cls(heights[::-1], cell_size)

    @classmethod
    def load_hgt(cls, path, cell_size: float = 90.0) -> "DemGrid":
        """Load an SRTM ``.hgt`` tile from disk."""
        return cls.from_hgt(Path(path).read_bytes(), cell_size)

    def to_hgt(self) -> bytes:
        """Serialize to the SRTM ``.hgt`` layout (square grids only;
        elevations round to the nearest metre)."""
        if self.rows != self.cols:
            raise TerrainError(".hgt requires a square grid")
        clipped = np.clip(np.round(self.heights[::-1]), -32767, 32767)
        return clipped.astype(">i2").tobytes()
