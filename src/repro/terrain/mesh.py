"""Triangulated surface meshes (TINs).

:class:`TriangleMesh` is the central substrate of the library: DMTM
construction simplifies it, the pathnet subdivides it, MSDN planes
cut through it, and every shortest-path algorithm walks it.  It keeps
full adjacency (vertex↔vertex, edge↔face, face↔face), validates
manifoldness, supports point location / embedding in the xy-plane and
exposes the edge network used by Dijkstra-based distance bounds.
"""

from __future__ import annotations

import math
from collections import defaultdict

import numpy as np

from repro.errors import GeometryError, MeshError, TerrainError
from repro.geometry.primitives import BoundingBox
from repro.geometry.triangle import barycentric_2d


class TriangleMesh:
    """An indexed triangle mesh embedded in 3D.

    Parameters
    ----------
    vertices:
        (n, 3) float array of positions.
    faces:
        (m, 3) int array of counter-clockwise (seen from above)
        vertex index triples.
    validate:
        Run structural validation after building adjacency.
    """

    def __init__(self, vertices, faces, validate: bool = True):
        v = np.asarray(vertices, dtype=float)
        f = np.asarray(faces, dtype=np.int64)
        if v.ndim != 2 or v.shape[1] != 3:
            raise MeshError(f"vertices must be (n, 3), got {v.shape}")
        if f.ndim != 2 or f.shape[1] != 3:
            raise MeshError(f"faces must be (m, 3), got {f.shape}")
        if v.shape[0] < 3 or f.shape[0] < 1:
            raise MeshError("a mesh needs at least 3 vertices and 1 face")
        if f.min(initial=0) < 0 or f.max(initial=0) >= v.shape[0]:
            raise MeshError("face indices out of vertex range")
        self.vertices = v
        self.faces = f
        self._build_adjacency()
        self._locator_grid = None
        self._total_angle_cache: dict[int, float] = {}
        self._boundary_cache: set[int] | None = None
        if validate:
            self.validate()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_dem(cls, dem) -> "TriangleMesh":
        """Triangulate a :class:`repro.terrain.dem.DemGrid`.

        Each grid cell is split along alternating diagonals, which
        avoids the directional bias of a single-diagonal split.
        """
        rows, cols = dem.rows, dem.cols
        xs = dem.origin[0] + np.arange(cols) * dem.cell_size
        ys = dem.origin[1] + np.arange(rows) * dem.cell_size
        gx, gy = np.meshgrid(xs, ys)
        vertices = np.column_stack(
            [gx.ravel(), gy.ravel(), dem.heights.ravel()]
        )
        faces: list[tuple[int, int, int]] = []
        for r in range(rows - 1):
            for c in range(cols - 1):
                v00 = r * cols + c
                v01 = v00 + 1
                v10 = v00 + cols
                v11 = v10 + 1
                if (r + c) % 2 == 0:
                    faces.append((v00, v01, v11))
                    faces.append((v00, v11, v10))
                else:
                    faces.append((v00, v01, v10))
                    faces.append((v01, v11, v10))
        return cls(vertices, np.asarray(faces, dtype=np.int64))

    def _build_adjacency(self) -> None:
        n_faces = self.faces.shape[0]
        edge_ids: dict[tuple[int, int], int] = {}
        edge_vertices: list[tuple[int, int]] = []
        edge_faces: list[list[int]] = []
        face_edges = np.empty((n_faces, 3), dtype=np.int64)
        for fi, (a, b, c) in enumerate(self.faces):
            for slot, (u, w) in enumerate(((a, b), (b, c), (c, a))):
                key = (u, w) if u < w else (w, u)
                eid = edge_ids.get(key)
                if eid is None:
                    eid = len(edge_vertices)
                    edge_ids[key] = eid
                    edge_vertices.append(key)
                    edge_faces.append([])
                edge_faces[eid].append(fi)
                face_edges[fi, slot] = eid
        self.edge_ids = edge_ids
        self.edge_vertices = np.asarray(edge_vertices, dtype=np.int64)
        self.face_edges = face_edges
        self.edge_faces = edge_faces
        diffs = (
            self.vertices[self.edge_vertices[:, 0]]
            - self.vertices[self.edge_vertices[:, 1]]
        )
        self.edge_lengths = np.sqrt(np.sum(diffs * diffs, axis=1))

        neighbors: list[set[int]] = [set() for _ in range(self.num_vertices)]
        for u, w in self.edge_vertices:
            neighbors[u].add(int(w))
            neighbors[w].add(int(u))
        self.vertex_neighbors = [sorted(s) for s in neighbors]

        vertex_faces: list[list[int]] = [[] for _ in range(self.num_vertices)]
        for fi, face in enumerate(self.faces):
            for vi in face:
                vertex_faces[int(vi)].append(fi)
        self.vertex_faces = vertex_faces

        # face_neighbors[fi, slot] = face across edge slot, or -1.
        face_neighbors = np.full((n_faces, 3), -1, dtype=np.int64)
        for fi in range(n_faces):
            for slot in range(3):
                for other in self.edge_faces[self.face_edges[fi, slot]]:
                    if other != fi:
                        face_neighbors[fi, slot] = other
        self.face_neighbors = face_neighbors

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return int(self.vertices.shape[0])

    @property
    def num_faces(self) -> int:
        return int(self.faces.shape[0])

    @property
    def num_edges(self) -> int:
        return int(self.edge_vertices.shape[0])

    def xy_bounds(self) -> BoundingBox:
        return BoundingBox.of_points(self.vertices[:, :2])

    def bounds(self) -> BoundingBox:
        return BoundingBox.of_points(self.vertices)

    def surface_area(self) -> float:
        v = self.vertices
        f = self.faces
        cross = np.cross(v[f[:, 1]] - v[f[:, 0]], v[f[:, 2]] - v[f[:, 0]])
        return float(np.sum(np.sqrt(np.sum(cross * cross, axis=1))) / 2.0)

    def face_points(self, fi: int) -> np.ndarray:
        """The (3, 3) array of a face's vertex positions."""
        return self.vertices[self.faces[fi]]

    def edge_length(self, u: int, w: int) -> float:
        key = (u, w) if u < w else (w, u)
        eid = self.edge_ids.get(key)
        if eid is None:
            raise MeshError(f"no edge between vertices {u} and {w}")
        return float(self.edge_lengths[eid])

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Structural checks: finite coordinates, no degenerate faces,
        edge-manifold, consistently usable as a height field network."""
        if not np.all(np.isfinite(self.vertices)):
            raise MeshError("non-finite vertex coordinates")
        v = self.vertices
        f = self.faces
        if np.any(f[:, 0] == f[:, 1]) or np.any(f[:, 1] == f[:, 2]) or np.any(
            f[:, 0] == f[:, 2]
        ):
            raise MeshError("degenerate face (repeated vertex index)")
        cross = np.cross(v[f[:, 1]] - v[f[:, 0]], v[f[:, 2]] - v[f[:, 0]])
        areas = np.sqrt(np.sum(cross * cross, axis=1)) / 2.0
        if np.any(areas <= 0.0):
            raise MeshError("zero-area face")
        for eid, incident in enumerate(self.edge_faces):
            if len(incident) > 2:
                u, w = self.edge_vertices[eid]
                raise MeshError(
                    f"non-manifold edge ({u}, {w}) shared by {len(incident)} faces"
                )

    def boundary_vertices(self) -> set[int]:
        """Vertices on a boundary edge (edge with a single face).

        Cached per mesh: every :class:`ExactGeodesic` run (one per
        landmark row, plus the fig7 oracles) consults it, and the
        answer only depends on immutable adjacency.  Callers must
        treat the returned set as read-only.
        """
        if self._boundary_cache is None:
            result: set[int] = set()
            for eid, incident in enumerate(self.edge_faces):
                if len(incident) == 1:
                    u, w = self.edge_vertices[eid]
                    result.add(int(u))
                    result.add(int(w))
            self._boundary_cache = result
        return self._boundary_cache

    def vertex_total_angle(self, vi: int) -> float:
        """Sum of incident face angles at a vertex.

        Interior vertices with total angle > 2*pi are *saddle*
        vertices; exact geodesics may pass through them, which is why
        the exact algorithm spawns pseudo-sources there.

        Memoized per (mesh, vertex) with the scalar loop kept as the
        single source of truth — a vectorized re-derivation could
        round the angle sum differently and flip a borderline saddle
        classification, changing exact geodesics between callers.
        """
        cached = self._total_angle_cache.get(vi)
        if cached is not None:
            return cached
        total = 0.0
        p = self.vertices[vi]
        for fi in self.vertex_faces[vi]:
            face = self.faces[fi]
            others = [int(x) for x in face if int(x) != vi]
            u = self.vertices[others[0]] - p
            w = self.vertices[others[1]] - p
            nu = np.linalg.norm(u)
            nw = np.linalg.norm(w)
            if nu == 0.0 or nw == 0.0:
                continue
            cosang = float(np.clip(np.dot(u, w) / (nu * nw), -1.0, 1.0))
            total += math.acos(cosang)
        self._total_angle_cache[vi] = total
        return total

    # ------------------------------------------------------------------
    # point location / embedding
    # ------------------------------------------------------------------

    def _locator(self):
        """Lazily build a uniform grid of face indices keyed by xy cell."""
        if self._locator_grid is None:
            bounds = self.xy_bounds()
            n_cells = max(1, int(math.sqrt(self.num_faces)))
            ext = np.maximum(bounds.extents, 1e-9)
            cell = float(max(ext) / n_cells)
            buckets: dict[tuple[int, int], list[int]] = defaultdict(list)
            lo = np.asarray(bounds.lo)
            for fi in range(self.num_faces):
                pts = self.face_points(fi)[:, :2]
                cmin = np.floor((pts.min(axis=0) - lo) / cell).astype(int)
                cmax = np.floor((pts.max(axis=0) - lo) / cell).astype(int)
                for cx in range(cmin[0], cmax[0] + 1):
                    for cy in range(cmin[1], cmax[1] + 1):
                        buckets[(cx, cy)].append(fi)
            self._locator_grid = (lo, cell, buckets)
        return self._locator_grid

    def locate_face(self, x: float, y: float) -> int:
        """Face whose xy-projection contains (x, y).

        Raises :class:`TerrainError` when the point is off the mesh.
        """
        lo, cell, buckets = self._locator()
        cx = int(math.floor((x - lo[0]) / cell))
        cy = int(math.floor((y - lo[1]) / cell))
        for fi in buckets.get((cx, cy), ()):
            a, b, c = self.face_points(fi)
            try:
                w = barycentric_2d((x, y), a, b, c)
            except GeometryError:
                # Degenerate (zero-area) face: cannot contain the point.
                continue
            if min(w) >= -1e-9:
                return fi
        # Fall back to neighbouring buckets (boundary effects).
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for fi in buckets.get((cx + dx, cy + dy), ()):
                    a, b, c = self.face_points(fi)
                    try:
                        w = barycentric_2d((x, y), a, b, c)
                    except GeometryError:
                        continue
                    if min(w) >= -1e-9:
                        return fi
        raise TerrainError(f"point ({x}, {y}) is not on the mesh")

    def elevation_at(self, x: float, y: float) -> float:
        """Surface elevation above (x, y) by barycentric interpolation."""
        fi = self.locate_face(x, y)
        a, b, c = self.face_points(fi)
        wa, wb, wc = barycentric_2d((x, y), a, b, c)
        return float(wa * a[2] + wb * b[2] + wc * c[2])

    def surface_point(self, x: float, y: float) -> np.ndarray:
        """The 3D point on the surface above (x, y)."""
        return np.array([x, y, self.elevation_at(x, y)])

    def nearest_vertex(self, p) -> int:
        """Index of the vertex nearest to ``p`` (2D or 3D query)."""
        p = np.asarray(p, dtype=float)
        if p.shape[-1] == 2:
            d = self.vertices[:, :2] - p
        else:
            d = self.vertices - p
        return int(np.argmin(np.sum(d * d, axis=1)))

    # ------------------------------------------------------------------
    # network views
    # ------------------------------------------------------------------

    def edge_network(self) -> list[list[tuple[int, float]]]:
        """Adjacency list of the mesh's edge graph.

        ``adj[v]`` is a list of ``(neighbor, edge_length)`` pairs —
        the network whose Dijkstra distances are the paper's ``dN``.
        """
        adj: list[list[tuple[int, float]]] = [[] for _ in range(self.num_vertices)]
        for eid, (u, w) in enumerate(self.edge_vertices):
            length = float(self.edge_lengths[eid])
            adj[int(u)].append((int(w), length))
            adj[int(w)].append((int(u), length))
        return adj

    def submesh_faces(self, region: BoundingBox) -> np.ndarray:
        """Indices of faces whose xy-MBR intersects ``region``."""
        region = region.xy() if region.dim == 3 else region
        v = self.vertices
        fx = v[self.faces, 0]
        fy = v[self.faces, 1]
        lo = np.asarray(region.lo)
        hi = np.asarray(region.hi)
        keep = (
            (fx.min(axis=1) <= hi[0])
            & (fx.max(axis=1) >= lo[0])
            & (fy.min(axis=1) <= hi[1])
            & (fy.max(axis=1) >= lo[1])
        )
        return np.nonzero(keep)[0]
