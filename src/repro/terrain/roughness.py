"""Terrain roughness statistics.

The paper motivates multiresolution pruning with the observation that
the surface/Euclidean distance ratio varies from ~20-40 % extra on
gentle terrain to 200-300 % on rugged mountains, which makes a fixed
Euclidean-based search radius either wasteful or repeatedly too
small.  These helpers measure exactly that ratio (plus slope
statistics) so the bench harness can report which regime a synthetic
dataset falls into.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TerrainError
from repro.geodesic.csr import csr_from_adjacency, dijkstra_csr, kernel_mode
from repro.geodesic.dijkstra import dijkstra
from repro.geometry.vectors import dist


def surface_to_euclid_ratio(mesh, num_pairs: int = 32, seed: int = 0) -> float:
    """Mean network-over-Euclidean distance ratio for random vertex pairs.

    Uses the mesh edge network distance ``dN`` (an upper bound of the
    surface distance ``dS`` and a good roughness proxy).
    """
    if num_pairs < 1:
        raise TerrainError("num_pairs must be >= 1")
    rng = np.random.default_rng(seed)
    adj = mesh.edge_network()
    # One CSR compile serves every sampled pair below.
    csr = csr_from_adjacency(adj) if kernel_mode() != "reference" else None
    ratios: list[float] = []
    attempts = 0
    while len(ratios) < num_pairs and attempts < num_pairs * 4:
        attempts += 1
        a, b = rng.integers(0, mesh.num_vertices, size=2)
        if a == b:
            continue
        euclid = float(dist(mesh.vertices[a], mesh.vertices[b]))
        if euclid == 0.0:
            continue
        if csr is not None:
            network = dijkstra_csr(csr, int(a), targets={int(b)}).get(int(b))
        else:
            network = dijkstra(adj, int(a), targets={int(b)}).get(int(b))
        if network is None:
            continue
        ratios.append(network / euclid)
    if not ratios:
        raise TerrainError("could not sample any connected vertex pair")
    return float(np.mean(ratios))


def slope_statistics(mesh) -> tuple[float, float]:
    """(mean, max) face slope in degrees."""
    v = mesh.vertices
    f = mesh.faces
    normal = np.cross(v[f[:, 1]] - v[f[:, 0]], v[f[:, 2]] - v[f[:, 0]])
    length = np.sqrt(np.sum(normal * normal, axis=1))
    length[length == 0.0] = 1.0
    cos_slope = np.abs(normal[:, 2]) / length
    slopes = np.degrees(np.arccos(np.clip(cos_slope, -1.0, 1.0)))
    return float(np.mean(slopes)), float(np.max(slopes))


@dataclass(frozen=True)
class RoughnessReport:
    """Roughness summary for a terrain mesh."""

    surface_euclid_ratio: float
    mean_slope_deg: float
    max_slope_deg: float
    relief: float

    @property
    def extra_distance_percent(self) -> float:
        """Extra surface distance over Euclidean, in percent (the
        paper quotes 20-40 % for gentle, 200-300 % for rugged)."""
        return (self.surface_euclid_ratio - 1.0) * 100.0


def roughness_report(mesh, num_pairs: int = 32, seed: int = 0) -> RoughnessReport:
    """Compute a :class:`RoughnessReport` for ``mesh``."""
    mean_slope, max_slope = slope_statistics(mesh)
    relief = float(mesh.vertices[:, 2].max() - mesh.vertices[:, 2].min())
    return RoughnessReport(
        surface_euclid_ratio=surface_to_euclid_ratio(mesh, num_pairs, seed),
        mean_slope_deg=mean_slope,
        max_slope_deg=max_slope,
        relief=relief,
    )
