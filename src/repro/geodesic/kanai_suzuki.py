"""Kanai & Suzuki's approximate surface shortest path.

The algorithm [KS00] the paper picks as the practical alternative to
Chen & Han: start from the bare edge network, then repeatedly rebuild
a pathnet with more Steiner points — but only inside a *selectively
refined region* around the current best path — until the distance
stops improving by more than the requested accuracy.  The paper runs
it with a 3 % stopping tolerance ("we allow 3% error in shortest
surface calculation").
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeodesicError
from repro.geodesic.pathnet import (
    build_pathnet,
    vertex_key,
)
from repro.geodesic.csr import graph_dijkstra_with_parents, kernel_mode


def _round0_pathnet(mesh):
    """The bare edge network (pathnet with 0 Steiner points).

    In frontier mode the graph is cached on the mesh: round 0 spans
    the WHOLE mesh and is identical for every (source, target) pair,
    and the polish loop calls this once per boundary candidate.  The
    graph is never mutated after construction (searches only), so the
    cache is safe; heap modes keep the per-call rebuild so their
    compile-on-reuse behaviour stays exactly as measured.
    """
    if kernel_mode() != "frontier":
        return build_pathnet(mesh, steiner_per_edge=0)
    cached = getattr(mesh, "_round0_pathnet", None)
    if cached is None:
        cached = build_pathnet(mesh, steiner_per_edge=0)
        try:
            mesh._round0_pathnet = cached
        except AttributeError:
            pass  # slotted/frozen mesh: just skip the cache
    return cached


def _corridor_faces(mesh, node_keys, rings: int = 1) -> np.ndarray:
    """Faces touched by a pathnet route, expanded by ``rings`` layers
    of face adjacency — the selectively refined region."""
    faces: set[int] = set()
    for key in node_keys:
        if key[0] == "v":
            faces.update(int(f) for f in mesh.vertex_faces[key[1]])
        else:
            edge_id = key[1]
            faces.update(int(f) for f in mesh.edge_faces[edge_id])
    for _ in range(rings):
        frontier = set()
        for fi in faces:
            for g in mesh.face_neighbors[fi]:
                if g >= 0:
                    frontier.add(int(g))
        faces |= frontier
    return np.asarray(sorted(faces), dtype=np.int64)


def _route(graph, source_key, target_key) -> tuple[float, list[tuple]]:
    # The route's keys seed the next round's refined corridor, so this
    # stays on (CSR) Dijkstra rather than A*: both kernels realise the
    # same tie-broken shortest-path tree as the dict reference.
    s = graph.node_id(source_key)
    t = graph.node_id(target_key)
    dist, parent = graph_dijkstra_with_parents(graph, s, targets={t})
    if t not in dist:
        raise GeodesicError("pathnet route not found")
    node = t
    keys = [graph.key_of(node)]
    while node != s:
        node = parent[node]
        keys.append(graph.key_of(node))
    keys.reverse()
    return dist[t], keys


def kanai_suzuki_distance(
    mesh,
    source: int,
    target: int,
    tolerance: float = 0.03,
    max_steiner: int = 16,
    corridor_rings: int = 1,
) -> float:
    """Approximate ``dS(source, target)`` by selective refinement.

    Parameters
    ----------
    mesh:
        The surface :class:`repro.terrain.TriangleMesh`.
    source, target:
        Vertex indices.
    tolerance:
        Stop when one refinement round improves the distance by less
        than this relative amount (paper: 0.03).
    max_steiner:
        Refinement ceiling: Steiner points per edge double each round
        (1, 2, 4, ...) up to this bound.
    corridor_rings:
        Face-adjacency rings added around the current path when
        building the refined region.

    Returns an upper bound of ``dS`` within roughly ``tolerance`` of
    the optimum on well-behaved meshes.
    """
    if source == target:
        return 0.0
    if tolerance <= 0.0:
        raise GeodesicError("tolerance must be positive")
    src_key = vertex_key(source)
    dst_key = vertex_key(target)

    # Round 0: the bare edge network (pathnet with 0 Steiner points).
    graph = _round0_pathnet(mesh)
    best, keys = _route(graph, src_key, dst_key)

    steiner = 1
    while steiner <= max_steiner:
        corridor = _corridor_faces(mesh, keys, rings=corridor_rings)
        graph = build_pathnet(mesh, steiner_per_edge=steiner, faces=corridor)
        if src_key not in graph or dst_key not in graph:
            break
        dist, keys = _route(graph, src_key, dst_key)
        improvement = (best - dist) / best if best > 0 else 0.0
        best = min(best, dist)
        if improvement < tolerance:
            break
        steiner *= 2
    return best
