"""Flat CSR graph kernels — the array-based fast path for every
shortest-path search in the system.

:class:`CSRGraph` stores adjacency in compressed-sparse-row form
(``indptr``/``indices``/``weights`` numpy arrays) compiled once from a
:class:`repro.geodesic.graph.KeyedGraph` or a plain list-of-lists.
The kernels run on preallocated flat arrays (``dist`` list indexed by
dense node id, ``visited`` bytearray) instead of per-search dicts, and
batch their settled/relaxation counters exactly like the reference
kernels in :mod:`repro.geodesic.dijkstra`.

Three search shapes cover every caller:

* :func:`dijkstra_csr` / :func:`dijkstra_csr_with_parents` —
  single-source (optionally multi-target) searches, drop-in
  replacements for the dict reference with bit-identical distances,
  parents and early-exit behaviour (same heap tuple ordering);
* :func:`multi_source_dijkstra_csr` — all anchors of a ranking level
  settle in ONE search.  Each source carries an additive offset; the
  priority is recomposed as ``offset + raw`` at every relaxation so
  reported values match the reference's per-anchor composition
  ``fl(offset ⊕ raw_distance)`` bit for bit, and the heap tuple
  ``(value, node, rank, parent, raw)`` breaks cross-anchor value ties
  toward the lowest-ranked source — the reference's strict-<
  first-anchor-wins rule;
* :func:`astar_csr` — single-target A* with the admissible (and
  consistent) straight-line-distance heuristic, for value-only bound
  refinement; it may realise a different same-length path than
  Dijkstra on tie-heavy meshes, so it is only wired where the path is
  not consumed.

Kernel selection is a process-wide mode switch: ``"csr"`` (default),
``"reference"`` (the dict kernels, kept as ``dijkstra_reference``) or
``"frontier"`` (the numpy frontier-batched kernels in
:mod:`repro.geodesic.frontier`).  :func:`use_kernel_mode` flips it
for a ``with`` block — the differential tests and ``bench kernels``
run the same queries under every mode and assert identical answers.
"""

from __future__ import annotations

import heapq
import time
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from repro.errors import GeodesicError
from repro.geodesic.deadline import (
    DEADLINE_CHECK_INTERVAL,
    DeadlineExceeded,
    current_deadline,
)
from repro.obs.context import active_profiler
from repro.obs.metrics import get_registry
from repro.obs.profile import kernel_phase

# ----------------------------------------------------------------------
# kernel mode
# ----------------------------------------------------------------------

_MODES = ("csr", "reference", "frontier")
_kernel_mode = "csr"


def kernel_mode() -> str:
    """The process-wide kernel selection: ``"csr"``, ``"reference"``
    or ``"frontier"``."""
    return _kernel_mode


def set_kernel_mode(mode: str) -> None:
    """Select the search kernels used by graph-backed call sites.

    Process-wide (not thread-scoped): flip it around single-threaded
    sections only, e.g. via :func:`use_kernel_mode`.
    """
    global _kernel_mode
    if mode not in _MODES:
        raise GeodesicError(f"unknown kernel mode {mode!r}; use one of {_MODES}")
    _kernel_mode = mode


@contextmanager
def use_kernel_mode(mode: str):
    """Run a block under an explicit kernel mode (differential tests,
    per-mode timings in ``bench kernels``)."""
    previous = _kernel_mode
    set_kernel_mode(mode)
    try:
        yield
    finally:
        set_kernel_mode(previous)


def use_reference_kernels():
    """Run a block on the dict reference kernels (differential tests,
    reference timings in ``bench kernels``)."""
    return use_kernel_mode("reference")


# ----------------------------------------------------------------------
# CSR representation
# ----------------------------------------------------------------------


class CSRGraph:
    """Compressed-sparse-row adjacency with optional node positions.

    ``indices[indptr[u]:indptr[u + 1]]`` are u's neighbours in the
    same order the source adjacency list iterated them (ties in the
    kernels therefore resolve identically), with parallel ``weights``.
    ``positions`` is an optional ``(n, 3)`` float array enabling the
    A* straight-line heuristic.

    The hot loops run in CPython, where plain lists beat numpy scalar
    indexing by a wide margin, so lists are the primary storage; the
    ``indptr``/``indices``/``weights`` numpy views are materialised
    lazily on first access.  Compile cost matters — pathnet refinement
    builds throwaway graphs searched once — so nothing numpy happens
    up front.
    """

    __slots__ = (
        "_indptr_list",
        "_indices_list",
        "_weights_list",
        "_arrays",
        "_frontier",
        "positions",
    )

    def __init__(self, indptr, indices, weights, positions=None):
        if (
            isinstance(indptr, np.ndarray)
            and isinstance(indices, np.ndarray)
            and isinstance(weights, np.ndarray)
        ):
            # Array-first construction (the vectorised pathnet
            # builder): keep the numpy form primary and materialise
            # the list mirrors lazily — the frontier kernels never
            # need them.
            self._indptr_list = None
            self._indices_list = None
            self._weights_list = None
            self._arrays = (
                np.ascontiguousarray(indptr, dtype=np.int64),
                np.ascontiguousarray(indices, dtype=np.int64),
                np.ascontiguousarray(weights, dtype=np.float64),
            )
        else:
            self._indptr_list = list(indptr)
            self._indices_list = list(indices)
            self._weights_list = list(weights)
            self._arrays = None
        self._frontier = None  # per-graph frontier-kernel state cache
        self.positions = (
            np.asarray(positions, dtype=np.float64) if positions is not None else None
        )

    def _materialise(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        arrays = self._arrays
        if (
            arrays is not None
            and self._indptr_list is not None
            and (
                arrays[0].shape[0] != len(self._indptr_list)
                or arrays[1].shape[0] != len(self._indices_list)
            )
        ):
            # Hardening: a caller grew the list storage after the
            # numpy views were materialised.  Re-materialise (and drop
            # the derived frontier state) rather than search on stale
            # views.
            arrays = None
            self._frontier = None
        if arrays is None:
            arrays = self._arrays = (
                np.asarray(self._indptr_list, dtype=np.int64),
                np.asarray(self._indices_list, dtype=np.int64),
                np.asarray(self._weights_list, dtype=np.float64),
            )
        return arrays

    @property
    def indptr(self) -> np.ndarray:
        return self._materialise()[0]

    @property
    def indices(self) -> np.ndarray:
        return self._materialise()[1]

    @property
    def weights(self) -> np.ndarray:
        return self._materialise()[2]

    @property
    def num_nodes(self) -> int:
        if self._indptr_list is not None:
            return len(self._indptr_list) - 1
        return int(self._arrays[0].shape[0]) - 1

    @property
    def num_edges(self) -> int:
        if self._indices_list is not None:
            return len(self._indices_list)
        return int(self._arrays[1].shape[0])

    def lists(self) -> tuple[list, list, list]:
        """``(indptr, indices, weights)`` as plain Python lists — the
        form the CPython hot loops consume (materialised lazily for
        array-first graphs)."""
        if self._indptr_list is None:
            indptr, indices, weights = self._arrays
            self._indptr_list = indptr.tolist()
            self._indices_list = indices.tolist()
            self._weights_list = weights.tolist()
        return self._indptr_list, self._indices_list, self._weights_list

    def heuristic_to(self, target: int) -> list[float]:
        """Straight-line distances from every node to ``target`` (one
        vectorised pass) — the admissible A* heuristic."""
        if self.positions is None:
            raise GeodesicError("CSRGraph has no positions; A* unavailable")
        deltas = self.positions - self.positions[target]
        return np.sqrt((deltas * deltas).sum(axis=1)).tolist()


def csr_from_adjacency(adj, positions=None) -> CSRGraph:
    """Compile a list-of-lists adjacency (``adj[u]`` iterating
    ``(v, weight)`` pairs) into a :class:`CSRGraph`."""
    indptr = [0] * (len(adj) + 1)
    indices: list[int] = []
    weights: list[float] = []
    extend_i = indices.extend
    extend_w = weights.extend
    total = 0
    for u, nbrs in enumerate(adj):
        total += len(nbrs)
        indptr[u + 1] = total
        if nbrs:
            vs, ws = zip(*nbrs)
            extend_i(vs)
            extend_w(ws)
    return CSRGraph(indptr=indptr, indices=indices, weights=weights, positions=positions)


# ----------------------------------------------------------------------
# counters (same registry names as the reference kernels)
# ----------------------------------------------------------------------


def _report(settled: int, relaxations: int) -> None:
    reg = get_registry()
    reg.counter("geodesic.dijkstra.calls").add(1)
    reg.counter("geodesic.dijkstra.settled").add(settled)
    reg.counter("geodesic.dijkstra.relaxations").add(relaxations)
    # Under a profiling context the same deltas land on the open
    # "graph-kernel" phase frame (see repro.obs.profile.kernel_phase).
    profiler = active_profiler()
    if profiler.enabled:
        profiler.count("kernel_calls", 1)
        profiler.count("settled", settled)
        profiler.count("relaxations", relaxations)


# ----------------------------------------------------------------------
# flat-array kernels
# ----------------------------------------------------------------------


@kernel_phase
def dijkstra_csr(
    csr: CSRGraph,
    source: int,
    targets: set[int] | None = None,
    max_dist: float | None = None,
) -> dict[int, float]:
    """Flat-array single-source Dijkstra, bit-identical to
    :func:`repro.geodesic.dijkstra.dijkstra` (same heap tuples, same
    neighbour order, same early-exit rules)."""
    n = csr.num_nodes
    if not 0 <= source < n:
        raise GeodesicError(f"source {source} out of range")
    indptr, indices, weights = csr.lists()
    visited = bytearray(n)
    out: dict[int, float] = {}
    remaining = set(targets) if targets is not None else None
    heap: list[tuple[float, int]] = [(0.0, source)]
    relaxations = 0
    deadline = current_deadline()
    while heap:
        d, u = heapq.heappop(heap)
        if visited[u]:
            continue
        if max_dist is not None and d > max_dist:
            break
        visited[u] = 1
        out[u] = d
        if (
            deadline is not None
            and len(out) % DEADLINE_CHECK_INTERVAL == 0
            and time.perf_counter() >= deadline
        ):
            raise DeadlineExceeded(
                f"dijkstra_csr passed its deadline after {len(out)} "
                "settled nodes"
            )
        if remaining is not None:
            remaining.discard(u)
            if not remaining:
                break
        for e in range(indptr[u], indptr[u + 1]):
            v = indices[e]
            if not visited[v]:
                nd = d + weights[e]
                if max_dist is None or nd <= max_dist:
                    heapq.heappush(heap, (nd, v))
                    relaxations += 1
    _report(len(out), relaxations)
    return out


@kernel_phase
def dijkstra_csr_with_parents(
    csr: CSRGraph,
    source: int,
    targets: set[int] | None = None,
    max_dist: float | None = None,
) -> tuple[dict[int, float], dict[int, int]]:
    """Flat-array variant of
    :func:`repro.geodesic.dijkstra.dijkstra_with_parents` — identical
    distances AND identical shortest-path trees (the ``(d, u, p)``
    heap tuple ordering is preserved, so tie-broken parents match)."""
    n = csr.num_nodes
    if not 0 <= source < n:
        raise GeodesicError(f"source {source} out of range")
    indptr, indices, weights = csr.lists()
    visited = bytearray(n)
    out: dict[int, float] = {}
    parent: dict[int, int] = {}
    remaining = set(targets) if targets is not None else None
    heap: list[tuple[float, int, int]] = [(0.0, source, -1)]
    relaxations = 0
    deadline = current_deadline()
    while heap:
        d, u, p = heapq.heappop(heap)
        if visited[u]:
            continue
        if max_dist is not None and d > max_dist:
            break
        visited[u] = 1
        out[u] = d
        if (
            deadline is not None
            and len(out) % DEADLINE_CHECK_INTERVAL == 0
            and time.perf_counter() >= deadline
        ):
            raise DeadlineExceeded(
                f"dijkstra_csr_with_parents passed its deadline after "
                f"{len(out)} settled nodes"
            )
        if p >= 0:
            parent[u] = p
        if remaining is not None:
            remaining.discard(u)
            if not remaining:
                break
        for e in range(indptr[u], indptr[u + 1]):
            v = indices[e]
            if not visited[v]:
                nd = d + weights[e]
                if max_dist is None or nd <= max_dist:
                    heapq.heappush(heap, (nd, v, u))
                    relaxations += 1
    _report(len(out), relaxations)
    return out, parent


@dataclass
class MultiSourceResult:
    """Settled labels of one multi-source search.

    All maps are keyed by settled node id: ``value`` is the offset
    -composed priority ``fl(offset_rank ⊕ raw)``, ``raw`` the plain
    path length from the winning source, ``origin`` the rank (index
    into the ``sources`` argument) of that source, ``parent`` the
    predecessor (absent for source nodes settled from themselves).
    """

    value: dict[int, float]
    raw: dict[int, float]
    origin: dict[int, int]
    parent: dict[int, int]

    def path_to(self, node: int) -> list[int]:
        """Node sequence from the winning source to ``node``."""
        path = [node]
        while path[-1] in self.parent:
            path.append(self.parent[path[-1]])
        path.reverse()
        return path


@kernel_phase
def multi_source_dijkstra_csr(
    csr: CSRGraph,
    sources: list[tuple[int, float]],
    targets: set[int] | None = None,
    max_dist: float | None = None,
) -> MultiSourceResult:
    """One search settling the best ``offset + distance`` label over
    many ``(node, offset)`` sources.

    Replaces one-reference-Dijkstra-per-anchor: with M anchors and N
    targets, one wavefront serves all M·N pairs.  The priority is
    recomposed as ``offsets[rank] + raw`` at every relaxation (not
    accumulated), so each settled value equals the reference
    expression ``fl(offset ⊕ raw_distance)`` bitwise; ties between
    equal values from different sources settle the lowest rank first,
    matching the strict-< first-anchor-wins minimum the ranking loop
    applies over per-anchor results.
    """
    n = csr.num_nodes
    if not sources:
        _report(0, 0)
        return MultiSourceResult({}, {}, {}, {})
    indptr, indices, weights = csr.lists()
    offsets = []
    heap: list[tuple[float, int, int, int, float]] = []
    for rank, (node, offset) in enumerate(sources):
        if not 0 <= node < n:
            raise GeodesicError(f"source {node} out of range")
        offset = float(offset)
        offsets.append(offset)
        # value = fl(offset ⊕ 0.0) == offset; raw starts at 0.0.
        heap.append((offset, node, rank, -1, 0.0))
    heapq.heapify(heap)
    visited = bytearray(n)
    value: dict[int, float] = {}
    raw: dict[int, float] = {}
    origin: dict[int, int] = {}
    parent: dict[int, int] = {}
    remaining = set(targets) if targets is not None else None
    relaxations = 0
    deadline = current_deadline()
    while heap:
        val, u, rank, p, rw = heapq.heappop(heap)
        if visited[u]:
            continue
        if max_dist is not None and val > max_dist:
            break
        visited[u] = 1
        value[u] = val
        raw[u] = rw
        origin[u] = rank
        if (
            deadline is not None
            and len(value) % DEADLINE_CHECK_INTERVAL == 0
            and time.perf_counter() >= deadline
        ):
            raise DeadlineExceeded(
                f"multi_source_dijkstra_csr passed its deadline after "
                f"{len(value)} settled nodes"
            )
        if p >= 0:
            parent[u] = p
        if remaining is not None:
            remaining.discard(u)
            if not remaining:
                break
        off = offsets[rank]
        for e in range(indptr[u], indptr[u + 1]):
            v = indices[e]
            if not visited[v]:
                nraw = rw + weights[e]
                nval = off + nraw
                if max_dist is None or nval <= max_dist:
                    heapq.heappush(heap, (nval, v, rank, u, nraw))
                    relaxations += 1
    _report(len(value), relaxations)
    return MultiSourceResult(value=value, raw=raw, origin=origin, parent=parent)


@kernel_phase
def astar_csr(
    csr: CSRGraph,
    source: int,
    target: int,
    max_dist: float | None = None,
    heuristic=None,
) -> float | None:
    """Single-target A* with the straight-line-distance heuristic.

    The heuristic is admissible and consistent (edge weights are 3D
    segment lengths, never shorter than the straight line), so the
    returned distance equals Dijkstra's.  Returns None when the
    target is unreachable (within ``max_dist`` if given).  Value-only:
    on meshes with many equal-length paths A* may walk a different
    one, so callers that consume path keys use
    :func:`dijkstra_csr_with_parents` instead.

    ``heuristic`` optionally replaces the straight-line heuristic
    with a caller-supplied per-node sequence (e.g. the ALT landmark
    heuristic from
    :meth:`repro.geodesic.landmarks.LandmarkIndex.pathnet_heuristic`).
    The caller must guarantee admissibility and consistency — the
    returned distance is exact only under those properties.
    """
    n = csr.num_nodes
    if not 0 <= source < n:
        raise GeodesicError(f"source {source} out of range")
    if not 0 <= target < n:
        raise GeodesicError(f"target {target} out of range")
    if source == target:
        _report(1, 0)
        return 0.0
    h = csr.heuristic_to(target) if heuristic is None else heuristic
    indptr, indices, weights = csr.lists()
    visited = bytearray(n)
    settled = 0
    relaxations = 0
    # (priority, g, node): priority = g + h(node), h(target) == 0.
    heap: list[tuple[float, float, int]] = [(h[source], 0.0, source)]
    result = None
    deadline = current_deadline()
    while heap:
        pri, g, u = heapq.heappop(heap)
        if visited[u]:
            continue
        if max_dist is not None and pri > max_dist:
            break
        visited[u] = 1
        settled += 1
        if (
            deadline is not None
            and settled % DEADLINE_CHECK_INTERVAL == 0
            and time.perf_counter() >= deadline
        ):
            raise DeadlineExceeded(
                f"astar_csr passed its deadline after {settled} "
                "settled nodes"
            )
        if u == target:
            result = g
            break
        for e in range(indptr[u], indptr[u + 1]):
            v = indices[e]
            if not visited[v]:
                ng = g + weights[e]
                npri = ng + h[v]
                if max_dist is None or npri <= max_dist:
                    heapq.heappush(heap, (npri, ng, v))
                    relaxations += 1
    _report(settled, relaxations)
    return result


# ----------------------------------------------------------------------
# mode-dispatching helpers for KeyedGraph call sites
# ----------------------------------------------------------------------


def graph_dijkstra(graph, source, targets=None, max_dist=None) -> dict[int, float]:
    """Mode dispatcher with the compile-on-reuse rule.

    In CSR and frontier modes the flat kernels run only when the graph
    already carries a compiled CSR form (a cached network view, or a
    graph an explicit ``csr()`` caller compiled): all kernels return
    identical answers, but compile-then-search loses to the dict
    kernel on a graph searched once, and pathnet refinement builds
    lots of throwaway graphs.  Reference mode always takes the dict
    kernel.
    """
    if _kernel_mode != "reference":
        csr = graph.csr_if_compiled()
        if csr is not None:
            if _kernel_mode == "frontier":
                from repro.geodesic.frontier import dijkstra_frontier

                return dijkstra_frontier(csr, source, targets, max_dist)
            return dijkstra_csr(csr, source, targets, max_dist)
    from repro.geodesic.dijkstra import dijkstra_reference

    return dijkstra_reference(graph.adjacency, source, targets, max_dist)


def graph_dijkstra_with_parents(
    graph, source, targets=None, max_dist=None
) -> tuple[dict[int, float], dict[int, int]]:
    """Mode dispatcher for the with-parents variant (same
    compile-on-reuse rule as :func:`graph_dijkstra`)."""
    if _kernel_mode != "reference":
        csr = graph.csr_if_compiled()
        if csr is not None:
            if _kernel_mode == "frontier":
                from repro.geodesic.frontier import dijkstra_frontier_with_parents

                return dijkstra_frontier_with_parents(csr, source, targets, max_dist)
            return dijkstra_csr_with_parents(csr, source, targets, max_dist)
    from repro.geodesic.dijkstra import dijkstra_with_parents

    return dijkstra_with_parents(graph.adjacency, source, targets, max_dist)
