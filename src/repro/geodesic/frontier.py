"""Frontier-batched numpy kernels: whole frontiers settle per step.

The heap kernels in :mod:`repro.geodesic.csr` relax one node per pop
in CPython.  The kernels here settle a whole *bucket* of nodes per
step and relax all their out-edges in a handful of vectorised numpy
operations — the array-first discipline that in-memory road-network
studies show dominates pointer-chasing implementations.

**Bucketing rule (threshold stepping).**  With ``wmin`` the smallest
(strictly positive) edge weight, every labeled-but-unsettled node
with tentative value ``v < tmin + wmin`` — ``tmin`` the smallest
tentative value — already carries its final label: any improvement
would route through a node with value ``>= tmin`` plus an edge of
weight ``>= wmin``.  The whole threshold window settles as one bucket
and its out-edges relax as one batch (gather / lexsort / first-
occurrence reduce, the ``np.minimum.reduceat`` family).  The window
is shrunk by a rounding-error margin (see ``_margin``) so a candidate
composed in floating point can never round below the threshold; if
the margin swallows ``wmin`` the bucket degenerates to the single
lexicographic minimum — exactly one reference heap pop, always safe.

**Identity contract.**  Each kernel reproduces its reference heap
twin bit for bit: same distances, same parents, same tie-breaks, and
the same settled set under ``targets`` early exit and ``max_dist``
cutoffs.  Ties resolve by emulating the reference heap tuples —
``(d, u)``, ``(d, u, p)``, ``(value, node, rank, parent, raw)`` — as
lexicographic minima over the batched candidate columns, and values
compose with the same float operations (``raw + w`` then
``offset + raw``), so the testkit differential matrix stays the
identity oracle across all three kernel modes.  The reference's
early-exit settled set is a prefix of the ``(value, node)``-sorted
pop order; the kernels compute buckets until every target settles,
then cut the output at the last target's ``(value, node)`` pair.

**When the heap kernels still win.**  Graphs with a zero-weight edge
(no positive window exists) delegate to the heap twin, as do searches
on graphs too small to amortise numpy call overhead — and the mode
dispatchers keep the compile-on-reuse rule, so throwaway dict graphs
searched once never pay an array compile.

:func:`build_pathnet_arrays` is the companion construction kernel: it
builds the Steiner pathnet of
:func:`repro.geodesic.pathnet.build_pathnet` as flat arrays (node
first-encounter order, per-face pair expansion and adjacency order
all identical to the Python builder), bit-identical weights included.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.errors import GeodesicError
from repro.geodesic.csr import (
    CSRGraph,
    MultiSourceResult,
    _report,
    astar_csr,
    dijkstra_csr,
    dijkstra_csr_with_parents,
    multi_source_dijkstra_csr,
)
from repro.geodesic.deadline import DeadlineExceeded, current_deadline
from repro.obs.context import active_profiler
from repro.obs.metrics import get_registry
from repro.obs.profile import kernel_phase_named

frontier_phase = kernel_phase_named("frontier-relaxation")

_EPS = float(np.finfo(np.float64).eps)

# Below this node count the numpy per-bucket overhead loses to the
# CPython heap; the dispatchable kernels delegate.  Measured crossover
# on corridor pathnets is ~400-900 nodes (the heap wins 2x at ~300,
# the buckets win 1.5x at ~900); the kernels stay bit-identical either
# side, so the cutoff is purely a speed knob.  Full-terrain pathnet
# and ranking-level networks sit well above it.
MIN_FRONTIER_NODES = 512


def _report_frontier(buckets: int, batch_relaxations: int, max_frontier: int) -> None:
    """Frontier-shape counters, alongside the shared settled /
    relaxations counters reported via :func:`repro.geodesic.csr._report`.

    Invariants (reconciled in test_obs_profile): each bucket settles at
    least one node, so ``buckets <= settled``; at most one batched
    relaxation runs per bucket, so ``batch_relaxations <= buckets``;
    ``max_frontier`` accumulates each call's largest bucket, so
    ``buckets <= max_frontier <= settled`` over any window.
    """
    reg = get_registry()
    reg.counter("geodesic.frontier.buckets").add(buckets)
    reg.counter("geodesic.frontier.batch_relaxations").add(batch_relaxations)
    reg.counter("geodesic.frontier.max_frontier").add(max_frontier)
    profiler = active_profiler()
    if profiler.enabled:
        profiler.count("frontier_buckets", buckets)
        profiler.count("frontier_batch_relaxations", batch_relaxations)
        profiler.count("frontier_max_frontier", max_frontier)


def _frontier_state(csr: CSRGraph):
    """``(indptr, indices, weights, wmin)`` with the minimum edge
    weight memoized per materialisation (invalidated with the views)."""
    arrays = csr._materialise()
    state = csr._frontier
    if state is None or state[0] is not arrays:
        weights = arrays[2]
        wmin = float(weights.min()) if weights.size else math.inf
        state = (arrays, wmin)
        csr._frontier = state
    return arrays, state[1]


def _margin(scale: float) -> float:
    """Upper bound on how far below its exact value a batched float
    composition can land, at magnitude ``scale``.  Each candidate is
    at most a few roundings away from exact (``raw + w`` then
    ``offset + raw``); 32 ulps is comfortably above that."""
    return 32.0 * _EPS * max(scale, 1.0)


# ----------------------------------------------------------------------
# single-source
# ----------------------------------------------------------------------


def _single_source_frontier(csr, source, targets, max_dist, want_parents):
    n = csr.num_nodes
    if not 0 <= source < n:
        raise GeodesicError(f"source {source} out of range")
    (indptr, indices, weights), wmin = _frontier_state(csr)

    dist = np.full(n, np.inf)
    parent = np.full(n, -1, dtype=np.int64)
    settled = np.zeros(n, dtype=bool)
    in_pool = np.zeros(n, dtype=bool)
    dist[source] = 0.0
    in_pool[source] = True
    pool = np.array([source], dtype=np.int64)

    remaining = {int(t) for t in targets} if targets is not None else None
    target_list = list(remaining) if remaining is not None else None
    batches: list[np.ndarray] = []
    cutoff = None  # (value, node) of the reference's final settling pop
    buckets = 0
    batch_relaxations = 0
    relaxations = 0
    max_frontier = 0
    settled_count = 0
    deadline = current_deadline()

    while pool.size:
        dvals = dist[pool]
        tmin = float(dvals.min())
        if max_dist is not None and tmin > max_dist:
            break
        threshold = tmin + wmin - _margin(tmin + wmin)
        if threshold > tmin:
            take = dvals < threshold
        else:
            # Degenerate window: settle exactly one reference pop —
            # the lexicographic minimum (value, node).
            at_min = pool[dvals == tmin]
            take = pool == int(at_min.min())
        batch = pool[take]
        in_pool[batch] = False
        pool = pool[~take]
        bvals = dist[batch]
        if max_dist is not None:
            keep = bvals <= max_dist
            # Nodes inside the window but past max_dist: the reference
            # stops before popping them — drop them entirely.
            batch = batch[keep]
            bvals = bvals[keep]
            if batch.size == 0:
                continue
        # Reference pop order within the bucket: (value, node).
        order = np.lexsort((batch, bvals))
        batch = batch[order]
        settled[batch] = True
        batches.append(batch)
        settled_count += int(batch.size)
        buckets += 1
        if batch.size > max_frontier:
            max_frontier = int(batch.size)
        if deadline is not None and time.perf_counter() >= deadline:
            raise DeadlineExceeded(
                f"dijkstra_frontier passed its deadline after "
                f"{settled_count} settled nodes"
            )
        if remaining is not None:
            remaining.difference_update(batch.tolist())
            if not remaining:
                cutoff = max(
                    (float(dist[t]), int(t)) for t in target_list if settled[t]
                )
                break

        # Batched relaxation of every out-edge of the bucket.
        starts = indptr[batch]
        counts = indptr[batch + 1] - starts
        total = int(counts.sum())
        if total == 0:
            continue
        batch_relaxations += 1
        prev = np.cumsum(counts) - counts
        edge_ids = np.repeat(starts - prev, counts) + np.arange(total)
        src = np.repeat(batch, counts)
        tgt = indices[edge_ids]
        nd = dist[src] + weights[edge_ids]
        ok = ~settled[tgt]
        if max_dist is not None:
            ok &= nd <= max_dist
        if not ok.any():
            continue
        src = src[ok]
        tgt = tgt[ok]
        nd = nd[ok]
        relaxations += int(src.size)
        # Per-target winner inside the batch: the reference heap tuple
        # is (d, u, p) — for a fixed target the first pop is the
        # lexicographic minimum over (d, parent).
        order = np.lexsort((src, nd, tgt))
        src = src[order]
        tgt = tgt[order]
        nd = nd[order]
        first = np.empty(tgt.size, dtype=bool)
        first[0] = True
        first[1:] = tgt[1:] != tgt[:-1]
        src = src[first]
        tgt = tgt[first]
        nd = nd[first]
        # Cross-batch winner: replace the current label when the
        # candidate tuple (d, parent) is lexicographically smaller.
        cur_d = dist[tgt]
        better = (nd < cur_d) | ((nd == cur_d) & (src < parent[tgt]))
        if not better.any():
            continue
        upd = tgt[better]
        dist[upd] = nd[better]
        parent[upd] = src[better]
        fresh = upd[~in_pool[upd]]
        if fresh.size:
            in_pool[fresh] = True
            pool = np.concatenate((pool, fresh))

    _report(settled_count, relaxations)
    _report_frontier(buckets, batch_relaxations, max_frontier)

    if batches:
        nodes = np.concatenate(batches)
    else:
        nodes = np.empty(0, dtype=np.int64)
    values = dist[nodes]
    if cutoff is not None:
        cut_value, cut_node = cutoff
        keep = (values < cut_value) | ((values == cut_value) & (nodes <= cut_node))
        nodes = nodes[keep]
        values = values[keep]
    out = dict(zip(nodes.tolist(), values.tolist()))
    if not want_parents:
        return out
    parents = parent[nodes]
    parent_out = {
        int(node): int(par)
        for node, par in zip(nodes.tolist(), parents.tolist())
        if par >= 0
    }
    return out, parent_out


@frontier_phase
def dijkstra_frontier(
    csr: CSRGraph,
    source: int,
    targets: set[int] | None = None,
    max_dist: float | None = None,
) -> dict[int, float]:
    """Bucketed single-source Dijkstra, bit-identical to
    :func:`repro.geodesic.csr.dijkstra_csr` (distances, settled set,
    early-exit behaviour)."""
    _, wmin = _frontier_state(csr)
    if csr.num_nodes < MIN_FRONTIER_NODES or not wmin > 0.0:
        return dijkstra_csr(csr, source, targets, max_dist)
    return _single_source_frontier(csr, source, targets, max_dist, False)


@frontier_phase
def dijkstra_frontier_with_parents(
    csr: CSRGraph,
    source: int,
    targets: set[int] | None = None,
    max_dist: float | None = None,
) -> tuple[dict[int, float], dict[int, int]]:
    """Bucketed variant of
    :func:`repro.geodesic.csr.dijkstra_csr_with_parents` — identical
    distances AND identical tie-broken shortest-path trees."""
    _, wmin = _frontier_state(csr)
    if csr.num_nodes < MIN_FRONTIER_NODES or not wmin > 0.0:
        return dijkstra_csr_with_parents(csr, source, targets, max_dist)
    return _single_source_frontier(csr, source, targets, max_dist, True)


# ----------------------------------------------------------------------
# multi-source
# ----------------------------------------------------------------------


@frontier_phase
def multi_source_frontier(
    csr: CSRGraph,
    sources: list[tuple[int, float]],
    targets: set[int] | None = None,
    max_dist: float | None = None,
) -> MultiSourceResult:
    """Bucketed multi-source relaxation, bit-identical to
    :func:`repro.geodesic.csr.multi_source_dijkstra_csr`.

    Labels carry the full reference heap tuple — ``(value, rank,
    parent, raw)`` per node — and every update takes the
    lexicographic minimum over the batched candidates, so values
    compose as ``fl(offset ⊕ fl(raw ⊕ w))`` and cross-anchor ties
    settle toward the lowest rank exactly like the reference."""
    n = csr.num_nodes
    if not sources:
        _report(0, 0)
        _report_frontier(0, 0, 0)
        return MultiSourceResult({}, {}, {}, {})
    (indptr, indices, weights), wmin = _frontier_state(csr)
    if n < MIN_FRONTIER_NODES or not wmin > 0.0:
        return multi_source_dijkstra_csr(csr, sources, targets, max_dist)

    offsets = np.empty(len(sources))
    value = np.full(n, np.inf)
    raw = np.full(n, np.inf)
    rank = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
    parent = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
    labelled = np.zeros(n, dtype=bool)
    for idx, (node, offset) in enumerate(sources):
        if not 0 <= node < n:
            raise GeodesicError(f"source {node} out of range")
        offset = float(offset)
        offsets[idx] = offset
        # Initial heap entries are (offset, node, rank, -1, 0.0); for
        # a node listed twice the lower (value, rank) wins.
        if (offset < value[node]) or (offset == value[node] and idx < rank[node]):
            value[node] = offset
            raw[node] = 0.0
            rank[node] = idx
            parent[node] = -1
            labelled[node] = True
    off_scale = float(np.abs(offsets).max())

    settled = np.zeros(n, dtype=bool)
    in_pool = labelled
    pool = np.nonzero(labelled)[0].astype(np.int64)

    remaining = {int(t) for t in targets} if targets is not None else None
    target_list = list(remaining) if remaining is not None else None
    batches: list[np.ndarray] = []
    cutoff = None
    buckets = 0
    batch_relaxations = 0
    relaxations = 0
    max_frontier = 0
    settled_count = 0
    deadline = current_deadline()

    while pool.size:
        dvals = value[pool]
        tmin = float(dvals.min())
        if max_dist is not None and tmin > max_dist:
            break
        threshold = tmin + wmin - _margin(abs(tmin) + wmin + off_scale)
        if threshold > tmin:
            take = dvals < threshold
        else:
            at_min = pool[dvals == tmin]
            take = pool == int(at_min.min())
        batch = pool[take]
        in_pool[batch] = False
        pool = pool[~take]
        bvals = value[batch]
        if max_dist is not None:
            keep = bvals <= max_dist
            batch = batch[keep]
            bvals = bvals[keep]
            if batch.size == 0:
                continue
        order = np.lexsort((batch, bvals))
        batch = batch[order]
        settled[batch] = True
        batches.append(batch)
        settled_count += int(batch.size)
        buckets += 1
        if batch.size > max_frontier:
            max_frontier = int(batch.size)
        if deadline is not None and time.perf_counter() >= deadline:
            raise DeadlineExceeded(
                f"multi_source_frontier passed its deadline after "
                f"{settled_count} settled nodes"
            )
        if remaining is not None:
            remaining.difference_update(batch.tolist())
            if not remaining:
                cutoff = max(
                    (float(value[t]), int(t)) for t in target_list if settled[t]
                )
                break

        starts = indptr[batch]
        counts = indptr[batch + 1] - starts
        total = int(counts.sum())
        if total == 0:
            continue
        batch_relaxations += 1
        prev = np.cumsum(counts) - counts
        edge_ids = np.repeat(starts - prev, counts) + np.arange(total)
        src = np.repeat(batch, counts)
        tgt = indices[edge_ids]
        # Same float composition as the reference: raw ⊕ w first,
        # then offset ⊕ raw — never accumulated in value space.
        nraw = raw[src] + weights[edge_ids]
        nrank = rank[src]
        nval = offsets[nrank] + nraw
        ok = ~settled[tgt]
        if max_dist is not None:
            ok &= nval <= max_dist
        if not ok.any():
            continue
        src = src[ok]
        tgt = tgt[ok]
        nraw = nraw[ok]
        nrank = nrank[ok]
        nval = nval[ok]
        relaxations += int(src.size)
        # Batch winner per target: lexicographic minimum over the
        # reference heap tuple (value, rank, parent, raw).
        order = np.lexsort((nraw, src, nrank, nval, tgt))
        src = src[order]
        tgt = tgt[order]
        nraw = nraw[order]
        nrank = nrank[order]
        nval = nval[order]
        first = np.empty(tgt.size, dtype=bool)
        first[0] = True
        first[1:] = tgt[1:] != tgt[:-1]
        src = src[first]
        tgt = tgt[first]
        nraw = nraw[first]
        nrank = nrank[first]
        nval = nval[first]
        cur_v = value[tgt]
        cur_r = rank[tgt]
        cur_p = parent[tgt]
        cur_raw = raw[tgt]
        better = (nval < cur_v) | (
            (nval == cur_v)
            & (
                (nrank < cur_r)
                | (
                    (nrank == cur_r)
                    & ((src < cur_p) | ((src == cur_p) & (nraw < cur_raw)))
                )
            )
        )
        if not better.any():
            continue
        upd = tgt[better]
        value[upd] = nval[better]
        raw[upd] = nraw[better]
        rank[upd] = nrank[better]
        parent[upd] = src[better]
        fresh = upd[~in_pool[upd]]
        if fresh.size:
            in_pool[fresh] = True
            pool = np.concatenate((pool, fresh))

    _report(settled_count, relaxations)
    _report_frontier(buckets, batch_relaxations, max_frontier)

    if batches:
        nodes = np.concatenate(batches)
    else:
        nodes = np.empty(0, dtype=np.int64)
    values = value[nodes]
    if cutoff is not None:
        cut_value, cut_node = cutoff
        keep = (values < cut_value) | ((values == cut_value) & (nodes <= cut_node))
        nodes = nodes[keep]
        values = values[keep]
    node_list = nodes.tolist()
    value_out = dict(zip(node_list, values.tolist()))
    raw_out = dict(zip(node_list, raw[nodes].tolist()))
    origin_out = dict(zip(node_list, rank[nodes].tolist()))
    parents = parent[nodes]
    parent_out = {
        int(node): int(par)
        for node, par in zip(node_list, parents.tolist())
        if par >= 0
    }
    return MultiSourceResult(
        value=value_out, raw=raw_out, origin=origin_out, parent=parent_out
    )


# ----------------------------------------------------------------------
# A*
# ----------------------------------------------------------------------


@frontier_phase
def astar_frontier(
    csr: CSRGraph,
    source: int,
    target: int,
    max_dist: float | None = None,
    heuristic=None,
) -> float | None:
    """Bucketed single-target A*, value-identical to
    :func:`repro.geodesic.csr.astar_csr`.

    Threshold stepping happens in ``f = g + h`` space, so the window
    width is the minimum *potential-transformed* weight
    ``w + h(v) - h(u)`` — zero for edges on tight heuristic
    corridors.  When the transform leaves no positive window (an
    exact heuristic along some edge) the search delegates to the heap
    twin: the goal-directed heap is already near-optimal there.
    """
    n = csr.num_nodes
    if not 0 <= source < n:
        raise GeodesicError(f"source {source} out of range")
    if not 0 <= target < n:
        raise GeodesicError(f"target {target} out of range")
    if source == target:
        _report(1, 0)
        _report_frontier(0, 0, 0)
        return 0.0
    (indptr, indices, weights), wmin = _frontier_state(csr)
    if n < MIN_FRONTIER_NODES or not wmin > 0.0:
        return astar_csr(csr, source, target, max_dist, heuristic)
    h = np.asarray(
        csr.heuristic_to(target) if heuristic is None else heuristic,
        dtype=np.float64,
    )
    # Minimum transformed weight over all edges (one vectorised pass).
    edge_src = np.repeat(
        np.arange(n, dtype=np.int64), np.diff(indptr)
    )
    transformed = weights + h[indices] - h[edge_src]
    wmin_f = float(transformed.min()) if transformed.size else math.inf
    h_scale = float(np.abs(h[np.isfinite(h)]).max()) if np.isfinite(h).any() else 0.0
    if not wmin_f - _margin(wmin_f + h_scale) > 0.0:
        return astar_csr(csr, source, target, max_dist, heuristic)

    g = np.full(n, np.inf)
    f = np.full(n, np.inf)
    settled = np.zeros(n, dtype=bool)
    in_pool = np.zeros(n, dtype=bool)
    g[source] = 0.0
    f[source] = float(h[source])
    in_pool[source] = True
    pool = np.array([source], dtype=np.int64)

    buckets = 0
    batch_relaxations = 0
    relaxations = 0
    max_frontier = 0
    settled_count = 0
    result = None
    deadline = current_deadline()

    while pool.size:
        fvals = f[pool]
        tmin = float(fvals.min())
        if max_dist is not None and tmin > max_dist:
            break
        threshold = tmin + wmin_f - _margin(abs(tmin) + wmin_f + h_scale)
        if threshold > tmin:
            take = fvals < threshold
        else:
            at_min = pool[fvals == tmin]
            take = pool == int(at_min.min())
        batch = pool[take]
        in_pool[batch] = False
        pool = pool[~take]
        if max_dist is not None:
            keep = f[batch] <= max_dist
            batch = batch[keep]
            if batch.size == 0:
                continue
        settled[batch] = True
        settled_count += int(batch.size)
        buckets += 1
        if batch.size > max_frontier:
            max_frontier = int(batch.size)
        if deadline is not None and time.perf_counter() >= deadline:
            raise DeadlineExceeded(
                f"astar_frontier passed its deadline after "
                f"{settled_count} settled nodes"
            )
        if settled[target]:
            result = float(g[target])
            break

        starts = indptr[batch]
        counts = indptr[batch + 1] - starts
        total = int(counts.sum())
        if total == 0:
            continue
        batch_relaxations += 1
        prev = np.cumsum(counts) - counts
        edge_ids = np.repeat(starts - prev, counts) + np.arange(total)
        src = np.repeat(batch, counts)
        tgt = indices[edge_ids]
        ng = g[src] + weights[edge_ids]
        nf = ng + h[tgt]
        ok = ~settled[tgt]
        if max_dist is not None:
            ok &= nf <= max_dist
        if not ok.any():
            continue
        tgt = tgt[ok]
        ng = ng[ok]
        nf = nf[ok]
        relaxations += int(tgt.size)
        # Reference heap tuple is (f, g, node): per-target winner by
        # lexicographic (f, g).
        order = np.lexsort((ng, nf, tgt))
        tgt = tgt[order]
        ng = ng[order]
        nf = nf[order]
        first = np.empty(tgt.size, dtype=bool)
        first[0] = True
        first[1:] = tgt[1:] != tgt[:-1]
        tgt = tgt[first]
        ng = ng[first]
        nf = nf[first]
        better = (nf < f[tgt]) | ((nf == f[tgt]) & (ng < g[tgt]))
        if not better.any():
            continue
        upd = tgt[better]
        g[upd] = ng[better]
        f[upd] = nf[better]
        fresh = upd[~in_pool[upd]]
        if fresh.size:
            in_pool[fresh] = True
            pool = np.concatenate((pool, fresh))

    _report(settled_count, relaxations)
    _report_frontier(buckets, batch_relaxations, max_frontier)
    return result


# ----------------------------------------------------------------------
# vectorised pathnet construction
# ----------------------------------------------------------------------


def build_pathnet_arrays(
    mesh,
    steiner_per_edge: int,
    faces: np.ndarray | None = None,
    forbidden_faces=None,
):
    """Flat-array twin of :func:`repro.geodesic.pathnet.build_pathnet`.

    Returns ``(codes, positions, csr)`` — ``codes`` the integer point
    codes (``vid`` for vertices, ``V + eid * spe + (j - 1)`` for
    Steiner points) in the exact node-id order the Python builder
    assigns (first encounter in face scan order), ``positions`` the
    ``(N, 3)`` point coordinates, ``csr`` the compiled
    :class:`~repro.geodesic.csr.CSRGraph` with per-node adjacency in
    the exact order the Python builder's edge appends produce.
    Returns ``None`` for degenerate meshes (a face with fewer than
    three distinct vertices) — callers fall back to the Python
    builder there.
    """
    spe = int(steiner_per_edge)
    if spe < 0:
        raise GeodesicError("steiner_per_edge must be >= 0")
    num_vertices = int(mesh.vertices.shape[0])
    if faces is None:
        face_ids = np.arange(mesh.num_faces, dtype=np.int64)
    else:
        face_ids = np.asarray(faces, dtype=np.int64)
    if forbidden_faces:
        forbidden = np.asarray(sorted(int(fi) for fi in forbidden_faces), np.int64)
        face_ids = face_ids[~np.isin(face_ids, forbidden)]
    nfaces = int(face_ids.shape[0])
    per_edge = 2 + spe
    ncols = 3 * per_edge
    if nfaces == 0:
        empty = np.empty(0, dtype=np.int64)
        csr = CSRGraph(
            np.zeros(1, dtype=np.int64), empty, np.empty(0), positions=None
        )
        return empty, np.empty((0, 3)), csr

    face_edges = mesh.face_edges[face_ids]  # (F, 3)
    ends = mesh.edge_vertices[face_edges]  # (F, 3, 2)
    # Point-code matrix: for each face, slot-major, endpoints first
    # then Steiner points — the Python builder's per-face scan order.
    codes = np.empty((nfaces, ncols), dtype=np.int64)
    codes[:, 0::per_edge] = ends[:, :, 0]
    codes[:, 1::per_edge] = ends[:, :, 1]
    if spe:
        steiner_base = num_vertices + face_edges * spe  # (F, 3)
        for j in range(spe):
            codes[:, 2 + j :: per_edge] = steiner_base + j
    # Per-face first-occurrence mask.  Only endpoint columns can
    # repeat (each face's three edges are distinct, so Steiner codes
    # are unique within a face).
    valid = np.ones((nfaces, ncols), dtype=bool)
    endpoint_cols = [slot * per_edge + k for slot in range(3) for k in (0, 1)]
    for i, ci in enumerate(endpoint_cols):
        for cj in endpoint_cols[i + 1 :]:
            valid[:, cj] &= codes[:, ci] != codes[:, cj]
    counts_valid = valid.sum(axis=1)
    if not (counts_valid == 3 + 3 * spe).all():
        return None  # degenerate face: fall back to the Python builder
    per_face_valid = 3 + 3 * spe

    # Node ids in first-encounter order over the row-major valid scan.
    flat = codes[valid]  # row-major, matching the per-face scan order
    uniq, first_idx = np.unique(flat, return_index=True)
    node_codes = uniq[np.argsort(first_idx, kind="stable")]
    nnodes = int(node_codes.shape[0])
    lookup = np.full(num_vertices + mesh.num_edges * spe, -1, dtype=np.int64)
    lookup[node_codes] = np.arange(nnodes, dtype=np.int64)

    # Positions: mesh vertices for vertex codes, the interpolated
    # points (bit-identical to the Python builder's pu + t * (pw - pu))
    # for Steiner codes.
    positions = np.empty((nnodes, 3))
    is_vertex = node_codes < num_vertices
    positions[is_vertex] = mesh.vertices[node_codes[is_vertex]]
    if spe:
        sc = node_codes[~is_vertex] - num_vertices
        eid = sc // spe
        j = sc % spe + 1
        t = (j / (spe + 1))[:, None]
        pu = mesh.vertices[mesh.edge_vertices[eid, 0]]
        pw = mesh.vertices[mesh.edge_vertices[eid, 1]]
        positions[~is_vertex] = pu + t * (pw - pu)

    # Pair expansion: itertools.combinations over each face's valid
    # point sequence, faces outer — the Python builder's edge order.
    pv = per_face_valid
    dense = lookup[codes[valid]].reshape(nfaces, pv)
    ii, jj = np.triu_indices(pv, k=1)
    # np.triu_indices is row-major over (i, j), i < j — the same order
    # itertools.combinations walks.
    pair_a = dense[:, ii].ravel()
    pair_b = dense[:, jj].ravel()
    delta = positions[pair_a] - positions[pair_b]
    # Explicit composition (dx*dx + dy*dy) + dz*dz, matching the
    # Python builder's scalar arithmetic bit for bit.
    pair_w = np.sqrt(
        delta[:, 0] * delta[:, 0]
        + delta[:, 1] * delta[:, 1]
        + delta[:, 2] * delta[:, 2]
    )

    # Undirected pair t becomes directed records at times 2t and
    # 2t + 1; a stable sort by source then reproduces each adjacency
    # list's append order.
    npairs = int(pair_a.shape[0])
    src_dir = np.empty(2 * npairs, dtype=np.int64)
    dst_dir = np.empty(2 * npairs, dtype=np.int64)
    w_dir = np.empty(2 * npairs)
    src_dir[0::2] = pair_a
    src_dir[1::2] = pair_b
    dst_dir[0::2] = pair_b
    dst_dir[1::2] = pair_a
    w_dir[0::2] = pair_w
    w_dir[1::2] = pair_w
    order = np.argsort(src_dir, kind="stable")
    indices = dst_dir[order]
    weights = w_dir[order]
    indptr = np.zeros(nnodes + 1, dtype=np.int64)
    np.cumsum(np.bincount(src_dir, minlength=nnodes), out=indptr[1:])
    csr = CSRGraph(indptr, indices, weights, positions=positions)
    return node_codes, positions, csr
