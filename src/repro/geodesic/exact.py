"""Exact surface shortest paths by window propagation.

This is our stand-in for the Chen & Han algorithm [CH90] the paper
uses as the exact baseline (via the Kaneva–O'Rourke implementation).
It follows the modern formulation of that algorithm family
("continuous Dijkstra" / improved Chen-Han): geodesics are tracked as
*windows* — intervals on mesh edges together with the planar-unfolded
position of their (pseudo-)source — propagated face by face in
priority order, splitting at vertices and spawning *pseudo-sources*
at saddle and boundary vertices, which are the only vertices an
interior shortest path can pass through.

Correctness notes
-----------------
* Every window encodes a family of genuine surface paths, so every
  distance it reports is an upper bound; exhaustive propagation makes
  the minimum exact.
* The only pruning applied is a *domination* test that is provably
  safe: a window on edge (A, B) with unfolded source S and interval
  [b0, b1] is dominated by the alternative "go to A first, then along
  the edge" when ``sigma + |S - P(b)| >= best[A] + b`` for all b in
  the interval.  Because that difference is monotone non-increasing
  in b, checking b = b1 suffices (symmetrically b = b0 for B).  Since
  ``best[]`` values are themselves lengths of valid paths, deleting a
  dominated window never loses the optimum.
* Like Chen & Han, worst-case work is quadratic in mesh size — which
  is exactly the blow-up Figure 7 of the paper demonstrates.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

import numpy as np

from repro.errors import GeodesicError
from repro.obs.metrics import get_registry

_EPS = 1e-9
_ANGLE_EPS = 1e-7


def _mesh_tables(mesh):
    """Per-mesh plain-Python access tables for the propagation loop.

    The inner loop reads face vertices, per-slot edge ids, neighbour
    faces and edge lengths hundreds of thousands of times per source;
    numpy scalar indexing dominates at that call rate.  The tables
    hold exactly the same values as the mesh arrays (plain ``float``
    of the same float64 entries), so every computed distance is
    bit-identical to the array-indexing formulation.  Cached on the
    mesh: one build serves every source (each landmark row, every
    fig7 oracle).
    """
    tables = mesh.__dict__.get("_exact_tables")
    if tables is None:
        faces3 = [tuple(int(v) for v in f) for f in mesh.faces]
        fedges3 = [tuple(int(e) for e in row) for row in mesh.face_edges]
        fneigh3 = [tuple(int(g) for g in row) for row in mesh.face_neighbors]
        elen = [float(x) for x in mesh.edge_lengths]
        # Per-vertex neighbour edge lengths aligned with
        # mesh.vertex_neighbors — the vertex-relaxation loop's edges.
        vneigh_len = [
            [mesh.edge_length(v, u) for u in nbrs]
            for v, nbrs in enumerate(mesh.vertex_neighbors)
        ]
        tables = (faces3, fedges3, fneigh3, elen, vneigh_len, {})
        mesh.__dict__["_exact_tables"] = tables
    return tables


@dataclass
class _Window:
    """A window on the directed edge (slot ``slot`` of face ``face``),
    propagating *into* that face.

    The local frame puts the edge's first vertex at (0, 0), its second
    at (L, 0) and the face interior at y > 0; the unfolded
    (pseudo-)source sits at (sx, sy) with sy <= 0.  ``sigma`` is the
    distance already walked from the true source to the pseudo-source.
    """

    face: int
    slot: int
    b0: float
    b1: float
    sx: float
    sy: float
    sigma: float

    def min_key(self) -> float:
        """sigma + shortest straight distance from source to interval."""
        if self.b0 - _EPS <= self.sx <= self.b1 + _EPS:
            reach = abs(self.sy)
        else:
            nearest = self.b0 if self.sx < self.b0 else self.b1
            reach = math.hypot(self.sx - nearest, self.sy)
        return self.sigma + reach

    def dist_to(self, b: float) -> float:
        """sigma + straight distance from source to edge offset ``b``."""
        return self.sigma + math.hypot(self.sx - b, self.sy)


class ExactGeodesic:
    """Single-source exact geodesic distances from a mesh vertex.

    Usage::

        geo = ExactGeodesic(mesh, source_vertex)
        d = geo.distance_to(target_vertex)

    ``distance_to`` runs the propagation lazily until the target's
    distance is provably final, so cheap nearby queries stay cheap.
    """

    def __init__(self, mesh, source: int, max_windows: int | None = None):
        if not 0 <= source < mesh.num_vertices:
            raise GeodesicError(f"source vertex {source} out of range")
        self.mesh = mesh
        self.source = int(source)
        self.max_windows = max_windows
        self.windows_created = 0
        # Plain Python list: the loop reads/writes single entries only,
        # and list access is several times cheaper than numpy scalar
        # indexing.  Python floats are the same float64 values.
        self.best: list[float] = [math.inf] * mesh.num_vertices
        self.best[source] = 0.0
        self._heap: list[tuple[float, int, str, object]] = []
        self._counter = 0
        self._boundary = mesh.boundary_vertices()
        (
            self._faces3,
            self._fedges3,
            self._fneigh3,
            self._elen,
            self._vneigh_len,
            self._saddle_cache,
        ) = _mesh_tables(mesh)
        self._seed_source()

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------

    def _push(self, key: float, kind: str, payload) -> None:
        self._counter += 1
        heapq.heappush(self._heap, (key, self._counter, kind, payload))

    def _seed_source(self) -> None:
        mesh = self.mesh
        s = self.source
        for u, d in zip(mesh.vertex_neighbors[s], self._vneigh_len[s]):
            if d < self.best[u]:
                self.best[u] = d
                self._push(d, "vertex", u)
        self._spawn_pseudo_source(s, 0.0)

    def _is_spreader(self, v: int) -> bool:
        """Whether geodesics may pass *through* vertex ``v``: saddle
        (total angle > 2*pi) or boundary vertices only."""
        if v in self._boundary:
            return True
        cached = self._saddle_cache.get(v)
        if cached is None:
            cached = self.mesh.vertex_total_angle(v) > 2.0 * math.pi + _ANGLE_EPS
            self._saddle_cache[v] = cached
        return cached

    def _spawn_pseudo_source(self, v: int, sigma: float) -> None:
        """Emit windows covering the opposite edge of every face
        incident to ``v``, sourced at ``v`` with offset ``sigma``."""
        faces3 = self._faces3
        for fi in self.mesh.vertex_faces[v]:
            face = faces3[fi]
            # Opposite edge = the slot whose two vertices are not v.
            for slot in range(3):
                if face[slot] != v and face[(slot + 1) % 3] != v:
                    self._emit_window_from_point(fi, slot, v, sigma)
                    break

    def _emit_window_from_point(self, fi: int, slot: int, v: int, sigma: float) -> None:
        """Window on edge ``slot`` of face ``fi`` whose source is mesh
        vertex ``v`` (the apex of that face), covering the whole edge
        and propagating into the neighbouring face."""
        g = self._fneigh3[fi][slot]
        if g < 0:
            return  # boundary edge: nothing beyond it
        face = self._faces3[fi]
        fedges = self._fedges3[fi]
        a = face[slot]
        edge_id = fedges[slot]
        elen = self._elen
        length = elen[edge_id]
        # Slot s of a face is the edge face[s] -> face[(s+1)%3], so the
        # apex v = face[slot+2] reaches a via edge slot+2 (v -> a) and
        # b via edge slot+1 (b -> v) — same edge ids, same floats as
        # the edge_length(v, a) / edge_length(v, b) dict lookups.
        d_a = elen[fedges[(slot + 2) % 3]]
        d_b = elen[fedges[(slot + 1) % 3]]
        # Find the edge inside face g and its direction there.
        g_slot, flipped = self._slot_in_face(g, edge_id, a)
        if flipped:
            d_a, d_b = d_b, d_a
        sx = (d_a * d_a - d_b * d_b + length * length) / (2.0 * length)
        sy2 = d_a * d_a - sx * sx
        sy = -math.sqrt(sy2) if sy2 > 0.0 else 0.0
        self._enqueue_window(
            _Window(face=g, slot=g_slot, b0=0.0, b1=length, sx=sx, sy=sy, sigma=sigma)
        )

    def _slot_in_face(self, g: int, edge_id: int, a: int) -> tuple[int, bool]:
        """Locate ``edge_id`` inside face ``g``.

        Returns (slot, flipped) where ``flipped`` says whether g's
        directed edge starts at a vertex other than ``a`` (i.e. runs
        b->a rather than a->b).
        """
        faces = self._faces3[g]
        for slot, eid in enumerate(self._fedges3[g]):
            if eid == edge_id:
                return slot, faces[slot] != a
        raise GeodesicError(f"edge {edge_id} not found in face {g}")

    # ------------------------------------------------------------------
    # propagation
    # ------------------------------------------------------------------

    def _enqueue_window(self, w: _Window) -> None:
        if w.b1 - w.b0 <= _EPS:
            return
        if self._dominated(w):
            return
        if self.max_windows is not None and self.windows_created >= self.max_windows:
            raise GeodesicError(
                f"window budget of {self.max_windows} exhausted; "
                "the mesh is too large for the exact algorithm"
            )
        self.windows_created += 1
        self._update_endpoint_vertices(w)
        self._push(w.min_key(), "window", w)

    def _edge_endpoints(self, w: _Window) -> tuple[int, int, float]:
        face = self._faces3[w.face]
        a = face[w.slot]
        b = face[(w.slot + 1) % 3]
        length = self._elen[self._fedges3[w.face][w.slot]]
        return a, b, length

    def _dominated(self, w: _Window) -> bool:
        """Safe deletion test (see module docstring)."""
        a, b, length = self._edge_endpoints(w)
        via_a = self.best[a]
        if math.isfinite(via_a) and w.dist_to(w.b1) >= via_a + w.b1 - _EPS:
            return True
        via_b = self.best[b]
        if math.isfinite(via_b) and w.dist_to(w.b0) >= via_b + (length - w.b0) - _EPS:
            return True
        return False

    def _update_vertex(self, v: int, cand: float) -> None:
        if cand < self.best[v] - _EPS:
            self.best[v] = cand
            self._push(cand, "vertex", v)

    def _update_endpoint_vertices(self, w: _Window) -> None:
        a, b, length = self._edge_endpoints(w)
        if w.b0 <= _EPS:
            self._update_vertex(a, w.sigma + math.hypot(w.sx, w.sy))
        if w.b1 >= length - _EPS:
            self._update_vertex(b, w.sigma + math.hypot(w.sx - length, w.sy))

    def _propagate(self, w: _Window) -> None:
        """Push the window across its face onto the two far edges."""
        face = self._faces3[w.face]
        fedges = self._fedges3[w.face]
        elen = self._elen
        slot = w.slot
        c = face[(slot + 2) % 3]
        length = elen[fedges[slot]]
        # Unfold the apex C into the window's frame (interior: y > 0).
        # Edge slot+2 is c->a, edge slot+1 is b->c: same ids (and so
        # the same floats) as edge_length(a, c) / edge_length(b, c).
        d_ac = elen[fedges[(slot + 2) % 3]]
        d_bc = elen[fedges[(slot + 1) % 3]]
        cx = (d_ac * d_ac - d_bc * d_bc + length * length) / (2.0 * length)
        cy2 = d_ac * d_ac - cx * cx
        cy = math.sqrt(cy2) if cy2 > 0.0 else 0.0
        apex = (cx, cy)
        src = (w.sx, w.sy)
        p0 = (w.b0, 0.0)
        p1 = (w.b1, 0.0)

        # Vertex C update when the cone covers the apex.
        if self._in_cone(src, p0, p1, apex):
            self._update_vertex(c, w.sigma + math.hypot(w.sx - cx, w.sy - cy))

        # Far edge 1: B -> C (slot + 1); far edge 2: C -> A (slot + 2).
        self._propagate_onto(w, src, p0, p1, (length, 0.0), apex, (w.slot + 1) % 3)
        self._propagate_onto(w, src, p0, p1, apex, (0.0, 0.0), (w.slot + 2) % 3)

    @staticmethod
    def _cross(o, u, v) -> float:
        return (u[0] - o[0]) * (v[1] - o[1]) - (u[1] - o[1]) * (v[0] - o[0])

    def _in_cone(self, src, p0, p1, x) -> bool:
        return (
            self._cross(src, p0, x) <= _EPS and self._cross(src, p1, x) >= -_EPS
        )

    def _propagate_onto(self, w: _Window, src, p0, p1, e0, e1, slot: int) -> None:
        """Clip the source cone against the far edge e0→e1 (local
        coordinates) and emit the child window across it."""
        g = self._fneigh3[w.face][slot]
        # Compute the lit parameter interval [t0, t1] along e0->e1.
        # Inside the cone means cross(p0-src, x-src) <= 0 (right of the
        # left ray) and cross(p1-src, x-src) >= 0 (left of the right
        # ray); both constraints are affine in t.
        f0_e0 = self._cross(src, p0, e0)
        f0_e1 = self._cross(src, p0, e1)
        f1_e0 = self._cross(src, p1, e0)
        f1_e1 = self._cross(src, p1, e1)
        t0, t1 = 0.0, 1.0
        # Constraint f0(t) <= 0 where f0 is affine from f0_e0 to f0_e1.
        t0, t1 = self._clip_affine(t0, t1, f0_e0, f0_e1, keep_negative=True)
        if t0 is None:
            return
        t0, t1 = self._clip_affine(t0, t1, f1_e0, f1_e1, keep_negative=False)
        if t0 is None:
            return
        if t1 - t0 <= _EPS:
            return

        edge_id = self._fedges3[w.face][slot]
        length = self._elen[edge_id]
        # Vertex updates for far-edge endpoints hit by the cone.
        face = self._faces3[w.face]
        u = face[slot]
        v = face[(slot + 1) % 3]
        if t0 <= _EPS:
            self._update_vertex(
                u, w.sigma + math.hypot(src[0] - e0[0], src[1] - e0[1])
            )
        if t1 >= 1.0 - _EPS:
            self._update_vertex(
                v, w.sigma + math.hypot(src[0] - e1[0], src[1] - e1[1])
            )
        if g < 0:
            return  # boundary: the path cannot continue beyond
        g_slot, flipped = self._slot_in_face(g, edge_id, u)
        # Source distances to the child edge's endpoints survive
        # unfolding, so re-derive the child-frame source from them.
        d_u = math.hypot(src[0] - e0[0], src[1] - e0[1])
        d_v = math.hypot(src[0] - e1[0], src[1] - e1[1])
        if flipped:
            b0n = length * (1.0 - t1)
            b1n = length * (1.0 - t0)
            d_first, d_second = d_v, d_u
        else:
            b0n = length * t0
            b1n = length * t1
            d_first, d_second = d_u, d_v
        sx = (d_first * d_first - d_second * d_second + length * length) / (2.0 * length)
        sy2 = d_first * d_first - sx * sx
        sy = -math.sqrt(sy2) if sy2 > 0.0 else 0.0
        self._enqueue_window(
            _Window(
                face=g, slot=g_slot, b0=b0n, b1=b1n, sx=sx, sy=sy, sigma=w.sigma
            )
        )

    @staticmethod
    def _clip_affine(t0, t1, f_at_0, f_at_1, keep_negative: bool):
        """Intersect [t0, t1] with {t : f(t) <= 0} (or >= 0), where f
        is affine with the given endpoint values.  Returns (None, None)
        when empty."""
        if keep_negative:
            f_at_0, f_at_1 = -f_at_0, -f_at_1
        # Now keep f(t) >= 0.
        if f_at_0 >= -_EPS and f_at_1 >= -_EPS:
            return t0, t1
        if f_at_0 < 0.0 and f_at_1 < 0.0:
            return None, None
        t_star = f_at_0 / (f_at_0 - f_at_1)
        if f_at_0 < 0.0:
            return max(t0, t_star), t1
        return t0, min(t1, t_star)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def run(self, until_vertex: int | None = None) -> None:
        """Drain the event queue; optionally stop once ``until_vertex``
        is provably final."""
        heap = self._heap
        vertices_settled = 0
        windows_propagated = 0
        try:
            while heap:
                key, _tie, kind, payload = heapq.heappop(heap)
                if until_vertex is not None and key >= self.best[until_vertex] - _EPS:
                    # Everything still queued is at least this long.
                    heapq.heappush(heap, (key, _tie, kind, payload))
                    return
                if kind == "vertex":
                    v = int(payload)
                    bv = self.best[v]
                    if key > bv + _EPS:
                        continue  # stale event
                    vertices_settled += 1
                    # Relax along mesh edges: edge paths are valid surface
                    # paths, and the domination filter's "via a vertex,
                    # then along the edge" alternative relies on them
                    # being materialized here.
                    for w, dl in zip(
                        self.mesh.vertex_neighbors[v], self._vneigh_len[v]
                    ):
                        self._update_vertex(w, bv + dl)
                    if self._is_spreader(v) and v != self.source:
                        self._spawn_pseudo_source(v, bv)
                else:
                    w = payload
                    if self._dominated(w):
                        continue
                    windows_propagated += 1
                    self._propagate(w)
        finally:
            if vertices_settled or windows_propagated:
                reg = get_registry()
                reg.counter("geodesic.exact.vertices_settled").add(
                    vertices_settled
                )
                reg.counter("geodesic.exact.windows_propagated").add(
                    windows_propagated
                )
                from repro.obs.context import active_profiler

                profiler = active_profiler()
                if profiler.enabled:
                    profiler.count(
                        "exact_vertices_settled", vertices_settled
                    )
                    profiler.count(
                        "exact_windows_propagated", windows_propagated
                    )

    def distance_to(self, target: int) -> float:
        """Exact surface distance from the source to ``target``."""
        if not 0 <= target < self.mesh.num_vertices:
            raise GeodesicError(f"target vertex {target} out of range")
        self.run(until_vertex=target)
        d = float(self.best[target])
        if not math.isfinite(d):
            raise GeodesicError(
                f"vertex {target} unreachable from {self.source}"
            )
        return d

    def distances(self) -> np.ndarray:
        """Exact distances to every vertex (full propagation)."""
        self.run()
        return np.asarray(self.best, dtype=float)


def exact_surface_distance(
    mesh, source: int, target: int, max_windows: int | None = None
) -> float:
    """Convenience wrapper: exact ``dS`` between two mesh vertices."""
    return ExactGeodesic(mesh, source, max_windows=max_windows).distance_to(target)
