"""Pathnets: Steiner-point subdivisions of a surface mesh.

Approximate surface-shortest-path algorithms (Kanai & Suzuki;
Varadarajan & Agarwal) insert *Steiner points* into mesh edges and
connect all points sharing a face, opening passageways across face
interiors that the bare edge network lacks.  Because every added
segment lies inside a planar face, pathnet network distances are
always lengths of genuine surface paths — i.e. valid upper bounds of
``dS`` — and they converge to ``dS`` as more Steiner points are used.

The paper's DMTM uses a pathnet with one Steiner point per edge as
its "200 % resolution" level, where it treats ``dN`` as ``dS``.
"""

from __future__ import annotations

import math
from itertools import combinations

import numpy as np

from repro.errors import GeodesicError
from repro.geodesic.csr import (
    astar_csr,
    graph_dijkstra,
    graph_dijkstra_with_parents,
    kernel_mode,
)
from repro.geodesic.graph import KeyedGraph

# Node keys: ("v", vertex_id) for original vertices,
#            ("s", edge_id, j) for the j-th Steiner point of an edge.


def vertex_key(vid: int) -> tuple:
    return ("v", int(vid))


def steiner_key(edge_id: int, j: int) -> tuple:
    return ("s", int(edge_id), int(j))


def _edge_point_keys(mesh, edge_id: int, steiner_per_edge: int):
    """Keys and 3D positions of all points on an edge, endpoints first."""
    u, w = mesh.edge_vertices[edge_id]
    pu = mesh.vertices[u]
    pw = mesh.vertices[w]
    items = [(vertex_key(u), pu), (vertex_key(w), pw)]
    for j in range(1, steiner_per_edge + 1):
        t = j / (steiner_per_edge + 1)
        items.append((steiner_key(edge_id, j), pu + t * (pw - pu)))
    return items


def build_pathnet(
    mesh,
    steiner_per_edge: int = 1,
    faces: np.ndarray | None = None,
    forbidden_faces=None,
) -> KeyedGraph:
    """Build the pathnet graph for a mesh (or a subset of its faces).

    Every pair of points sharing a face is linked by a straight
    segment inside that face.  ``faces`` restricts construction to a
    corridor — the selective-refinement trick of Kanai & Suzuki and
    the ROI restriction of MR3.  ``forbidden_faces`` (a set of face
    ids) removes untraversable faces — the obstacle-constrained
    extension the paper lists as future work (steep slopes, water,
    no-go zones): no passageway is created through them, so every
    returned distance is realised by a path avoiding them.
    """
    if steiner_per_edge < 0:
        raise GeodesicError("steiner_per_edge must be >= 0")
    if kernel_mode() == "frontier":
        graph = _build_pathnet_frontier(
            mesh, steiner_per_edge, faces, forbidden_faces
        )
        if graph is not None:
            return graph
    forbidden = frozenset(int(f) for f in forbidden_faces) if forbidden_faces else frozenset()
    graph = KeyedGraph()
    face_ids = range(mesh.num_faces) if faces is None else faces
    for fi in face_ids:
        fi = int(fi)
        if fi in forbidden:
            continue
        points: list[tuple[tuple, np.ndarray]] = []
        seen: set[tuple] = set()
        for slot in range(3):
            edge_id = int(mesh.face_edges[fi, slot])
            for key, pos in _edge_point_keys(mesh, edge_id, steiner_per_edge):
                if key not in seen:
                    seen.add(key)
                    points.append((key, pos))
                    # Position enables the A* heuristic on the
                    # compiled CSR graph.
                    graph.add_node(key, position=pos)
        for (ka, pa), (kb, pb) in combinations(points, 2):
            graph.add_edge(ka, kb, _segment_length(pa, pb))
    return graph


def _segment_length(pa, pb) -> float:
    """Straight-segment weight, composed as ``(dx² + dy²) + dz²``
    under the radical — the exact float expression the vectorised
    builder evaluates columnwise, so both builders produce
    bit-identical weights."""
    dx = float(pa[0]) - float(pb[0])
    dy = float(pa[1]) - float(pb[1])
    dz = float(pa[2]) - float(pb[2])
    return math.sqrt(dx * dx + dy * dy + dz * dz)


def _build_pathnet_frontier(mesh, steiner_per_edge, faces, forbidden_faces):
    """Array-built pathnet for frontier mode (None on degenerate
    meshes, where the Python builder takes over)."""
    from repro.geodesic.frontier import build_pathnet_arrays

    built = build_pathnet_arrays(mesh, steiner_per_edge, faces, forbidden_faces)
    if built is None:
        return None
    codes, positions, csr = built
    num_vertices = int(mesh.vertices.shape[0])
    spe = int(steiner_per_edge)
    keys = []
    for code in codes.tolist():
        if code < num_vertices:
            keys.append(("v", code))
        else:
            sc = code - num_vertices
            keys.append(("s", sc // spe, sc % spe + 1))
    return KeyedGraph.from_arrays(keys, positions, csr)


def pathnet_distance(
    mesh,
    source: int,
    target: int,
    steiner_per_edge: int = 1,
    faces: np.ndarray | None = None,
    landmarks=None,
) -> float:
    """Approximate ``dS`` between two vertices via pathnet search —
    A* with the straight-line heuristic on the CSR kernels (the
    distance is all that is returned, so the goal-directed search is
    safe), plain Dijkstra in reference mode.

    ``landmarks`` optionally supplies a
    :class:`repro.geodesic.landmarks.LandmarkIndex` whose ALT
    heuristic (maxed with the straight line, admissible and
    consistent on pathnet graphs) tightens the A* search further;
    the returned distance is unchanged.
    """
    graph = build_pathnet(mesh, steiner_per_edge, faces)
    src_key = vertex_key(source)
    dst_key = vertex_key(target)
    if src_key not in graph or dst_key not in graph:
        raise GeodesicError("source or target vertex missing from pathnet region")
    s = graph.node_id(src_key)
    t = graph.node_id(dst_key)
    mode = kernel_mode()
    if mode == "reference":
        d = graph_dijkstra(graph, s, targets={t}).get(t)
    else:
        heuristic = (
            landmarks.pathnet_heuristic(graph, target)
            if landmarks is not None
            else None
        )
        if mode == "frontier":
            from repro.geodesic.frontier import astar_frontier

            d = astar_frontier(graph.csr(), s, t, heuristic=heuristic)
        else:
            d = astar_csr(graph.csr(), s, t, heuristic=heuristic)
    if d is None:
        raise GeodesicError(f"no pathnet route from {source} to {target}")
    return d


def pathnet_shortest_path(
    mesh,
    source: int,
    target: int,
    steiner_per_edge: int = 1,
    faces: np.ndarray | None = None,
) -> tuple[float, list[tuple]]:
    """Distance plus the node-key sequence of the pathnet route."""
    graph = build_pathnet(mesh, steiner_per_edge, faces)
    src_key = vertex_key(source)
    dst_key = vertex_key(target)
    if src_key not in graph or dst_key not in graph:
        raise GeodesicError("source or target vertex missing from pathnet region")
    s = graph.node_id(src_key)
    t = graph.node_id(dst_key)
    dist, parent = graph_dijkstra_with_parents(graph, s, targets={t})
    if t not in dist:
        raise GeodesicError(f"no path from {s} to {t}")
    node_path = [t]
    while node_path[-1] != s:
        node_path.append(parent[node_path[-1]])
    node_path.reverse()
    return dist[t], [graph.key_of(n) for n in node_path]
