"""Binary-heap Dijkstra over adjacency lists.

This is the workhorse of the whole system: DMTM upper bounds, MSDN
lower bounds, pathnet distances and the EA benchmark all reduce to
single-source shortest paths on some derived network.  The
implementation is a textbook lazy-deletion heap Dijkstra with two
pruning hooks the paper relies on:

* ``targets`` — stop as soon as every requested target is settled
  (bound estimation only ever needs one or a few pairs);
* ``max_dist`` — stop when the frontier exceeds a known upper bound
  (used by the EA benchmark's early termination).
"""

from __future__ import annotations

import heapq

from repro.errors import GeodesicError
from repro.obs.context import active_profiler
from repro.obs.metrics import get_registry
from repro.obs.profile import kernel_phase

Adjacency = list  # list[list[tuple[int, float]]]


def _report(settled: int, relaxations: int) -> None:
    # Batched once per call so the hot loop carries no registry cost.
    reg = get_registry()
    reg.counter("geodesic.dijkstra.calls").add(1)
    reg.counter("geodesic.dijkstra.settled").add(settled)
    reg.counter("geodesic.dijkstra.relaxations").add(relaxations)
    # Same deltas on the open "graph-kernel" profiler frame, when a
    # profiling context is active (see repro.obs.profile.kernel_phase).
    profiler = active_profiler()
    if profiler.enabled:
        profiler.count("kernel_calls", 1)
        profiler.count("settled", settled)
        profiler.count("relaxations", relaxations)


@kernel_phase
def dijkstra(
    adj: Adjacency,
    source: int,
    targets: set[int] | None = None,
    max_dist: float | None = None,
) -> dict[int, float]:
    """Single-source shortest path distances.

    Parameters
    ----------
    adj:
        ``adj[u]`` iterates ``(v, weight)`` pairs; weights must be
        non-negative.
    source:
        Start node index.
    targets:
        Optional set of nodes; the search stops once all are settled.
        Unreachable targets are simply absent from the result.
    max_dist:
        Optional distance cap; nodes farther than this are not settled.

    Returns
    -------
    dict mapping each settled node to its distance from ``source``.
    """
    if not 0 <= source < len(adj):
        raise GeodesicError(f"source {source} out of range")
    dist: dict[int, float] = {}
    remaining = set(targets) if targets is not None else None
    heap: list[tuple[float, int]] = [(0.0, source)]
    relaxations = 0
    while heap:
        d, u = heapq.heappop(heap)
        if u in dist:
            continue
        if max_dist is not None and d > max_dist:
            break
        dist[u] = d
        if remaining is not None:
            remaining.discard(u)
            if not remaining:
                break
        for v, w in adj[u]:
            if v not in dist:
                nd = d + w
                if max_dist is None or nd <= max_dist:
                    heapq.heappush(heap, (nd, v))
                    relaxations += 1
    _report(len(dist), relaxations)
    return dist


@kernel_phase
def dijkstra_with_parents(
    adj: Adjacency,
    source: int,
    targets: set[int] | None = None,
    max_dist: float | None = None,
) -> tuple[dict[int, float], dict[int, int]]:
    """Like :func:`dijkstra` but also returns a shortest-path tree.

    The second return value maps each settled node (except the
    source) to its predecessor on a shortest path.
    """
    if not 0 <= source < len(adj):
        raise GeodesicError(f"source {source} out of range")
    dist: dict[int, float] = {}
    parent: dict[int, int] = {}
    remaining = set(targets) if targets is not None else None
    heap: list[tuple[float, int, int]] = [(0.0, source, -1)]
    relaxations = 0
    while heap:
        d, u, p = heapq.heappop(heap)
        if u in dist:
            continue
        if max_dist is not None and d > max_dist:
            break
        dist[u] = d
        if p >= 0:
            parent[u] = p
        if remaining is not None:
            remaining.discard(u)
            if not remaining:
                break
        for v, w in adj[u]:
            if v not in dist:
                nd = d + w
                if max_dist is None or nd <= max_dist:
                    heapq.heappush(heap, (nd, v, u))
                    relaxations += 1
    _report(len(dist), relaxations)
    return dist, parent


def shortest_path(
    adj: Adjacency, source: int, target: int, max_dist: float | None = None
) -> tuple[float, list[int]]:
    """Distance and node sequence of a shortest source→target path.

    Raises :class:`GeodesicError` when the target is unreachable
    (within ``max_dist`` if given).
    """
    dist, parent = dijkstra_with_parents(
        adj, source, targets={target}, max_dist=max_dist
    )
    if target not in dist:
        raise GeodesicError(
            f"no path from {source} to {target}"
            + (f" within distance {max_dist}" if max_dist is not None else "")
        )
    path = [target]
    while path[-1] != source:
        path.append(parent[path[-1]])
    path.reverse()
    return dist[target], path


# The dict kernels stay available under explicit names as the ground
# truth for the flat CSR kernels (repro.geodesic.csr): differential
# tests and `bench kernels` run both and assert identical results.
dijkstra_reference = dijkstra
dijkstra_with_parents_reference = dijkstra_with_parents
