"""ALT-style landmark lower bounds for surface distances.

Road-network k-NN engines precompute distances from a small set of
*landmark* vertices and serve O(1) triangle-inequality lower bounds
``max_l |d(l,u) - d(l,v)|`` (the ALT family: A*, landmarks, triangle
inequality).  This module transplants that idea to the surface
setting with one crucial twist: every graph distance this repo
computes (edge network ``dN``, pathnet distances) **over-estimates**
the exact surface distance ``dS``, so ``|dN(l,u) - dN(l,v)|`` is NOT
a valid lower bound of ``dS(u,v)``.  The pair-bound tables must be
built from distances in the *same metric* the bound is quoted in.

The :class:`LandmarkIndex` therefore keeps two tables:

* ``surface`` — exact per-landmark distance rows ``dS(l, .)`` from
  one :class:`~repro.geodesic.exact.ExactGeodesic` propagation per
  landmark (optionally run in parallel).  The triangle inequality of
  the surface metric then gives the admissible pair bound
  ``max_l |dS(l,u) - dS(l,v)| <= dS(u,v)`` that the ranking loop and
  the ``landmark_admissible`` testkit oracle rely on, and the
  concatenation bound ``dS(u,v) <= dS(l,u) + dS(l,v)`` used to seed
  pruning thresholds;
* ``graph`` — edge-network rows ``dN(l, .)`` computed with
  :func:`~repro.geodesic.csr.multi_source_dijkstra_csr` over the
  compiled CSR form of the mesh's edge graph.  These drive the
  farthest-point landmark *selection* (each new landmark maximizes
  its network distance to the already-chosen set — one multi-source
  search per round) and are cheap enough to recompute, but are never
  used to bound ``dS``.

Tables persist through a :class:`repro.core.batch.BoundCache` keyed
by the mesh fingerprint (SHA-1 over vertex and face bytes), landmark
count, selection seed and a format version — warm batch/service runs
skip the exact propagations entirely (``landmark.cache_hits``), cold
builds count once under ``landmark.build`` and profile under the
``landmark-build`` phase.

:class:`LazyLandmarkIndex` amortizes the exact-table cost across a
query sweep instead of paying it up front: selection and the cheap
``graph`` rows are built eagerly, while each exact ``surface`` row is
built on demand (``ensure_progress``, one row per query by default)
under the ``landmark-lazy-build`` profiler phase and persisted
*per row* through the same bound cache — so a second sweep starts
fully warm even if the first was interrupted.  Every bound served
from a partial table is a bound over a **subset** of the landmarks,
which is always admissible: lower bounds are maxima (a smaller max is
still a lower bound) and concatenation upper bounds are minima (a
smaller set can only loosen them toward ``inf``).
"""

from __future__ import annotations

import hashlib
import random
import threading
from dataclasses import dataclass

import numpy as np

from repro.errors import GeodesicError
from repro.geodesic.csr import csr_from_adjacency, multi_source_dijkstra_csr
from repro.geodesic.exact import ExactGeodesic
from repro.obs.context import active_profiler, active_registry

#: Bump when the table layout changes — stale cache entries must miss.
TABLE_VERSION = 1


def mesh_fingerprint(mesh) -> str:
    """Stable identity of a mesh's geometry (SHA-1 over vertex and
    face bytes) — the graph-identity component of cache keys."""
    digest = hashlib.sha1()
    digest.update(np.ascontiguousarray(mesh.vertices, dtype=np.float64).tobytes())
    digest.update(np.ascontiguousarray(mesh.faces, dtype=np.int64).tobytes())
    return digest.hexdigest()


def _cache_key(fingerprint: str, count: int, seed: int) -> tuple:
    return ("landmarks", fingerprint, int(count), int(seed), TABLE_VERSION)


def _row_cache_key(fingerprint: str, landmark: int) -> tuple:
    """Per-landmark exact-row key: lazy builds persist row by row, so
    partial progress survives interruption and is shared with any
    other index (lazy or eager count) selecting the same vertex."""
    return ("landmark-row", fingerprint, int(landmark), TABLE_VERSION)


@dataclass(frozen=True)
class LandmarkTables:
    """Precomputed distance tables for one mesh.

    ``surface[i, v]`` is the exact surface distance from landmark
    ``landmarks[i]`` to vertex ``v``; ``graph[i, v]`` the edge-network
    distance (``inf`` where unreachable).  Both arrays are read-only
    views served to vectorized bound evaluation.
    """

    landmarks: tuple[int, ...]
    surface: np.ndarray  # (L, V) exact dS rows
    graph: np.ndarray  # (L, V) edge-network dN rows

    def __post_init__(self):
        self.surface.setflags(write=False)
        self.graph.setflags(write=False)


def _edge_csr(mesh):
    """Compiled CSR form of the mesh's edge network."""
    return csr_from_adjacency(mesh.edge_network(), positions=mesh.vertices)


def _graph_row(csr, landmark: int) -> np.ndarray:
    """One landmark-to-all edge-network row, via the multi-source
    kernel (a single-source search is the one-anchor special case)."""
    result = multi_source_dijkstra_csr(csr, [(int(landmark), 0.0)])
    row = np.full(csr.num_nodes, np.inf)
    for node, value in result.value.items():
        row[node] = value
    return row


def _select_landmarks(mesh, csr, count: int, seed: int) -> list[int]:
    """Farthest-point sampling over the edge network.

    The first landmark is drawn from the seeded RNG; each next one
    maximizes its network distance to the chosen set, computed by ONE
    multi-source search per round (the set's vertices are the
    sources).  Ties break toward the lowest vertex id (``argmax``
    returns the first maximum), so selection is deterministic.
    """
    n = mesh.num_vertices
    rng = random.Random(seed)
    chosen = [rng.randrange(n)]
    while len(chosen) < count:
        sweep = multi_source_dijkstra_csr(csr, [(v, 0.0) for v in chosen])
        to_set = np.full(n, np.inf)
        for node, value in sweep.value.items():
            to_set[node] = value
        # Unreachable vertices would argmax at inf but make useless
        # landmarks (their exact rows are inf too) — mask them out.
        to_set[~np.isfinite(to_set)] = -1.0
        chosen.append(int(np.argmax(to_set)))
    return chosen


def _surface_rows(mesh, landmarks, parallel: bool) -> np.ndarray:
    """Exact dS rows, one full window propagation per landmark."""

    def row(landmark: int) -> np.ndarray:
        return ExactGeodesic(mesh, int(landmark)).distances()

    if parallel and len(landmarks) > 1:
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=min(8, len(landmarks))) as pool:
            rows = list(pool.map(row, landmarks))
    else:
        rows = [row(l) for l in landmarks]
    return np.vstack(rows)


class LandmarkIndex:
    """Serves O(1) admissible lower bounds on surface distances.

    Build through :meth:`build` (cache-aware) rather than the
    constructor.  All bound evaluation runs on numpy views of the
    precomputed tables; non-finite table entries (vertices
    unreachable from a landmark) contribute nothing — the affected
    landmark's term degrades to the trivial bound 0 for that pair.
    """

    def __init__(self, mesh, tables: LandmarkTables):
        if tables.surface.shape != (len(tables.landmarks), mesh.num_vertices):
            raise GeodesicError(
                f"landmark table shape {tables.surface.shape} does not "
                f"match {len(tables.landmarks)} landmarks x "
                f"{mesh.num_vertices} vertices"
            )
        self.mesh = mesh
        self.tables = tables
        self._surface = tables.surface

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        mesh,
        count: int = 8,
        seed: int = 0,
        cache=None,
        parallel: bool = False,
    ) -> "LandmarkIndex":
        """Select landmarks and compute both tables (cache-aware).

        ``cache`` is an optional :class:`repro.core.batch.BoundCache`;
        a hit (keyed by mesh fingerprint, count, seed and table
        version) skips every propagation and counts under
        ``landmark.cache_hits``.  A real build counts once under
        ``landmark.build`` and profiles under ``landmark-build``.
        ``parallel=True`` runs the per-landmark exact propagations on
        a thread pool.
        """
        if count < 1:
            raise GeodesicError(f"landmark count must be >= 1, got {count}")
        count = min(int(count), mesh.num_vertices)
        registry = active_registry()
        key = _cache_key(mesh_fingerprint(mesh), count, seed)
        if cache is not None:
            found, tables = cache.lookup(key)
            if found:
                registry.counter("landmark.cache_hits").add(1)
                return cls(mesh, tables)
        with active_profiler().phase("landmark-build"):
            csr = _edge_csr(mesh)
            landmarks = _select_landmarks(mesh, csr, count, seed)
            graph = np.vstack([_graph_row(csr, l) for l in landmarks])
            surface = _surface_rows(mesh, landmarks, parallel)
        tables = LandmarkTables(
            landmarks=tuple(int(l) for l in landmarks),
            surface=surface,
            graph=graph,
        )
        registry.counter("landmark.build").add(1)
        if cache is not None:
            cache.store(key, tables)
        return cls(mesh, tables)

    # ------------------------------------------------------------------

    @property
    def landmarks(self) -> tuple[int, ...]:
        return self.tables.landmarks

    @property
    def count(self) -> int:
        return len(self.tables.landmarks)

    # ------------------------------------------------------------------
    # bounds
    # ------------------------------------------------------------------

    def lower_bound(self, u: int, v: int) -> float:
        """``max_l |dS(l,u) - dS(l,v)| <= dS(u,v)`` (triangle
        inequality of the surface metric; 0 when a landmark cannot
        see either vertex)."""
        diff = self._surface[:, int(u)] - self._surface[:, int(v)]
        bounds = np.where(np.isfinite(diff), np.abs(diff), 0.0)
        return float(bounds.max(initial=0.0))

    def lower_bound_batch(self, sources, targets) -> np.ndarray:
        """Vectorized :meth:`lower_bound` over parallel index arrays
        (either side may be a scalar, broadcast against the other)."""
        s = np.atleast_1d(np.asarray(sources, dtype=np.intp))
        t = np.atleast_1d(np.asarray(targets, dtype=np.intp))
        diff = self._surface[:, s] - self._surface[:, t]
        bounds = np.where(np.isfinite(diff), np.abs(diff), 0.0)
        return bounds.max(axis=0, initial=0.0)

    def anchored_lower_bounds(self, anchors, vertices) -> np.ndarray:
        """Lower bounds from an anchored query source to each vertex.

        ``anchors`` are MR3 ``(vertex, offset)`` pairs where the
        offset is the length of a genuine surface path from the query
        point to the anchor vertex, so
        ``dS(q, v) >= lower_bound(a, v) - offset`` for every anchor —
        the composed bound is the best anchor's, clipped at 0.
        """
        t = np.atleast_1d(np.asarray(vertices, dtype=np.intp))
        out = np.zeros(t.shape, dtype=float)
        for vertex, offset in anchors:
            row = self.lower_bound_batch(int(vertex), t) - float(offset)
            np.maximum(out, row, out=out)
        return np.maximum(out, 0.0, out=out)

    def concat_upper_bounds(self, anchors, vertices) -> np.ndarray:
        """Landmark-concatenation upper bounds per candidate vertex:
        ``min_a (offset_a + min_l (dS(l,a) + dS(l,v)))``.

        Each term is the length of a genuine surface path
        (query→anchor→landmark→candidate), so every entry
        over-estimates ``dS(q, v)`` — the ranking loop composes these
        with DMTM network bounds (running min) and seeds its pruning
        threshold from the k-th smallest.  ``inf`` where no landmark
        sees both sides (and everywhere on a lazy index with no rows
        built yet — a subset of landmarks only loosens the min).
        """
        t = np.atleast_1d(np.asarray(vertices, dtype=np.intp))
        best = np.full(t.shape, np.inf)
        surface = self._surface
        if surface.shape[0] == 0:
            return best
        for vertex, offset in anchors:
            via = surface[:, [int(vertex)]] + surface[:, t]
            via = np.where(np.isfinite(via), via, np.inf)
            np.minimum(best, float(offset) + via.min(axis=0), out=best)
        return best

    def kth_upper_bound(self, anchors, vertices, k: int) -> float:
        """Admissible seed for the ranking loop's pruning threshold:
        the k-th smallest :meth:`concat_upper_bounds` entry over the
        candidate vertices.  Skipping a candidate whose lower bound
        already exceeds it is safe before any DMTM upper bound exists.
        ``inf`` when fewer than ``k`` candidates get a finite bound.
        """
        best = self.concat_upper_bounds(anchors, vertices)
        finite = np.sort(best[np.isfinite(best)])
        if finite.size >= k:
            return float(finite[k - 1])
        return float("inf")

    # ------------------------------------------------------------------
    # lazy-build protocol (no-ops on the eager index)
    # ------------------------------------------------------------------

    @property
    def built(self) -> int:
        """Number of exact surface rows available (== :attr:`count`
        here; lazy indexes report their incremental progress)."""
        return self._surface.shape[0]

    def ensure_progress(self, rows: int | None = None) -> int:
        """Advance an incremental build; the eager index is always
        complete, so this is a no-op returning :attr:`built`."""
        return self.built

    def warm(self, parallel: bool = False) -> int:
        """Complete an incremental build; no-op on the eager index."""
        return self.built

    # ------------------------------------------------------------------
    # A* heuristic assembly (pathnet graphs)
    # ------------------------------------------------------------------

    def pathnet_heuristic(self, graph, target_vertex: int) -> list[float]:
        """Per-node ALT heuristic for A* over a pathnet graph, maxed
        with the straight-line heuristic.

        Pathnet nodes are mesh vertices (exact table columns) or
        Steiner points on mesh edges.  A Steiner point ``x`` on edge
        ``(u, w)`` satisfies ``dS(a, x) <= |x - a|`` for each endpoint
        ``a`` (the sub-segment lies on the surface), which brackets
        ``dS(l, x)`` in ``[max_a (dS(l,a) - |x-a|),
        min_a (dS(l,a) + |x-a|)]``; against the target column the
        bracket yields an admissible *and consistent* bound on the
        pathnet distance (every component is 1-Lipschitz in the 3D
        position, and pathnet edge weights are 3D segment lengths),
        so :func:`~repro.geodesic.csr.astar_csr`'s early exit stays
        exact.
        """
        csr = graph.csr()
        mesh = self.mesh
        surface = self._surface
        target_col = surface[:, int(target_vertex)]
        target_pos = mesh.vertices[int(target_vertex)]
        h: list[float] = []
        for node in range(csr.num_nodes):
            key = graph.key_of(node)
            pos = csr.positions[node]
            straight = float(np.linalg.norm(pos - target_pos))
            if key[0] == "v":
                lo = hi = surface[:, int(key[1])]
            else:
                u, w = mesh.edge_vertices[int(key[1])]
                du = float(np.linalg.norm(pos - mesh.vertices[int(u)]))
                dw = float(np.linalg.norm(pos - mesh.vertices[int(w)]))
                lo = np.maximum(surface[:, int(u)] - du, surface[:, int(w)] - dw)
                hi = np.minimum(surface[:, int(u)] + du, surface[:, int(w)] + dw)
            alt = np.maximum(lo - target_col, target_col - hi)
            alt = np.where(np.isfinite(alt), alt, 0.0)
            h.append(max(straight, float(alt.max(initial=0.0))))
        return h


class LazyLandmarkIndex(LandmarkIndex):
    """Landmark index whose exact rows are built incrementally.

    Selection (farthest-point over the edge network) and the cheap
    ``graph`` rows run eagerly at :meth:`build` time; the expensive
    per-landmark :class:`~repro.geodesic.exact.ExactGeodesic`
    propagations are deferred.  Each call to :meth:`ensure_progress`
    (the ranking loop makes one per query) appends up to
    ``rows_per_query`` more exact rows, so the table cost amortizes
    across a sweep instead of blocking the first query; :meth:`warm`
    completes the table at once, optionally on a thread pool.

    Every row is persisted individually through the bound cache
    (``landmark-row`` keys), so partial progress is never lost.  All
    bound methods serve the rows built so far — admissible by the
    subset argument in the module docstring — and the class inherits
    them unchanged: only the ``_surface`` table grows underneath.
    Growth swaps the array reference atomically under a lock, so
    concurrent readers see either the old or the new table, both
    sound.
    """

    def __init__(self, mesh, landmarks, graph, cache=None, fingerprint=None,
                 rows_per_query: int = 1):
        # Deliberately does not call LandmarkIndex.__init__: there is
        # no complete LandmarkTables yet.
        self.mesh = mesh
        self._landmark_order = tuple(int(l) for l in landmarks)
        self._graph = graph
        self._cache = cache
        self._fingerprint = (
            fingerprint if fingerprint is not None else mesh_fingerprint(mesh)
        )
        self.rows_per_query = max(1, int(rows_per_query))
        self._rows: list[np.ndarray] = []
        self._surface = np.zeros((0, mesh.num_vertices))
        self._lock = threading.Lock()

    @classmethod
    def build(
        cls,
        mesh,
        count: int = 8,
        seed: int = 0,
        cache=None,
        rows_per_query: int = 1,
        **_unused,
    ) -> "LazyLandmarkIndex":
        """Select landmarks and build the graph table only — exact
        rows come later, one :meth:`ensure_progress` at a time."""
        if count < 1:
            raise GeodesicError(f"landmark count must be >= 1, got {count}")
        count = min(int(count), mesh.num_vertices)
        csr = _edge_csr(mesh)
        landmarks = _select_landmarks(mesh, csr, count, seed)
        graph = np.vstack([_graph_row(csr, l) for l in landmarks])
        return cls(
            mesh,
            landmarks,
            graph,
            cache=cache,
            rows_per_query=rows_per_query,
        )

    # ------------------------------------------------------------------

    @property
    def tables(self) -> LandmarkTables:
        """Snapshot of the rows built so far (grows over time)."""
        surface = self._surface
        built = surface.shape[0]
        return LandmarkTables(
            landmarks=self._landmark_order[:built],
            surface=surface,
            graph=self._graph[:built],
        )

    @property
    def landmarks(self) -> tuple[int, ...]:
        return self._landmark_order

    @property
    def count(self) -> int:
        return len(self._landmark_order)

    @property
    def built(self) -> int:
        return self._surface.shape[0]

    # ------------------------------------------------------------------

    def _exact_row(self, landmark: int) -> np.ndarray:
        key = _row_cache_key(self._fingerprint, landmark)
        if self._cache is not None:
            found, row = self._cache.lookup(key)
            if found:
                active_registry().counter("landmark.row_cache_hits").add(1)
                return np.asarray(row)
        row = ExactGeodesic(self.mesh, int(landmark)).distances()
        active_registry().counter("landmark.lazy_rows").add(1)
        if self._cache is not None:
            self._cache.store(key, row)
        return row

    def _append_rows(self, rows: list[np.ndarray]) -> None:
        self._rows.extend(rows)
        self._surface = np.vstack(self._rows)

    def ensure_progress(self, rows: int | None = None) -> int:
        """Build up to ``rows`` more exact rows (default
        ``rows_per_query``); returns the rows now built.  Cached rows
        don't count against the budget — a warm sweep catches the
        table up for free."""
        budget = self.rows_per_query if rows is None else int(rows)
        with self._lock:
            done = len(self._rows)
            if done >= self.count or budget < 1:
                return done
            fresh: list[np.ndarray] = []
            spent = 0
            with active_profiler().phase("landmark-lazy-build"):
                for landmark in self._landmark_order[done:]:
                    if spent >= budget:
                        break
                    key = _row_cache_key(self._fingerprint, landmark)
                    if self._cache is not None:
                        found, row = self._cache.lookup(key)
                        if found:
                            active_registry().counter(
                                "landmark.row_cache_hits"
                            ).add(1)
                            fresh.append(np.asarray(row))
                            continue
                    row = ExactGeodesic(self.mesh, int(landmark)).distances()
                    active_registry().counter("landmark.lazy_rows").add(1)
                    if self._cache is not None:
                        self._cache.store(key, row)
                    fresh.append(row)
                    spent += 1
                if fresh:
                    self._append_rows(fresh)
            return len(self._rows)

    def warm(self, parallel: bool = False) -> int:
        """Build every remaining exact row at once.  ``parallel=True``
        runs the cache-missing propagations on a thread pool (the
        amortized warm-build path — same rows, same order)."""
        with self._lock:
            missing = self._landmark_order[len(self._rows):]
            if not missing:
                return len(self._rows)
            with active_profiler().phase("landmark-lazy-build"):
                if parallel and len(missing) > 1:
                    from concurrent.futures import ThreadPoolExecutor

                    with ThreadPoolExecutor(
                        max_workers=min(8, len(missing))
                    ) as pool:
                        rows = list(pool.map(self._exact_row, missing))
                else:
                    rows = [self._exact_row(l) for l in missing]
                self._append_rows(rows)
            return len(self._rows)
