"""Cooperative wall-clock deadlines for long-running kernels.

``QueryBudget.max_seconds`` used to be enforced only at refinement
*level* boundaries: one pathological Dijkstra sweep could blow far past
its deadline before the ranker looked at the clock again.  This module
gives the CSR kernels a cheap way to notice the deadline mid-search:

* the query processor installs the absolute deadline in a
  :class:`~contextvars.ContextVar` (so concurrent batch workers each
  see their own query's deadline);
* each kernel reads it once per call and, every
  :data:`DEADLINE_CHECK_INTERVAL` settled nodes, compares
  ``time.perf_counter()`` against it — with no deadline installed the
  per-settle cost is a single ``is not None`` test;
* on expiry the kernel raises :class:`DeadlineExceeded`, an internal
  control-flow marker the ranker catches at the level boundary to stop
  refining and return the (still sound) partial answer.

The marker derives from :class:`~repro.errors.SurfKnnError` so that if
it ever escapes the ranker it is still absorbed by batch isolation
rather than crashing a worker.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar

from repro.errors import SurfKnnError

#: Settled-node stride between wall-clock checks inside kernel loops.
DEADLINE_CHECK_INTERVAL = 64


class DeadlineExceeded(SurfKnnError):
    """A kernel noticed its query's wall-clock deadline mid-search.

    Internal control flow: callers on the ranking path catch it at the
    nearest sound stopping point and degrade instead of failing.
    """


_deadline: ContextVar[float | None] = ContextVar(
    "repro_kernel_deadline", default=None
)


def current_deadline() -> float | None:
    """The active absolute deadline (``time.perf_counter()`` scale)."""
    return _deadline.get()


@contextmanager
def deadline_scope(deadline_at: float | None):
    """Install ``deadline_at`` as the kernel deadline for this scope."""
    token = _deadline.set(deadline_at)
    try:
        yield
    finally:
        _deadline.reset(token)
