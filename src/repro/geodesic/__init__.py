"""Shortest-path machinery: network Dijkstra, pathnets, exact surface
geodesics and the Kanai–Suzuki approximate geodesic on a selectively
refined pathnet.

Terminology (matching the paper):

* ``dE`` — Euclidean distance (2D or 3D);
* ``dN`` — network distance: shortest path *along edges* of a mesh or
  support network (computed here by :func:`dijkstra`);
* ``dS`` — surface distance: shortest path on the polyhedral surface,
  allowed to cut across faces (computed exactly by
  :class:`ExactGeodesic`, approximated by
  :func:`kanai_suzuki_distance` or a dense pathnet ``dN``).
"""

from repro.geodesic.graph import KeyedGraph
from repro.geodesic.dijkstra import (
    dijkstra,
    dijkstra_reference,
    dijkstra_with_parents,
    shortest_path,
)
from repro.geodesic.csr import (
    CSRGraph,
    astar_csr,
    csr_from_adjacency,
    dijkstra_csr,
    dijkstra_csr_with_parents,
    kernel_mode,
    multi_source_dijkstra_csr,
    set_kernel_mode,
    use_kernel_mode,
    use_reference_kernels,
)
from repro.geodesic.frontier import (
    astar_frontier,
    dijkstra_frontier,
    dijkstra_frontier_with_parents,
    multi_source_frontier,
)
from repro.geodesic.pathnet import (
    build_pathnet,
    pathnet_distance,
    pathnet_shortest_path,
    vertex_key,
    steiner_key,
)
from repro.geodesic.exact import ExactGeodesic, exact_surface_distance
from repro.geodesic.kanai_suzuki import kanai_suzuki_distance
from repro.geodesic.landmarks import (
    LandmarkIndex,
    LandmarkTables,
    LazyLandmarkIndex,
    mesh_fingerprint,
)

__all__ = [
    "KeyedGraph",
    "CSRGraph",
    "dijkstra",
    "dijkstra_reference",
    "dijkstra_with_parents",
    "dijkstra_csr",
    "dijkstra_csr_with_parents",
    "multi_source_dijkstra_csr",
    "astar_csr",
    "csr_from_adjacency",
    "kernel_mode",
    "set_kernel_mode",
    "use_kernel_mode",
    "use_reference_kernels",
    "dijkstra_frontier",
    "dijkstra_frontier_with_parents",
    "multi_source_frontier",
    "astar_frontier",
    "shortest_path",
    "build_pathnet",
    "pathnet_distance",
    "pathnet_shortest_path",
    "vertex_key",
    "steiner_key",
    "ExactGeodesic",
    "exact_surface_distance",
    "kanai_suzuki_distance",
    "LandmarkIndex",
    "LandmarkTables",
    "LazyLandmarkIndex",
    "mesh_fingerprint",
]
