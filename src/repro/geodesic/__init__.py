"""Shortest-path machinery: network Dijkstra, pathnets, exact surface
geodesics and the Kanai–Suzuki approximate geodesic on a selectively
refined pathnet.

Terminology (matching the paper):

* ``dE`` — Euclidean distance (2D or 3D);
* ``dN`` — network distance: shortest path *along edges* of a mesh or
  support network (computed here by :func:`dijkstra`);
* ``dS`` — surface distance: shortest path on the polyhedral surface,
  allowed to cut across faces (computed exactly by
  :class:`ExactGeodesic`, approximated by
  :func:`kanai_suzuki_distance` or a dense pathnet ``dN``).
"""

from repro.geodesic.graph import KeyedGraph
from repro.geodesic.dijkstra import (
    dijkstra,
    dijkstra_with_parents,
    shortest_path,
)
from repro.geodesic.pathnet import (
    build_pathnet,
    pathnet_distance,
    pathnet_shortest_path,
    vertex_key,
    steiner_key,
)
from repro.geodesic.exact import ExactGeodesic, exact_surface_distance
from repro.geodesic.kanai_suzuki import kanai_suzuki_distance

__all__ = [
    "KeyedGraph",
    "dijkstra",
    "dijkstra_with_parents",
    "shortest_path",
    "build_pathnet",
    "pathnet_distance",
    "pathnet_shortest_path",
    "vertex_key",
    "steiner_key",
    "ExactGeodesic",
    "exact_surface_distance",
    "kanai_suzuki_distance",
]
