"""A small graph builder with arbitrary hashable node keys.

Pathnets, SDN networks and embedded query points all need to mix node
kinds (mesh vertices, Steiner points, segment chunks, the query point
itself).  :class:`KeyedGraph` maps hashable keys to dense integer ids
and compiles an adjacency list suitable for
:func:`repro.geodesic.dijkstra.dijkstra`.
"""

from __future__ import annotations

from repro.errors import GeodesicError


class KeyedGraph:
    """An undirected weighted graph over hashable node keys."""

    def __init__(self):
        self._ids: dict = {}
        self._keys: list = []
        self._adj: list[list[tuple[int, float]]] = []

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key) -> bool:
        return key in self._ids

    def add_node(self, key) -> int:
        """Add (or fetch) a node, returning its dense id."""
        node_id = self._ids.get(key)
        if node_id is None:
            node_id = len(self._keys)
            self._ids[key] = node_id
            self._keys.append(key)
            self._adj.append([])
        return node_id

    def add_edge(self, key_a, key_b, weight: float) -> None:
        """Add an undirected edge; creates missing endpoints."""
        if weight < 0:
            raise GeodesicError(f"negative edge weight {weight}")
        a = self.add_node(key_a)
        b = self.add_node(key_b)
        if a == b:
            return
        self._adj[a].append((b, float(weight)))
        self._adj[b].append((a, float(weight)))

    def node_id(self, key) -> int:
        node_id = self._ids.get(key)
        if node_id is None:
            raise GeodesicError(f"unknown node key {key!r}")
        return node_id

    def key_of(self, node_id: int):
        return self._keys[node_id]

    @property
    def adjacency(self) -> list[list[tuple[int, float]]]:
        """The compiled adjacency list (shared, do not mutate)."""
        return self._adj

    def degree(self, key) -> int:
        return len(self._adj[self.node_id(key)])

    def num_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj) // 2
