"""A small graph builder with arbitrary hashable node keys.

Pathnets, SDN networks and embedded query points all need to mix node
kinds (mesh vertices, Steiner points, segment chunks, the query point
itself).  :class:`KeyedGraph` maps hashable keys to dense integer ids
and compiles an adjacency list suitable for
:func:`repro.geodesic.dijkstra.dijkstra`, plus a memoized CSR form
for the flat-array kernels in :mod:`repro.geodesic.csr`.
"""

from __future__ import annotations

from repro.errors import GeodesicError


class KeyedGraph:
    """An undirected weighted graph over hashable node keys."""

    def __init__(self):
        self._ids: dict = {}
        self._keys: list = []
        self._adj: list[list[tuple[int, float]]] = []
        self._positions: list = []  # per-node 3D position or None
        # Compiled CSR form, memoized until the next mutation — many
        # searches run over each extracted network, so the compile
        # cost is paid once per graph, not once per call.
        self._csr = None

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key) -> bool:
        return key in self._ids

    def add_node(self, key, position=None) -> int:
        """Add (or fetch) a node, returning its dense id.

        ``position`` (an optional 3D point) enables the A* heuristic
        on the compiled CSR graph; passing it for an existing node
        fills a previously missing position.
        """
        node_id = self._ids.get(key)
        if node_id is None:
            node_id = len(self._keys)
            self._ids[key] = node_id
            self._keys.append(key)
            self._adj.append([])
            self._positions.append(position)
            self._csr = None
        elif position is not None and self._positions[node_id] is None:
            self._positions[node_id] = position
        return node_id

    def add_edge(self, key_a, key_b, weight: float) -> None:
        """Add an undirected edge; creates missing endpoints."""
        if weight < 0:
            raise GeodesicError(f"negative edge weight {weight}")
        a = self.add_node(key_a)
        b = self.add_node(key_b)
        if a == b:
            return
        self._adj[a].append((b, float(weight)))
        self._adj[b].append((a, float(weight)))
        self._csr = None

    def node_id(self, key) -> int:
        node_id = self._ids.get(key)
        if node_id is None:
            raise GeodesicError(f"unknown node key {key!r}")
        return node_id

    def key_of(self, node_id: int):
        return self._keys[node_id]

    def position_of(self, node_id: int):
        return self._positions[node_id]

    @property
    def adjacency(self) -> list[list[tuple[int, float]]]:
        """The compiled adjacency list (shared, do not mutate)."""
        return self._adj

    def csr(self):
        """The compiled :class:`repro.geodesic.csr.CSRGraph`.

        Memoized; any :meth:`add_node`/:meth:`add_edge` invalidates
        the cached compilation.  Positions are attached only when
        every node has one (A* needs the full heuristic table).  The
        build is assigned atomically, so concurrent readers of a
        finished graph (batch workers sharing a cached NetworkView)
        at worst duplicate the compile.
        """
        csr = self._csr
        if csr is None:
            from repro.geodesic.csr import csr_from_adjacency

            positions = self._positions
            if positions and all(p is not None for p in positions):
                csr = csr_from_adjacency(self._adj, positions=positions)
            else:
                csr = csr_from_adjacency(self._adj)
            self._csr = csr
        return csr

    def csr_if_compiled(self):
        """The memoized CSR form, or None when it was never compiled
        (or was invalidated).  The mode dispatchers use this to apply
        the compile-on-reuse rule: a graph searched once is cheaper on
        the dict kernel than on compile-then-search."""
        return self._csr

    def degree(self, key) -> int:
        return len(self._adj[self.node_id(key)])

    def num_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj) // 2
