"""A small graph builder with arbitrary hashable node keys.

Pathnets, SDN networks and embedded query points all need to mix node
kinds (mesh vertices, Steiner points, segment chunks, the query point
itself).  :class:`KeyedGraph` maps hashable keys to dense integer ids
and compiles an adjacency list suitable for
:func:`repro.geodesic.dijkstra.dijkstra`, plus a memoized CSR form
for the flat-array kernels in :mod:`repro.geodesic.csr`.

Graphs normally grow by :meth:`KeyedGraph.add_node` /
:meth:`KeyedGraph.add_edge`; :meth:`KeyedGraph.from_arrays` adopts a
pre-compiled CSR form wholesale (the vectorised pathnet builder in
:mod:`repro.geodesic.frontier`), deferring the Python adjacency-list
mirror until something actually needs it.
"""

from __future__ import annotations

from repro.errors import GeodesicError


class KeyedGraph:
    """An undirected weighted graph over hashable node keys."""

    def __init__(self):
        self._ids: dict = {}
        self._keys: list = []
        self._adj: list[list[tuple[int, float]]] | None = []
        self._positions: list = []  # per-node 3D position or None
        # Compiled CSR form, memoized until the next mutation — many
        # searches run over each extracted network, so the compile
        # cost is paid once per graph, not once per call.
        self._csr = None

    @classmethod
    def from_arrays(cls, keys: list, positions, csr) -> "KeyedGraph":
        """Adopt a pre-compiled :class:`~repro.geodesic.csr.CSRGraph`.

        ``keys[i]`` is node i's key, ``positions`` an ``(n, 3)`` array
        (or None).  The Python adjacency mirror is reconstructed
        lazily from the CSR arrays — only reference-mode searches and
        post-hoc mutation ever need it.
        """
        graph = cls.__new__(cls)
        graph._keys = list(keys)
        graph._ids = {key: i for i, key in enumerate(graph._keys)}
        if len(graph._ids) != len(graph._keys):
            raise GeodesicError("from_arrays keys are not unique")
        if positions is not None:
            graph._positions = list(positions)
        else:
            graph._positions = [None] * len(graph._keys)
        graph._adj = None  # lazily mirrored from the CSR form
        graph._csr = csr
        return graph

    def _ensure_adj(self) -> list[list[tuple[int, float]]]:
        adj = self._adj
        if adj is None:
            indptr, indices, weights = self._csr.lists()
            adj = self._adj = [
                list(zip(indices[indptr[u] : indptr[u + 1]],
                         weights[indptr[u] : indptr[u + 1]]))
                for u in range(len(indptr) - 1)
            ]
        return adj

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key) -> bool:
        return key in self._ids

    def add_node(self, key, position=None) -> int:
        """Add (or fetch) a node, returning its dense id.

        ``position`` (an optional 3D point) enables the A* heuristic
        on the compiled CSR graph; passing it for an existing node
        fills a previously missing position.
        """
        node_id = self._ids.get(key)
        if node_id is None:
            node_id = len(self._keys)
            self._ensure_adj()
            self._ids[key] = node_id
            self._keys.append(key)
            self._adj.append([])
            self._positions.append(position)
            self._csr = None
        elif position is not None and self._positions[node_id] is None:
            self._positions[node_id] = position
            # The compiled CSR captured a positions snapshot (or the
            # lack of one): filling a position must invalidate it too.
            self._csr = None
        return node_id

    def add_edge(self, key_a, key_b, weight: float) -> None:
        """Add an undirected edge; creates missing endpoints."""
        if weight < 0:
            raise GeodesicError(f"negative edge weight {weight}")
        a = self.add_node(key_a)
        b = self.add_node(key_b)
        if a == b:
            return
        self._ensure_adj()
        self._adj[a].append((b, float(weight)))
        self._adj[b].append((a, float(weight)))
        self._csr = None

    def node_id(self, key) -> int:
        node_id = self._ids.get(key)
        if node_id is None:
            raise GeodesicError(f"unknown node key {key!r}")
        return node_id

    def key_of(self, node_id: int):
        return self._keys[node_id]

    def position_of(self, node_id: int):
        return self._positions[node_id]

    @property
    def adjacency(self) -> list[list[tuple[int, float]]]:
        """The compiled adjacency list (shared, do not mutate)."""
        return self._ensure_adj()

    def csr(self):
        """The compiled :class:`repro.geodesic.csr.CSRGraph`.

        Memoized; any :meth:`add_node`/:meth:`add_edge` invalidates
        the cached compilation.  Positions are attached only when
        every node has one (A* needs the full heuristic table).  The
        build is assigned atomically, so concurrent readers of a
        finished graph (batch workers sharing a cached NetworkView)
        at worst duplicate the compile.
        """
        csr = self._csr
        if csr is None:
            from repro.geodesic.csr import csr_from_adjacency

            positions = self._positions
            if positions and all(p is not None for p in positions):
                csr = csr_from_adjacency(self._ensure_adj(), positions=positions)
            else:
                csr = csr_from_adjacency(self._ensure_adj())
            self._csr = csr
        return csr

    def csr_if_compiled(self):
        """The memoized CSR form, or None when it was never compiled
        (or was invalidated).  The mode dispatchers use this to apply
        the compile-on-reuse rule: a graph searched once is cheaper on
        the dict kernel than on compile-then-search."""
        return self._csr

    def degree(self, key) -> int:
        return len(self._ensure_adj()[self.node_id(key)])

    def num_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._ensure_adj()) // 2
