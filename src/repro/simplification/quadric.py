"""Quadric error metrics (Garland & Heckbert 1997).

Each face contributes the squared-distance-to-plane quadric of its
supporting plane; a vertex's quadric is the area-weighted sum over its
incident faces.  The cost of contracting a vertex pair is the summed
quadric evaluated at the merged position — the error measure the
paper uses to order DM collapses ("the resultant terrain after the
merger causes minimum approximation error according to ... the
quadric error matrices").

Quadrics are kept as symmetric 4x4 matrices Q so that the error of
homogeneous point v is vᵀQv.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimplificationError


def face_quadric(a, b, c) -> np.ndarray:
    """Area-weighted plane quadric of triangle ``abc``.

    Degenerate (zero-area) faces contribute the zero quadric.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    c = np.asarray(c, dtype=float)
    n = np.cross(b - a, c - a)
    norm = float(np.linalg.norm(n))
    if norm == 0.0:
        return np.zeros((4, 4))
    area = norm / 2.0
    n = n / norm
    d = -float(np.dot(n, a))
    p = np.array([n[0], n[1], n[2], d])
    return area * np.outer(p, p)


def vertex_quadrics(mesh) -> np.ndarray:
    """(n, 4, 4) array of per-vertex quadrics for a mesh."""
    q = np.zeros((mesh.num_vertices, 4, 4))
    for face in mesh.faces:
        fq = face_quadric(*mesh.vertices[face])
        for vi in face:
            q[int(vi)] += fq
    return q


def quadric_error(q: np.ndarray, position) -> float:
    """Error vᵀQv of a 3D position under quadric ``q`` (clamped at 0
    against round-off)."""
    if q.shape != (4, 4):
        raise SimplificationError(f"quadric must be 4x4, got {q.shape}")
    v = np.append(np.asarray(position, dtype=float), 1.0)
    return max(float(v @ q @ v), 0.0)


def best_merge_position(q: np.ndarray, pos_a, pos_b) -> tuple[np.ndarray, float]:
    """Pick the merged-vertex position for a contraction.

    Tries the quadric-optimal position (solving ∇(vᵀQv) = 0) and
    falls back to the best of {a, b, midpoint} when the system is
    ill-conditioned — Garland & Heckbert's own fallback.
    Returns (position, error).
    """
    pos_a = np.asarray(pos_a, dtype=float)
    pos_b = np.asarray(pos_b, dtype=float)
    candidates = [pos_a, pos_b, (pos_a + pos_b) / 2.0]
    solver = np.array(q)
    solver[3, :] = (0.0, 0.0, 0.0, 1.0)
    try:
        if abs(np.linalg.det(solver)) > 1e-12:
            opt = np.linalg.solve(solver, np.array([0.0, 0.0, 0.0, 1.0]))[:3]
            # Keep the optimum only if it stays near the contracted pair
            # (far-flying optima on flat quadrics hurt terrain shape).
            span = float(np.linalg.norm(pos_a - pos_b)) + 1e-12
            if float(np.linalg.norm(opt - (pos_a + pos_b) / 2.0)) <= 2.0 * span:
                candidates.append(opt)
    except np.linalg.LinAlgError:
        pass
    best_pos = candidates[0]
    best_err = quadric_error(q, best_pos)
    for cand in candidates[1:]:
        err = quadric_error(q, cand)
        if err < best_err:
            best_err = err
            best_pos = cand
    return best_pos, best_err
