"""Pair-contraction engine producing the DM/DDM binary collapse tree.

DM construction is "a bottom-up process.  Each vertex in the original
terrain mesh is represented by a leaf node.  Then, a pair of connected
nodes are selected to collapse to form their parent node if the
resultant terrain after the merger causes minimum approximation error
... Such approximation error e is recorded with every non-leaf node
... This process continues until a tree is formed."  (paper, §3.2)

On top of plain DM bookkeeping this engine records the *distance*
information that turns DM into DDM:

* every node keeps a **representative** vertex of the original mesh
  (a leaf is its own representative; a parent inherits one child's);
* every node snapshots, at its creation, its neighbour list together
  with distances computed by the paper's recurrence

  ``d(c, w) = d(a, w)`` if ``w ∈ N(a)`` else ``d(b, w) + d(a, b)``

  so each recorded distance is the length of a genuine path in the
  *original* mesh network between the two representatives — the fact
  that makes DMTM estimates true upper bounds of ``dS``;
* the child whose representative is dropped stores
  ``offset_to_parent_rep = d(a, b)``, letting queries translate any
  original vertex into (ancestor representative, path offset) at any
  cut of the tree.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimplificationError
from repro.simplification.quadric import best_merge_position, vertex_quadrics


@dataclass
class CollapseNode:
    """One node of the binary collapse tree (leaf = original vertex)."""

    node_id: int
    rep: int
    position: np.ndarray
    error: float
    birth_step: int
    children: tuple[int, int] | None = None
    parent: int | None = None
    death_step: int | None = None
    records: list[tuple[int, float]] = field(default_factory=list)
    offset_to_parent_rep: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.children is None

    def alive_at(self, step: int) -> bool:
        return self.birth_step <= step and (
            self.death_step is None or self.death_step > step
        )


class CollapseHistory:
    """The full collapse tree plus cut/extraction helpers."""

    def __init__(self, nodes: list[CollapseNode], num_leaves: int, roots: list[int]):
        self.nodes = nodes
        self.num_leaves = num_leaves
        self.roots = roots
        self.num_steps = len(nodes) - num_leaves

    # -- cuts ----------------------------------------------------------

    def step_for_fraction(self, fraction: float) -> int:
        """Collapse step whose cut keeps ~``fraction`` of the leaves.

        ``fraction`` in (0, 1]; the cut size is clamped to [2, n].
        """
        if not 0.0 < fraction <= 1.0:
            raise SimplificationError(
                f"fraction must be in (0, 1], got {fraction}"
            )
        target = max(2, int(round(fraction * self.num_leaves)))
        target = min(target, self.num_leaves)
        return min(self.num_leaves - target, self.num_steps)

    def cut_at_step(self, step: int) -> list[int]:
        """Node ids alive exactly after ``step`` collapses."""
        if not 0 <= step <= self.num_steps:
            raise SimplificationError(f"step {step} out of range")
        return [n.node_id for n in self.nodes if n.alive_at(step)]

    def cut_for_fraction(self, fraction: float) -> list[int]:
        return self.cut_at_step(self.step_for_fraction(fraction))

    def edges_of_cut(self, cut: list[int]):
        """Yield (u, w, dist) for every recorded edge alive in ``cut``.

        Each edge is yielded once.  The distance is the recorded
        representative-path length.
        """
        alive = set(cut)
        seen: set[tuple[int, int]] = set()
        for node_id in cut:
            for nbr, d in self.nodes[node_id].records:
                if nbr in alive:
                    key = (node_id, nbr) if node_id < nbr else (nbr, node_id)
                    if key not in seen:
                        seen.add(key)
                        yield key[0], key[1], d

    def ancestor_at_step(self, leaf_id: int, step: int) -> tuple[int, float]:
        """(ancestor node id, representative offset) of an original
        vertex at the given cut.

        The offset is the length of an original-network path from the
        leaf's vertex to the ancestor's representative vertex —
        accumulated ``offset_to_parent_rep`` along the chain.
        """
        if not 0 <= leaf_id < self.num_leaves:
            raise SimplificationError(f"leaf {leaf_id} out of range")
        node = self.nodes[leaf_id]
        offset = 0.0
        while not node.alive_at(step):
            if node.parent is None:
                raise SimplificationError(
                    f"leaf {leaf_id} has no ancestor alive at step {step}"
                )
            offset += node.offset_to_parent_rep
            node = self.nodes[node.parent]
        return node.node_id, offset

    def max_error(self) -> float:
        return max((n.error for n in self.nodes), default=0.0)


def build_collapse_history(mesh) -> CollapseHistory:
    """Run QEM pair contraction on a mesh down to a single root.

    Returns the full :class:`CollapseHistory`; runtime is
    O(n log n · average degree) with n mesh vertices.
    """
    n = mesh.num_vertices
    quadrics = list(vertex_quadrics(mesh))
    nodes: list[CollapseNode] = []
    # Live adjacency with representative-path distances.
    active: dict[int, dict[int, float]] = {}

    for vid in range(n):
        nodes.append(
            CollapseNode(
                node_id=vid,
                rep=vid,
                position=mesh.vertices[vid].copy(),
                error=0.0,
                birth_step=0,
            )
        )
    for vid in range(n):
        dists = {
            int(w): mesh.edge_length(vid, int(w))
            for w in mesh.vertex_neighbors[vid]
        }
        active[vid] = dists
        nodes[vid].records = sorted(dists.items())

    counter = itertools.count()
    heap: list[tuple[float, int, int, int]] = []

    def push_pair(u: int, w: int) -> None:
        q = quadrics[u] + quadrics[w]
        _pos, err = best_merge_position(q, nodes[u].position, nodes[w].position)
        heapq.heappush(heap, (err, next(counter), u, w))

    pushed: set[tuple[int, int]] = set()
    for u, w in mesh.edge_vertices:
        u, w = int(u), int(w)
        push_pair(u, w)
        pushed.add((u, w))

    step = 0
    while len(active) > 1:
        # Pop the cheapest still-valid contraction.
        while heap:
            err, _tie, a, b = heapq.heappop(heap)
            if a in active and b in active and b in active[a]:
                break
        else:
            # Disconnected graph: remaining actives become roots.
            break
        step += 1
        d_ab = active[a][b]
        quadric = quadrics[a] + quadrics[b]
        position, qem_err = best_merge_position(
            quadric, nodes[a].position, nodes[b].position
        )
        # Errors must be monotone up the tree for clean LOD cuts.
        error = max(qem_err, nodes[a].error, nodes[b].error)
        error = math.nextafter(error, math.inf)

        # Representative: keep the child nearer the merged position.
        da = float(np.linalg.norm(position - nodes[a].position))
        db = float(np.linalg.norm(position - nodes[b].position))
        keeper, dropper = (a, b) if da <= db else (b, a)

        c = len(nodes)
        node = CollapseNode(
            node_id=c,
            rep=nodes[keeper].rep,
            position=position,
            error=error,
            birth_step=step,
            children=(a, b),
        )
        # Paper's distance recurrence, phrased around the keeper: via
        # the keeper's representative directly, or via the dropped
        # child's representative plus d(a, b).
        merged: dict[int, float] = {}
        for w, d in active[keeper].items():
            if w != dropper:
                merged[w] = d
        for w, d in active[dropper].items():
            if w != keeper and w not in merged:
                merged[w] = d + d_ab
        node.records = sorted(merged.items())
        nodes.append(node)
        quadrics.append(quadric)

        for child, offset in ((keeper, 0.0), (dropper, d_ab)):
            nodes[child].parent = c
            nodes[child].death_step = step
            nodes[child].offset_to_parent_rep = offset

        del active[a]
        del active[b]
        active[c] = merged
        for w, d in merged.items():
            peers = active[w]
            peers.pop(a, None)
            peers.pop(b, None)
            peers[c] = d
            push_pair(c, w)

    roots = sorted(active)
    return CollapseHistory(nodes, num_leaves=n, roots=roots)
