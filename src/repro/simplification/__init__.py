"""Mesh simplification with quadric error metrics.

The DDM is "built by adapting [the] simplification tool [Garland &
Heckbert] with the Quadric Error Metrics to add distance and
representative information to each node" (paper, Section 5.1).  This
package provides that simplification substrate:

* :mod:`repro.simplification.quadric` — per-vertex error quadrics;
* :mod:`repro.simplification.collapse` — the pair-contraction engine
  that emits the full binary collapse history consumed by
  :class:`repro.multires.DistanceDirectMesh`.
"""

from repro.simplification.quadric import (
    face_quadric,
    vertex_quadrics,
    quadric_error,
)
from repro.simplification.collapse import CollapseNode, CollapseHistory, build_collapse_history

__all__ = [
    "face_quadric",
    "vertex_quadrics",
    "quadric_error",
    "CollapseNode",
    "CollapseHistory",
    "build_collapse_history",
]
