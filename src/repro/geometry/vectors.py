"""Small vector helpers shared across the geometry kernel.

All functions accept array-likes and operate on the trailing axis, so
they work for single points and for batches alike.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeometryError


def norm(v) -> float | np.ndarray:
    """Euclidean norm along the trailing axis."""
    v = np.asarray(v, dtype=float)
    return np.sqrt(np.sum(v * v, axis=-1))


def dist(a, b) -> float | np.ndarray:
    """Euclidean distance between points (any shared dimension)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    return norm(a - b)


def dist2d(a, b) -> float | np.ndarray:
    """Euclidean distance between the xy-projections of two points."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    return norm(a[..., :2] - b[..., :2])


def normalize(v) -> np.ndarray:
    """Return ``v`` scaled to unit length.

    Raises :class:`GeometryError` for the zero vector rather than
    silently producing NaNs.
    """
    v = np.asarray(v, dtype=float)
    n = norm(v)
    if np.any(n == 0.0):
        raise GeometryError("cannot normalize a zero vector")
    return v / (n[..., np.newaxis] if np.ndim(n) else n)


def cross2d(u, v) -> float | np.ndarray:
    """Z-component of the cross product of two 2D vectors.

    Positive when ``v`` is counter-clockwise of ``u``.
    """
    u = np.asarray(u, dtype=float)
    v = np.asarray(v, dtype=float)
    return u[..., 0] * v[..., 1] - u[..., 1] * v[..., 0]
