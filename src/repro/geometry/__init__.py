"""Geometry kernel: vectors, bounding boxes, triangles, polylines,
ellipse search regions.

These primitives are deliberately small and dependency-light (numpy
only).  Everything upstream — terrain meshes, multiresolution models,
MSDN crossing lines, MR3 search regions — is built on them.
"""

from repro.geometry.vectors import (
    norm,
    dist,
    dist2d,
    normalize,
    cross2d,
)
from repro.geometry.primitives import BoundingBox, Segment
from repro.geometry.triangle import (
    point_in_triangle_2d,
    barycentric_2d,
    triangle_area,
    unfold_triangle,
)
from repro.geometry.polyline import Polyline, simplify_with_enclosure
from repro.geometry.ellipse import EllipseRegion

__all__ = [
    "norm",
    "dist",
    "dist2d",
    "normalize",
    "cross2d",
    "BoundingBox",
    "Segment",
    "point_in_triangle_2d",
    "barycentric_2d",
    "triangle_area",
    "unfold_triangle",
    "Polyline",
    "simplify_with_enclosure",
    "EllipseRegion",
]
