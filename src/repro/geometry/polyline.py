"""Polylines and the MBR-enclosing simplification used by MSDN.

A *crossing line* (terrain ∩ sweep plane) is a 3D polyline.  The MSDN
stores it at several resolutions; the paper modifies a Li–Openshaw
style line simplification so that **the MBR of every simplified
segment fully encloses the MBRs of the original segments it
replaces**.  That enclosure is what makes the MSDN lower bound both
*safe* (min-MBR distances can only shrink when boxes grow) and
*monotone* (higher resolution ⇒ smaller boxes ⇒ larger, tighter lower
bounds).

We therefore represent a simplified line as a list of *chunks*: each
chunk covers a contiguous run of original segments and carries the
union of their MBRs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GeometryError
from repro.geometry.primitives import BoundingBox


@dataclass(frozen=True)
class PolylineChunk:
    """A contiguous run of original polyline segments collapsed into a
    single simplified segment.

    ``first`` / ``last`` index the original *segments* (inclusive);
    ``mbr`` is the union of those segments' MBRs, guaranteeing the
    paper's enclosure property by construction.
    """

    first: int
    last: int
    mbr: BoundingBox

    @property
    def segment_count(self) -> int:
        return self.last - self.first + 1


class Polyline:
    """An open 3D polyline with per-segment MBRs.

    ``points`` is an (n, 3) array with n >= 2.
    """

    def __init__(self, points):
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[0] < 2 or pts.shape[1] not in (2, 3):
            raise GeometryError(
                "a polyline needs an (n>=2, 2|3) point array, got "
                f"shape {pts.shape}"
            )
        self.points = pts

    @property
    def num_points(self) -> int:
        return int(self.points.shape[0])

    @property
    def num_segments(self) -> int:
        return self.num_points - 1

    def length(self) -> float:
        """Total arc length."""
        diffs = np.diff(self.points, axis=0)
        return float(np.sum(np.sqrt(np.sum(diffs * diffs, axis=1))))

    def segment_mbr(self, i: int) -> BoundingBox:
        """MBR of the i-th original segment."""
        if not 0 <= i < self.num_segments:
            raise GeometryError(f"segment index {i} out of range")
        return BoundingBox.of_points(self.points[i : i + 2])

    def mbr(self) -> BoundingBox:
        return BoundingBox.of_points(self.points)


def simplify_with_enclosure(line: Polyline, resolution: float) -> list[PolylineChunk]:
    """Simplify ``line`` to roughly ``resolution`` (0 < r <= 1) of its
    points, returning MBR-enclosing chunks.

    ``resolution = 1.0`` keeps every original segment as its own chunk
    (the "100 % SDN").  Smaller values group ``ceil(1/r)`` consecutive
    segments per chunk, Li–Openshaw style (regular sampling along the
    line), and each chunk's MBR is the union of its members' MBRs —
    the enclosure property the paper requires for monotone lower
    bounds.
    """
    if not 0.0 < resolution <= 1.0:
        raise GeometryError(f"resolution must be in (0, 1], got {resolution}")
    n = line.num_segments
    num_chunks = max(1, min(n, int(round(n * resolution))))
    chunks: list[PolylineChunk] = []
    for k in range(num_chunks):
        first = (k * n) // num_chunks
        last = ((k + 1) * n) // num_chunks - 1
        mbr = BoundingBox.of_points(line.points[first : last + 2])
        chunks.append(PolylineChunk(first=first, last=last, mbr=mbr))
    return chunks
