"""Axis-aligned bounding boxes (MBRs) and line segments.

The paper leans on MBRs in three places: MSDN lower bounds use the
*minimum distance between segment MBRs* as edge weights, the refined
upper-bound search region is a union of *descendant-node MBRs*, and
I/O regions are MBRs that get merged when they overlap significantly.
:class:`BoundingBox` therefore supports any dimension (2 for xy
I/O regions, 3 for segment MBRs) and implements exactly those
operations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import GeometryError


@dataclass(frozen=True)
class BoundingBox:
    """An axis-aligned box given by its lower and upper corners.

    Immutable; all combining operations return new boxes.  ``lo`` and
    ``hi`` are tuples so the box is hashable and safe as a dict key.
    """

    lo: tuple
    hi: tuple

    def __post_init__(self):
        if len(self.lo) != len(self.hi):
            raise GeometryError("corner dimensions differ")
        if any(l > h for l, h in zip(self.lo, self.hi)):
            raise GeometryError(f"inverted box: lo={self.lo} hi={self.hi}")

    # -- constructors ---------------------------------------------------

    @classmethod
    def of_points(cls, points) -> "BoundingBox":
        """Smallest box containing all the given points."""
        pts = np.asarray(points, dtype=float)
        if pts.size == 0:
            raise GeometryError("cannot bound an empty point set")
        pts = pts.reshape(-1, pts.shape[-1])
        return cls(tuple(pts.min(axis=0)), tuple(pts.max(axis=0)))

    @classmethod
    def around(cls, center, half_extent) -> "BoundingBox":
        """Box centred at ``center`` extending ``half_extent`` each way."""
        c = np.asarray(center, dtype=float)
        h = np.broadcast_to(np.asarray(half_extent, dtype=float), c.shape)
        return cls(tuple(c - h), tuple(c + h))

    # -- basic properties -----------------------------------------------

    @property
    def dim(self) -> int:
        return len(self.lo)

    @property
    def center(self) -> np.ndarray:
        return (np.asarray(self.lo) + np.asarray(self.hi)) / 2.0

    @property
    def extents(self) -> np.ndarray:
        return np.asarray(self.hi) - np.asarray(self.lo)

    def measure(self) -> float:
        """Area (2D) or volume (3D) of the box."""
        return float(np.prod(self.extents))

    def perimeter(self) -> float:
        """Sum of edge lengths; the classic R-tree split objective."""
        return float(2.0 * np.sum(self.extents))

    # -- predicates -------------------------------------------------------
    # (scalar implementations: these run millions of times per query,
    # where per-call numpy overhead dominates)

    def contains_point(self, p) -> bool:
        return all(
            l <= float(c) <= h for l, c, h in zip(self.lo, p, self.hi)
        )

    def contains_box(self, other: "BoundingBox") -> bool:
        return all(ol >= sl for ol, sl in zip(other.lo, self.lo)) and all(
            oh <= sh for oh, sh in zip(other.hi, self.hi)
        )

    def intersects(self, other: "BoundingBox") -> bool:
        for sl, sh, ol, oh in zip(self.lo, self.hi, other.lo, other.hi):
            if sl > oh or sh < ol:
                return False
        return True

    # -- combining ops ----------------------------------------------------

    def union(self, other: "BoundingBox") -> "BoundingBox":
        return BoundingBox(
            tuple(np.minimum(self.lo, other.lo)),
            tuple(np.maximum(self.hi, other.hi)),
        )

    def intersection(self, other: "BoundingBox") -> "BoundingBox | None":
        """Overlap box, or ``None`` when the boxes are disjoint."""
        lo = np.maximum(self.lo, other.lo)
        hi = np.minimum(self.hi, other.hi)
        if np.any(lo > hi):
            return None
        return BoundingBox(tuple(lo), tuple(hi))

    def expanded(self, margin: float) -> "BoundingBox":
        """Box grown by ``margin`` on every side (the paper's "double
        each vertex's MBR" region expansion uses this)."""
        if margin < 0:
            raise GeometryError("margin must be non-negative")
        m = np.full(self.dim, margin)
        return BoundingBox(
            tuple(np.asarray(self.lo) - m), tuple(np.asarray(self.hi) + m)
        )

    def scaled(self, factor: float) -> "BoundingBox":
        """Box scaled about its centre by ``factor``."""
        if factor < 0:
            raise GeometryError("factor must be non-negative")
        c = self.center
        h = self.extents / 2.0 * factor
        return BoundingBox(tuple(c - h), tuple(c + h))

    # -- metrics ---------------------------------------------------------

    def min_dist_point(self, p) -> float:
        """Minimum distance from a point to the box (0 if inside)."""
        total = 0.0
        for l, c, h in zip(self.lo, p, self.hi):
            c = float(c)
            gap = l - c if c < l else (c - h if c > h else 0.0)
            total += gap * gap
        return math.sqrt(total)

    def min_dist_box(self, other: "BoundingBox") -> float:
        """Minimum distance between two boxes (0 if they intersect).

        This is the MSDN edge-weight metric: it never exceeds the true
        minimum distance between the geometry inside the boxes, which
        is what makes the MSDN estimate a *lower* bound.
        """
        total = 0.0
        for sl, sh, ol, oh in zip(self.lo, self.hi, other.lo, other.hi):
            gap = sl - oh if sl > oh else (ol - sh if ol > sh else 0.0)
            total += gap * gap
        return math.sqrt(total)

    def overlap_fraction(self, other: "BoundingBox") -> float:
        """Overlap measure relative to the *smaller* box.

        MR3 merges two candidate I/O regions when this fraction
        exceeds a threshold (the paper suggests 80 %).
        """
        inter = self.intersection(other)
        if inter is None:
            return 0.0
        smaller = min(self.measure(), other.measure())
        if smaller == 0.0:
            # Degenerate boxes that still intersect fully overlap.
            return 1.0
        return inter.measure() / smaller

    def xy(self) -> "BoundingBox":
        """Projection onto the first two coordinates."""
        return BoundingBox(tuple(self.lo[:2]), tuple(self.hi[:2]))


@dataclass(frozen=True)
class Segment:
    """A straight line segment between two points (any dimension)."""

    a: tuple
    b: tuple

    @property
    def length(self) -> float:
        return float(np.linalg.norm(np.asarray(self.b) - np.asarray(self.a)))

    @property
    def midpoint(self) -> np.ndarray:
        return (np.asarray(self.a) + np.asarray(self.b)) / 2.0

    def mbr(self) -> BoundingBox:
        return BoundingBox(
            tuple(np.minimum(self.a, self.b)), tuple(np.maximum(self.a, self.b))
        )

    def point_at(self, t: float) -> np.ndarray:
        """Point ``a + t * (b - a)`` for parameter ``t`` in [0, 1]."""
        a = np.asarray(self.a, dtype=float)
        b = np.asarray(self.b, dtype=float)
        return a + t * (b - a)

    def dist_point(self, p) -> float:
        """Distance from a point to the segment."""
        a = np.asarray(self.a, dtype=float)
        b = np.asarray(self.b, dtype=float)
        p = np.asarray(p, dtype=float)
        ab = b - a
        denom = float(np.dot(ab, ab))
        if denom == 0.0:
            return float(np.linalg.norm(p - a))
        t = float(np.clip(np.dot(p - a, ab) / denom, 0.0, 1.0))
        return float(np.linalg.norm(p - (a + t * ab)))
