"""Ellipse-shaped search regions for upper/lower bound estimation.

MR3 restricts the data it fetches for a candidate ``p`` to the set of
points ``x`` with ``dE(q', x) + dE(x, p') <= c`` where ``q'``/``p'``
are the xy-projections of the query and candidate and ``c`` is the
current upper bound of the surface distance — an ellipse with foci
``q'`` and ``p'`` and constant ``c``.  Any surface path shorter than
``c`` projects inside this ellipse, so pruning to it is lossless.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeometryError
from repro.geometry.primitives import BoundingBox


class EllipseRegion:
    """A 2D ellipse given by its foci and distance-sum constant."""

    def __init__(self, focus_a, focus_b, constant: float):
        self.focus_a = np.asarray(focus_a, dtype=float)[:2]
        self.focus_b = np.asarray(focus_b, dtype=float)[:2]
        self._focal_dist = float(np.linalg.norm(self.focus_a - self.focus_b))
        if constant < self._focal_dist:
            # Clamp rather than fail: upper bounds estimated on coarse
            # meshes can dip below the focal distance by floating
            # point slack; the degenerate ellipse is the segment.
            constant = self._focal_dist
        self.constant = float(constant)

    @property
    def semi_major(self) -> float:
        return self.constant / 2.0

    @property
    def semi_minor(self) -> float:
        c = self._focal_dist / 2.0
        a = self.semi_major
        return float(np.sqrt(max(a * a - c * c, 0.0)))

    def contains(self, p) -> bool:
        """Whether the xy-projection of ``p`` lies inside the ellipse."""
        p = np.asarray(p, dtype=float)[:2]
        total = float(
            np.linalg.norm(p - self.focus_a) + np.linalg.norm(p - self.focus_b)
        )
        return total <= self.constant + 1e-12

    def mbr(self) -> BoundingBox:
        """Tight axis-aligned MBR of the ellipse (used as I/O region)."""
        center = (self.focus_a + self.focus_b) / 2.0
        d = self.focus_b - self.focus_a
        a = self.semi_major
        b = self.semi_minor
        if self._focal_dist == 0.0:
            half = np.array([a, a])
        else:
            u = d / self._focal_dist
            # Extent of a rotated ellipse along each axis.
            half = np.sqrt(
                (a * u) ** 2 + (b * np.array([-u[1], u[0]])) ** 2
            )
        return BoundingBox(tuple(center - half), tuple(center + half))

    def shrink_to(self, constant: float) -> "EllipseRegion":
        """New region with a tighter constant (monotone refinement)."""
        if constant > self.constant + 1e-9:
            raise GeometryError(
                "search regions may only shrink as bounds tighten"
            )
        return EllipseRegion(self.focus_a, self.focus_b, constant)
