"""Triangle geometry: containment, barycentric coordinates, areas and
planar unfolding.

Planar unfolding is the primitive behind exact surface shortest paths
(Chen & Han class algorithms): successive faces along an edge sequence
are rotated about shared edges into a common plane, where the geodesic
becomes a straight line.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import GeometryError
from repro.geometry.vectors import cross2d


def triangle_area(a, b, c) -> float:
    """Unsigned area of the 3D (or 2D) triangle ``abc``."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    c = np.asarray(c, dtype=float)
    if a.shape[-1] == 2:
        return abs(float(cross2d(b - a, c - a))) / 2.0
    return float(np.linalg.norm(np.cross(b - a, c - a))) / 2.0


def barycentric_2d(p, a, b, c) -> tuple[float, float, float]:
    """Barycentric coordinates of 2D point ``p`` w.r.t. triangle ``abc``.

    Raises :class:`GeometryError` for a degenerate triangle.
    """
    a = np.asarray(a, dtype=float)[:2]
    b = np.asarray(b, dtype=float)[:2]
    c = np.asarray(c, dtype=float)[:2]
    p = np.asarray(p, dtype=float)[:2]
    denom = cross2d(b - a, c - a)
    if denom == 0.0:
        raise GeometryError("degenerate triangle in barycentric_2d")
    w_b = cross2d(p - a, c - a) / denom
    w_c = cross2d(b - a, p - a) / denom
    w_a = 1.0 - w_b - w_c
    return (float(w_a), float(w_b), float(w_c))


def point_in_triangle_2d(p, a, b, c, eps: float = 1e-12) -> bool:
    """Whether 2D point ``p`` lies inside (or on) triangle ``abc``."""
    try:
        w_a, w_b, w_c = barycentric_2d(p, a, b, c)
    except GeometryError:
        return False
    return w_a >= -eps and w_b >= -eps and w_c >= -eps


def unfold_triangle(a2, b2, d_a: float, d_b: float, side: int = 1) -> np.ndarray:
    """Place the apex of a triangle in the plane by edge unfolding.

    Given the 2D positions ``a2`` and ``b2`` of an already-unfolded
    edge and the (3D) distances ``d_a`` and ``d_b`` from the apex to
    those endpoints, return the apex's 2D position on the requested
    ``side`` of the directed edge a→b (+1 = left, -1 = right).

    The three lengths must satisfy the triangle inequality up to
    floating-point slack; violations are clamped, which keeps
    propagation robust on nearly-degenerate terrain triangles.
    """
    a2 = np.asarray(a2, dtype=float)
    b2 = np.asarray(b2, dtype=float)
    e = b2 - a2
    d_ab = float(np.linalg.norm(e))
    if d_ab == 0.0:
        raise GeometryError("unfold edge has zero length")
    if side not in (1, -1):
        raise GeometryError("side must be +1 or -1")
    # Classic circle-circle intersection along the edge frame.
    x = (d_a * d_a - d_b * d_b + d_ab * d_ab) / (2.0 * d_ab)
    h2 = d_a * d_a - x * x
    h = math.sqrt(h2) if h2 > 0.0 else 0.0
    ex = e / d_ab
    ey = np.array([-ex[1], ex[0]])  # left normal of a->b
    return a2 + x * ex + side * h * ey
