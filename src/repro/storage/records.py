"""Record serialization onto pages.

Records are variable-length byte strings; a page holds a 2-byte
record count followed by (2-byte length, payload) entries.  Stores
describe their record layout with a :class:`RecordCodec` pair of
encode/decode callables; two struct-based helpers cover the common
"tuple of floats" case.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable

from repro.errors import StorageError

_COUNT = struct.Struct("<H")
_LEN = struct.Struct("<H")


@dataclass(frozen=True)
class RecordCodec:
    """Encode/decode a record object to/from bytes."""

    encode: Callable[[object], bytes]
    decode: Callable[[bytes], object]


def pack_floats(values) -> bytes:
    """Encode a sequence of floats (count-prefixed)."""
    vals = [float(v) for v in values]
    return struct.pack(f"<H{len(vals)}d", len(vals), *vals)


def unpack_floats(data: bytes) -> tuple[float, ...]:
    """Decode a float sequence written by :func:`pack_floats`."""
    (count,) = struct.unpack_from("<H", data, 0)
    return struct.unpack_from(f"<{count}d", data, 2)


def pack_page(records: list[bytes], page_size: int) -> bytes:
    """Serialize records into one page image."""
    parts = [_COUNT.pack(len(records))]
    total = _COUNT.size
    for rec in records:
        if len(rec) > 0xFFFF:
            raise StorageError("record exceeds 64 KiB length prefix")
        total += _LEN.size + len(rec)
        parts.append(_LEN.pack(len(rec)))
        parts.append(rec)
    if total > page_size:
        raise StorageError(
            f"{len(records)} records need {total} bytes > page size {page_size}"
        )
    return b"".join(parts)


def unpack_page(data: bytes) -> list[bytes]:
    """Deserialize a page image back into its record payloads."""
    (count,) = _COUNT.unpack_from(data, 0)
    offset = _COUNT.size
    records = []
    for _ in range(count):
        (length,) = _LEN.unpack_from(data, offset)
        offset += _LEN.size
        records.append(data[offset : offset + length])
        offset += length
    return records


def paginate(encoded_records: list[bytes], page_size: int) -> list[list[bytes]]:
    """Greedily group encoded records into page-sized batches,
    preserving order (clustering!)."""
    pages: list[list[bytes]] = []
    current: list[bytes] = []
    used = _COUNT.size
    for rec in encoded_records:
        need = _LEN.size + len(rec)
        if used + need > page_size and current:
            pages.append(current)
            current = []
            used = _COUNT.size
        if _COUNT.size + need > page_size:
            raise StorageError(
                f"a single record of {len(rec)} bytes cannot fit a "
                f"{page_size}-byte page"
            )
        current.append(rec)
        used += need
    if current:
        pages.append(current)
    return pages
